//! Timing-free functional reference model for differential verification.
//!
//! The cycle-level simulator in `latte-gpusim` models *when* things happen
//! — compressed placement, decompression queues, MSHR merging, latency
//! spikes. This crate models only *what* the memory hierarchy must return:
//! a plain map of [`LineAddr`] → [`CacheLine`] with no compression, no
//! latency and no capacity limit. Hooked into a [`Gpu`](latte_gpusim::Gpu)
//! via [`latte_gpusim::ShadowCheck`], the oracle shadows every fill and
//! compares every load's observed bytes against the reference, and records
//! the structural-invariant failures the SMs report at checkpoints
//! (EP boundaries, mode switches, kernel end).
//!
//! The oracle is deliberately simple: simple enough to be obviously
//! correct, so any divergence indicts the timing model, the compressors or
//! the placement logic — not the reference.
//!
//! # Example
//!
//! ```
//! use latte_gpusim::{Gpu, GpuConfig, ShadowConfig, UncompressedPolicy};
//! use latte_gpusim::testing::StridedKernel;
//! use latte_oracle::MemoryOracle;
//!
//! let mut gpu = Gpu::new(&GpuConfig::small(), |_| Box::new(UncompressedPolicy));
//! let (oracle, handle) = MemoryOracle::new();
//! gpu.set_shadow_check(Box::new(oracle), ShadowConfig::default());
//! gpu.run_kernel(&StridedKernel::new(4, 64, 16));
//! let report = handle.report();
//! assert!(report.loads_checked > 0);
//! assert!(report.is_clean(), "unexpected violations: {:?}", report.violations);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// latte-lint: allow-file(D3, reason = "the reference memory is keyed-access only — inserted on fill, probed on load, never iterated — so hash order cannot reach any report or output")

use latte_cache::LineAddr;
use latte_compress::{CacheLine, Cycles};
use latte_gpusim::{ShadowCheck, ShadowCheckpoint, ShadowViolation, ShadowViolationKind};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};

/// Cap on violations kept verbatim in the report; past this, only the
/// total count grows. A corrupted run can diverge on every load, and the
/// first few violations carry all the diagnostic value.
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// Everything the oracle observed during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// L1 hits whose observed bytes were compared against the reference.
    pub loads_checked: u64,
    /// Fills mirrored into the reference memory.
    pub fills_observed: u64,
    /// Stores overlaid onto the reference memory (write-back runs only).
    pub stores_observed: u64,
    /// Structural checkpoints taken (EP boundaries, mode switches,
    /// kernel-end audits), across all SMs.
    pub checkpoints: u64,
    /// Every violation detected, including those beyond the storage cap.
    pub violations_total: u64,
    /// The first [`MAX_STORED_VIOLATIONS`] violations, in detection order.
    pub violations: Vec<ShadowViolation>,
}

impl OracleReport {
    /// `true` when the run diverged nowhere: no data mismatches, no
    /// structural-invariant failures.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }
}

/// Read-side handle to a [`MemoryOracle`]'s report.
///
/// The oracle itself is boxed into the GPU; the handle stays with the
/// caller and can snapshot the report at any time (including after the
/// GPU is dropped).
#[derive(Debug, Clone)]
pub struct OracleHandle {
    report: Arc<Mutex<OracleReport>>,
}

impl OracleHandle {
    /// Snapshots the current report.
    #[must_use]
    pub fn report(&self) -> OracleReport {
        self.report
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// The functional reference model: an unbounded, uncompressed,
/// zero-latency memory shadowing the simulated hierarchy.
#[derive(Debug)]
pub struct MemoryOracle {
    /// Reference contents. Keyed access only — never iterated — so the
    /// hash map's nondeterministic order cannot leak into any output.
    memory: HashMap<LineAddr, CacheLine>,
    /// Lines with architecturally committed stores this kernel. A refetch
    /// of such a line must deliver the reference bytes — anything else
    /// means the hierarchy lost a dirty write-back. Keyed access only.
    stored: HashSet<LineAddr>,
    report: Arc<Mutex<OracleReport>>,
}

impl MemoryOracle {
    /// Creates an oracle and the handle through which its report is read
    /// after the oracle has been handed to the GPU.
    #[must_use]
    pub fn new() -> (MemoryOracle, OracleHandle) {
        let report = Arc::new(Mutex::new(OracleReport::default()));
        let handle = OracleHandle {
            report: Arc::clone(&report),
        };
        (
            MemoryOracle {
                memory: HashMap::new(),
                stored: HashSet::new(),
                report,
            },
            handle,
        )
    }

    fn record(&self, violation: ShadowViolation) {
        let mut report = self
            .report
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        report.violations_total += 1;
        if report.violations.len() < MAX_STORED_VIOLATIONS {
            report.violations.push(violation);
        }
    }

    fn bump(&self, f: impl FnOnce(&mut OracleReport)) {
        f(&mut self
            .report
            .lock()
            .unwrap_or_else(PoisonError::into_inner));
    }
}

/// Detail string for a payload mismatch: the first differing byte, what
/// the cache held and what the reference expected.
fn mismatch_detail(observed: &CacheLine, expected: &CacheLine) -> String {
    let obs = observed.as_bytes();
    let exp = expected.as_bytes();
    for (i, (o, e)) in obs.iter().zip(exp.iter()).enumerate() {
        if o != e {
            return format!(
                "payload diverges at byte {i}: cache returned {o:#04x}, reference holds {e:#04x}"
            );
        }
    }
    // Unreachable in practice (callers compare first), but stay total.
    "payload diverges (no differing byte found)".to_string()
}

impl ShadowCheck for MemoryOracle {
    fn on_fill(&mut self, sm: usize, addr: LineAddr, data: &CacheLine, cycle: Cycles) {
        self.bump(|r| r.fills_observed += 1);
        if self.stored.contains(&addr) {
            // A line we saw stores commit on is being refetched: the
            // hierarchy must hand back the bytes it was given (the dirty
            // line was written back before, or during, the eviction that
            // made this refetch necessary). A mismatch means a dirty
            // write-back was lost between L1 and the backing store.
            if let Some(expected) = self.memory.get(&addr) {
                if data != expected {
                    let detail = format!(
                        "refetch lost a dirty write-back: {}",
                        mismatch_detail(data, expected)
                    );
                    self.record(ShadowViolation {
                        sm,
                        cycle,
                        addr: Some(addr),
                        kind: ShadowViolationKind::DataIntegrity,
                        detail,
                    });
                }
            }
        }
        // Adopt the delivered bytes either way: after the (single)
        // violation above, the model follows the machine so one lost
        // write-back doesn't cascade into a violation on every load.
        self.memory.insert(addr, *data);
    }

    fn on_store(&mut self, _sm: usize, addr: LineAddr, data: &CacheLine, _cycle: Cycles) {
        // Eager overlay: `data` is the full line after the sector merge,
        // architecturally committed the moment the hook fires.
        self.memory.insert(addr, *data);
        self.stored.insert(addr);
        self.bump(|r| r.stores_observed += 1);
    }

    fn on_load(&mut self, sm: usize, addr: LineAddr, observed: Option<&CacheLine>, cycle: Cycles) {
        self.bump(|r| r.loads_checked += 1);
        let Some(expected) = self.memory.get(&addr) else {
            self.record(ShadowViolation {
                sm,
                cycle,
                addr: Some(addr),
                kind: ShadowViolationKind::DataIntegrity,
                detail: "hit on a line the reference memory never saw filled".to_string(),
            });
            return;
        };
        match observed {
            None => self.record(ShadowViolation {
                sm,
                cycle,
                addr: Some(addr),
                kind: ShadowViolationKind::DataIntegrity,
                detail: "resident line has no recorded payload".to_string(),
            }),
            Some(observed) if observed != expected => self.record(ShadowViolation {
                sm,
                cycle,
                addr: Some(addr),
                kind: ShadowViolationKind::DataIntegrity,
                detail: mismatch_detail(observed, expected),
            }),
            Some(_) => {}
        }
    }

    fn on_checkpoint(
        &mut self,
        sm: usize,
        cycle: Cycles,
        kind: ShadowCheckpoint,
        structural_errors: &[String],
    ) {
        self.bump(|r| r.checkpoints += 1);
        for error in structural_errors {
            self.record(ShadowViolation {
                sm,
                cycle,
                addr: None,
                kind: ShadowViolationKind::Structural,
                detail: format!("{kind}: {error}"),
            });
        }
        if kind == ShadowCheckpoint::KernelEnd {
            // Dirty state does not outlive a kernel: the simulator flushes
            // (or deliberately drops, under the planted mutation) every
            // dirty line before these checkpoints fire, and a config that
            // resets caches at kernel boundaries refills from pristine
            // kernel data the next kernel. Keeping the marks would turn
            // those legitimate pristine refills into false positives. The
            // byte contents stay: a persistent-cache config can keep
            // serving the stored bytes, and `on_fill` overwrites stale
            // entries before any load checks against them.
            self.stored.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(fill: u8) -> CacheLine {
        CacheLine::from_bytes([fill; CacheLine::SIZE_BYTES])
    }

    #[test]
    fn matching_load_is_clean() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(7);
        oracle.on_fill(0, addr, &line(0xAB), 10);
        oracle.on_load(0, addr, Some(&line(0xAB)), 20);
        let report = handle.report();
        assert!(report.is_clean());
        assert_eq!(report.loads_checked, 1);
        assert_eq!(report.fills_observed, 1);
    }

    #[test]
    fn mismatched_load_names_the_first_differing_byte() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(7);
        oracle.on_fill(0, addr, &line(0xAB), 10);
        let mut bad = line(0xAB);
        bad.as_bytes_mut()[5] ^= 0x01;
        oracle.on_load(1, addr, Some(&bad), 20);
        let report = handle.report();
        assert_eq!(report.violations_total, 1);
        let v = &report.violations[0];
        assert_eq!(v.sm, 1);
        assert_eq!(v.cycle, 20);
        assert_eq!(v.addr, Some(addr));
        assert_eq!(v.kind, ShadowViolationKind::DataIntegrity);
        assert!(v.detail.contains("byte 5"), "detail: {}", v.detail);
    }

    #[test]
    fn load_of_unknown_line_is_a_violation() {
        let (mut oracle, handle) = MemoryOracle::new();
        oracle.on_load(0, LineAddr::new(99), Some(&line(0)), 5);
        let report = handle.report();
        assert_eq!(report.violations_total, 1);
        assert!(report.violations[0].detail.contains("never saw filled"));
    }

    #[test]
    fn missing_payload_is_a_violation() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(3);
        oracle.on_fill(0, addr, &line(1), 1);
        oracle.on_load(0, addr, None, 2);
        assert_eq!(handle.report().violations_total, 1);
    }

    #[test]
    fn store_overlays_the_reference_eagerly() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(11);
        oracle.on_fill(0, addr, &line(0x10), 1);
        oracle.on_store(0, addr, &line(0x20), 2);
        // A hit after the store must observe the stored bytes...
        oracle.on_load(0, addr, Some(&line(0x20)), 3);
        assert!(handle.report().is_clean());
        // ...and observing the pre-store bytes is a violation.
        oracle.on_load(0, addr, Some(&line(0x10)), 4);
        let report = handle.report();
        assert_eq!(report.violations_total, 1);
        assert_eq!(report.stores_observed, 1);
    }

    #[test]
    fn refetch_matching_the_stored_bytes_is_clean() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(12);
        oracle.on_fill(0, addr, &line(1), 1);
        oracle.on_store(0, addr, &line(2), 2);
        // Evicted (dirty write-back) then refetched with the same bytes.
        oracle.on_fill(0, addr, &line(2), 50);
        assert!(handle.report().is_clean());
    }

    #[test]
    fn refetch_losing_a_writeback_is_flagged_once() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(13);
        oracle.on_fill(0, addr, &line(1), 1);
        oracle.on_store(1, addr, &line(2), 2);
        // The write-back was dropped: the refetch hands back stale bytes.
        oracle.on_fill(1, addr, &line(1), 50);
        let report = handle.report();
        assert_eq!(report.violations_total, 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ShadowViolationKind::DataIntegrity);
        assert!(v.detail.contains("lost a dirty write-back"), "{}", v.detail);
        // The model adopted the delivered bytes: no cascade on later loads.
        oracle.on_load(1, addr, Some(&line(1)), 60);
        assert_eq!(handle.report().violations_total, 1);
    }

    #[test]
    fn kernel_end_retires_dirty_marks_but_keeps_bytes() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(14);
        oracle.on_fill(0, addr, &line(1), 1);
        oracle.on_store(0, addr, &line(2), 2);
        oracle.on_checkpoint(0, 100, ShadowCheckpoint::KernelEnd, &[]);
        // Next kernel refills from pristine data — not a violation.
        oracle.on_fill(0, addr, &line(1), 200);
        assert!(handle.report().is_clean());
        // A persistent-cache hit before any refill still checks against
        // the stored bytes (exercised via a fresh store + load).
        oracle.on_store(0, addr, &line(3), 300);
        oracle.on_load(0, addr, Some(&line(3)), 301);
        assert!(handle.report().is_clean());
    }

    #[test]
    fn refill_updates_the_reference() {
        let (mut oracle, handle) = MemoryOracle::new();
        let addr = LineAddr::new(4);
        oracle.on_fill(0, addr, &line(1), 1);
        oracle.on_fill(0, addr, &line(2), 5);
        oracle.on_load(0, addr, Some(&line(2)), 6);
        assert!(handle.report().is_clean());
    }

    #[test]
    fn checkpoint_errors_become_structural_violations() {
        let (mut oracle, handle) = MemoryOracle::new();
        oracle.on_checkpoint(2, 100, ShadowCheckpoint::ModeSwitch, &[]);
        oracle.on_checkpoint(
            2,
            200,
            ShadowCheckpoint::KernelEnd,
            &["l1: set 3: duplicate tag".to_string()],
        );
        let report = handle.report();
        assert_eq!(report.checkpoints, 2);
        assert_eq!(report.violations_total, 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ShadowViolationKind::Structural);
        assert_eq!(v.addr, None);
        assert!(v.detail.contains("kernel-end"), "detail: {}", v.detail);
        assert!(v.detail.contains("duplicate tag"));
    }

    #[test]
    fn stored_violations_cap_but_the_total_keeps_counting() {
        let (mut oracle, handle) = MemoryOracle::new();
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 10) {
            oracle.on_load(0, LineAddr::new(1000 + i), Some(&line(0)), i);
        }
        let report = handle.report();
        assert_eq!(report.violations_total, MAX_STORED_VIOLATIONS as u64 + 10);
        assert_eq!(report.violations.len(), MAX_STORED_VIOLATIONS);
    }
}
