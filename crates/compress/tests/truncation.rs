//! Truncated-input regression suite: every bitstream decoder must surface
//! a [`DecodeError`] on a truncated payload — for *every* possible cut
//! point — and never panic or silently zero-fill the missing tail.
//!
//! BDI stores structured metadata rather than a bitstream; its truncation
//! analogues (short delta storage, lost raw copy) are pinned by unit
//! tests in `bdi.rs`, which can reach the private fields. The
//! `BitReader`-level guard — byte storage shorter than the recorded bit
//! length — is pinned in `bitstream.rs`.

use latte_compress::{BitReader, BitWriter, Bpc, CacheLine, CpackZ, Fpc, VftBuilder};

/// Copies the first `bits` bits of `w` into a fresh stream.
fn prefix(w: &BitWriter, bits: usize) -> BitWriter {
    let mut out = BitWriter::new();
    let mut r = BitReader::new(w.as_slice(), w.bit_len());
    for _ in 0..bits {
        out.write_bit(r.read_bit());
    }
    out
}

/// Representative lines: best case, word patterns, dictionary-friendly,
/// and incompressible.
fn sample_lines() -> Vec<CacheLine> {
    let zeros = CacheLine::zeroed();
    let stride = CacheLine::from_u32_words(&(0..32).map(|i| 0x4000_0000 + i * 4).collect::<Vec<_>>());
    let temporal = CacheLine::from_u32_words(&(0..32).map(|i| [7u32, 0xdead_beef, 0, 0x8000_0001][i as usize % 4]).collect::<Vec<_>>());
    let noisy = CacheLine::from_u32_words(
        &(0..32u32)
            .map(|i| 0x9e37_79b9u32.wrapping_mul(i ^ 0x55aa).rotate_left(i))
            .collect::<Vec<_>>(),
    );
    vec![zeros, stride, temporal, noisy]
}

/// Asserts every strict prefix of `w` fails to decode.
fn assert_all_prefixes_fail<F>(name: &str, w: &BitWriter, decode: F)
where
    F: Fn(&BitWriter) -> bool, // true = decoded Ok
{
    for cut in 0..w.bit_len() {
        let truncated = prefix(w, cut);
        assert!(
            !decode(&truncated),
            "{name}: prefix of {cut}/{} bits decoded successfully",
            w.bit_len()
        );
    }
}

#[test]
fn fpc_rejects_every_truncation() {
    let fpc = Fpc::new();
    for line in sample_lines() {
        let w = fpc.encode(&line);
        assert_all_prefixes_fail("FPC", &w, |t| fpc.decode(t).is_ok());
    }
}

#[test]
fn cpack_rejects_every_truncation() {
    let cp = CpackZ::new();
    for line in sample_lines() {
        let w = cp.encode(&line);
        assert_all_prefixes_fail("C-PACK", &w, |t| cp.decode(t).is_ok());
    }
}

#[test]
fn bpc_rejects_every_truncation() {
    let bpc = Bpc::new();
    for line in sample_lines() {
        let w = bpc.encode(&line);
        assert_all_prefixes_fail("BPC", &w, |t| bpc.decode(t).is_ok());
    }
}

#[test]
fn sc_rejects_every_truncation() {
    let mut vft = VftBuilder::new();
    for line in sample_lines() {
        vft.observe_line(&line);
    }
    let cb = vft.build();
    for line in sample_lines() {
        let w = cb.encode_line(&line);
        assert_all_prefixes_fail("SC", &w, |t| cb.decode_line(t).is_ok());
    }
}

#[test]
fn decoders_survive_byte_storage_shorter_than_bit_len() {
    // The reader-level guard: a stream whose recorded bit length exceeds
    // its byte storage must error out of every decoder, not panic.
    let mut r = BitReader::new(&[0x00, 0x12], 1000);
    let mut consumed = 0;
    while r.try_read_bit().is_ok() {
        consumed += 1;
    }
    assert_eq!(consumed, 16, "only the stored bits are readable");
}
