//! Probe/encode parity: the staged compressor backends compute sizes two
//! ways — a fast size-only probe and the reference full encoder — and a
//! divergence between them would silently change every paper figure. For
//! arbitrary lines and for each algorithm's sweet-spot distribution, this
//! suite pins:
//!
//! * `probe(line) == compress(line)` (fast path vs reference size),
//! * `probe(line)` equals the byte length of the materialised bitstream,
//! * `decode(encode(line)) == line` (full-encode fidelity),
//! * batch probing/compressing is byte-identical to the per-line loops.

use latte_compress::{
    Bdi, Bpc, CacheLine, Compression, Compressor, CpackZ, Fpc, Sc, VftBuilder,
};
use proptest::prelude::*;

/// Arbitrary raw lines: mostly incompressible.
fn any_line() -> impl Strategy<Value = CacheLine> {
    prop::collection::vec(any::<u8>(), CacheLine::SIZE_BYTES).prop_map(|v| {
        let mut bytes = [0u8; CacheLine::SIZE_BYTES];
        bytes.copy_from_slice(&v);
        CacheLine::from_bytes(bytes)
    })
}

/// Structured lines: a base value plus bounded per-word noise — the
/// BDI/BPC sweet spot, where the interesting plane codes fire.
fn structured_line() -> impl Strategy<Value = CacheLine> {
    (
        any::<u64>(),
        prop::collection::vec(-512i64..512, CacheLine::NUM_U64_WORDS),
        any::<bool>(),
    )
        .prop_map(|(base, noise, wide)| {
            if wide {
                let words: Vec<u64> = noise
                    .iter()
                    .map(|&n| base.wrapping_add(n as u64))
                    .collect();
                CacheLine::from_u64_words(&words)
            } else {
                let words: Vec<u32> = noise
                    .iter()
                    .flat_map(|&n| {
                        let w = (base as u32).wrapping_add(n as u32);
                        [w, w.wrapping_add(1)]
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            }
        })
}

/// Lines drawn from a small value alphabet — dictionary/codebook heaven.
fn temporal_line() -> impl Strategy<Value = CacheLine> {
    (
        prop::collection::vec(any::<u32>(), 4),
        prop::collection::vec(0usize..4, CacheLine::NUM_U32_WORDS),
    )
        .prop_map(|(alphabet, picks)| {
            let words: Vec<u32> = picks.iter().map(|&p| alphabet[p]).collect();
            CacheLine::from_u32_words(&words)
        })
}

fn trained_sc(lines: &[CacheLine]) -> Sc {
    let mut vft = VftBuilder::new();
    for l in lines {
        vft.observe_line(l);
    }
    Sc::new(vft.build())
}

/// Probe == compress == materialised stream length, and the stream
/// round-trips, for one line under every bitstream compressor.
fn assert_staged_parity(line: &CacheLine) {
    let fpc = Fpc::new();
    let w = fpc.encode(line);
    assert_eq!(fpc.probe(line), fpc.compress(line), "FPC probe/compress");
    assert_eq!(fpc.probe(line), Compression::new(w.byte_len()), "FPC size");
    assert_eq!(fpc.decode(&w).as_ref(), Ok(line), "FPC roundtrip");

    let cp = CpackZ::new();
    let w = cp.encode(line);
    assert_eq!(cp.probe(line), cp.compress(line), "C-PACK probe/compress");
    assert_eq!(cp.probe(line), Compression::new(w.byte_len()), "C-PACK size");
    assert_eq!(cp.decode(&w).as_ref(), Ok(line), "C-PACK roundtrip");

    let bpc = Bpc::new();
    let w = bpc.encode(line);
    assert_eq!(bpc.probe(line), bpc.compress(line), "BPC probe/compress");
    assert_eq!(bpc.probe(line), Compression::new(w.byte_len()), "BPC size");
    assert_eq!(bpc.decode(&w).as_ref(), Ok(line), "BPC roundtrip");

    let bdi = Bdi::new();
    let c = bdi.encode(line);
    assert_eq!(bdi.probe(line), bdi.compress(line), "BDI probe/compress");
    assert_eq!(
        bdi.probe(line),
        Compression::new(c.size_bytes()),
        "BDI size"
    );
    assert_eq!(bdi.decode(&c).as_ref(), Ok(line), "BDI roundtrip");
}

fn assert_sc_parity(sc: &Sc, line: &CacheLine) {
    assert_sc_size_parity(sc, line);
    let w = sc.codebook().encode_line(line);
    assert_eq!(sc.codebook().decode_line(&w).as_ref(), Ok(line), "SC roundtrip");
}

/// Size parity only: the *untrained* default codebook has a degenerate
/// zero-length escape code — its streams are not decodable (the sim
/// models SC payloads as lossless), but probe and encode must still
/// agree on the size.
fn assert_sc_size_parity(sc: &Sc, line: &CacheLine) {
    let w = sc.codebook().encode_line(line);
    assert_eq!(sc.probe(line), sc.compress(line), "SC probe/compress");
    assert_eq!(sc.probe(line), Compression::new(w.byte_len()), "SC size");
}

fn assert_batch_parity(algo: &dyn Compressor, lines: &[CacheLine]) {
    // Batches append: pre-seed the outputs to pin that contract too.
    let sentinel = Compression::new(7);
    let mut probed = vec![sentinel];
    algo.probe_batch(lines, &mut probed);
    let mut compressed = vec![sentinel];
    algo.compress_batch(lines, &mut compressed);

    assert_eq!(probed[0], sentinel, "{} probe_batch must append", algo.name());
    assert_eq!(compressed[0], sentinel, "{} compress_batch must append", algo.name());
    let looped_probe: Vec<Compression> = lines.iter().map(|l| algo.probe(l)).collect();
    let looped_compress: Vec<Compression> = lines.iter().map(|l| algo.compress(l)).collect();
    assert_eq!(&probed[1..], &looped_probe[..], "{} probe_batch", algo.name());
    assert_eq!(
        &compressed[1..],
        &looped_compress[..],
        "{} compress_batch",
        algo.name()
    );
}

proptest! {
    #[test]
    fn probe_matches_encode_on_arbitrary_lines(line in any_line()) {
        assert_staged_parity(&line);
    }

    #[test]
    fn probe_matches_encode_on_structured_lines(line in structured_line()) {
        assert_staged_parity(&line);
    }

    #[test]
    fn probe_matches_encode_on_temporal_lines(line in temporal_line()) {
        assert_staged_parity(&line);
    }

    #[test]
    fn sc_probe_matches_encode(
        training in prop::collection::vec(temporal_line(), 1..4),
        line in any_line(),
        temporal in temporal_line(),
    ) {
        let sc = trained_sc(&training);
        assert_sc_parity(&sc, &line);
        assert_sc_parity(&sc, &temporal);
        // The untrained codebook (everything escapes) must agree too.
        let untrained = Sc::untrained();
        assert_sc_size_parity(&untrained, &line);
    }

    #[test]
    fn batch_apis_match_per_line_loops(
        raw in prop::collection::vec(any_line(), 0..12),
        structured in prop::collection::vec(structured_line(), 0..12),
        temporal in prop::collection::vec(temporal_line(), 0..12),
    ) {
        let mut lines = raw;
        lines.extend(structured);
        let sc = trained_sc(&temporal);
        lines.extend(temporal);
        lines.push(CacheLine::zeroed());

        assert_batch_parity(&Bdi::new(), &lines);
        assert_batch_parity(&Fpc::new(), &lines);
        assert_batch_parity(&CpackZ::new(), &lines);
        assert_batch_parity(&Bpc::new(), &lines);
        assert_batch_parity(&sc, &lines);
    }
}

#[test]
fn zero_line_parity() {
    assert_staged_parity(&CacheLine::zeroed());
    assert_sc_size_parity(&Sc::untrained(), &CacheLine::zeroed());
    assert_sc_parity(&trained_sc(&[CacheLine::zeroed()]), &CacheLine::zeroed());
}
