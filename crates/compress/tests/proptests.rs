//! Property-based tests over the compression algorithms: round-trip
//! fidelity, size bounds, and determinism, for arbitrary line contents and
//! for structured (low-entropy) contents that exercise the interesting
//! encodings.

use latte_compress::{
    Bdi, BdiEncoding, BitWriter, Bpc, CacheLine, Compression, Compressor, CpackZ, Fpc, Sc,
    VftBuilder,
};
use proptest::prelude::*;

/// Arbitrary raw lines: mostly incompressible.
fn any_line() -> impl Strategy<Value = CacheLine> {
    prop::collection::vec(any::<u8>(), CacheLine::SIZE_BYTES).prop_map(|v| {
        let mut bytes = [0u8; CacheLine::SIZE_BYTES];
        bytes.copy_from_slice(&v);
        CacheLine::from_bytes(bytes)
    })
}

/// Structured lines: a base value plus bounded per-word noise, switching
/// between u32 and u64 granularity — the BDI/BPC sweet spot.
fn structured_line() -> impl Strategy<Value = CacheLine> {
    (
        any::<u64>(),
        prop::collection::vec(-512i64..512, CacheLine::NUM_U64_WORDS),
        any::<bool>(),
    )
        .prop_map(|(base, noise, wide)| {
            if wide {
                let words: Vec<u64> = noise
                    .iter()
                    .map(|&n| base.wrapping_add(n as u64))
                    .collect();
                CacheLine::from_u64_words(&words)
            } else {
                let words: Vec<u32> = noise
                    .iter()
                    .flat_map(|&n| {
                        let w = (base as u32).wrapping_add(n as u32);
                        [w, w.wrapping_add(1)]
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            }
        })
}

/// Lines drawn from a small value alphabet — the SC sweet spot.
fn temporal_line() -> impl Strategy<Value = CacheLine> {
    (
        prop::collection::vec(any::<u32>(), 4),
        prop::collection::vec(0usize..4, CacheLine::NUM_U32_WORDS),
    )
        .prop_map(|(alphabet, picks)| {
            let words: Vec<u32> = picks.iter().map(|&p| alphabet[p]).collect();
            CacheLine::from_u32_words(&words)
        })
}

fn check_size_invariants(c: Compression) {
    assert!(c.size_bytes() >= 1);
    assert!(c.size_bytes() <= CacheLine::SIZE_BYTES);
    if !c.is_compressed() {
        assert_eq!(c.size_bytes(), CacheLine::SIZE_BYTES);
    }
}

proptest! {
    #[test]
    fn bdi_round_trips(line in any_line()) {
        let bdi = Bdi::new();
        let c = bdi.encode(&line);
        prop_assert_eq!(bdi.decode(&c), Ok(line));
        check_size_invariants(bdi.compress(&line));
    }

    #[test]
    fn bdi_round_trips_structured(line in structured_line()) {
        let bdi = Bdi::new();
        let c = bdi.encode(&line);
        prop_assert_eq!(bdi.decode(&c), Ok(line));
        // Structured lines must actually compress (they are BDI's target).
        prop_assert_ne!(c.encoding(), BdiEncoding::Uncompressed);
    }

    #[test]
    fn fpc_round_trips(line in any_line()) {
        let fpc = Fpc::new();
        prop_assert_eq!(fpc.decode(&fpc.encode(&line)), Ok(line));
        check_size_invariants(fpc.compress(&line));
    }

    #[test]
    fn fpc_round_trips_structured(line in structured_line()) {
        let fpc = Fpc::new();
        prop_assert_eq!(fpc.decode(&fpc.encode(&line)), Ok(line));
    }

    #[test]
    fn cpack_round_trips(line in any_line()) {
        let cp = CpackZ::new();
        prop_assert_eq!(cp.decode(&cp.encode(&line)), Ok(line));
        check_size_invariants(cp.compress(&line));
    }

    #[test]
    fn cpack_round_trips_temporal(line in temporal_line()) {
        let cp = CpackZ::new();
        prop_assert_eq!(cp.decode(&cp.encode(&line)), Ok(line));
        // A 4-value alphabet saturates the dictionary: must compress.
        prop_assert!(cp.compress(&line).is_compressed());
    }

    #[test]
    fn bpc_round_trips(line in any_line()) {
        let bpc = Bpc::new();
        prop_assert_eq!(bpc.decode(&bpc.encode(&line)), Ok(line));
        check_size_invariants(bpc.compress(&line));
    }

    #[test]
    fn bpc_round_trips_structured(line in structured_line()) {
        let bpc = Bpc::new();
        prop_assert_eq!(bpc.decode(&bpc.encode(&line)), Ok(line));
    }

    #[test]
    fn sc_round_trips_with_any_codebook(
        training in prop::collection::vec(temporal_line(), 1..4),
        line in any_line(),
    ) {
        let mut vft = VftBuilder::new();
        for l in &training {
            vft.observe_line(l);
        }
        let cb = vft.build();
        prop_assert_eq!(cb.decode_line(&cb.encode_line(&line)), Ok(line));
    }

    #[test]
    fn sc_compresses_trained_temporal_lines(line in temporal_line()) {
        let mut vft = VftBuilder::new();
        for _ in 0..8 {
            vft.observe_line(&line);
        }
        let sc = Sc::new(vft.build());
        let c = sc.compress(&line);
        check_size_invariants(c);
        prop_assert!(c.is_compressed(), "4-symbol alphabet must compress, got {:?}", c);
    }

    #[test]
    fn compression_is_deterministic(line in any_line()) {
        for algo in [&Bdi::new() as &dyn Compressor, &Fpc::new(), &CpackZ::new(), &Bpc::new()] {
            prop_assert_eq!(algo.compress(&line), algo.compress(&line));
        }
    }

    #[test]
    fn zero_line_is_best_case(line in any_line()) {
        // No line may compress better than the all-zero line.
        let zero = CacheLine::zeroed();
        for algo in [&Bdi::new() as &dyn Compressor, &Fpc::new(), &CpackZ::new(), &Bpc::new()] {
            prop_assert!(algo.compress(&zero).size_bytes() <= algo.compress(&line).size_bytes());
        }
    }
}

/// Random bitstreams of arbitrary (not byte-aligned) length: garbage in,
/// `Err` or a well-formed line out — never a panic.
fn random_stream() -> impl Strategy<Value = BitWriter> {
    (prop::collection::vec(any::<u8>(), 0..140), 0u32..8).prop_map(|(bytes, extra)| {
        let mut w = BitWriter::new();
        for b in &bytes {
            w.write_bits(u64::from(*b), 8);
        }
        w.write_bits(0x15, extra);
        w
    })
}

proptest! {
    #[test]
    fn decoders_never_panic_on_random_streams(stream in random_stream()) {
        // Any outcome is acceptable except a panic.
        let _ = Fpc::new().decode(&stream);
        let _ = CpackZ::new().decode(&stream);
        let _ = Bpc::new().decode(&stream);
        let trained = {
            let mut vft = VftBuilder::new();
            vft.observe_line(&CacheLine::from_u32_words(&(0..32).collect::<Vec<_>>()));
            vft.build()
        };
        let _ = trained.decode_line(&stream);
    }

    #[test]
    fn empty_and_truncated_streams_are_errors(line in any_line()) {
        let empty = BitWriter::new();
        prop_assert!(Fpc::new().decode(&empty).is_err());
        prop_assert!(CpackZ::new().decode(&empty).is_err());
        prop_assert!(Bpc::new().decode(&empty).is_err());

        // Dropping the tail of a valid stream must be detected, not
        // silently padded (encodings are self-terminating, so cutting at
        // least one bit short of a full line cannot decode to 32 words).
        let fpc = Fpc::new();
        let w = fpc.encode(&line);
        let mut cut = BitWriter::new();
        for _ in 0..w.bit_len().saturating_sub(36) {
            cut.write_bit(false);
        }
        let _ = fpc.decode(&cut); // arbitrary content: just must not panic
    }

    #[test]
    fn bit_flipped_streams_never_panic(
        line in any_line(),
        structured in structured_line(),
        flip in any::<u64>(),
    ) {
        for target in [&line, &structured] {
            let fpc = Fpc::new();
            let mut w = fpc.encode(target);
            w.toggle_bit(flip as usize % w.bit_len());
            let _ = fpc.decode(&w);

            let cp = CpackZ::new();
            let mut w = cp.encode(target);
            w.toggle_bit(flip as usize % w.bit_len());
            let _ = cp.decode(&w);

            let bpc = Bpc::new();
            let mut w = bpc.encode(target);
            w.toggle_bit(flip as usize % w.bit_len());
            let _ = bpc.decode(&w);
        }
    }

    #[test]
    fn bit_flipped_sc_streams_never_panic(
        training in prop::collection::vec(temporal_line(), 1..4),
        line in any_line(),
        flip in any::<u64>(),
    ) {
        let mut vft = VftBuilder::new();
        for l in &training {
            vft.observe_line(l);
        }
        let cb = vft.build();
        let mut w = cb.encode_line(&line);
        w.toggle_bit(flip as usize % w.bit_len());
        let _ = cb.decode_line(&w);
    }

    #[test]
    fn bit_flipped_bdi_state_never_panics(
        line in any_line(),
        structured in structured_line(),
        flip in any::<u64>(),
    ) {
        let bdi = Bdi::new();
        for target in [&line, &structured] {
            let mut c = bdi.encode(target);
            if c.flip_bit(flip) {
                let _ = bdi.decode(&c);
            } else {
                // No mutable payload: decode must still be exact.
                prop_assert_eq!(bdi.decode(&c), Ok(*target));
            }
        }
    }
}
