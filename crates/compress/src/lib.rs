//! Cache-line compression algorithms for the LATTE-CC reproduction.
//!
//! This crate implements the five state-of-the-art cache compression
//! algorithms characterised in Table I of the LATTE-CC paper (HPCA 2018):
//!
//! * [`Bdi`] — Base-Delta-Immediate compression (Pekhimenko et al., PACT'12),
//!   exploiting *spatial* value locality. 2-cycle decompression.
//! * [`Fpc`] — Frequent Pattern Compression (Alameldeen & Wood, ISCA'04),
//!   spatial value locality. 5-cycle decompression.
//! * [`CpackZ`] — C-PACK dictionary compression with zero-line detection
//!   (Chen et al., TVLSI'10). 8-cycle decompression.
//! * [`Bpc`] — Bit-Plane Compression (Kim et al., ISCA'16), spatial value
//!   locality via delta + bit-plane transforms. 11-cycle decompression.
//! * [`Sc`] — Huffman-based Statistical Compression (Arelakis & Stenström,
//!   ISCA'14), *temporal* value locality. 14-cycle decompression.
//!
//! All algorithms operate on fixed 128-byte [`CacheLine`]s (the line size of
//! the simulated GPU's caches, Table II) and report an exact compressed size
//! in **bytes**; the cache layer quantises sizes to 32-byte sub-blocks.
//!
//! # Example
//!
//! ```
//! use latte_compress::{Bdi, CacheLine, Compressor};
//!
//! // A line of small integers has low per-word variance, so BDI does well.
//! let words: Vec<u32> = (1000..1032).collect();
//! let line = CacheLine::from_u32_words(&words);
//! let bdi = Bdi::new();
//! let size = bdi.compress(&line).size_bytes();
//! assert!(size < CacheLine::SIZE_BYTES);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdi;
mod bitstream;
mod bpc;
mod cpack;
mod error;
mod fpc;
mod line;
mod sc;
pub mod stats;

pub use bdi::{Bdi, BdiCompressed, BdiEncoding};
pub use bitstream::{BitCounter, BitReader, BitSink, BitWriter};
pub use error::DecodeError;
pub use bpc::Bpc;
pub use cpack::CpackZ;
pub use fpc::Fpc;
pub use line::CacheLine;
pub use sc::{Sc, ScCodebook, VftBuilder, VFT_COUNTER_MAX, VFT_ENTRIES};

use std::fmt;

/// Number of cycles, the simulator's unit of time.
pub type Cycles = u64;

/// The outcome of compressing one cache line: the exact compressed size and
/// whether the algorithm fell back to storing the line uncompressed.
///
/// Algorithms never return a size larger than [`CacheLine::SIZE_BYTES`]:
/// whenever the encoded form would exceed the original, the line is stored
/// raw and [`Compression::is_compressed`] is `false` (a real design marks
/// this with an encoding bit so no decompression is needed on a hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Compression {
    size_bytes: u16,
    compressed: bool,
}

impl Compression {
    /// A line stored raw (uncompressed), occupying the full line size.
    pub const UNCOMPRESSED: Compression = Compression {
        size_bytes: CacheLine::SIZE_BYTES as u16,
        compressed: false,
    };

    /// Creates a compression result of `size_bytes`, clamped to the line
    /// size. Sizes equal to or above the line size degrade to
    /// [`Compression::UNCOMPRESSED`].
    #[must_use]
    pub fn new(size_bytes: usize) -> Compression {
        if size_bytes >= CacheLine::SIZE_BYTES {
            Compression::UNCOMPRESSED
        } else {
            Compression {
                size_bytes: size_bytes as u16,
                compressed: true,
            }
        }
    }

    /// Exact compressed size in bytes (≤ 128).
    #[must_use]
    pub fn size_bytes(self) -> usize {
        usize::from(self.size_bytes)
    }

    /// `true` when the stored form is actually compressed; `false` when the
    /// algorithm stored the line raw.
    #[must_use]
    pub fn is_compressed(self) -> bool {
        self.compressed
    }

    /// Compression ratio = original size / compressed size.
    #[must_use]
    pub fn ratio(self) -> f64 {
        CacheLine::SIZE_BYTES as f64 / f64::from(self.size_bytes.max(1))
    }
}

/// A cache-line compression algorithm.
///
/// Implementations are stateless with respect to individual lines (SC's
/// codebook is immutable at compression time; training it is a separate,
/// explicit step via [`VftBuilder`]).
///
/// # Staging: probe vs full encode
///
/// The trait separates two stages of compression:
///
/// * **Size probe** ([`Compressor::probe`], [`Compressor::probe_batch`]) —
///   computes the exact compressed footprint without emitting a single
///   payload bit. This is the cache's hot path: every fill probes one or
///   more algorithms to make a compressibility decision, and only the
///   *size* feeds the decision. Probes are allocation-free.
/// * **Full encode** (the per-algorithm `encode`/`encode_line` methods) —
///   materialises the actual bitstream. Only paths that store or corrupt
///   payload bytes need it: the payload-shadow roundtrip, fault injection,
///   and the round-trip test suites.
///
/// `probe(line).size_bytes()` always equals the byte length of the full
/// encoding — the property suite pins this parity for every algorithm.
pub trait Compressor {
    /// Short human-readable name, e.g. `"BDI"`.
    fn name(&self) -> &'static str;

    /// Compresses one line, returning its compressed footprint.
    fn compress(&self, line: &CacheLine) -> Compression;

    /// Size-only probe: the compressed footprint of `line` without
    /// emitting payload bits. Defaults to [`Compressor::compress`];
    /// algorithms with a faster dedicated size path override it. Must
    /// report exactly the same size as `compress`.
    fn probe(&self, line: &CacheLine) -> Compression {
        self.compress(line)
    }

    /// Probes a whole fill burst, appending one [`Compression`] per line
    /// to `out`. The default loops [`Compressor::probe`]; backends
    /// override it to amortise per-line setup (dictionary reset, delta
    /// transforms) and dynamic dispatch across the burst. Byte-identical
    /// to the per-line loop.
    fn probe_batch(&self, lines: &[CacheLine], out: &mut Vec<Compression>) {
        out.reserve(lines.len());
        for line in lines {
            out.push(self.probe(line));
        }
    }

    /// Compresses a whole burst, appending one [`Compression`] per line
    /// to `out`. Byte-identical to looping [`Compressor::compress`].
    fn compress_batch(&self, lines: &[CacheLine], out: &mut Vec<Compression>) {
        out.reserve(lines.len());
        for line in lines {
            out.push(self.compress(line));
        }
    }

    /// Latency of decompressing a line on the hit path, in cycles
    /// (Table I / §IV-C of the paper).
    fn decompression_latency(&self) -> Cycles;

    /// Latency of compressing a line on the fill path, in cycles.
    fn compression_latency(&self) -> Cycles;

    /// Energy of one compression operation, in nanojoules (§IV-C).
    fn compression_energy_nj(&self) -> f64;

    /// Energy of one decompression operation, in nanojoules (§IV-C).
    fn decompression_energy_nj(&self) -> f64;
}

/// Identifies one of the implemented compression algorithms.
///
/// `None` is the baseline (uncompressed) "algorithm": identity compression
/// with zero latency and zero energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum CompressionAlgo {
    /// No compression: lines stored raw.
    #[default]
    None,
    /// Base-Delta-Immediate.
    Bdi,
    /// Frequent Pattern Compression.
    Fpc,
    /// C-PACK with zero-line detection.
    CpackZ,
    /// Bit-Plane Compression.
    Bpc,
    /// Huffman-based statistical compression.
    Sc,
}

impl CompressionAlgo {
    /// All real algorithms (excludes `None`).
    pub const ALL: [CompressionAlgo; 5] = [
        CompressionAlgo::Bdi,
        CompressionAlgo::Fpc,
        CompressionAlgo::CpackZ,
        CompressionAlgo::Bpc,
        CompressionAlgo::Sc,
    ];

    /// Decompression latency in cycles (Table I; `None` costs nothing).
    #[must_use]
    pub fn decompression_latency(self) -> Cycles {
        match self {
            CompressionAlgo::None => 0,
            CompressionAlgo::Bdi => 2,
            CompressionAlgo::Fpc => 5,
            CompressionAlgo::CpackZ => 8,
            CompressionAlgo::Bpc => 11,
            CompressionAlgo::Sc => 14,
        }
    }

    /// Compression latency in cycles (§IV-C; pattern-based schemes are
    /// symmetric, SC compresses in 6 cycles).
    #[must_use]
    pub fn compression_latency(self) -> Cycles {
        match self {
            CompressionAlgo::None => 0,
            CompressionAlgo::Bdi => 2,
            CompressionAlgo::Fpc => 5,
            CompressionAlgo::CpackZ => 8,
            CompressionAlgo::Bpc => 11,
            CompressionAlgo::Sc => 6,
        }
    }

    /// Energy of one compression operation in nanojoules (§IV-C gives BDI
    /// 0.192 nJ and SC 0.42 nJ; the others are scaled by circuit
    /// complexity between those anchors).
    #[must_use]
    pub fn compression_energy_nj(self) -> f64 {
        match self {
            CompressionAlgo::None => 0.0,
            CompressionAlgo::Bdi => 0.192,
            CompressionAlgo::Fpc => 0.25,
            CompressionAlgo::CpackZ => 0.31,
            CompressionAlgo::Bpc => 0.36,
            CompressionAlgo::Sc => 0.42,
        }
    }

    /// Energy of one decompression operation in nanojoules (§IV-C gives
    /// BDI 0.056 nJ and SC 0.336 nJ).
    #[must_use]
    pub fn decompression_energy_nj(self) -> f64 {
        match self {
            CompressionAlgo::None => 0.0,
            CompressionAlgo::Bdi => 0.056,
            CompressionAlgo::Fpc => 0.12,
            CompressionAlgo::CpackZ => 0.18,
            CompressionAlgo::Bpc => 0.27,
            CompressionAlgo::Sc => 0.336,
        }
    }
}

impl fmt::Display for CompressionAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompressionAlgo::None => "None",
            CompressionAlgo::Bdi => "BDI",
            CompressionAlgo::Fpc => "FPC",
            CompressionAlgo::CpackZ => "CPACK-Z",
            CompressionAlgo::Bpc => "BPC",
            CompressionAlgo::Sc => "SC",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_clamps_to_line_size() {
        assert_eq!(Compression::new(200), Compression::UNCOMPRESSED);
        assert_eq!(Compression::new(128), Compression::UNCOMPRESSED);
        assert!(Compression::new(127).is_compressed());
        assert_eq!(Compression::new(16).size_bytes(), 16);
    }

    #[test]
    fn compression_ratio() {
        assert!((Compression::new(32).ratio() - 4.0).abs() < 1e-12);
        assert!((Compression::UNCOMPRESSED.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_i_latency_ordering() {
        // Table I: BDI < FPC < CPACK-Z < BPC < SC.
        let lats: Vec<Cycles> = CompressionAlgo::ALL
            .iter()
            .map(|a| a.decompression_latency())
            .collect();
        let mut sorted = lats.clone();
        sorted.sort_unstable();
        assert_eq!(lats, sorted);
        assert_eq!(CompressionAlgo::Bdi.decompression_latency(), 2);
        assert_eq!(CompressionAlgo::Sc.decompression_latency(), 14);
    }

    #[test]
    fn algo_display_names() {
        assert_eq!(CompressionAlgo::Bdi.to_string(), "BDI");
        assert_eq!(CompressionAlgo::None.to_string(), "None");
        assert_eq!(CompressionAlgo::CpackZ.to_string(), "CPACK-Z");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Compression>();
        assert_send_sync::<CompressionAlgo>();
        assert_send_sync::<CacheLine>();
    }
}
