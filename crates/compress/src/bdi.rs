//! Base-Delta-Immediate (BDI) compression — Pekhimenko et al., PACT 2012.
//!
//! BDI exploits *spatial value locality*: words within a line tend to have
//! low dynamic range, so a line can be stored as one base value plus small
//! per-block deltas. The "Immediate" part adds an implicit second base of
//! zero, so a line mixing small immediates with large-but-close values still
//! compresses; a per-block mask selects which base each delta is relative to.
//!
//! The encodings follow §IV-C1 of the LATTE-CC paper: all-zeros;
//! (base = 8 B, Δ ∈ {0, 1, 2, 4}); (base = 4 B, Δ ∈ {0, 1, 2});
//! (base = 2 B, Δ ∈ {0, 1}); or uncompressed. The chosen encoding is stored
//! in a 4-bit `compression_enc` tag field, so it does not count towards the
//! data footprint.

use crate::error::DecodeError;
use crate::line::CacheLine;
use crate::{stats, Compression, Compressor, Cycles};

/// The 4-bit encoding selector stored in a tag block (§IV-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiEncoding {
    /// Every byte of the line is zero. Stored as 1 byte.
    Zeros,
    /// All 8-byte words are identical (Δ = 0). Stored as the 8-byte base.
    Rep8,
    /// 8-byte base, 1-byte deltas.
    B8D1,
    /// 8-byte base, 2-byte deltas.
    B8D2,
    /// 8-byte base, 4-byte deltas.
    B8D4,
    /// 4-byte base, 1-byte deltas.
    B4D1,
    /// 4-byte base, 2-byte deltas.
    B4D2,
    /// 2-byte base, 1-byte deltas.
    B2D1,
    /// Line did not fit any encoding; stored raw.
    Uncompressed,
}

impl BdiEncoding {
    /// All encodings BDI attempts, cheapest first. (Δ = 0 with 4- or 2-byte
    /// bases is subsumed by [`BdiEncoding::Rep8`]: if all 4-byte or 2-byte
    /// blocks are equal, all 8-byte blocks are equal too.)
    pub const CANDIDATES: [BdiEncoding; 7] = [
        BdiEncoding::Rep8,
        BdiEncoding::B8D1,
        BdiEncoding::B2D1,
        BdiEncoding::B8D2,
        BdiEncoding::B4D1,
        BdiEncoding::B4D2,
        BdiEncoding::B8D4,
    ];

    /// Base size in bytes, or `None` for the degenerate encodings.
    #[must_use]
    pub fn base_bytes(self) -> Option<usize> {
        match self {
            BdiEncoding::Zeros | BdiEncoding::Uncompressed => None,
            BdiEncoding::Rep8 | BdiEncoding::B8D1 | BdiEncoding::B8D2 | BdiEncoding::B8D4 => {
                Some(8)
            }
            BdiEncoding::B4D1 | BdiEncoding::B4D2 => Some(4),
            BdiEncoding::B2D1 => Some(2),
        }
    }

    /// Delta size in bytes (0 for Δ = 0 / degenerate encodings).
    #[must_use]
    pub fn delta_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros | BdiEncoding::Uncompressed | BdiEncoding::Rep8 => 0,
            BdiEncoding::B8D1 | BdiEncoding::B4D1 | BdiEncoding::B2D1 => 1,
            BdiEncoding::B8D2 | BdiEncoding::B4D2 => 2,
            BdiEncoding::B8D4 => 4,
        }
    }

    /// Compressed size in bytes of a 128-byte line under this encoding:
    /// base + per-block deltas + base-selector mask (1 bit/block).
    #[must_use]
    pub fn compressed_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros => 1,
            BdiEncoding::Uncompressed => CacheLine::SIZE_BYTES,
            BdiEncoding::Rep8 => 8,
            enc => enc.base_bytes().map_or(CacheLine::SIZE_BYTES, |base| {
                let blocks = CacheLine::SIZE_BYTES / base;
                base + blocks * enc.delta_bytes() + blocks.div_ceil(8)
            }),
        }
    }
}

/// The most blocks any encoding splits a line into (B2D1: 128 B / 2 B).
const MAX_BLOCKS: usize = CacheLine::SIZE_BYTES / 2;

/// A BDI-compressed line, retained in full so it can be decompressed —
/// the simulator only needs sizes, but round-trip fidelity is what the unit
/// and property tests check.
///
/// Deltas and the zero-base mask live in fixed-size inline storage
/// (`MAX_BLOCKS` covers the narrowest base), so encoding a line performs
/// no heap allocation except the raw fallback copy for incompressible
/// lines — and the size-only [`Compressor::compress`] path skips even
/// that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BdiCompressed {
    encoding: BdiEncoding,
    /// Base value (zero-extended to u64).
    base: u64,
    /// Per-block deltas (sign info captured by two's-complement
    /// truncation); only the first `num_blocks` entries are meaningful
    /// and the rest stay zero.
    deltas: [u64; MAX_BLOCKS],
    /// Blocks the line splits into under `encoding` (0 for the
    /// degenerate encodings).
    num_blocks: u8,
    /// Bit `b` set: block `b` is relative to the implicit zero base.
    zero_base_mask: u64,
    /// Raw copy for the `Uncompressed` encoding.
    raw: Option<Box<CacheLine>>,
}

impl BdiCompressed {
    /// The encoding this line compressed to.
    #[must_use]
    pub fn encoding(&self) -> BdiEncoding {
        self.encoding
    }

    /// Compressed footprint in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.encoding.compressed_bytes()
    }

    /// Flips one bit of the stored payload (base, then deltas, then the
    /// zero-base mask; raw bytes for uncompressed lines), modelling
    /// storage corruption for the fault-injection harness. `bit` is taken
    /// modulo the payload width. Returns `false` when the encoding has no
    /// mutable payload (all-zeros lines).
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        match self.encoding {
            BdiEncoding::Zeros => false,
            BdiEncoding::Uncompressed => match self.raw.as_deref_mut() {
                Some(raw) => {
                    let mut bytes = [0u8; CacheLine::SIZE_BYTES];
                    bytes.copy_from_slice(raw.as_bytes());
                    let b = (bit as usize) % (CacheLine::SIZE_BYTES * 8);
                    bytes[b / 8] ^= 1 << (b % 8);
                    *raw = CacheLine::from_bytes(bytes);
                    true
                }
                None => false,
            },
            enc => {
                let base_w = enc.base_bytes().map_or(64, |b| b as u64 * 8);
                let delta_w = enc.delta_bytes() as u64 * 8;
                let delta_total = u64::from(self.num_blocks) * delta_w;
                let total = base_w + delta_total + u64::from(self.num_blocks);
                let mut b = bit % total;
                if b < base_w {
                    self.base ^= 1 << b;
                    return true;
                }
                b -= base_w;
                if b < delta_total {
                    if let Some(d) = self.deltas.get_mut((b / delta_w) as usize) {
                        *d ^= 1 << (b % delta_w);
                        return true;
                    }
                    return false;
                }
                b -= delta_total;
                if b < u64::from(self.num_blocks) {
                    self.zero_base_mask ^= 1 << b;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// The BDI compressor.
///
/// # Example
///
/// ```
/// use latte_compress::{Bdi, BdiEncoding, CacheLine};
///
/// let line = CacheLine::from_u64_words(&[0x1000; 16]);
/// assert_eq!(Bdi::new().encode(&line).encoding(), BdiEncoding::Rep8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI compressor.
    #[must_use]
    pub fn new() -> Bdi {
        Bdi::default()
    }

    /// Compresses a line, keeping enough state to decompress it (the
    /// payload path; size probes use [`Compressor::probe`]).
    #[must_use]
    pub fn encode(&self, line: &CacheLine) -> BdiCompressed {
        let t = stats::start();
        let c = self.encode_impl(line, true);
        stats::record_encode(t);
        c
    }

    /// [`Bdi::encode`] with an optional raw fallback copy: the size-only
    /// hot path passes `keep_raw = false` so incompressible lines cost no
    /// heap allocation (their size is the line size by definition).
    fn encode_impl(&self, line: &CacheLine, keep_raw: bool) -> BdiCompressed {
        if line.is_zero() {
            return BdiCompressed {
                encoding: BdiEncoding::Zeros,
                base: 0,
                deltas: [0; MAX_BLOCKS],
                num_blocks: 0,
                zero_base_mask: 0,
                raw: None,
            };
        }
        let mut best: Option<BdiCompressed> = None;
        for &enc in &BdiEncoding::CANDIDATES {
            if best
                .as_ref()
                .is_some_and(|b| b.size_bytes() <= enc.compressed_bytes())
            {
                continue; // candidates are not strictly sorted; skip non-improving ones
            }
            if let Some(c) = try_encode(line, enc) {
                best = Some(c);
            }
        }
        best.unwrap_or_else(|| BdiCompressed {
            encoding: BdiEncoding::Uncompressed,
            base: 0,
            deltas: [0; MAX_BLOCKS],
            num_blocks: 0,
            zero_base_mask: 0,
            raw: keep_raw.then(|| Box::new(*line)),
        })
    }

    /// Reconstructs the original line from its compressed form.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the stored metadata is inconsistent
    /// (missing raw copy, missing base, or short delta/mask arrays) —
    /// reachable only from corrupted state, never from [`Bdi::encode`].
    pub fn decode(&self, c: &BdiCompressed) -> Result<CacheLine, DecodeError> {
        let t = stats::start();
        let result = self.decode_impl(c);
        stats::record_decode(t);
        result
    }

    fn decode_impl(&self, c: &BdiCompressed) -> Result<CacheLine, DecodeError> {
        match c.encoding {
            BdiEncoding::Zeros => Ok(CacheLine::zeroed()),
            BdiEncoding::Uncompressed => c.raw.as_deref().copied().ok_or({
                DecodeError::CorruptMetadata {
                    algo: "BDI",
                    detail: "uncompressed line lost its raw bytes",
                }
            }),
            BdiEncoding::Rep8 => Ok(CacheLine::from_u64_words(&[c.base; CacheLine::NUM_U64_WORDS])),
            enc => {
                let base_bytes = enc.base_bytes().ok_or(DecodeError::CorruptMetadata {
                    algo: "BDI",
                    detail: "delta encoding without a base width",
                })?;
                let delta_bytes = enc.delta_bytes();
                let blocks = CacheLine::SIZE_BYTES / base_bytes;
                if (c.num_blocks as usize) < blocks {
                    return Err(DecodeError::LengthMismatch {
                        algo: "BDI",
                        expected: blocks,
                        actual: c.num_blocks as usize,
                    });
                }
                let mut out = [0u8; CacheLine::SIZE_BYTES];
                for (blk, &raw_delta) in c.deltas.iter().enumerate().take(blocks) {
                    let zero_base = (c.zero_base_mask >> blk) & 1 == 1;
                    let base = if zero_base { 0 } else { c.base };
                    let delta = sign_extend(raw_delta, delta_bytes * 8);
                    let value = base.wrapping_add(delta) & mask_bytes(base_bytes);
                    out[blk * base_bytes..(blk + 1) * base_bytes]
                        .copy_from_slice(&value.to_le_bytes()[..base_bytes]);
                }
                Ok(CacheLine::from_bytes(out))
            }
        }
    }
}

impl Compressor for Bdi {
    fn name(&self) -> &'static str {
        "BDI"
    }

    fn compress(&self, line: &CacheLine) -> Compression {
        // Size-only probe: skip the raw fallback copy — an incompressible
        // line's size is the line size by definition.
        let t = stats::start();
        let c = self.encode_impl(line, false);
        stats::record_probe(t);
        if c.encoding == BdiEncoding::Uncompressed {
            Compression::UNCOMPRESSED
        } else {
            Compression::new(c.size_bytes())
        }
    }

    fn decompression_latency(&self) -> Cycles {
        2
    }

    fn compression_latency(&self) -> Cycles {
        2
    }

    fn compression_energy_nj(&self) -> f64 {
        0.192
    }

    fn decompression_energy_nj(&self) -> f64 {
        0.056
    }
}

/// Reads block `blk` of `base_bytes` bytes as a zero-extended u64.
fn block_value(line: &CacheLine, blk: usize, base_bytes: usize) -> u64 {
    let mut b = [0u8; 8];
    b[..base_bytes].copy_from_slice(&line.as_bytes()[blk * base_bytes..(blk + 1) * base_bytes]);
    u64::from_le_bytes(b)
}

fn mask_bytes(n: usize) -> u64 {
    if n >= 8 {
        u64::MAX
    } else {
        (1u64 << (n * 8)) - 1
    }
}

fn sign_extend(v: u64, bits: usize) -> u64 {
    if bits == 0 || bits >= 64 {
        return v;
    }
    let shift = 64 - bits;
    (((v << shift) as i64) >> shift) as u64
}

/// `true` if `delta` (a wrapping difference within `base_bytes` bytes) fits
/// in `delta_bytes` as a signed value.
fn delta_fits(delta: u64, base_bytes: usize, delta_bytes: usize) -> bool {
    // Interpret the difference as signed within the base width.
    let d = sign_extend(delta & mask_bytes(base_bytes), base_bytes * 8) as i64;
    let half = 1i64 << (delta_bytes * 8 - 1);
    (-half..half).contains(&d)
}

fn try_encode(line: &CacheLine, enc: BdiEncoding) -> Option<BdiCompressed> {
    let base_bytes = enc.base_bytes()?;
    let delta_bytes = enc.delta_bytes();
    let blocks = CacheLine::SIZE_BYTES / base_bytes;

    if enc == BdiEncoding::Rep8 {
        let first = block_value(line, 0, 8);
        let all_same = (1..blocks).all(|b| block_value(line, b, 8) == first);
        return all_same.then_some(BdiCompressed {
            encoding: BdiEncoding::Rep8,
            base: first,
            deltas: [0; MAX_BLOCKS],
            num_blocks: 0,
            zero_base_mask: 0,
            raw: None,
        });
    }

    let mut base: Option<u64> = None;
    let mut deltas = [0u64; MAX_BLOCKS];
    let mut zero_mask = 0u64;
    for (blk, slot) in deltas.iter_mut().enumerate().take(blocks) {
        let v = block_value(line, blk, base_bytes);
        if delta_fits(v, base_bytes, delta_bytes) {
            // Fits as an immediate relative to the zero base.
            *slot = v & mask_bytes(delta_bytes);
            zero_mask |= 1 << blk;
            continue;
        }
        let b = *base.get_or_insert(v);
        let delta = v.wrapping_sub(b);
        if !delta_fits(delta, base_bytes, delta_bytes) {
            return None;
        }
        *slot = delta & mask_bytes(delta_bytes);
    }
    Some(BdiCompressed {
        encoding: enc,
        base: base.unwrap_or(0),
        deltas,
        num_blocks: blocks as u8,
        zero_base_mask: zero_mask,
        raw: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &CacheLine) -> BdiEncoding {
        let bdi = Bdi::new();
        let c = bdi.encode(line);
        assert_eq!(
            bdi.decode(&c).as_ref(),
            Ok(line),
            "round trip under {:?}",
            c.encoding()
        );
        c.encoding()
    }

    #[test]
    fn flipped_bit_changes_decode_and_restores() {
        let bdi = Bdi::new();
        let words: Vec<u64> = (0..16).map(|i| 0x7fff_0000_0000_0000u64 + i * 8).collect();
        let line = CacheLine::from_u64_words(&words);
        let mut c = bdi.encode(&line);
        assert!(c.flip_bit(13));
        let corrupted = bdi.decode(&c);
        assert!(corrupted.is_err() || corrupted.as_ref() != Ok(&line));
        assert!(c.flip_bit(13));
        assert_eq!(bdi.decode(&c).as_ref(), Ok(&line));
    }

    #[test]
    fn short_delta_storage_is_a_length_mismatch() {
        // A torn metadata write leaving fewer blocks than the encoding
        // needs must surface as an error, never zero-fill the tail.
        let bdi = Bdi::new();
        let words: Vec<u32> = (0..32).map(|i| 0x0100_0000 + i * 3).collect();
        let mut c = bdi.encode(&CacheLine::from_u32_words(&words));
        assert_ne!(c.encoding(), BdiEncoding::Uncompressed);
        c.num_blocks = 1;
        assert!(matches!(
            bdi.decode(&c),
            Err(DecodeError::LengthMismatch { algo: "BDI", .. })
        ));
    }

    #[test]
    fn lost_raw_copy_is_corrupt_metadata() {
        let bdi = Bdi::new();
        let mut bytes = [0u8; CacheLine::SIZE_BYTES];
        let mut state = 0xdeadbeefu64;
        for b in bytes.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 56) as u8;
        }
        let mut c = bdi.encode(&CacheLine::from_bytes(bytes));
        assert_eq!(c.encoding(), BdiEncoding::Uncompressed);
        c.raw = None;
        assert!(matches!(
            bdi.decode(&c),
            Err(DecodeError::CorruptMetadata { algo: "BDI", .. })
        ));
    }

    #[test]
    fn zero_line() {
        let enc = round_trip(&CacheLine::zeroed());
        assert_eq!(enc, BdiEncoding::Zeros);
        assert_eq!(BdiEncoding::Zeros.compressed_bytes(), 1);
    }

    #[test]
    fn repeated_u64() {
        let line = CacheLine::from_u64_words(&[0xdead_beef_cafe_f00d; 16]);
        assert_eq!(round_trip(&line), BdiEncoding::Rep8);
    }

    #[test]
    fn small_u32_values_use_narrow_base() {
        // Values fit entirely as 1-byte immediates from the zero base within
        // 4-byte blocks, the cheapest feasible encoding for this line.
        let words: Vec<u32> = (0..32).map(|i| u32::from(i as u8 % 100)).collect();
        let line = CacheLine::from_u32_words(&words);
        let enc = round_trip(&line);
        assert_eq!(enc, BdiEncoding::B4D1);
        assert_eq!(enc.compressed_bytes(), 4 + 32 + 4);
    }

    #[test]
    fn pointers_compress_with_b8d1() {
        // Pointer-like values: large shared base, byte-range offsets.
        let base = 0x7fff_aabb_0000_0000u64;
        let words: Vec<u64> = (0..16).map(|i| base + i * 8).collect();
        let line = CacheLine::from_u64_words(&words);
        assert_eq!(round_trip(&line), BdiEncoding::B8D1);
    }

    #[test]
    fn mixed_pointers_and_zeros_use_zero_base() {
        // The "immediate" part: half the blocks are null pointers.
        let base = 0x7fff_aabb_0000_0000u64;
        let words: Vec<u64> = (0..16)
            .map(|i| if i % 2 == 0 { 0 } else { base + i })
            .collect();
        let line = CacheLine::from_u64_words(&words);
        let enc = round_trip(&line);
        assert_ne!(enc, BdiEncoding::Uncompressed);
    }

    #[test]
    fn random_line_is_uncompressed() {
        // High-entropy bytes defeat every delta encoding.
        let mut bytes = [0u8; CacheLine::SIZE_BYTES];
        let mut state = 0x9e3779b97f4a7c15u64;
        for b in bytes.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        assert_eq!(round_trip(&line), BdiEncoding::Uncompressed);
    }

    #[test]
    fn negative_deltas_fit() {
        let base = 0x1000u64;
        let words: Vec<u64> = (0..16)
            .map(|i| if i % 2 == 0 { base } else { base - 100 })
            .collect();
        let line = CacheLine::from_u64_words(&words);
        let enc = round_trip(&line);
        assert_ne!(enc, BdiEncoding::Uncompressed);
    }

    #[test]
    fn encoding_sizes_match_formula() {
        assert_eq!(BdiEncoding::B8D1.compressed_bytes(), 8 + 16 + 2);
        assert_eq!(BdiEncoding::B8D2.compressed_bytes(), 8 + 32 + 2);
        assert_eq!(BdiEncoding::B8D4.compressed_bytes(), 8 + 64 + 2);
        assert_eq!(BdiEncoding::B4D1.compressed_bytes(), 4 + 32 + 4);
        assert_eq!(BdiEncoding::B4D2.compressed_bytes(), 4 + 64 + 4);
        assert_eq!(BdiEncoding::B2D1.compressed_bytes(), 2 + 64 + 8);
        assert_eq!(BdiEncoding::Rep8.compressed_bytes(), 8);
    }

    #[test]
    fn compressor_trait_reports_table_i_numbers() {
        let bdi = Bdi::new();
        assert_eq!(bdi.decompression_latency(), 2);
        assert_eq!(bdi.compression_latency(), 2);
        assert!((bdi.compression_energy_nj() - 0.192).abs() < 1e-12);
        assert!((bdi.decompression_energy_nj() - 0.056).abs() < 1e-12);
        assert_eq!(bdi.name(), "BDI");
    }

    #[test]
    fn compress_picks_minimum_size() {
        // A line compressible as both B8D4 and B4D2 must report the smaller.
        let words: Vec<u32> = (0..32).map(|i| 0x0100_0000 + i * 3).collect();
        let line = CacheLine::from_u32_words(&words);
        let c = Bdi::new().encode(&line);
        for &enc in &BdiEncoding::CANDIDATES {
            if let Some(alt) = try_encode(&line, enc) {
                assert!(c.size_bytes() <= alt.size_bytes());
            }
        }
    }
}
