//! Frequent Pattern Compression (FPC) — Alameldeen & Wood, ISCA 2004.
//!
//! Each 32-bit word is encoded with a 3-bit prefix selecting one of eight
//! patterns (zero runs, sign-extended narrow values, half-word patterns,
//! repeated bytes, or raw). FPC exploits spatial value locality at word
//! granularity; per Table I it achieves lower compression ratios than BDI
//! on GPGPU data but is included as a characterised comparison point.

use crate::bitstream::{BitCounter, BitReader, BitSink, BitWriter};
use crate::error::DecodeError;
use crate::line::CacheLine;
use crate::{stats, Compression, Compressor, Cycles};

/// 3-bit FPC prefixes (Table 1 of the FPC paper).
mod prefix {
    pub const ZERO_RUN: u64 = 0b000;
    pub const SE_4BIT: u64 = 0b001;
    pub const SE_8BIT: u64 = 0b010;
    pub const SE_16BIT: u64 = 0b011;
    pub const HALF_PADDED: u64 = 0b100; // lower half zero, upper half stored
    pub const HALF_SE_BYTES: u64 = 0b101; // two half-words, each a sign-extended byte
    pub const REP_BYTES: u64 = 0b110; // word = one byte repeated 4x
    pub const RAW: u64 = 0b111;
}

const MAX_ZERO_RUN: u32 = 8;

/// The FPC compressor.
///
/// # Example
///
/// ```
/// use latte_compress::{CacheLine, Compressor, Fpc};
///
/// let line = CacheLine::zeroed();
/// // 32 zero words collapse into four 8-word zero runs: 4 * 6 bits -> 3 bytes.
/// assert_eq!(Fpc::new().compress(&line).size_bytes(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fpc {
    _private: (),
}

impl Fpc {
    /// Creates an FPC compressor.
    #[must_use]
    pub fn new() -> Fpc {
        Fpc::default()
    }

    /// Encodes a line into an FPC bitstream (the payload path: shadow
    /// roundtrips, fault injection, and round-trip tests; the simulator's
    /// size probes use [`Compressor::probe`]).
    #[must_use]
    pub fn encode(&self, line: &CacheLine) -> BitWriter {
        let t = stats::start();
        let mut w = BitWriter::new();
        self.encode_into(line, &mut w);
        stats::record_encode(t);
        w
    }

    /// Encodes `line` into any [`BitSink`]. The simulator's per-line hot
    /// path drives a counting sink, so the common case allocates nothing.
    pub fn encode_into<S: BitSink>(&self, line: &CacheLine, w: &mut S) {
        let words = line.to_u32_words();
        let mut i = 0;
        while i < words.len() {
            let word = words[i];
            if word == 0 {
                let mut run = 1u32;
                while run < MAX_ZERO_RUN && i + (run as usize) < words.len() && words[i + run as usize] == 0
                {
                    run += 1;
                }
                w.write_bits(prefix::ZERO_RUN, 3);
                w.write_bits(u64::from(run - 1), 3);
                i += run as usize;
                continue;
            }
            encode_word(w, word);
            i += 1;
        }
    }

    /// Decodes an FPC bitstream produced by [`Fpc::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bitstream is truncated or a
    /// zero run overshoots the fixed line size.
    pub fn decode(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let t = stats::start();
        let result = self.decode_impl(w);
        stats::record_decode(t);
        result
    }

    fn decode_impl(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        let mut words = [0u32; CacheLine::NUM_U32_WORDS];
        let mut len = 0usize;
        while len < CacheLine::NUM_U32_WORDS {
            let p = r.try_read_bits(3)?;
            if p == prefix::ZERO_RUN {
                let run = r.try_read_bits(3)? as usize + 1;
                if len + run > CacheLine::NUM_U32_WORDS {
                    return Err(DecodeError::LengthMismatch {
                        algo: "FPC",
                        expected: CacheLine::NUM_U32_WORDS,
                        actual: len + run,
                    });
                }
                // The array is zero-initialized; a run just advances.
                len += run;
                continue;
            }
            words[len] = match p {
                prefix::SE_4BIT => se_bits(r.try_read_bits(4)?, 4),
                prefix::SE_8BIT => se_bits(r.try_read_bits(8)?, 8),
                prefix::SE_16BIT => se_bits(r.try_read_bits(16)?, 16),
                prefix::HALF_PADDED => (r.try_read_bits(16)? as u32) << 16,
                prefix::HALF_SE_BYTES => {
                    let hi = se_bits(r.try_read_bits(8)?, 8) & 0xffff;
                    let lo = se_bits(r.try_read_bits(8)?, 8) & 0xffff;
                    hi << 16 | lo
                }
                prefix::REP_BYTES => {
                    let b = r.try_read_bits(8)? as u32;
                    b * 0x0101_0101
                }
                prefix::RAW => r.try_read_bits(32)? as u32,
                _ => unreachable!("3-bit prefix"),
            };
            len += 1;
        }
        Ok(CacheLine::from_u32_words(&words))
    }
}

fn encode_word<S: BitSink>(w: &mut S, word: u32) {
    let sword = word as i32;
    if (-8..8).contains(&sword) {
        w.write_bits(prefix::SE_4BIT, 3);
        w.write_bits(u64::from(word & 0xf), 4);
    } else if (-128..128).contains(&sword) {
        w.write_bits(prefix::SE_8BIT, 3);
        w.write_bits(u64::from(word & 0xff), 8);
    } else if (-32768..32768).contains(&sword) {
        w.write_bits(prefix::SE_16BIT, 3);
        w.write_bits(u64::from(word & 0xffff), 16);
    } else if word & 0xffff == 0 {
        w.write_bits(prefix::HALF_PADDED, 3);
        w.write_bits(u64::from(word >> 16), 16);
    } else if half_words_are_se_bytes(word) {
        w.write_bits(prefix::HALF_SE_BYTES, 3);
        w.write_bits(u64::from((word >> 16) & 0xff), 8);
        w.write_bits(u64::from(word & 0xff), 8);
    } else if is_repeated_bytes(word) {
        w.write_bits(prefix::REP_BYTES, 3);
        w.write_bits(u64::from(word & 0xff), 8);
    } else {
        w.write_bits(prefix::RAW, 3);
        w.write_bits(u64::from(word), 32);
    }
}

fn se_bits(v: u64, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((v as u32) << shift) as i32 >> shift) as u32
}

fn half_words_are_se_bytes(word: u32) -> bool {
    let hi = (word >> 16) as u16 as i16;
    let lo = word as u16 as i16;
    (-128..128).contains(&hi) && (-128..128).contains(&lo)
}

fn is_repeated_bytes(word: u32) -> bool {
    let b = word & 0xff;
    word == b * 0x0101_0101
}

impl Compressor for Fpc {
    fn name(&self) -> &'static str {
        "FPC"
    }

    fn compress(&self, line: &CacheLine) -> Compression {
        // Size-only probe: count bits without materializing the stream.
        let t = stats::start();
        let mut c = BitCounter::new();
        self.encode_into(line, &mut c);
        stats::record_probe(t);
        Compression::new(c.byte_len())
    }

    fn decompression_latency(&self) -> Cycles {
        5
    }

    fn compression_latency(&self) -> Cycles {
        5
    }

    fn compression_energy_nj(&self) -> f64 {
        // Scaled between BDI and SC by circuit complexity (Table I: "High").
        0.25
    }

    fn decompression_energy_nj(&self) -> f64 {
        0.12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &CacheLine) -> usize {
        let fpc = Fpc::new();
        let w = fpc.encode(line);
        assert_eq!(fpc.decode(&w).as_ref(), Ok(line));
        w.byte_len()
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let fpc = Fpc::new();
        let w = fpc.encode(&CacheLine::from_u32_words(&vec![0xdead_beef; 32]));
        let mut cut = BitWriter::new();
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        for _ in 0..w.bit_len() / 2 {
            cut.write_bit(r.read_bit());
        }
        assert!(matches!(
            fpc.decode(&cut),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn overshooting_zero_run_is_an_error() {
        // 31 single-word zero runs then a run of 8 words: 31 + 8 > 32.
        let mut w = BitWriter::new();
        for _ in 0..31 {
            w.write_bits(prefix::ZERO_RUN, 3);
            w.write_bits(0, 3);
        }
        w.write_bits(prefix::ZERO_RUN, 3);
        w.write_bits(7, 3);
        assert!(matches!(
            Fpc::new().decode(&w),
            Err(DecodeError::LengthMismatch { algo: "FPC", .. })
        ));
    }

    #[test]
    fn zero_line_collapses_to_runs() {
        assert_eq!(round_trip(&CacheLine::zeroed()), 3);
    }

    #[test]
    fn small_signed_values() {
        let words: Vec<u32> = (0..32).map(|i| (i as i32 - 16) as u32).collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        // Mostly 4/8-bit sign-extended encodings: far below 128 bytes.
        assert!(size < 64, "got {size}");
    }

    #[test]
    fn half_padded_pattern() {
        let words = [0xabcd_0000u32; 32];
        let size = round_trip(&CacheLine::from_u32_words(&words.to_vec()));
        assert_eq!(size, (32 * 19usize).div_ceil(8));
    }

    #[test]
    fn repeated_byte_pattern() {
        let words = [0x4747_4747u32; 32];
        let size = round_trip(&CacheLine::from_u32_words(&words.to_vec()));
        assert_eq!(size, (32 * 11usize).div_ceil(8));
    }

    #[test]
    fn half_se_bytes_pattern() {
        // 0x00ff00fe: halves 0x00ff (=255, not a SE byte) — ensure the
        // encoder handles borderline half-word cases by round-tripping.
        let words = [0x0042_0017u32; 32];
        let size = round_trip(&CacheLine::from_u32_words(&words.to_vec()));
        assert_eq!(size, (32 * 19usize).div_ceil(8));
    }

    #[test]
    fn incompressible_words_cost_35_bits() {
        let words: Vec<u32> = (0..32).map(|i| 0x9e37_79b9u32.wrapping_mul(i * 2 + 12345) | 1).collect();
        let line = CacheLine::from_u32_words(&words);
        let size = round_trip(&line);
        assert!(size > CacheLine::SIZE_BYTES, "raw words carry prefix overhead, got {size}");
        assert!(!Fpc::new().compress(&line).is_compressed());
    }

    #[test]
    fn mixed_line_round_trips() {
        let mut words = vec![0u32; 8];
        words.extend((0..8).map(|i| i * 1000));
        words.extend([0xdead_beef; 8]);
        words.extend([0x7f7f_7f7f; 8]);
        round_trip(&CacheLine::from_u32_words(&words));
    }
}
