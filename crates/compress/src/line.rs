//! The fixed-size cache line that all compression algorithms operate on.

use std::fmt;

/// A 128-byte cache line — the line size of the simulated GPU's L1 and L2
/// caches (Table II of the paper).
///
/// Lines can be viewed as byte, 16-bit, 32-bit or 64-bit little-endian word
/// arrays; the compression algorithms pick the granularity they need.
///
/// # Example
///
/// ```
/// use latte_compress::CacheLine;
///
/// let line = CacheLine::from_u64_words(&[7; CacheLine::NUM_U64_WORDS]);
/// assert_eq!(line.u64_word(3), 7);
/// assert_eq!(line.as_bytes()[0], 7);
/// ```
// `Ord` exists so containers of lines (e.g. the simulator's memory-event
// heap, whose events carry an optional refill payload) can derive their
// own ordering; it is plain lexicographic byte order with no semantic
// meaning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheLine {
    bytes: [u8; CacheLine::SIZE_BYTES],
}

impl CacheLine {
    /// Line size in bytes.
    pub const SIZE_BYTES: usize = 128;
    /// Number of 16-bit words in a line.
    pub const NUM_U16_WORDS: usize = Self::SIZE_BYTES / 2;
    /// Number of 32-bit words in a line.
    pub const NUM_U32_WORDS: usize = Self::SIZE_BYTES / 4;
    /// Number of 64-bit words in a line.
    pub const NUM_U64_WORDS: usize = Self::SIZE_BYTES / 8;

    /// An all-zero line.
    #[must_use]
    pub fn zeroed() -> CacheLine {
        CacheLine {
            bytes: [0; Self::SIZE_BYTES],
        }
    }

    /// Builds a line from raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; Self::SIZE_BYTES]) -> CacheLine {
        CacheLine { bytes }
    }

    /// Builds a line from a slice of exactly [`CacheLine::NUM_U32_WORDS`]
    /// 32-bit words (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != 32`.
    #[must_use]
    pub fn from_u32_words(words: &[u32]) -> CacheLine {
        assert_eq!(
            words.len(),
            Self::NUM_U32_WORDS,
            "a cache line holds exactly {} u32 words",
            Self::NUM_U32_WORDS
        );
        let mut bytes = [0u8; Self::SIZE_BYTES];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        CacheLine { bytes }
    }

    /// Builds a line from a slice of exactly [`CacheLine::NUM_U64_WORDS`]
    /// 64-bit words (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != 16`.
    #[must_use]
    pub fn from_u64_words(words: &[u64]) -> CacheLine {
        assert_eq!(
            words.len(),
            Self::NUM_U64_WORDS,
            "a cache line holds exactly {} u64 words",
            Self::NUM_U64_WORDS
        );
        let mut bytes = [0u8; Self::SIZE_BYTES];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        CacheLine { bytes }
    }

    /// Raw byte view.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; Self::SIZE_BYTES] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8; Self::SIZE_BYTES] {
        &mut self.bytes
    }

    /// The `i`-th little-endian 16-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[must_use]
    pub fn u16_word(&self, i: usize) -> u16 {
        u16::from_le_bytes([self.bytes[i * 2], self.bytes[i * 2 + 1]])
    }

    /// The `i`-th little-endian 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub fn u32_word(&self, i: usize) -> u32 {
        u32::from_le_bytes([
            self.bytes[i * 4],
            self.bytes[i * 4 + 1],
            self.bytes[i * 4 + 2],
            self.bytes[i * 4 + 3],
        ])
    }

    /// The `i`-th little-endian 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[must_use]
    pub fn u64_word(&self, i: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[i * 8..i * 8 + 8]);
        u64::from_le_bytes(b)
    }

    /// Iterator over the 32 little-endian u32 words.
    pub fn u32_words(&self) -> impl Iterator<Item = u32> + '_ {
        (0..Self::NUM_U32_WORDS).map(move |i| self.u32_word(i))
    }

    /// Iterator over the 16 little-endian u64 words.
    pub fn u64_words(&self) -> impl Iterator<Item = u64> + '_ {
        (0..Self::NUM_U64_WORDS).map(move |i| self.u64_word(i))
    }

    /// The line as an array of 32 little-endian u32 words, extracted via
    /// u64-wide reads (two words per load) — the word-granular encoders'
    /// entry point, hot enough that per-byte assembly shows up.
    #[must_use]
    pub fn to_u32_words(&self) -> [u32; Self::NUM_U32_WORDS] {
        let mut words = [0u32; Self::NUM_U32_WORDS];
        for i in 0..Self::NUM_U64_WORDS {
            let pair = self.u64_word(i);
            words[i * 2] = pair as u32;
            words[i * 2 + 1] = (pair >> 32) as u32;
        }
        words
    }

    /// `true` if every byte of the line is zero. Scans u64-wide.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        (0..Self::NUM_U64_WORDS).all(|i| self.u64_word(i) == 0)
    }
}

impl Default for CacheLine {
    fn default() -> CacheLine {
        CacheLine::zeroed()
    }
}

impl fmt::Debug for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full 128-byte dumps drown test output; show the first words.
        write!(
            f,
            "CacheLine({:#010x} {:#010x} {:#010x} {:#010x} …)",
            self.u32_word(0),
            self.u32_word(1),
            self.u32_word(2),
            self.u32_word(3)
        )
    }
}

impl From<[u8; CacheLine::SIZE_BYTES]> for CacheLine {
    fn from(bytes: [u8; CacheLine::SIZE_BYTES]) -> CacheLine {
        CacheLine::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for CacheLine {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_views_agree() {
        let mut bytes = [0u8; CacheLine::SIZE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        assert_eq!(line.u32_word(0), u32::from_le_bytes([0, 1, 2, 3]));
        assert_eq!(
            line.u64_word(1),
            u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15])
        );
        assert_eq!(line.u16_word(2), u16::from_le_bytes([4, 5]));
    }

    #[test]
    fn from_words_round_trip() {
        let words: Vec<u32> = (0..32).map(|i| i * 0x01010101).collect();
        let line = CacheLine::from_u32_words(&words);
        let back: Vec<u32> = line.u32_words().collect();
        assert_eq!(words, back);

        let words64: Vec<u64> = (0..16).map(|i| (i as u64) << 32 | 0xdead).collect();
        let line = CacheLine::from_u64_words(&words64);
        let back64: Vec<u64> = line.u64_words().collect();
        assert_eq!(words64, back64);
    }

    #[test]
    fn zero_detection() {
        assert!(CacheLine::zeroed().is_zero());
        // Every byte position must be seen by the u64-wide scan.
        for i in 0..CacheLine::SIZE_BYTES {
            let mut line = CacheLine::zeroed();
            line.as_bytes_mut()[i] = 1;
            assert!(!line.is_zero(), "byte {i} missed");
        }
    }

    #[test]
    fn to_u32_words_matches_iterator() {
        let mut bytes = [0u8; CacheLine::SIZE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let line = CacheLine::from_bytes(bytes);
        let arr = line.to_u32_words();
        let via_iter: Vec<u32> = line.u32_words().collect();
        assert_eq!(arr.to_vec(), via_iter);
    }

    #[test]
    #[should_panic(expected = "exactly 32")]
    fn from_u32_words_wrong_len_panics() {
        let _ = CacheLine::from_u32_words(&[0; 8]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", CacheLine::zeroed()).is_empty());
    }
}
