//! Huffman-based Statistical Compression (SC) — Arelakis & Stenström,
//! ISCA 2014, with the LATTE-CC paper's GPU-specific revision (§IV-C2).
//!
//! SC exploits *temporal* value locality: frequent 32-bit values are
//! replaced with short Huffman codes. Code generation needs a trained
//! value-frequency table (VFT): a 1024-entry table with 12-bit saturating
//! counters, built by sampling inserted lines. The LATTE-CC revision
//! retrains the VFT each period (the controller drives retraining; this
//! module provides the mechanics):
//!
//! 1. sample lines into a [`VftBuilder`] during the training window,
//! 2. freeze it into an immutable [`ScCodebook`] (canonical Huffman codes
//!    plus an escape code for untabled values),
//! 3. compress with [`Sc`] until the next retraining point.

// Order-independence audit (2026-08): the three HashMaps here (VFT
// counts, codebook encode/decode tables) are keyed lookups; the one
// place a map is iterated — `ScCodebook::from_counts` — immediately
// sorts by symbol ("deterministic tie-breaking independent of HashMap
// order" below), so canonical code assignment cannot see map order.
// latte-lint: allow-file(D3, reason = "keyed lookups; the single iteration site sorts by symbol before use")

use crate::bitstream::{BitReader, BitWriter};
use crate::error::DecodeError;
use crate::line::CacheLine;
use crate::{stats, Compression, Compressor, Cycles};
use std::collections::HashMap;

/// Capacity of the value-frequency table (§IV-C2).
pub const VFT_ENTRIES: usize = 1024;

/// Saturation limit of the VFT's 12-bit counters.
pub const VFT_COUNTER_MAX: u32 = (1 << 12) - 1;

/// Longest permitted Huffman code. The builder degrades counter resolution
/// until all codes fit, which bounds decompressor pipeline depth.
const MAX_CODE_LEN: u32 = 27;

/// Accumulates value frequencies from sampled cache lines.
///
/// # Example
///
/// ```
/// use latte_compress::{CacheLine, VftBuilder};
///
/// let mut vft = VftBuilder::new();
/// vft.observe_line(&CacheLine::from_u32_words(&[42; 32]));
/// let codebook = vft.build();
/// assert!(codebook.code_len(42).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VftBuilder {
    counts: HashMap<u32, u32>,
    /// Samples that arrived while the table was full (statistics only).
    overflowed: u64,
}

impl VftBuilder {
    /// Creates an empty VFT.
    #[must_use]
    pub fn new() -> VftBuilder {
        VftBuilder::default()
    }

    /// Records one 32-bit value. New values are dropped once the table
    /// holds [`VFT_ENTRIES`] distinct entries (a hardware VFT has fixed
    /// capacity); existing counters saturate at [`VFT_COUNTER_MAX`].
    pub fn observe(&mut self, value: u32) {
        if let Some(c) = self.counts.get_mut(&value) {
            *c = (*c + 1).min(VFT_COUNTER_MAX);
        } else if self.counts.len() < VFT_ENTRIES {
            self.counts.insert(value, 1);
        } else {
            self.overflowed += 1;
        }
    }

    /// Records every 32-bit word of a line.
    pub fn observe_line(&mut self, line: &CacheLine) {
        for w in line.u32_words() {
            self.observe(w);
        }
    }

    /// Number of distinct values currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no values have been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of samples dropped because the table was full.
    #[must_use]
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Freezes the table into a canonical-Huffman codebook.
    #[must_use]
    pub fn build(&self) -> ScCodebook {
        ScCodebook::from_counts(&self.counts)
    }

    /// Iterates the observed `(value, count)` pairs.
    ///
    /// Order is unspecified; callers must fold order-independently or
    /// sort (codebook construction sorts by `(count desc, value)`).
    pub fn iter_counts(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        // latte-lint: allow(T1, reason = "documented unordered iterator; the only consumers sort by (count desc, value) or fold commutatively")
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Estimated cost, in bits, of encoding this table's sample stream
    /// with `codebook` — used to judge whether a retrained codebook is
    /// actually better than the incumbent.
    #[must_use]
    pub fn estimated_cost_bits(&self, codebook: &ScCodebook) -> u64 {
        self.counts
            // latte-lint: allow(T1, reason = "order-independent fold: a sum of per-entry costs is the same under any iteration order")
            .iter()
            .map(|(&v, &c)| u64::from(c) * u64::from(codebook.cost_bits(v)))
            .sum()
    }
}

/// Symbols of the SC alphabet: tabled values plus the escape marker that
/// prefixes a raw 32-bit literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Symbol {
    Value(u32),
    Escape,
}

/// An immutable canonical-Huffman codebook (the compressor's code-word
/// table and the decompressor's lookup table, DeLUT, of §IV-C2).
#[derive(Debug, Clone, Default)]
pub struct ScCodebook {
    /// value -> code length in bits.
    encode: HashMap<u32, (u32, u32)>, // value -> (code, len)
    escape: (u32, u32),
    /// (len, code) -> symbol, for decoding.
    decode: HashMap<(u32, u32), Symbol>,
    max_len: u32,
}

impl ScCodebook {
    /// Builds a codebook from raw value counts. An escape symbol is always
    /// included so any line remains encodable.
    #[must_use]
    pub fn from_counts(counts: &HashMap<u32, u32>) -> ScCodebook {
        let mut weights: Vec<(Symbol, u64)> = counts
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&v, &c)| (Symbol::Value(v), u64::from(c)))
            .collect();
        // Deterministic tie-breaking independent of HashMap order.
        weights.sort_unstable_by_key(|&(s, _)| s);
        // The escape symbol must stay cheap enough to be usable but should
        // not distort the tabled codes; weight 1 puts it at the bottom.
        weights.push((Symbol::Escape, 1));

        let mut lengths = huffman_code_lengths(&weights);
        while lengths.iter().any(|&(_, l)| l > MAX_CODE_LEN) {
            // Degrade counter resolution until the tree flattens enough.
            for w in weights.iter_mut() {
                w.1 = (w.1 / 2).max(1);
            }
            lengths = huffman_code_lengths(&weights);
        }

        // Canonical code assignment: sort by (length, symbol).
        lengths.sort_unstable_by_key(|&(s, l)| (l, s));
        let mut encode = HashMap::new();
        let mut decode = HashMap::new();
        let mut escape = (0, 0);
        let mut code = 0u32;
        let mut prev_len = 0u32;
        let mut max_len = 0;
        for &(sym, len) in &lengths {
            code <<= len - prev_len;
            prev_len = len;
            max_len = max_len.max(len);
            match sym {
                Symbol::Value(v) => {
                    encode.insert(v, (code, len));
                }
                Symbol::Escape => escape = (code, len),
            }
            decode.insert((len, code), sym);
            code += 1;
        }
        ScCodebook {
            encode,
            escape,
            decode,
            max_len,
        }
    }

    /// Code length in bits for a tabled value, or `None` if the value
    /// escapes.
    #[must_use]
    pub fn code_len(&self, value: u32) -> Option<u32> {
        self.encode.get(&value).map(|&(_, l)| l)
    }

    /// Cost in bits of encoding `value` (tabled code or escape + literal).
    #[must_use]
    pub fn cost_bits(&self, value: u32) -> u32 {
        self.code_len(value).unwrap_or(self.escape.1 + 32)
    }

    /// Number of tabled values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.encode.len()
    }

    /// `true` if both codebooks table exactly the same values. Used to
    /// detect no-op retrains: when the dictionary is unchanged, lines
    /// compressed under the old codebook would re-encode to the same
    /// values, so stale-line invalidation can be skipped.
    #[must_use]
    pub fn same_dictionary(&self, other: &ScCodebook) -> bool {
        self.encode.len() == other.encode.len()
            // latte-lint: allow(T1, reason = "order-independent predicate: all() over set membership is the same under any iteration order")
            && self.encode.keys().all(|k| other.encode.contains_key(k))
    }

    /// `true` when no values are tabled (everything escapes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.encode.is_empty()
    }

    /// Encodes a line against this codebook (the payload path; size
    /// probes go through [`Compressor::compress`] on [`Sc`], which sums
    /// code lengths without emitting bits).
    #[must_use]
    pub fn encode_line(&self, line: &CacheLine) -> BitWriter {
        let t = stats::start();
        let mut w = BitWriter::new();
        for word in line.u32_words() {
            match self.encode.get(&word) {
                Some(&(code, len)) => w.write_bits(u64::from(code), len),
                None => {
                    let (code, len) = self.escape;
                    w.write_bits(u64::from(code), len);
                    w.write_bits(u64::from(word), 32);
                }
            }
        }
        stats::record_encode(t);
        w
    }

    /// Decodes a line produced by [`ScCodebook::encode_line`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bitstream is truncated or was
    /// produced by a different codebook (a code exceeds the maximum
    /// length without matching any table entry).
    pub fn decode_line(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let t = stats::start();
        let result = self.decode_line_impl(w);
        stats::record_decode(t);
        result
    }

    fn decode_line_impl(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        let mut words = [0u32; CacheLine::NUM_U32_WORDS];
        for slot in &mut words {
            let mut code = 0u32;
            let mut len = 0u32;
            let sym = loop {
                code = (code << 1) | u32::from(r.try_read_bit()?);
                len += 1;
                if len > self.max_len {
                    return Err(DecodeError::InvalidCode {
                        algo: "SC",
                        detail: "code exceeds codebook maximum length",
                    });
                }
                if let Some(&sym) = self.decode.get(&(len, code)) {
                    break sym;
                }
            };
            *slot = match sym {
                Symbol::Value(v) => v,
                Symbol::Escape => r.try_read_bits(32)? as u32,
            };
        }
        Ok(CacheLine::from_u32_words(&words))
    }
}

/// Computes Huffman code lengths for `weights` (symbol, weight) pairs.
// The heap pops below are guarded by the surrounding `len() > 1` checks;
// this is codebook construction, not a decode path.
#[allow(clippy::expect_used)]
fn huffman_code_lengths(weights: &[(Symbol, u64)]) -> Vec<(Symbol, u32)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if weights.is_empty() {
        return Vec::new();
    }
    if weights.len() == 1 {
        return vec![(weights[0].0, 1)];
    }

    // Arena of tree nodes: leaves first, internal nodes appended.
    // children[i] is None for leaves.
    let mut children: Vec<Option<(usize, usize)>> = vec![None; weights.len()];
    // Min-heap over (weight, node index); the index doubles as a
    // deterministic tie-breaker.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = weights
        .iter()
        .enumerate()
        .map(|(i, &(_, w))| Reverse((w, i)))
        .collect();
    // Two pops per iteration are guaranteed by the len > 1 guard, and
    // the loop leaves exactly one node — the root — behind; written
    // let-else so no panicking path exists even if that reasoning rots.
    while heap.len() > 1 {
        let (Some(Reverse((w1, n1))), Some(Reverse((w2, n2)))) = (heap.pop(), heap.pop()) else {
            break;
        };
        let idx = children.len();
        children.push(Some((n1, n2)));
        heap.push(Reverse((w1 + w2, idx)));
    }
    let root = match heap.pop() {
        Some(Reverse((_, root))) => root,
        None => return Vec::new(), // unreachable: weights is non-empty
    };

    let mut lengths = vec![0u32; weights.len()];
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match children[node] {
            None => lengths[node] = depth.max(1),
            Some((l, r)) => {
                stack.push((l, depth + 1));
                stack.push((r, depth + 1));
            }
        }
    }
    weights
        .iter()
        .zip(lengths)
        .map(|(&(s, _), l)| (s, l))
        .collect()
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// Manual Ord: Values sort by value, Escape sorts last.
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Symbol::Value(a), Symbol::Value(b)) => a.cmp(b),
            (Symbol::Value(_), Symbol::Escape) => std::cmp::Ordering::Less,
            (Symbol::Escape, Symbol::Value(_)) => std::cmp::Ordering::Greater,
            (Symbol::Escape, Symbol::Escape) => std::cmp::Ordering::Equal,
        }
    }
}

/// The SC compressor: an immutable codebook plus the Table I cost model.
///
/// # Example
///
/// ```
/// use latte_compress::{CacheLine, Compressor, Sc, VftBuilder};
///
/// let hot = CacheLine::from_u32_words(&(0..32).map(|i| i % 4).collect::<Vec<_>>());
/// let mut vft = VftBuilder::new();
/// for _ in 0..100 {
///     vft.observe_line(&hot);
/// }
/// let sc = Sc::new(vft.build());
/// assert!(sc.compress(&hot).size_bytes() <= 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sc {
    codebook: ScCodebook,
}

impl Sc {
    /// Creates an SC compressor over a trained codebook.
    #[must_use]
    pub fn new(codebook: ScCodebook) -> Sc {
        Sc { codebook }
    }

    /// An SC compressor with an empty codebook: every word escapes, so
    /// every line stays uncompressed. Used as the state before the first
    /// training period completes.
    #[must_use]
    pub fn untrained() -> Sc {
        Sc::default()
    }

    /// The underlying codebook.
    #[must_use]
    pub fn codebook(&self) -> &ScCodebook {
        &self.codebook
    }

    /// Replaces the codebook at a retraining boundary.
    pub fn set_codebook(&mut self, codebook: ScCodebook) {
        self.codebook = codebook;
    }
}

impl Compressor for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn compress(&self, line: &CacheLine) -> Compression {
        // Size-only probe: sums code lengths; never emits a bit.
        let t = stats::start();
        let bits: u64 = line.u32_words().map(|w| u64::from(self.codebook.cost_bits(w))).sum();
        stats::record_probe(t);
        Compression::new((bits as usize).div_ceil(8))
    }

    fn decompression_latency(&self) -> Cycles {
        14
    }

    fn compression_latency(&self) -> Cycles {
        6
    }

    fn compression_energy_nj(&self) -> f64 {
        0.42
    }

    fn decompression_energy_nj(&self) -> f64 {
        0.336
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(lines: &[CacheLine]) -> ScCodebook {
        let mut vft = VftBuilder::new();
        for l in lines {
            vft.observe_line(l);
        }
        vft.build()
    }

    #[test]
    fn hot_values_get_short_codes() {
        let hot = CacheLine::from_u32_words(&vec![7u32; 32]);
        let cold = CacheLine::from_u32_words(&(100..132).collect::<Vec<_>>());
        let mut lines = vec![hot; 50];
        lines.push(cold);
        let cb = train(&lines);
        let hot_len = cb.code_len(7).expect("hot value tabled");
        let cold_len = cb.code_len(100).expect("cold value tabled");
        assert!(hot_len < cold_len, "{hot_len} vs {cold_len}");
    }

    #[test]
    fn encode_decode_round_trip_tabled() {
        let line = CacheLine::from_u32_words(&(0..32).map(|i| i % 8).collect::<Vec<_>>());
        let cb = train(&[line]);
        let w = cb.encode_line(&line);
        assert_eq!(cb.decode_line(&w), Ok(line));
    }

    #[test]
    fn foreign_codebook_stream_never_panics_or_aliases() {
        // Encode under one codebook, decode under a disjoint one: either a
        // detected error or a (wrong) well-formed line — never a panic,
        // never the original data by accident.
        let line = CacheLine::from_u32_words(&vec![7u32; 32]);
        let a = train(&[line]);
        let b = train(&[CacheLine::from_u32_words(&vec![0xdead_beefu32; 32])]);
        let w = a.encode_line(&line);
        assert_ne!(b.decode_line(&w), Ok(line));
    }

    #[test]
    fn encode_decode_round_trip_with_escapes() {
        let trained = CacheLine::from_u32_words(&vec![42u32; 32]);
        let cb = train(&[trained]);
        // A line full of values the codebook never saw.
        let unseen = CacheLine::from_u32_words(&(0..32).map(|i| 0xdead_0000 + i).collect::<Vec<_>>());
        let w = cb.encode_line(&unseen);
        assert_eq!(cb.decode_line(&w), Ok(unseen));
    }

    #[test]
    fn untrained_sc_never_compresses() {
        let sc = Sc::untrained();
        let line = CacheLine::from_u32_words(&vec![1u32; 32]);
        assert!(!sc.compress(&line).is_compressed());
    }

    #[test]
    fn trained_sc_beats_bdi_on_temporal_locality() {
        use crate::bdi::Bdi;
        // FP-like values: few distinct bit patterns, high per-word variance.
        let values = [
            f32::to_bits(3.25),
            f32::to_bits(-1.5e10),
            f32::to_bits(0.001),
            f32::to_bits(7.75e-20),
        ];
        let words: Vec<u32> = (0..32).map(|i| values[i % 4]).collect();
        let line = CacheLine::from_u32_words(&words);
        let mut vft = VftBuilder::new();
        for _ in 0..20 {
            vft.observe_line(&line);
        }
        let sc = Sc::new(vft.build());
        let sc_size = sc.compress(&line).size_bytes();
        let bdi_size = Bdi::new().compress(&line).size_bytes();
        assert!(
            sc_size < bdi_size,
            "SC ({sc_size}) should beat BDI ({bdi_size}) on temporal locality"
        );
    }

    #[test]
    fn vft_capacity_is_bounded() {
        let mut vft = VftBuilder::new();
        for v in 0..(VFT_ENTRIES as u32 * 2) {
            vft.observe(v);
        }
        assert_eq!(vft.len(), VFT_ENTRIES);
        assert_eq!(vft.overflowed(), VFT_ENTRIES as u64);
    }

    #[test]
    fn vft_counters_saturate() {
        let mut vft = VftBuilder::new();
        for _ in 0..(VFT_COUNTER_MAX + 100) {
            vft.observe(9);
        }
        let cb = vft.build();
        assert!(cb.code_len(9).is_some());
    }

    #[test]
    fn codebook_codes_are_prefix_free() {
        let mut vft = VftBuilder::new();
        for i in 0..200u32 {
            for _ in 0..(i % 17 + 1) {
                vft.observe(i * 3);
            }
        }
        let cb = vft.build();
        let mut codes: Vec<(u32, u32)> = cb.encode.values().copied().collect();
        codes.push(cb.escape);
        for (i, &(c1, l1)) in codes.iter().enumerate() {
            for &(c2, l2) in &codes[i + 1..] {
                if l1 == l2 {
                    assert_ne!(c1, c2, "duplicate code of length {l1}");
                } else {
                    let (short, slen, long, llen) =
                        if l1 < l2 { (c1, l1, c2, l2) } else { (c2, l2, c1, l1) };
                    assert_ne!(
                        long >> (llen - slen),
                        short,
                        "code {short:#b}/{slen} is a prefix of {long:#b}/{llen}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_codebooks() {
        // HashMap iteration order must not leak into code assignment.
        let build = || {
            let mut vft = VftBuilder::new();
            for i in 0..100u32 {
                for _ in 0..=(i % 5) {
                    vft.observe(i.wrapping_mul(0x9e37_79b9));
                }
            }
            vft.build()
        };
        let a = build();
        let b = build();
        for i in 0..100u32 {
            let v = i.wrapping_mul(0x9e37_79b9);
            assert_eq!(a.encode.get(&v), b.encode.get(&v));
        }
    }

    #[test]
    fn empty_codebook_contains_only_escape() {
        let cb = ScCodebook::from_counts(&HashMap::new());
        assert!(cb.is_empty());
        assert_eq!(cb.cost_bits(5), cb.escape.1 + 32);
        // Even an empty codebook round-trips via escapes.
        let line = CacheLine::from_u32_words(&(0..32).collect::<Vec<_>>());
        assert_eq!(cb.decode_line(&cb.encode_line(&line)), Ok(line));
    }
}
