//! Bit-Plane Compression (BPC) — Kim et al., ISCA 2016.
//!
//! BPC targets homogeneously-typed data arrays (the common case for GPU
//! memory). A line is viewed as 32 32-bit words; consecutive words are
//! delta-encoded (31 deltas of 33 bits), the delta array is transposed into
//! 33 bit-planes of 31 bits (Delta-BitPlane, DBP), and adjacent planes are
//! XORed (DBX). For regular data (constant strides, shared exponents, low
//! bit variance) almost every DBX plane collapses to zero or near-zero and
//! is coded in a handful of bits.
//!
//! The paper's Table I lists BPC with an 11-cycle decompression latency and
//! compression ratios comparable to SC, making it the alternative
//! high-capacity mode studied in §V-E (Fig 18).

use crate::bitstream::{BitCounter, BitReader, BitSink, BitWriter};
use crate::error::DecodeError;
use crate::line::CacheLine;
use crate::{stats, Compression, Compressor, Cycles};

const NUM_DELTAS: usize = CacheLine::NUM_U32_WORDS - 1; // 31
const NUM_PLANES: usize = 33; // 33-bit signed deltas
const PLANE_MASK: u32 = (1 << NUM_DELTAS) - 1;

/// The BPC compressor.
///
/// # Example
///
/// ```
/// use latte_compress::{Bpc, CacheLine, Compressor};
///
/// // A constant-stride index array: all deltas equal, DBX almost all zero.
/// let words: Vec<u32> = (0..32).map(|i| 0x4000_0000 + i * 4).collect();
/// let line = CacheLine::from_u32_words(&words);
/// assert!(Bpc::new().compress(&line).size_bytes() <= 16);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bpc {
    _private: (),
}

impl Bpc {
    /// Creates a BPC compressor.
    #[must_use]
    pub fn new() -> Bpc {
        Bpc::default()
    }

    /// Encodes a line into a BPC bitstream (the payload path; the
    /// simulator's size probes use [`Compressor::probe`] instead).
    #[must_use]
    pub fn encode(&self, line: &CacheLine) -> BitWriter {
        let t = stats::start();
        let mut w = BitWriter::new();
        self.encode_into(line, &mut w);
        stats::record_encode(t);
        w
    }

    /// Encodes `line` into any [`BitSink`]. This is the reference
    /// encoder: it materialises the DBP/DBX transforms plane by plane.
    /// The size-only hot path is [`Compressor::probe`], which computes
    /// the identical bit count via a word-wide bit-matrix transpose
    /// without the per-bit plane loop; the property suite pins the two
    /// against each other.
    pub fn encode_into<S: BitSink>(&self, line: &CacheLine, w: &mut S) {
        let words = line.to_u32_words();
        encode_base(w, words[0]);

        let dbp = to_bit_planes(&words);
        // DBX planes, iterated from the sign plane (32) down to plane 0.
        // dbx[b] = dbp[b] ^ dbp[b+1]; the topmost plane is sent as-is.
        let mut b = NUM_PLANES as isize - 1;
        while b >= 0 {
            let (dbx, cur_dbp) = dbx_at(&dbp, b as usize);
            if dbx == 0 {
                // Count the zero run (including this plane).
                let mut run = 1usize;
                while b - (run as isize) >= 0 {
                    let (next_dbx, _) = dbx_at(&dbp, (b - run as isize) as usize);
                    if next_dbx != 0 || run == NUM_PLANES {
                        break;
                    }
                    run += 1;
                }
                if run >= 2 {
                    w.write_bits(0b01, 2);
                    w.write_bits((run - 2) as u64, 6);
                } else {
                    w.write_bits(0b001, 3);
                }
                b -= run as isize;
                continue;
            }
            if dbx == PLANE_MASK {
                w.write_bits(0b00000, 5);
            } else if cur_dbp == 0 {
                w.write_bits(0b00001, 5);
            } else if let Some(pos) = two_consecutive_ones(dbx) {
                w.write_bits(0b00010, 5);
                w.write_bits(pos as u64, 5);
            } else if dbx.count_ones() == 1 {
                w.write_bits(0b00011, 5);
                w.write_bits(u64::from(dbx.trailing_zeros()), 5);
            } else {
                w.write_bit(true);
                w.write_bits(u64::from(dbx), NUM_DELTAS as u32);
            }
            b -= 1;
        }
    }

    /// Exact encoded size of `line` in bits, computed without touching a
    /// [`BitSink`] or materialising the DBP planes.
    ///
    /// Folding the DBP→DBX XOR into each delta — `e_j = d_j ^ (d_j >> 1)`
    /// — makes bit `b` of `e_j` exactly bit `j` of DBX plane `b`, so one
    /// 32×32 bit-matrix transpose of the `e` rows yields every DBX plane
    /// at once. Plane classification then needs only the plane values, an
    /// OR-mask of the deltas (`DBP plane b == 0` ⟺ bit `b` clear), and a
    /// nonzero-plane mask for run scanning.
    fn probe_size_bits(&self, line: &CacheLine) -> usize {
        let words = line.to_u32_words();
        let mut bits = base_cost_bits(words[0]);

        let mut planes = [0u32; 32]; // rows e_j in, DBX planes 0..=31 out
        let mut sign_plane = 0u32; // DBX plane 32, gathered from e_j bit 32
        let mut or_d = 0u64; // bit b set ⟺ DBP plane b nonzero
        for j in 0..NUM_DELTAS {
            let d = (i64::from(words[j + 1]) - i64::from(words[j])) as u64 & 0x1_ffff_ffff;
            or_d |= d;
            let e = d ^ (d >> 1);
            planes[j] = e as u32;
            sign_plane |= (((e >> 32) & 1) as u32) << j;
        }
        // planes[31] stays 0 (only 31 deltas), so after the transpose
        // every plane keeps bit 31 clear — within PLANE_MASK.
        transpose32(&mut planes);

        let mut nonzero = 0u64;
        for (b, &p) in planes.iter().enumerate() {
            if p != 0 {
                nonzero |= 1 << b;
            }
        }
        if sign_plane != 0 {
            nonzero |= 1 << 32;
        }

        let mut b = NUM_PLANES as isize - 1;
        while b >= 0 {
            let below = nonzero & ((1u64 << (b + 1)) - 1);
            if below >> b == 0 {
                // Zero-DBX run down to the next nonzero plane (or the end).
                let run = if below == 0 {
                    b + 1
                } else {
                    b - (63 - below.leading_zeros() as isize)
                };
                bits += if run >= 2 { 8 } else { 3 };
                b -= run;
                continue;
            }
            let dbx = if b as usize == NUM_PLANES - 1 {
                sign_plane
            } else {
                planes[b as usize]
            };
            // Mirrors the encoder's branch order; equal-cost branches
            // (PLANE_MASK / DBP=0 at 5 bits, two-ones / one-one at 10)
            // collapse into one test each.
            if dbx == PLANE_MASK || (or_d >> b) & 1 == 0 {
                bits += 5;
            } else if two_consecutive_ones(dbx).is_some() || dbx.count_ones() == 1 {
                bits += 10;
            } else {
                bits += 1 + NUM_DELTAS;
            }
            b -= 1;
        }
        bits
    }

    /// Decodes a bitstream produced by [`Bpc::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bitstream is truncated, a zero
    /// run overshoots the plane count, or an unused code word appears.
    pub fn decode(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let t = stats::start();
        let result = self.decode_impl(w);
        stats::record_decode(t);
        result
    }

    fn decode_impl(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        let base = decode_base(&mut r)?;

        let mut dbp = [0u32; NUM_PLANES];
        let mut b = NUM_PLANES as isize - 1;
        let mut prev_dbp = 0u32; // dbp[b + 1]; zero above the top plane
        while b >= 0 {
            if r.try_read_bit()? {
                // '1': raw DBX plane.
                let dbx = r.try_read_bits(NUM_DELTAS as u32)? as u32;
                prev_dbp ^= dbx;
                dbp[b as usize] = prev_dbp;
                b -= 1;
                continue;
            }
            if r.try_read_bit()? {
                // '01': zero-DBX run.
                let run = r.try_read_bits(6)? as isize + 2;
                if run > b + 1 {
                    return Err(DecodeError::LengthMismatch {
                        algo: "BPC",
                        expected: (b + 1) as usize,
                        actual: run as usize,
                    });
                }
                for i in 0..run {
                    // dbx == 0 means dbp[b] == dbp[b+1].
                    dbp[(b - i) as usize] = prev_dbp;
                }
                b -= run;
                continue;
            }
            if r.try_read_bit()? {
                // '001': single zero-DBX plane.
                dbp[b as usize] = prev_dbp;
                b -= 1;
                continue;
            }
            // '000xx': one of the four 5-bit codes.
            let dbx = match r.try_read_bits(2)? {
                0b00 => PLANE_MASK,
                0b01 => {
                    // DBP == 0: dbx must equal prev_dbp, and the encoder
                    // never uses this code when the resulting DBX is zero.
                    if prev_dbp == 0 {
                        return Err(DecodeError::InvalidCode {
                            algo: "BPC",
                            detail: "DBP=0 code with zero previous plane",
                        });
                    }
                    prev_dbp
                }
                0b10 => {
                    let pos = r.try_read_bits(5)? as u32;
                    0b11 << pos
                }
                0b11 => 1 << (r.try_read_bits(5)? as u32),
                _ => unreachable!("2-bit code"),
            };
            prev_dbp ^= dbx;
            dbp[b as usize] = prev_dbp;
            b -= 1;
        }

        Ok(CacheLine::from_u32_words(&from_bit_planes(base, &dbp)))
    }
}

/// Transposes the 31 word-deltas into 33 bit-planes of 31 bits each.
fn to_bit_planes(words: &[u32]) -> [u32; NUM_PLANES] {
    let mut dbp = [0u32; NUM_PLANES];
    for j in 0..NUM_DELTAS {
        let delta = i64::from(words[j + 1]) - i64::from(words[j]);
        let delta33 = (delta as u64) & 0x1_ffff_ffff;
        for (b, plane) in dbp.iter_mut().enumerate() {
            if (delta33 >> b) & 1 == 1 {
                *plane |= 1 << j;
            }
        }
    }
    dbp
}

/// Inverse of [`to_bit_planes`], rebuilding the words from base + planes.
fn from_bit_planes(base: u32, dbp: &[u32; NUM_PLANES]) -> [u32; CacheLine::NUM_U32_WORDS] {
    let mut words = [0u32; CacheLine::NUM_U32_WORDS];
    words[0] = base;
    for j in 0..NUM_DELTAS {
        let mut delta33 = 0u64;
        for (b, plane) in dbp.iter().enumerate() {
            if (plane >> j) & 1 == 1 {
                delta33 |= 1 << b;
            }
        }
        // Sign-extend from 33 bits.
        let delta = ((delta33 << 31) as i64) >> 31;
        let prev = i64::from(words[j]);
        words[j + 1] = (prev + delta) as u32;
    }
    words
}

/// Returns `(dbx, dbp)` at plane `b`, where `dbx = dbp[b] ^ dbp[b+1]` and
/// the plane above the sign plane is implicitly zero.
fn dbx_at(dbp: &[u32; NUM_PLANES], b: usize) -> (u32, u32) {
    let above = if b + 1 < NUM_PLANES { dbp[b + 1] } else { 0 };
    (dbp[b] ^ above, dbp[b])
}

/// If `plane` has exactly two set bits and they are adjacent, returns the
/// position of the lower one.
fn two_consecutive_ones(plane: u32) -> Option<u32> {
    if plane.count_ones() == 2 {
        let pos = plane.trailing_zeros();
        if plane == 0b11 << pos {
            return Some(pos);
        }
    }
    None
}

fn encode_base<S: BitSink>(w: &mut S, base: u32) {
    let signed = base as i32;
    if base == 0 {
        w.write_bits(0b000, 3);
    } else if (-8..8).contains(&signed) {
        w.write_bits(0b001, 3);
        w.write_bits(u64::from(base & 0xf), 4);
    } else if (-128..128).contains(&signed) {
        w.write_bits(0b010, 3);
        w.write_bits(u64::from(base & 0xff), 8);
    } else if (-32768..32768).contains(&signed) {
        w.write_bits(0b011, 3);
        w.write_bits(u64::from(base & 0xffff), 16);
    } else {
        w.write_bits(0b111, 3);
        w.write_bits(u64::from(base), 32);
    }
}

fn decode_base(r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
    match r.try_read_bits(3)? {
        0b000 => Ok(0),
        0b001 => Ok(sign_extend32(r.try_read_bits(4)? as u32, 4)),
        0b010 => Ok(sign_extend32(r.try_read_bits(8)? as u32, 8)),
        0b011 => Ok(sign_extend32(r.try_read_bits(16)? as u32, 16)),
        0b111 => Ok(r.try_read_bits(32)? as u32),
        _ => Err(DecodeError::InvalidCode {
            algo: "BPC",
            detail: "unused base prefix",
        }),
    }
}

fn sign_extend32(v: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    ((v << shift) as i32 >> shift) as u32
}

/// Bits [`encode_base`] writes for `base`, without writing them.
fn base_cost_bits(base: u32) -> usize {
    let signed = base as i32;
    if base == 0 {
        3
    } else if (-8..8).contains(&signed) {
        7
    } else if (-128..128).contains(&signed) {
        11
    } else if (-32768..32768).contains(&signed) {
        19
    } else {
        35
    }
}

/// In-place 32×32 bit-matrix transpose (Hacker's Delight §7-3, adapted
/// to LSB-first column numbering): afterwards, bit `j` of word `b`
/// equals bit `b` of input word `j`. Runs in 5 swap stages — O(32·log 32)
/// word operations instead of the 32×32 per-bit gather.
fn transpose32(a: &mut [u32; 32]) {
    let mut j = 16usize;
    let mut m = 0x0000_ffffu32;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

impl Compressor for Bpc {
    fn name(&self) -> &'static str {
        "BPC"
    }

    fn compress(&self, line: &CacheLine) -> Compression {
        // Reference size path: count bits through the real encoder.
        let t = stats::start();
        let mut c = BitCounter::new();
        self.encode_into(line, &mut c);
        stats::record_probe(t);
        Compression::new(c.byte_len())
    }

    fn probe(&self, line: &CacheLine) -> Compression {
        let t = stats::start();
        let bits = self.probe_size_bits(line);
        stats::record_probe(t);
        Compression::new(bits.div_ceil(8))
    }

    fn probe_batch(&self, lines: &[CacheLine], out: &mut Vec<Compression>) {
        // One dispatch and one timing record for the whole burst.
        let t = stats::start();
        out.reserve(lines.len());
        for line in lines {
            out.push(Compression::new(self.probe_size_bits(line).div_ceil(8)));
        }
        stats::record_probe(t);
    }

    fn decompression_latency(&self) -> Cycles {
        11
    }

    fn compression_latency(&self) -> Cycles {
        11
    }

    fn compression_energy_nj(&self) -> f64 {
        0.36
    }

    fn decompression_energy_nj(&self) -> f64 {
        0.27
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &CacheLine) -> usize {
        let bpc = Bpc::new();
        let w = bpc.encode(line);
        assert_eq!(bpc.decode(&w).as_ref(), Ok(line));
        // The mask-based probe must agree bit-for-bit with the stream.
        assert_eq!(bpc.probe_size_bits(line), w.bit_len());
        assert_eq!(bpc.probe(line), bpc.compress(line));
        w.byte_len()
    }

    #[test]
    fn transpose32_matches_reference_gather() {
        let mut a = [0u32; 32];
        let mut state = 0x1234_5678u32;
        for row in a.iter_mut() {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *row = state;
        }
        let orig = a;
        transpose32(&mut a);
        for b in 0..32 {
            for j in 0..32 {
                assert_eq!(
                    (a[b] >> j) & 1,
                    (orig[j] >> b) & 1,
                    "plane {b} bit {j}"
                );
            }
        }
        // Transposing twice is the identity.
        transpose32(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn base_cost_matches_encoder() {
        for base in [
            0u32, 1, 7, 8, 0xffff_fff8, 0xffff_fff7, 127, 128, 0xffff_ff80,
            32767, 32768, 0xffff_8000, 0xdead_beef, u32::MAX,
        ] {
            let mut c = BitCounter::new();
            encode_base(&mut c, base);
            assert_eq!(base_cost_bits(base), c.bit_len(), "base {base:#x}");
        }
    }

    #[test]
    fn probe_parity_on_adversarial_planes() {
        // Lines engineered to hit each plane-classification branch: all
        // ones, DBP=0 transitions, adjacent pairs, single bits, raw.
        let cases: Vec<Vec<u32>> = vec![
            (0..32).map(|i| i * 2).collect(), // constant stride
            (0..32).map(|i| if i % 2 == 0 { 0 } else { u32::MAX }).collect(), // all-ones deltas
            (0..32).map(|i| 1u32 << (i % 31)).collect(), // walking bit
            (0..32).map(|i| 3u32 << (i % 30)).collect(), // walking pair
            (0..32).map(|i| 0x9e37_79b9u32.wrapping_mul(i)).collect(), // noisy
            vec![0x8000_0000; 32], // sign-plane stress
            (0..32).map(|i| (i as i32 - 16) as u32).collect(), // negative deltas
        ];
        for words in cases {
            round_trip(&CacheLine::from_u32_words(&words));
        }
    }

    #[test]
    fn batch_probe_matches_per_line_loop() {
        let bpc = Bpc::new();
        let lines: Vec<CacheLine> = (0..48u32)
            .map(|i| {
                let words: Vec<u32> = (0..32)
                    .map(|j| match i % 3 {
                        0 => 0x1000 + j * i,
                        1 => f32::to_bits(1.5 + (j as f32) * 0.01 * i as f32),
                        _ => 0x9e37_79b9u32.wrapping_mul(i * 37 + j),
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            })
            .collect();
        let mut batched = Vec::new();
        bpc.probe_batch(&lines, &mut batched);
        let looped: Vec<Compression> = lines.iter().map(|l| bpc.probe(l)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn unused_base_prefix_is_an_error() {
        for prefix in [0b100u64, 0b101, 0b110] {
            let mut w = BitWriter::new();
            w.write_bits(prefix, 3);
            assert!(matches!(
                Bpc::new().decode(&w),
                Err(DecodeError::InvalidCode { algo: "BPC", .. })
            ));
        }
    }

    #[test]
    fn overshooting_zero_run_is_an_error() {
        // A zero base, one single zero plane, then a 64-plane run: only
        // 32 planes remain, so the run overshoots.
        let mut w = BitWriter::new();
        w.write_bits(0b000, 3);
        w.write_bits(0b001, 3);
        w.write_bits(0b01, 2);
        w.write_bits(62, 6); // run = 64
        assert!(matches!(
            Bpc::new().decode(&w),
            Err(DecodeError::LengthMismatch { algo: "BPC", .. })
        ));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bpc = Bpc::new();
        let words: Vec<u32> = (0..32u32)
            .map(|i| 0x9e37_79b9u32.wrapping_mul(i ^ 0x55aa))
            .collect();
        let w = bpc.encode(&CacheLine::from_u32_words(&words));
        let mut cut = BitWriter::new();
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        for _ in 0..w.bit_len() / 3 {
            cut.write_bit(r.read_bit());
        }
        assert!(bpc.decode(&cut).is_err());
    }

    #[test]
    fn zero_line() {
        // Base 3 bits + one full zero-DBX run (2 + 6 bits) = 11 bits.
        assert_eq!(round_trip(&CacheLine::zeroed()), 2);
    }

    #[test]
    fn constant_stride_indices() {
        let words: Vec<u32> = (0..32).map(|i| 0x4000_0000 + i * 4).collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size <= 16, "constant stride should be tiny, got {size}");
    }

    #[test]
    fn repeated_word() {
        let words = vec![0xdead_beefu32; 32];
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size <= 8, "zero deltas, got {size}");
    }

    #[test]
    fn low_variance_integers() {
        let words: Vec<u32> = (0..32u32)
            .map(|i| 5000 + (i.wrapping_mul(2654435761u32.wrapping_mul(i)) >> 27))
            .collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size < 64, "small noisy ints compress, got {size}");
    }

    #[test]
    fn shared_exponent_floats() {
        // Floats in [1, 2): same sign+exponent, noisy mantissa. BPC strips
        // the shared top bits; mantissa planes stay raw.
        let words: Vec<u32> = (0..32u32)
            .map(|i| f32::to_bits(1.0 + (i as f32) * 0.013))
            .collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size < CacheLine::SIZE_BYTES, "got {size}");
    }

    #[test]
    fn random_line_round_trips() {
        let words: Vec<u32> = (0..32u32)
            .map(|i| 0x9e37_79b9u32.wrapping_mul(i ^ 0xabcd_1234).rotate_left(i))
            .collect();
        round_trip(&CacheLine::from_u32_words(&words));
    }

    #[test]
    fn negative_deltas() {
        let words: Vec<u32> = (0..32).map(|i| 0x8000_0000u32 - i * 128).collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size < 32, "got {size}");
    }

    #[test]
    fn base_encodings_round_trip() {
        for base in [0u32, 5, 0xffff_fffb, 100, 0xffff_ff00, 30000, 0xdead_beef] {
            let mut words = vec![base; 32];
            words[1] = base.wrapping_add(1);
            round_trip(&CacheLine::from_u32_words(&words));
        }
    }
}
