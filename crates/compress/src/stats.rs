//! Cumulative compressor-operation accounting for the driver's
//! `--timings` report: how much work went into size probes vs full
//! encodes vs decodes, across the whole process.
//!
//! The sim crates must stay wall-clock-free (lint rule D1), so this
//! module never reads a clock itself. Operation *counts* are always
//! accumulated (an atomic add per operation); operation *time* is only
//! accumulated after the driver injects a monotonic nanosecond clock via
//! [`install_clock`] — the bench binary, the workspace's single
//! wall-clock authority, installs one when `--timings` is requested.
//! Nothing here ever feeds back into simulation results.
// latte-lint: shared-boundary-file(reason = "process-wide monotonic op/time counters: commutative atomic adds, read only by the driver's --timings report; no simulated state observes them")

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The injected clock: monotonic nanoseconds since an arbitrary baseline.
static CLOCK: OnceLock<fn() -> u64> = OnceLock::new();

static PROBE_OPS: AtomicU64 = AtomicU64::new(0);
static PROBE_NS: AtomicU64 = AtomicU64::new(0);
static ENCODE_OPS: AtomicU64 = AtomicU64::new(0);
static ENCODE_NS: AtomicU64 = AtomicU64::new(0);
static DECODE_OPS: AtomicU64 = AtomicU64::new(0);
static DECODE_NS: AtomicU64 = AtomicU64::new(0);

/// Injects the process-wide monotonic clock used to time compressor
/// operations. Until a clock is installed only operation counts are
/// tracked. The first installation wins; later calls are ignored.
pub fn install_clock(clock: fn() -> u64) {
    let _ = CLOCK.set(clock);
}

/// A started measurement: the clock reading at operation start, if a
/// clock is installed.
#[derive(Debug, Clone, Copy)]
pub struct Started(Option<u64>);

/// Begins timing one compressor operation.
#[must_use]
pub fn start() -> Started {
    Started(CLOCK.get().map(|clock| clock()))
}

fn finish(t: Started, ops: &AtomicU64, ns: &AtomicU64) {
    ops.fetch_add(1, Ordering::Relaxed);
    if let (Started(Some(t0)), Some(clock)) = (t, CLOCK.get()) {
        ns.fetch_add(clock().saturating_sub(t0), Ordering::Relaxed);
    }
}

/// Records one completed size probe (no payload emission).
pub fn record_probe(t: Started) {
    finish(t, &PROBE_OPS, &PROBE_NS);
}

/// Records one completed full encode (payload bits materialised).
pub fn record_encode(t: Started) {
    finish(t, &ENCODE_OPS, &ENCODE_NS);
}

/// Records one completed decode.
pub fn record_decode(t: Started) {
    finish(t, &DECODE_OPS, &DECODE_NS);
}

/// A point-in-time copy of the process-wide compressor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Size-only probes completed.
    pub probe_ops: u64,
    /// Nanoseconds spent probing (0 until a clock is installed).
    pub probe_ns: u64,
    /// Full encodes completed.
    pub encode_ops: u64,
    /// Nanoseconds spent fully encoding.
    pub encode_ns: u64,
    /// Decodes completed.
    pub decode_ops: u64,
    /// Nanoseconds spent decoding.
    pub decode_ns: u64,
}

impl Snapshot {
    /// Total operations across all three categories.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.probe_ops + self.encode_ops + self.decode_ops
    }
}

/// Reads the current counters.
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        probe_ops: PROBE_OPS.load(Ordering::Relaxed),
        probe_ns: PROBE_NS.load(Ordering::Relaxed),
        encode_ops: ENCODE_OPS.load(Ordering::Relaxed),
        encode_ns: ENCODE_NS.load(Ordering::Relaxed),
        decode_ops: DECODE_OPS.load(Ordering::Relaxed),
        decode_ns: DECODE_NS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_without_a_clock() {
        let before = snapshot();
        record_probe(start());
        record_encode(start());
        record_decode(start());
        let after = snapshot();
        assert!(after.probe_ops >= before.probe_ops + 1);
        assert!(after.encode_ops >= before.encode_ops + 1);
        assert!(after.decode_ops >= before.decode_ops + 1);
        assert!(after.total_ops() >= before.total_ops() + 3);
    }
}
