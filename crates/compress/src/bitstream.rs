//! Minimal MSB-first bit-level I/O used by the variable-length encoders
//! (FPC, C-PACK, BPC, SC) to produce bit-accurate compressed sizes and to
//! support round-trip decoding in tests.

use crate::error::DecodeError;

/// A destination for bit-exact encoder output.
///
/// The variable-length encoders (FPC, BPC, C-PACK) are generic over this
/// trait so the same encoding logic serves two consumers: round-trip
/// paths write real bits into a [`BitWriter`], while the per-line
/// `compress()` hot path — which only needs the compressed *size* —
/// drives a [`BitCounter`] and never allocates.
pub trait BitSink {
    /// Appends the `n` least-significant bits of `value`, most
    /// significant of those bits first.
    fn write_bits(&mut self, value: u64, n: u32);

    /// Appends a single bit.
    fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Total number of bits written so far.
    fn bit_len(&self) -> usize;
}

/// A [`BitSink`] that only counts bits — the allocation-free size probe
/// behind the compressors' hot paths.
///
/// # Example
///
/// ```
/// use latte_compress::{BitCounter, BitSink};
///
/// let mut c = BitCounter::new();
/// c.write_bits(0b101, 3);
/// c.write_bit(true);
/// assert_eq!(c.bit_len(), 4);
/// assert_eq!(c.byte_len(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitCounter {
    bits: usize,
}

impl BitCounter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> BitCounter {
        BitCounter::default()
    }

    /// Number of whole bytes needed to store the counted bits.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bits.div_ceil(8)
    }
}

impl BitSink for BitCounter {
    fn write_bits(&mut self, _value: u64, n: u32) {
        debug_assert!(n <= 64, "cannot write more than 64 bits at once");
        self.bits += n as usize;
    }

    fn bit_len(&self) -> usize {
        self.bits
    }
}

/// An append-only bit buffer (MSB-first within each byte).
///
/// # Example
///
/// ```
/// use latte_compress::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xffff, 16);
/// let mut r = BitReader::new(w.as_slice(), w.bit_len());
/// assert_eq!(r.read_bits(3), 0b101);
/// assert_eq!(r.read_bits(16), 0xffff);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty bit buffer.
    #[must_use]
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the `n` least-significant bits of `value`, most significant
    /// of those bits first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[byte_idx] |= 1 << (7 - (self.bit_len % 8));
            }
            self.bit_len += 1;
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Total number of bits written.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Number of whole bytes needed to store the written bits.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bit_len.div_ceil(8)
    }

    /// The underlying bytes (last byte zero-padded).
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Flips the bit at `bit` (0-based from the stream start), modelling
    /// storage corruption for the fault-injection harness.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= bit_len()`.
    pub fn toggle_bit(&mut self, bit: usize) {
        assert!(bit < self.bit_len, "bit index {bit} out of {}", self.bit_len);
        self.bytes[bit / 8] ^= 1 << (7 - (bit % 8));
    }
}

impl BitSink for BitWriter {
    fn write_bits(&mut self, value: u64, n: u32) {
        BitWriter::write_bits(self, value, n);
    }

    fn bit_len(&self) -> usize {
        BitWriter::bit_len(self)
    }
}

/// Reads bits back out of a buffer produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, of which only the first `bit_len`
    /// bits are valid. When `bit_len` claims more bits than `bytes` can
    /// hold — a truncated or corrupted payload whose recorded length
    /// outlived its storage — the reader trusts the *storage*: reads past
    /// `bytes.len() * 8` surface [`DecodeError::Truncated`] rather than
    /// panicking or silently zero-filling.
    #[must_use]
    pub fn new(bytes: &'a [u8], bit_len: usize) -> BitReader<'a> {
        BitReader {
            bytes,
            bit_len: bit_len.min(bytes.len() * 8),
            pos: 0,
        }
    }

    /// Reads `n` bits (MSB-first), returning them in the low bits of the
    /// result, or [`DecodeError::Truncated`] when fewer than `n` remain.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (a caller bug, not a data-dependent condition).
    pub fn try_read_bits(&mut self, n: u32) -> Result<u64, DecodeError> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.pos + n as usize > self.bit_len {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.bit_len - self.pos,
            });
        }
        let mut out = 0u64;
        for _ in 0..n {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.pos += 1;
        }
        Ok(out)
    }

    /// Reads a single bit, or [`DecodeError::Truncated`] at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the stream is exhausted.
    pub fn try_read_bit(&mut self) -> Result<bool, DecodeError> {
        Ok(self.try_read_bits(1)? == 1)
    }

    /// Reads `n` bits (MSB-first), returning them in the low bits of the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bits remain or `n > 64`. The decode paths
    /// use [`BitReader::try_read_bits`] instead; this panicking variant is
    /// for tests and tooling where truncation is a programming error.
    pub fn read_bits(&mut self, n: u32) -> u64 {
        match self.try_read_bits(n) {
            Ok(v) => v,
            // latte-lint: allow(P1, reason = "documented panicking variant; decode paths use try_read_bits")
            Err(DecodeError::Truncated { needed, remaining }) => panic!(
                "bit reader exhausted: need {needed} bits, {remaining} remain"
            ),
            // latte-lint: allow(P1, reason = "documented panicking variant; decode paths use try_read_bits")
            Err(e) => panic!("bit read failed: {e}"),
        }
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> bool {
        self.read_bits(1) == 1
    }

    /// Number of unread bits.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0, 1);
        w.write_bits(0xdeadbeef, 32);
        w.write_bits(0x3f, 6);
        w.write_bits(u64::MAX, 64);
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        assert_eq!(r.read_bits(1), 1);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.read_bits(32), 0xdeadbeef);
        assert_eq!(r.read_bits(6), 0x3f);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_and_byte_lengths() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0, 5);
        assert_eq!(w.byte_len(), 1);
        w.write_bit(true);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xff, 0);
        assert_eq!(w.bit_len(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn over_read_panics() {
        let w = BitWriter::new();
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        let _ = r.read_bits(1);
    }

    #[test]
    fn try_over_read_is_truncated_error() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        assert_eq!(r.try_read_bits(3), Ok(0b101));
        assert_eq!(
            r.try_read_bits(8),
            Err(DecodeError::Truncated {
                needed: 8,
                remaining: 0
            })
        );
    }

    #[test]
    fn counter_matches_writer_lengths() {
        let mut w = BitWriter::new();
        let mut c = BitCounter::new();
        for sink in [&mut w as &mut dyn BitSink, &mut c as &mut dyn BitSink] {
            sink.write_bits(0b101, 3);
            sink.write_bit(false);
            sink.write_bits(u64::MAX, 64);
        }
        assert_eq!(BitSink::bit_len(&w), c.bit_len());
        assert_eq!(w.byte_len(), c.byte_len());
    }

    #[test]
    fn bit_len_beyond_storage_is_truncated_not_zero_filled() {
        // A payload whose recorded bit length outlived its byte storage
        // (torn write, corrupted metadata) must error, never zero-fill.
        let bytes = [0xffu8; 2];
        let mut r = BitReader::new(&bytes, 100);
        assert_eq!(r.try_read_bits(16), Ok(0xffff));
        assert_eq!(
            r.try_read_bits(8),
            Err(DecodeError::Truncated {
                needed: 8,
                remaining: 0
            })
        );
    }

    #[test]
    fn empty_storage_with_claimed_bits_is_truncated() {
        let mut r = BitReader::new(&[], 64);
        assert_eq!(r.remaining(), 0);
        assert!(matches!(
            r.try_read_bit(),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn toggle_bit_flips_and_restores() {
        let mut w = BitWriter::new();
        w.write_bits(0xdead, 16);
        let before = w.clone();
        w.toggle_bit(5);
        assert_ne!(w, before);
        w.toggle_bit(5);
        assert_eq!(w, before);
    }
}
