//! Typed errors for the decompression paths.
//!
//! Decoders must never panic on malformed input: a corrupted compressed
//! line (bit rot, fault injection, or a simulator bug) surfaces as a
//! [`DecodeError`] that the cache layer turns into a miss and re-fetch,
//! mirroring LATTE-CC's "compression must never hurt the baseline"
//! philosophy for integrity instead of latency.

use std::error::Error;
use std::fmt;

/// Why decoding a compressed cache line failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// The bitstream ended before the decoder finished a line.
    Truncated {
        /// Bits the decoder tried to read.
        needed: u32,
        /// Bits actually remaining in the stream.
        remaining: usize,
    },
    /// A code word appeared that the encoder can never produce.
    InvalidCode {
        /// Algorithm name, e.g. `"BPC"`.
        algo: &'static str,
        /// What was wrong with the code.
        detail: &'static str,
    },
    /// The decoded payload disagrees with the fixed line size.
    LengthMismatch {
        /// Algorithm name.
        algo: &'static str,
        /// Words/blocks the line must contain.
        expected: usize,
        /// Words/blocks the stream produced.
        actual: usize,
    },
    /// Stored compression metadata is internally inconsistent
    /// (e.g. a dictionary index beyond the entries inserted so far).
    CorruptMetadata {
        /// Algorithm name.
        algo: &'static str,
        /// What was inconsistent.
        detail: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => write!(
                f,
                "compressed stream truncated: needed {needed} bits, {remaining} remaining"
            ),
            DecodeError::InvalidCode { algo, detail } => {
                write!(f, "invalid {algo} code word: {detail}")
            }
            DecodeError::LengthMismatch {
                algo,
                expected,
                actual,
            } => write!(
                f,
                "{algo} payload length mismatch: expected {expected} words, got {actual}"
            ),
            DecodeError::CorruptMetadata { algo, detail } => {
                write!(f, "corrupt {algo} metadata: {detail}")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = DecodeError::Truncated {
            needed: 32,
            remaining: 7,
        };
        assert!(e.to_string().contains("truncated"));
        let e = DecodeError::InvalidCode {
            algo: "BPC",
            detail: "unused base prefix",
        };
        assert!(e.to_string().contains("BPC"));
        let e = DecodeError::LengthMismatch {
            algo: "FPC",
            expected: 32,
            actual: 35,
        };
        assert!(e.to_string().contains("32"));
        let e = DecodeError::CorruptMetadata {
            algo: "C-PACK",
            detail: "dictionary index out of range",
        };
        assert!(e.to_string().contains("dictionary"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(DecodeError::Truncated {
            needed: 1,
            remaining: 0,
        });
    }
}
