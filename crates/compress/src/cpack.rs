//! C-PACK dictionary compression with zero-line detection (CPACK-Z) —
//! Chen et al., IEEE TVLSI 2010, extended with the zero-block detector the
//! LATTE-CC paper cites alongside it.
//!
//! C-PACK processes a line as 32-bit words against a small FIFO dictionary
//! seeded per line. Each word is coded as: all-zero, full dictionary match,
//! partial (3- or 2-byte) match with the low bytes spelled out, a
//! zero-prefixed byte, or raw. Full and partial matches exploit *temporal*
//! value locality within and across words of the line.
//!
//! The encoder is staged: [`CpackZ::encode_into`] is generic over
//! [`BitSink`], so the cache's per-fill size probe drives an inline
//! [`BitCounter`](crate::BitCounter) (no payload bits, no allocation —
//! the dictionary is a fixed array) while the payload paths (shadow
//! roundtrip, fault injection, round-trip tests) drive a [`BitWriter`].

use crate::bitstream::{BitCounter, BitReader, BitSink, BitWriter};
use crate::error::DecodeError;
use crate::line::CacheLine;
use crate::{stats, Compression, Compressor, Cycles};

/// Number of dictionary entries (16 x 4-byte words, per the C-PACK paper).
const DICT_ENTRIES: usize = 16;

/// Code words (pattern, code-length-in-bits excluding payload).
mod code {
    /// `00` — word is all zeros.
    pub const ZZZZ: u64 = 0b00;
    /// `01` — no match; 32 raw bits follow.
    pub const XXXX: u64 = 0b01;
    /// `10` — full match; 4-bit dictionary index follows.
    pub const MMMM: u64 = 0b10;
    /// `1100` — upper-2-byte match; 4-bit index + 16 raw bits follow.
    pub const MMXX: u64 = 0b1100;
    /// `1101` — three zero bytes; 8 raw bits follow.
    pub const ZZZX: u64 = 0b1101;
    /// `1110` — upper-3-byte match; 4-bit index + 8 raw bits follow.
    pub const MMMX: u64 = 0b1110;
}

/// The C-PACK+Z compressor.
///
/// # Example
///
/// ```
/// use latte_compress::{CacheLine, Compressor, CpackZ};
///
/// // A line repeating one word compresses via full dictionary matches:
/// // one raw insertion, then 31 six-bit `mmmm` codes.
/// let line = CacheLine::from_u32_words(&[0x12345678; 32]);
/// assert_eq!(CpackZ::new().compress(&line).size_bytes(), 28);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpackZ {
    _private: (),
}

/// The per-line FIFO dictionary. Encode and decode must perform identical
/// updates or round-tripping breaks, so the logic lives in one place.
///
/// Storage is a fixed inline array — seeding a dictionary per line is the
/// innermost loop of every compressibility probe and must not touch the
/// heap.
#[derive(Debug)]
struct Dictionary {
    entries: [u32; DICT_ENTRIES],
    len: usize,
    next: usize,
}

impl Default for Dictionary {
    fn default() -> Dictionary {
        Dictionary {
            entries: [0; DICT_ENTRIES],
            len: 0,
            next: 0,
        }
    }
}

impl Dictionary {
    /// Empties the dictionary for the next line without touching the
    /// entry array (`len` gates every read).
    fn reset(&mut self) {
        self.len = 0;
        self.next = 0;
    }

    fn push(&mut self, word: u32) {
        if self.len < DICT_ENTRIES {
            self.entries[self.len] = word;
            self.len += 1;
        } else {
            self.entries[self.next] = word;
            self.next = (self.next + 1) % DICT_ENTRIES;
        }
    }

    fn full_match(&self, word: u32) -> Option<usize> {
        self.entries[..self.len].iter().position(|&e| e == word)
    }

    fn match_high_bytes(&self, word: u32, bytes: u32) -> Option<usize> {
        let mask = !0u32 << (8 * (4 - bytes));
        self.entries[..self.len]
            .iter()
            .position(|&e| e & mask == word & mask)
    }

    /// Looks up `idx`, failing on indexes past the entries inserted so
    /// far — reachable only from corrupted streams.
    fn get(&self, idx: usize) -> Result<u32, DecodeError> {
        self.entries[..self.len]
            .get(idx)
            .copied()
            .ok_or(DecodeError::CorruptMetadata {
                algo: "C-PACK",
                detail: "dictionary index beyond inserted entries",
            })
    }
}

impl CpackZ {
    /// Creates a C-PACK+Z compressor.
    #[must_use]
    pub fn new() -> CpackZ {
        CpackZ::default()
    }

    /// Encodes a line into a C-PACK bitstream (the payload path; the
    /// simulator's size probes use [`Compressor::probe`] instead).
    #[must_use]
    pub fn encode(&self, line: &CacheLine) -> BitWriter {
        let t = stats::start();
        let mut w = BitWriter::new();
        let mut dict = Dictionary::default();
        self.encode_with(line, &mut w, &mut dict);
        stats::record_encode(t);
        w
    }

    /// Encodes `line` into any [`BitSink`]: real bits for a
    /// [`BitWriter`], a pure bit count for a
    /// [`BitCounter`](crate::BitCounter). One implementation serves both,
    /// so probe/encode size parity holds by construction.
    pub fn encode_into<S: BitSink>(&self, line: &CacheLine, w: &mut S) {
        let mut dict = Dictionary::default();
        self.encode_with(line, w, &mut dict);
    }

    /// [`CpackZ::encode_into`] against a caller-owned dictionary, so
    /// batch probes reuse one dictionary across a burst. `dict` is reset
    /// before use.
    fn encode_with<S: BitSink>(&self, line: &CacheLine, w: &mut S, dict: &mut Dictionary) {
        // Zero-line detection: a single bit flags the all-zero line.
        if line.is_zero() {
            w.write_bit(true);
            return;
        }
        w.write_bit(false);
        dict.reset();
        for word in line.to_u32_words() {
            if word == 0 {
                w.write_bits(code::ZZZZ, 2);
            } else if let Some(idx) = dict.full_match(word) {
                w.write_bits(code::MMMM, 2);
                w.write_bits(idx as u64, 4);
            } else if word & 0xffff_ff00 == 0 {
                w.write_bits(code::ZZZX, 4);
                w.write_bits(u64::from(word & 0xff), 8);
                dict.push(word);
            } else if let Some(idx) = dict.match_high_bytes(word, 3) {
                w.write_bits(code::MMMX, 4);
                w.write_bits(idx as u64, 4);
                w.write_bits(u64::from(word & 0xff), 8);
                dict.push(word);
            } else if let Some(idx) = dict.match_high_bytes(word, 2) {
                w.write_bits(code::MMXX, 4);
                w.write_bits(idx as u64, 4);
                w.write_bits(u64::from(word & 0xffff), 16);
                dict.push(word);
            } else {
                w.write_bits(code::XXXX, 2);
                w.write_bits(u64::from(word), 32);
                dict.push(word);
            }
        }
    }

    /// Decodes a bitstream produced by [`CpackZ::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bitstream is truncated, uses the
    /// unassigned `1111` code, or references a dictionary entry that was
    /// never inserted.
    pub fn decode(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let t = stats::start();
        let result = self.decode_impl(w);
        stats::record_decode(t);
        result
    }

    fn decode_impl(&self, w: &BitWriter) -> Result<CacheLine, DecodeError> {
        let mut r = BitReader::new(w.as_slice(), w.bit_len());
        if r.try_read_bit()? {
            return Ok(CacheLine::zeroed());
        }
        let mut dict = Dictionary::default();
        let mut words = [0u32; CacheLine::NUM_U32_WORDS];
        for slot in &mut words {
            let word = match r.try_read_bits(2)? {
                code::ZZZZ => 0,
                code::XXXX => {
                    let word = r.try_read_bits(32)? as u32;
                    dict.push(word);
                    word
                }
                code::MMMM => dict.get(r.try_read_bits(4)? as usize)?,
                0b11 => {
                    // Extended 4-bit codes: read the remaining 2 bits.
                    let full = 0b1100 | r.try_read_bits(2)?;
                    match full {
                        code::MMXX => {
                            let idx = r.try_read_bits(4)? as usize;
                            let low = r.try_read_bits(16)? as u32;
                            let word = (dict.get(idx)? & 0xffff_0000) | low;
                            dict.push(word);
                            word
                        }
                        code::ZZZX => {
                            let word = r.try_read_bits(8)? as u32;
                            dict.push(word);
                            word
                        }
                        code::MMMX => {
                            let idx = r.try_read_bits(4)? as usize;
                            let low = r.try_read_bits(8)? as u32;
                            let word = (dict.get(idx)? & 0xffff_ff00) | low;
                            dict.push(word);
                            word
                        }
                        _ => {
                            return Err(DecodeError::InvalidCode {
                                algo: "C-PACK",
                                detail: "unassigned code 1111",
                            })
                        }
                    }
                }
                _ => unreachable!("2-bit code"),
            };
            *slot = word;
        }
        Ok(CacheLine::from_u32_words(&words))
    }
}

impl Compressor for CpackZ {
    fn name(&self) -> &'static str {
        "CPACK-Z"
    }

    fn compress(&self, line: &CacheLine) -> Compression {
        // Size-only probe: drive the shared encoder with a counting sink.
        let t = stats::start();
        let mut c = BitCounter::new();
        self.encode_into(line, &mut c);
        stats::record_probe(t);
        Compression::new(c.byte_len())
    }

    fn probe_batch(&self, lines: &[CacheLine], out: &mut Vec<Compression>) {
        // One dictionary and one dispatch for the whole burst.
        let t = stats::start();
        let mut dict = Dictionary::default();
        out.reserve(lines.len());
        for line in lines {
            let mut c = BitCounter::new();
            self.encode_with(line, &mut c, &mut dict);
            out.push(Compression::new(c.byte_len()));
        }
        stats::record_probe(t);
    }

    fn decompression_latency(&self) -> Cycles {
        8
    }

    fn compression_latency(&self) -> Cycles {
        8
    }

    fn compression_energy_nj(&self) -> f64 {
        0.31
    }

    fn decompression_energy_nj(&self) -> f64 {
        0.18
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &CacheLine) -> usize {
        let c = CpackZ::new();
        let w = c.encode(line);
        assert_eq!(c.decode(&w).as_ref(), Ok(line));
        // The counting probe must agree with the materialised stream.
        assert_eq!(
            c.probe(line).size_bytes(),
            Compression::new(w.byte_len()).size_bytes()
        );
        w.byte_len()
    }

    #[test]
    fn unassigned_code_1111_is_an_error() {
        let mut w = BitWriter::new();
        w.write_bit(false); // not the zero line
        w.write_bits(0b1111, 4);
        assert!(matches!(
            CpackZ::new().decode(&w),
            Err(DecodeError::InvalidCode { algo: "C-PACK", .. })
        ));
    }

    #[test]
    fn dangling_dictionary_index_is_an_error() {
        // A full-match code before anything was inserted.
        let mut w = BitWriter::new();
        w.write_bit(false);
        w.write_bits(code::MMMM, 2);
        w.write_bits(9, 4);
        assert!(matches!(
            CpackZ::new().decode(&w),
            Err(DecodeError::CorruptMetadata { algo: "C-PACK", .. })
        ));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut w = BitWriter::new();
        w.write_bit(false);
        w.write_bits(code::XXXX, 2); // promises 32 raw bits, delivers none
        assert!(matches!(
            CpackZ::new().decode(&w),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn zero_line_is_one_bit() {
        assert_eq!(round_trip(&CacheLine::zeroed()), 1);
    }

    #[test]
    fn repeated_word_uses_full_matches() {
        let line = CacheLine::from_u32_words(&[0xcafe_babe; 32]);
        // 1 flag + 34 (xxxx) + 31 * 6 (mmmm) bits = 221 bits = 28 bytes.
        assert_eq!(round_trip(&line), 28);
    }

    #[test]
    fn partial_match_mmmx() {
        let words: Vec<u32> = (0..32).map(|i| 0x1234_5600 | i).collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        // First word raw, rest 16-bit mmmx codes: 1 + 34 + 31*16 bits = 67 bytes.
        assert_eq!(size, 67);
    }

    #[test]
    fn partial_match_mmxx() {
        let words: Vec<u32> = (0..32).map(|i| 0x1234_0000 | (i * 0x101)).collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size < CacheLine::SIZE_BYTES);
    }

    #[test]
    fn small_bytes_use_zzzx() {
        let words: Vec<u32> = (0..32).map(|i| i % 200).collect();
        let size = round_trip(&CacheLine::from_u32_words(&words));
        assert!(size < 52, "got {size}");
    }

    #[test]
    fn random_line_expands_to_uncompressed() {
        let words: Vec<u32> = (0..32u32)
            .map(|i| 0x9e37_79b9u32.wrapping_mul(i.wrapping_add(7).wrapping_mul(0x85eb_ca6b)) | 0x0101_0100)
            .collect();
        let line = CacheLine::from_u32_words(&words);
        let c = CpackZ::new().compress(&line);
        // Raw words cost 34 bits each: the clamp must kick in.
        assert!(!c.is_compressed() || c.size_bytes() < CacheLine::SIZE_BYTES);
        round_trip(&line);
    }

    #[test]
    fn dictionary_fifo_eviction_round_trips() {
        // More than 16 distinct words forces FIFO replacement; later
        // repetitions must still decode correctly.
        let mut words: Vec<u32> = (0..20).map(|i| 0xa000_0000 + i * 0x0101_0101).collect();
        words.extend_from_slice(&[0xa000_0000 + 18 * 0x0101_0101; 12]);
        round_trip(&CacheLine::from_u32_words(&words));
    }

    #[test]
    fn batch_probe_matches_per_line_loop() {
        let cp = CpackZ::new();
        let lines: Vec<CacheLine> = (0..64u32)
            .map(|i| {
                let words: Vec<u32> = (0..32)
                    .map(|j| match i % 4 {
                        0 => 0,
                        1 => j % 3,
                        2 => 0xaa00_0000 | (i * 31 + j),
                        _ => 0x9e37_79b9u32.wrapping_mul(i * 33 + j),
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            })
            .collect();
        let mut batched = Vec::new();
        cp.probe_batch(&lines, &mut batched);
        let looped: Vec<Compression> = lines.iter().map(|l| cp.probe(l)).collect();
        assert_eq!(batched, looped);
    }
}
