//! An event-based GPU energy model — the GPUWattch substitute for the
//! LATTE-CC reproduction (§IV-A: "a modified version of GPUWattch that is
//! augmented with the BDI and SC compressor and decompressor power
//! models").
//!
//! Energy is accounted per simulator event (instructions, cache accesses,
//! DRAM accesses, on-chip data movement, compression operations) plus a
//! static component proportional to runtime. Absolute joules differ from
//! GPUWattch's RTL-calibrated numbers; the *structure* — which Fig 13/14
//! decompose — is the same, and the compressor/decompressor energies are
//! the paper's own (§IV-C).
//!
//! # Example
//!
//! ```
//! use latte_energy::EnergyModel;
//! use latte_gpusim::KernelStats;
//!
//! let model = EnergyModel::paper();
//! let stats = KernelStats { cycles: 1_000_000, instructions: 2_000_000,
//!                           ..KernelStats::default() };
//! let report = model.account(&stats);
//! assert!(report.total_nj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use latte_compress::CacheLine;
use latte_gpusim::KernelStats;

/// Per-event energy constants, in nanojoules (and watts for static).
///
/// Magnitudes follow the 40 nm-era GPUWattch/CACTI literature: SRAM
/// accesses cost tens of picojoules per16 KB array, DRAM costs ~15–25 nJ
/// per 128-byte burst, moving a byte across the on-chip network costs
/// ~6 pJ, and static power is a large fraction (~40%) of a ~100 W TDP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// Core dynamic energy per warp instruction (fetch/decode/execute for
    /// 32 lanes).
    pub core_per_instruction_nj: f64,
    /// One L1 data array + tag access.
    pub l1_access_nj: f64,
    /// One L2 bank access.
    pub l2_access_nj: f64,
    /// One DRAM line transfer (activation + burst).
    pub dram_access_nj: f64,
    /// Moving one byte over the SM↔L2 interconnect.
    pub noc_per_byte_nj: f64,
    /// Whole-GPU static (leakage + constant) power.
    pub static_power_w: f64,
    /// Core clock in GHz (converts cycles to seconds).
    pub clock_ghz: f64,
}

impl EnergyConstants {
    /// Constants for the paper's GTX480-class machine.
    #[must_use]
    pub fn paper() -> EnergyConstants {
        EnergyConstants {
            core_per_instruction_nj: 0.8,
            l1_access_nj: 0.06,
            l2_access_nj: 0.35,
            dram_access_nj: 20.0,
            noc_per_byte_nj: 0.006,
            static_power_w: 42.0,
            clock_ghz: 1.4,
        }
    }
}

impl Default for EnergyConstants {
    fn default() -> EnergyConstants {
        EnergyConstants::paper()
    }
}

/// A GPU energy breakdown, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Core pipeline dynamic energy.
    pub core_nj: f64,
    /// L1 data cache access energy.
    pub l1_nj: f64,
    /// L2 access energy.
    pub l2_nj: f64,
    /// DRAM access energy.
    pub dram_nj: f64,
    /// On-chip data-movement energy (L1↔L2 and L2↔DRAM traffic).
    pub noc_nj: f64,
    /// Compressor energy.
    pub compression_nj: f64,
    /// Decompressor energy.
    pub decompression_nj: f64,
    /// Static energy (power × runtime).
    pub static_nj: f64,
}

impl EnergyReport {
    /// Total energy.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.core_nj
            + self.l1_nj
            + self.l2_nj
            + self.dram_nj
            + self.noc_nj
            + self.compression_nj
            + self.decompression_nj
            + self.static_nj
    }

    /// Energy attributable to data movement (NoC + DRAM + L2), the Fig 14
    /// "data movement" component.
    #[must_use]
    pub fn data_movement_nj(&self) -> f64 {
        self.noc_nj + self.dram_nj + self.l2_nj
    }

    /// Compression + decompression overhead, the Fig 14 "overhead"
    /// component.
    #[must_use]
    pub fn compression_overhead_nj(&self) -> f64 {
        self.compression_nj + self.decompression_nj
    }
}

/// The energy model: constants + the accounting rule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    constants: EnergyConstants,
}

impl EnergyModel {
    /// A model with the paper-calibrated constants.
    #[must_use]
    pub fn paper() -> EnergyModel {
        EnergyModel {
            constants: EnergyConstants::paper(),
        }
    }

    /// A model with custom constants.
    #[must_use]
    pub fn new(constants: EnergyConstants) -> EnergyModel {
        EnergyModel { constants }
    }

    /// The constants in use.
    #[must_use]
    pub fn constants(&self) -> &EnergyConstants {
        &self.constants
    }

    /// Accounts the energy of one kernel (or benchmark aggregate).
    #[must_use]
    pub fn account(&self, stats: &KernelStats) -> EnergyReport {
        let c = &self.constants;
        let line = CacheLine::SIZE_BYTES as f64;
        // Traffic: every L2 access moves a line between an SM and the L2;
        // every DRAM access moves a line between the L2 and memory.
        let noc_bytes = stats.l2.accesses() as f64 * line + stats.dram_accesses as f64 * line;
        let seconds = stats.cycles as f64 / (c.clock_ghz * 1e9);
        let compression_nj: f64 = stats
            .compressions
            .iter()
            .map(|(algo, n)| n as f64 * algo.compression_energy_nj())
            .sum();
        let decompression_nj: f64 = stats
            .decompressions
            .iter()
            .map(|(algo, n)| n as f64 * algo.decompression_energy_nj())
            .sum();
        EnergyReport {
            core_nj: stats.instructions as f64 * c.core_per_instruction_nj,
            l1_nj: stats.l1.accesses() as f64 * c.l1_access_nj,
            l2_nj: stats.l2.accesses() as f64 * c.l2_access_nj,
            dram_nj: stats.dram_accesses as f64 * c.dram_access_nj,
            noc_nj: noc_bytes * c.noc_per_byte_nj,
            compression_nj,
            decompression_nj,
            static_nj: c.static_power_w * seconds * 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_cache::CacheStats;
    use latte_compress::CompressionAlgo;
    use latte_gpusim::AlgoCounts;

    fn stats() -> KernelStats {
        let mut compressions = AlgoCounts::default();
        compressions.bump(CompressionAlgo::Bdi);
        let mut decompressions = AlgoCounts::default();
        decompressions.bump(CompressionAlgo::Sc);
        KernelStats {
            cycles: 1_400_000, // exactly 1 ms at 1.4 GHz
            instructions: 1_000_000,
            l1: CacheStats {
                hits: 600_000,
                misses: 150_000,
                ..CacheStats::default()
            },
            l2: CacheStats {
                hits: 80_000,
                misses: 40_000,
                ..CacheStats::default()
            },
            dram_accesses: 40_000,
            compressions,
            decompressions,
            ..KernelStats::default()
        }
    }

    #[test]
    fn totals_add_up() {
        let r = EnergyModel::paper().account(&stats());
        let sum = r.core_nj
            + r.l1_nj
            + r.l2_nj
            + r.dram_nj
            + r.noc_nj
            + r.compression_nj
            + r.decompression_nj
            + r.static_nj;
        assert!((r.total_nj() - sum).abs() < 1e-6);
    }

    #[test]
    fn static_energy_tracks_runtime() {
        let model = EnergyModel::paper();
        let mut s = stats();
        let e1 = model.account(&s).static_nj;
        s.cycles *= 2;
        let e2 = model.account(&s).static_nj;
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        // 1 ms at 42 W = 42 mJ = 4.2e7 nJ.
        assert!((e1 - 4.2e7).abs() / 4.2e7 < 1e-9);
    }

    #[test]
    fn compression_energies_use_paper_constants() {
        let r = EnergyModel::paper().account(&stats());
        assert!((r.compression_nj - 0.192).abs() < 1e-12, "one BDI compression");
        assert!((r.decompression_nj - 0.336).abs() < 1e-12, "one SC decompression");
    }

    #[test]
    fn fewer_misses_mean_less_energy() {
        let model = EnergyModel::paper();
        let base = stats();
        let mut better = base.clone();
        better.dram_accesses /= 2;
        better.l2.misses /= 2;
        better.l2.hits /= 2;
        better.cycles = base.cycles * 9 / 10;
        assert!(model.account(&better).total_nj() < model.account(&base).total_nj());
    }

    #[test]
    fn overhead_is_tiny_relative_to_total() {
        // §V-A: compression/decompression energy < 0.25% of GPU energy.
        let mut s = stats();
        let mut c = AlgoCounts::default();
        let mut d = AlgoCounts::default();
        for _ in 0..150_000 {
            c.bump(CompressionAlgo::Sc);
        }
        for _ in 0..600_000 {
            d.bump(CompressionAlgo::Sc);
        }
        s.compressions = c;
        s.decompressions = d;
        let r = EnergyModel::paper().account(&s);
        assert!(r.compression_overhead_nj() / r.total_nj() < 0.01);
    }
}
