//! Pins the energy model's per-event accounting (each component equals
//! event count × constant, exactly) and checks monotonicity as a
//! property: energy never decreases when event counts grow.

use latte_cache::CacheStats;
use latte_compress::CompressionAlgo;
use latte_energy::{EnergyConstants, EnergyModel};
use latte_gpusim::{AlgoCounts, KernelStats};
use proptest::prelude::*;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

/// Every component is events × constant with the paper constants; no
/// hidden cross terms, no double counting.
#[test]
fn per_event_accounting_is_exact() {
    let c = EnergyConstants::paper();
    let mut compressions = AlgoCounts::default();
    for _ in 0..5 {
        compressions.bump(CompressionAlgo::Bdi);
    }
    let mut decompressions = AlgoCounts::default();
    for _ in 0..7 {
        decompressions.bump(CompressionAlgo::Sc);
    }
    let stats = KernelStats {
        cycles: 2_800_000, // exactly 2 ms at 1.4 GHz
        instructions: 3_000,
        l1: CacheStats {
            hits: 900,
            misses: 100,
            ..CacheStats::default()
        },
        l2: CacheStats {
            hits: 60,
            misses: 40,
            ..CacheStats::default()
        },
        dram_accesses: 40,
        compressions,
        decompressions,
        ..KernelStats::default()
    };
    let r = EnergyModel::new(c).account(&stats);

    assert!(close(r.core_nj, 3_000.0 * c.core_per_instruction_nj));
    assert!(close(r.l1_nj, 1_000.0 * c.l1_access_nj), "L1 hits + misses");
    assert!(close(r.l2_nj, 100.0 * c.l2_access_nj), "L2 hits + misses");
    assert!(close(r.dram_nj, 40.0 * c.dram_access_nj));
    // NoC: one 128-byte line per L2 access (SM↔L2) plus one per DRAM
    // access (L2↔memory).
    assert!(close(r.noc_nj, (100.0 + 40.0) * 128.0 * c.noc_per_byte_nj));
    assert!(close(
        r.compression_nj,
        5.0 * CompressionAlgo::Bdi.compression_energy_nj()
    ));
    assert!(close(
        r.decompression_nj,
        7.0 * CompressionAlgo::Sc.decompression_energy_nj()
    ));
    // 2 ms at 42 W = 84 mJ = 8.4e7 nJ.
    assert!(close(r.static_nj, 8.4e7));
    assert!(close(
        r.total_nj(),
        r.core_nj
            + r.l1_nj
            + r.l2_nj
            + r.dram_nj
            + r.noc_nj
            + r.compression_nj
            + r.decompression_nj
            + r.static_nj
    ));
}

#[test]
fn zero_stats_cost_zero() {
    let r = EnergyModel::paper().account(&KernelStats::default());
    assert_eq!(r.total_nj(), 0.0);
}

fn stats_from(counts: &[u64; 8]) -> KernelStats {
    let [cycles, instructions, l1_hits, l1_misses, l2_hits, l2_misses, dram, comp] = *counts;
    let mut compressions = AlgoCounts::default();
    let mut decompressions = AlgoCounts::default();
    for _ in 0..comp {
        compressions.bump(CompressionAlgo::Sc);
        decompressions.bump(CompressionAlgo::Bdi);
    }
    KernelStats {
        cycles,
        instructions,
        l1: CacheStats {
            hits: l1_hits,
            misses: l1_misses,
            ..CacheStats::default()
        },
        l2: CacheStats {
            hits: l2_hits,
            misses: l2_misses,
            ..CacheStats::default()
        },
        dram_accesses: dram,
        compressions,
        decompressions,
        ..KernelStats::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Monotonicity: adding events (of any kind, in any combination)
    /// never reduces total energy, and each component is individually
    /// monotone. The model is a nonnegative linear form over the event
    /// counts, so this must hold exactly.
    #[test]
    fn total_energy_is_monotone_in_event_counts(
        base in proptest::collection::vec(0u64..1_000_000, 8),
        extra in proptest::collection::vec(0u64..1_000_000, 8),
    ) {
        let model = EnergyModel::paper();
        let mut base_counts = [0u64; 8];
        let mut more_counts = [0u64; 8];
        for i in 0..8 {
            base_counts[i] = base[i];
            more_counts[i] = base[i] + extra[i];
        }
        let lo = model.account(&stats_from(&base_counts));
        let hi = model.account(&stats_from(&more_counts));
        prop_assert!(hi.total_nj() >= lo.total_nj());
        prop_assert!(hi.core_nj >= lo.core_nj);
        prop_assert!(hi.l1_nj >= lo.l1_nj);
        prop_assert!(hi.l2_nj >= lo.l2_nj);
        prop_assert!(hi.dram_nj >= lo.dram_nj);
        prop_assert!(hi.noc_nj >= lo.noc_nj);
        prop_assert!(hi.compression_nj >= lo.compression_nj);
        prop_assert!(hi.decompression_nj >= lo.decompression_nj);
        prop_assert!(hi.static_nj >= lo.static_nj);
        prop_assert!(hi.data_movement_nj() >= lo.data_movement_nj());
        prop_assert!(hi.compression_overhead_nj() >= lo.compression_overhead_nj());
    }
}
