//! Memory access pattern generators: the synthetic stand-in for the
//! benchmarks' address streams.
//!
//! A benchmark's cache sensitivity is set by how its per-SM working set
//! compares to the 128-line L1 and how reuse is distributed; its latency
//! tolerance is set by warp parallelism and the compute:memory ratio.
//! Patterns are stateless functions of `(iteration, warp, seed)`, so warp
//! programs can be regenerated for oracle replays.

use crate::values::mix64;

/// How a phase's loads pick their target lines (within the phase's
/// region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential streaming, each warp over its own disjoint slice: no
    /// reuse at all (bandwidth-bound kernels).
    Stream,
    /// Uniform-random accesses over a shared working set of
    /// `working_set_lines`: hit rate ≈ min(1, capacity / working set),
    /// smooth in effective capacity (the C-Sens backbone).
    UniformReuse {
        /// Size of the shared working set, in lines.
        working_set_lines: u32,
    },
    /// Zipf-distributed accesses over `universe_lines` (graph-style skewed
    /// reuse); `alpha_x100` is the exponent × 100.
    Zipf {
        /// Universe size in lines.
        universe_lines: u32,
        /// Zipf exponent scaled by 100 (e.g. 90 → α = 0.9).
        alpha_x100: u32,
    },
    /// Blocked/tiled reuse: warps sweep a tile of `tile_lines` with
    /// `reuse_factor` passes before moving to the next tile — strong
    /// short-range temporal locality with phase changes at tile
    /// boundaries.
    Tiled {
        /// Tile size in lines.
        tile_lines: u32,
        /// Passes over each tile before advancing.
        reuse_factor: u32,
    },
}

impl AccessPattern {
    /// Folds this pattern (discriminant + parameters) into a simulation
    /// fingerprint.
    pub fn write_fingerprint(&self, fp: &mut latte_gpusim::Fingerprinter) {
        match *self {
            AccessPattern::Stream => fp.write_u64(0),
            AccessPattern::UniformReuse { working_set_lines } => {
                fp.write_u64(1);
                fp.write_u32(working_set_lines);
            }
            AccessPattern::Zipf {
                universe_lines,
                alpha_x100,
            } => {
                fp.write_u64(2);
                fp.write_u32(universe_lines);
                fp.write_u32(alpha_x100);
            }
            AccessPattern::Tiled {
                tile_lines,
                reuse_factor,
            } => {
                fp.write_u64(3);
                fp.write_u32(tile_lines);
                fp.write_u32(reuse_factor);
            }
        }
    }

    /// The line offset (within the phase's region) of load `i` issued by
    /// `warp`, out of `warps` total.
    #[must_use]
    pub fn line_offset(&self, i: u64, warp: u64, warps: u64, seed: u64) -> u64 {
        match *self {
            AccessPattern::Stream => {
                // Disjoint slices (within the 24-bit region offset space):
                // warp w covers [w << 17, (w + 1) << 17).
                (warp << 17) + i
            }
            AccessPattern::UniformReuse { working_set_lines } => {
                mix64(seed ^ (i.wrapping_mul(warps) + warp).wrapping_mul(0x2545_f491_4f6c_dd1d))
                    % u64::from(working_set_lines.max(1))
            }
            AccessPattern::Zipf {
                universe_lines,
                alpha_x100,
            } => {
                let n = u64::from(universe_lines.max(1));
                let u = mix64(seed ^ (i * 0x9e37 + warp * 0x79b9) ^ 0x5a5a);
                let rank = zipf_sample(u, n, alpha_x100);
                // Scatter ranks over lines with a bijection so hot ranks
                // do not all land in the first few cache sets (which would
                // bias any set-sampling scheme).
                scatter(rank, n, seed)
            }
            AccessPattern::Tiled {
                tile_lines,
                reuse_factor,
            } => {
                let tile_lines = u64::from(tile_lines.max(1));
                let span = tile_lines * u64::from(reuse_factor.max(1));
                // Stagger tile boundaries across warps (real blocks do not
                // cross tiles in lockstep); this also keeps the simulated
                // dynamics smooth instead of stampede-driven.
                let stagger = if warps > 1 { warp * span / warps } else { 0 };
                let tile = (i + stagger) / span;
                let r = mix64(seed ^ i ^ (warp << 40)) % tile_lines;
                tile * tile_lines + r
            }
        }
    }
}

/// A bijective scatter of `[0, n)` onto itself: a 3-round Feistel network
/// over the next power-of-two domain with cycle walking. Unlike an affine
/// map, this scrambles residues modulo small powers of two, so hot ranks
/// cannot correlate with cache-set indices.
fn scatter(x: u64, n: u64, seed: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let bits = 64 - (n - 1).leading_zeros() as u64;
    let half = bits.div_ceil(2);
    let mask = (1u64 << half) - 1;
    let mut v = x;
    loop {
        let (mut l, mut r) = (v & mask, v >> half);
        for round in 0..3u64 {
            let f = mix64(r ^ seed.wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))) & mask;
            (l, r) = (r, l ^ f);
        }
        v = (r << half) | l;
        if v < n {
            return v;
        }
    }
}

/// Samples a Zipf(α)-distributed rank in `[0, n)` from uniform random bits
/// using the inverse-CDF power-law approximation: rank ≈ n·u^(1/(1−α))
/// for α < 1, and a bounded harmonic approximation above. Exactness is
/// irrelevant — only the skew matters.
fn zipf_sample(random: u64, n: u64, alpha_x100: u32) -> u64 {
    let u = ((random >> 11) as f64) / ((1u64 << 53) as f64); // [0, 1)
    let alpha = f64::from(alpha_x100) / 100.0;
    let rank = if (alpha - 1.0).abs() < 0.01 {
        // α ≈ 1: exponential of log-uniform.
        ((n as f64).powf(u) - 1.0).max(0.0)
    } else {
        let p = 1.0 - alpha;
        // Inverse CDF of f(x) ∝ x^-α on [1, n].
        let x = (u * ((n as f64).powf(p) - 1.0) + 1.0).powf(1.0 / p) - 1.0;
        x.max(0.0)
    };
    (rank as u64).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_disjoint_across_warps() {
        let p = AccessPattern::Stream;
        let a: Vec<u64> = (0..100).map(|i| p.line_offset(i, 0, 4, 1)).collect();
        let b: Vec<u64> = (0..100).map(|i| p.line_offset(i, 1, 4, 1)).collect();
        assert!(a.iter().all(|x| !b.contains(x)));
        // And sequential within a warp.
        assert_eq!(a[1], a[0] + 1);
    }

    #[test]
    fn uniform_reuse_stays_in_working_set() {
        let p = AccessPattern::UniformReuse {
            working_set_lines: 64,
        };
        for i in 0..1000 {
            assert!(p.line_offset(i, 3, 8, 42) < 64);
        }
    }

    #[test]
    fn uniform_reuse_covers_working_set() {
        let p = AccessPattern::UniformReuse {
            working_set_lines: 32,
        };
        let seen: std::collections::HashSet<u64> =
            (0..2000).map(|i| p.line_offset(i, 0, 1, 7)).collect();
        assert_eq!(seen.len(), 32);
    }

    /// Mass carried by the `k` most frequent lines of 20k samples.
    fn top_k_mass(p: &AccessPattern, k: usize) -> usize {
        let mut counts = std::collections::HashMap::new();
        for i in 0..20_000u64 {
            *counts.entry(p.line_offset(i, 0, 1, 3)).or_insert(0usize) += 1;
        }
        let mut v: Vec<usize> = counts.into_values().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.into_iter().take(k).sum()
    }

    #[test]
    fn zipf_is_skewed() {
        let p = AccessPattern::Zipf {
            universe_lines: 1024,
            alpha_x100: 90,
        };
        // The 32 hottest lines (of 1024) must carry a large share.
        assert!(top_k_mass(&p, 32) > 20_000 / 4);
        for i in 0..2000 {
            assert!(p.line_offset(i, 0, 1, 3) < 1024);
        }
    }

    #[test]
    fn zipf_alpha_controls_skew() {
        let flat = AccessPattern::Zipf {
            universe_lines: 1024,
            alpha_x100: 20,
        };
        let skewed = AccessPattern::Zipf {
            universe_lines: 1024,
            alpha_x100: 110,
        };
        assert!(top_k_mass(&skewed, 64) > top_k_mass(&flat, 64) * 2);
    }

    #[test]
    fn zipf_hot_lines_spread_over_sets() {
        // The hottest lines must not cluster in the low line numbers
        // (set-sampling bias).
        let p = AccessPattern::Zipf {
            universe_lines: 512,
            alpha_x100: 100,
        };
        let mut counts = std::collections::HashMap::new();
        for i in 0..20_000u64 {
            *counts.entry(p.line_offset(i, 0, 1, 3)).or_insert(0usize) += 1;
        }
        let mut hot: Vec<(usize, u64)> = counts.into_iter().map(|(l, c)| (c, l)).collect();
        hot.sort_unstable_by(|a, b| b.cmp(a));
        let low_sets = hot
            .iter()
            .take(16)
            .filter(|&&(_, line)| line % 32 < 4)
            .count();
        assert!(low_sets <= 8, "hot lines clustered in low sets: {low_sets}/16");
    }

    #[test]
    fn tiled_advances_through_tiles() {
        let p = AccessPattern::Tiled {
            tile_lines: 16,
            reuse_factor: 4,
        };
        // First 64 loads stay in tile 0, next 64 in tile 1.
        for i in 0..64 {
            assert!(p.line_offset(i, 0, 1, 9) < 16);
        }
        for i in 64..128 {
            let off = p.line_offset(i, 0, 1, 9);
            assert!((16..32).contains(&off));
        }
    }
}
