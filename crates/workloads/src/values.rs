//! Data-value generators: the synthetic stand-in for the benchmarks' real
//! memory contents.
//!
//! Compression behaviour is a function of the bytes in each cache line.
//! §II-A of the paper explains the two relevant axes:
//!
//! * **spatial value locality** — low variance between adjacent values
//!   (pointers, indices, small integers) → BDI/BPC/FPC compress well;
//! * **temporal value locality** — few distinct values recurring over time
//!   (quantised floats, categorical data) → SC/C-PACK compress well.
//!
//! Each profile below produces lines as a *pure function* of
//! `(line address, seed)`, so refills are deterministic and SC's trained
//! codebook stays meaningful across evictions.

use latte_cache::LineAddr;
use latte_compress::CacheLine;

/// Stateless 64-bit mixer (splitmix64 finaliser).
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A family of line contents with known compressibility structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueProfile {
    /// All-zero lines (freshly initialised arrays).
    Zeros,
    /// 32-bit integers uniform in `[0, max)` — spatial locality; also
    /// temporal locality when `max` is small enough to fit the VFT.
    SmallInts {
        /// Exclusive upper bound of the values.
        max: u32,
    },
    /// 64-bit pointers into a shared heap segment: a large common base
    /// with multi-byte offsets. Strong spatial locality (BDI's sweet
    /// spot), alphabet far too large for SC.
    Pointers,
    /// Monotonic 32-bit indices with `noise_bits` of low-bit jitter —
    /// BPC's sweet spot (constant deltas), decent for BDI.
    Indices {
        /// Nominal distance between consecutive words.
        stride: u32,
        /// Bits of additive noise per word.
        noise_bits: u32,
    },
    /// 32-bit floats drawn from a fixed alphabet of `alphabet` distinct
    /// values — high per-word bit variance (BDI-hostile) but strong
    /// temporal locality (SC's sweet spot).
    HotFloats {
        /// Number of distinct values in circulation (≤ the VFT capacity
        /// for full SC benefit).
        alphabet: u16,
    },
    /// Floats with fully random mantissas in a shared magnitude range —
    /// nearly incompressible (only the shared exponent bits help BPC a
    /// little).
    RandomFloats,
    /// ASCII text packed four bytes per word — weak, pattern-level
    /// compressibility only.
    Text,
}

impl ValueProfile {
    /// Folds this profile (discriminant + parameters) into a simulation
    /// fingerprint.
    pub fn write_fingerprint(&self, fp: &mut latte_gpusim::Fingerprinter) {
        match *self {
            ValueProfile::Zeros => fp.write_u64(0),
            ValueProfile::SmallInts { max } => {
                fp.write_u64(1);
                fp.write_u32(max);
            }
            ValueProfile::Pointers => fp.write_u64(2),
            ValueProfile::Indices { stride, noise_bits } => {
                fp.write_u64(3);
                fp.write_u32(stride);
                fp.write_u32(noise_bits);
            }
            ValueProfile::HotFloats { alphabet } => {
                fp.write_u64(4);
                fp.write_u32(u32::from(alphabet));
            }
            ValueProfile::RandomFloats => fp.write_u64(5),
            ValueProfile::Text => fp.write_u64(6),
        }
    }

    /// Generates the contents of `addr` under this profile.
    #[must_use]
    pub fn line(&self, addr: LineAddr, seed: u64) -> CacheLine {
        let base = mix64(addr.line_number() ^ seed.rotate_left(17));
        match *self {
            ValueProfile::Zeros => CacheLine::zeroed(),
            ValueProfile::SmallInts { max } => {
                let max = max.max(1);
                let words: Vec<u32> = (0..32)
                    .map(|i| (mix64(base ^ i) % u64::from(max)) as u32)
                    .collect();
                CacheLine::from_u32_words(&words)
            }
            ValueProfile::Pointers => {
                // One small heap segment per line (objects from one
                // allocation site): strong intra-line spatial locality for
                // BDI, but no cross-line value reuse SC could table. An
                // eighth of the slots are null (list ends).
                let segment = 0x7f3a_0000_0000_0000u64
                    | ((mix64(base ^ 0x5e9_0001) & 0xffff) << 32)
                    | ((mix64(base ^ 0x5e9_0002) & 0xfff) << 20);
                let words: Vec<u64> = (0..16)
                    .map(|i| {
                        let r = mix64(base ^ (i + 100));
                        if r.is_multiple_of(8) {
                            0
                        } else {
                            // 16 KiB object span: deltas fit two bytes.
                            segment + (r % 2048) * 8
                        }
                    })
                    .collect();
                CacheLine::from_u64_words(&words)
            }
            ValueProfile::Indices { stride, noise_bits } => {
                let start = (base as u32) & 0x00ff_ffff;
                let noise_mask = (1u32 << noise_bits.min(31)) - 1;
                let words: Vec<u32> = (0..32u32)
                    .map(|i| {
                        let noise = (mix64(base ^ u64::from(i) ^ 0xabcd) as u32) & noise_mask;
                        start.wrapping_add(i * stride).wrapping_add(noise)
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            }
            ValueProfile::HotFloats { alphabet } => {
                let alphabet = u64::from(alphabet.max(1));
                let words: Vec<u32> = (0..32)
                    .map(|i| {
                        // Pick an alphabet slot, then derive a stable float
                        // for that slot from the *seed only* (not the
                        // address), so the same values recur everywhere.
                        let slot = mix64(base ^ (i * 7 + 13)) % alphabet;
                        let v = mix64(seed ^ (slot.wrapping_mul(0x5851_f42d_4c95_7f2d)));
                        // A plausible float: random sign/mantissa, bounded
                        // exponent.
                        let sign = (v & 1) << 31;
                        let exp = (96 + (v >> 1) % 64) << 23; // 2^-31 .. 2^32
                        let mantissa = (v >> 8) & 0x7f_ffff;
                        (sign | exp | mantissa) as u32
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            }
            ValueProfile::RandomFloats => {
                let words: Vec<u32> = (0..32)
                    .map(|i| {
                        let v = mix64(base ^ (i + 999));
                        let sign = (v & 1) << 31;
                        // Wide exponent spread: enough entropy in the top
                        // bits that even BPC's bit-plane transform finds
                        // nothing to strip.
                        let exp = (32 + (v >> 1) % 192) << 23;
                        let mantissa = (v >> 8) & 0x7f_ffff;
                        (sign | exp | mantissa) as u32
                    })
                    .collect();
                CacheLine::from_u32_words(&words)
            }
            ValueProfile::Text => {
                let mut bytes = [0u8; CacheLine::SIZE_BYTES];
                for (i, b) in bytes.iter_mut().enumerate() {
                    let v = mix64(base ^ (i as u64 * 31));
                    // Mostly lowercase letters and spaces, like prose.
                    *b = match v % 8 {
                        0 => b' ',
                        1 => b'e',
                        2 => b't',
                        _ => b'a' + (v % 26) as u8,
                    };
                }
                CacheLine::from_bytes(bytes)
            }
        }
    }
}

/// A region-aware generator: benchmarks often mix data types (e.g. a graph
/// kernel touching pointer adjacency lists *and* integer distance arrays).
/// The top address bits select a region, each with its own profile and an
/// optional fraction of all-zero lines.
#[derive(Debug, Clone)]
pub struct LineGenerator {
    regions: Vec<RegionSpec>,
    seed: u64,
}

/// One address region's value behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSpec {
    /// The value profile of lines in this region.
    pub profile: ValueProfile,
    /// Percentage (0–100) of lines that are all zeros regardless of the
    /// profile (sparse/initialised-but-unused data).
    pub zero_percent: u8,
}

/// Bit position where the region id lives in a line address (bits 24–31;
/// SM-disjoint base addresses live at bit 32 and above).
pub const REGION_SHIFT: u32 = 24;

/// Mask for the 8-bit region field.
pub const REGION_MASK: u64 = 0xff;

impl LineGenerator {
    /// Creates a generator over `regions` (region `i` spans line addresses
    /// whose bits `[24..)` equal `i`, modulo the region count).
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty.
    #[must_use]
    pub fn new(regions: Vec<RegionSpec>, seed: u64) -> LineGenerator {
        assert!(!regions.is_empty(), "need at least one region");
        LineGenerator { regions, seed }
    }

    /// A single-region generator.
    #[must_use]
    pub fn uniform(profile: ValueProfile, seed: u64) -> LineGenerator {
        LineGenerator::new(
            vec![RegionSpec {
                profile,
                zero_percent: 0,
            }],
            seed,
        )
    }

    /// Folds every region and the seed into a simulation fingerprint.
    pub fn write_fingerprint(&self, fp: &mut latte_gpusim::Fingerprinter) {
        fp.write_usize(self.regions.len());
        for region in &self.regions {
            region.profile.write_fingerprint(fp);
            fp.write_u64(u64::from(region.zero_percent));
        }
        fp.write_u64(self.seed);
    }

    /// Generates the contents of `addr`.
    #[must_use]
    pub fn line(&self, addr: LineAddr) -> CacheLine {
        let region_id =
            ((addr.line_number() >> REGION_SHIFT) & REGION_MASK) as usize % self.regions.len();
        let region = &self.regions[region_id];
        if region.zero_percent > 0 {
            let roll = mix64(addr.line_number() ^ self.seed ^ 0x5eed) % 100;
            if roll < u64::from(region.zero_percent) {
                return CacheLine::zeroed();
            }
        }
        region.profile.line(addr, self.seed ^ (region_id as u64) << 56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_compress::{Bdi, Bpc, Compressor, Sc, VftBuilder};

    fn ratio_of(compressor: &dyn Compressor, profile: ValueProfile, n: u64) -> f64 {
        let total: usize = (0..n)
            .map(|i| compressor.compress(&profile.line(LineAddr::new(i), 42)).size_bytes())
            .sum();
        (n as usize * CacheLine::SIZE_BYTES) as f64 / total as f64
    }

    fn sc_trained(profile: ValueProfile, n: u64) -> Sc {
        let mut vft = VftBuilder::new();
        for i in 0..n {
            vft.observe_line(&profile.line(LineAddr::new(i), 42));
        }
        Sc::new(vft.build())
    }

    #[test]
    fn determinism() {
        for profile in [
            ValueProfile::SmallInts { max: 100 },
            ValueProfile::Pointers,
            ValueProfile::HotFloats { alphabet: 64 },
            ValueProfile::Text,
        ] {
            let a = profile.line(LineAddr::new(7), 1);
            let b = profile.line(LineAddr::new(7), 1);
            assert_eq!(a, b);
            let c = profile.line(LineAddr::new(8), 1);
            assert_ne!(a, c, "different addresses produce different data");
        }
    }

    #[test]
    fn pointers_favor_bdi_over_sc() {
        let profile = ValueProfile::Pointers;
        let bdi_ratio = ratio_of(&Bdi::new(), profile, 200);
        let sc = sc_trained(profile, 200);
        let sc_ratio = ratio_of(&sc, profile, 200);
        assert!(bdi_ratio > 1.4, "BDI on pointers: {bdi_ratio:.2}");
        assert!(
            bdi_ratio > sc_ratio,
            "BDI ({bdi_ratio:.2}) must beat SC ({sc_ratio:.2}) on pointers"
        );
    }

    #[test]
    fn hot_floats_favor_sc_over_bdi() {
        let profile = ValueProfile::HotFloats { alphabet: 64 };
        let bdi_ratio = ratio_of(&Bdi::new(), profile, 200);
        let sc = sc_trained(profile, 200);
        let sc_ratio = ratio_of(&sc, profile, 200);
        assert!(bdi_ratio < 1.2, "BDI on random-mantissa floats: {bdi_ratio:.2}");
        assert!(sc_ratio > 2.0, "SC on a 64-value alphabet: {sc_ratio:.2}");
    }

    #[test]
    fn indices_favor_bpc() {
        let profile = ValueProfile::Indices {
            stride: 4,
            noise_bits: 1,
        };
        let bpc_ratio = ratio_of(&Bpc::new(), profile, 200);
        assert!(bpc_ratio > 3.0, "BPC on strided indices: {bpc_ratio:.2}");
    }

    #[test]
    fn random_floats_resist_compression() {
        let profile = ValueProfile::RandomFloats;
        let bdi_ratio = ratio_of(&Bdi::new(), profile, 200);
        let bpc_ratio = ratio_of(&Bpc::new(), profile, 200);
        let sc = sc_trained(profile, 200);
        let sc_ratio = ratio_of(&sc, profile, 200);
        assert!(bdi_ratio < 1.1, "BDI: {bdi_ratio:.2}");
        assert!(bpc_ratio < 1.15, "BPC: {bpc_ratio:.2}");
        assert!(sc_ratio < 1.3, "SC: {sc_ratio:.2}");
    }

    #[test]
    fn hot_float_alphabet_is_shared_across_lines() {
        // The same values must recur on different lines or SC's temporal
        // locality premise breaks.
        let profile = ValueProfile::HotFloats { alphabet: 8 };
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            for w in profile.line(LineAddr::new(i), 3).u32_words() {
                seen.insert(w);
            }
        }
        assert!(seen.len() <= 8, "alphabet leaked: {} distinct", seen.len());
    }

    #[test]
    fn regions_select_profiles() {
        let generator = LineGenerator::new(
            vec![
                RegionSpec {
                    profile: ValueProfile::Zeros,
                    zero_percent: 0,
                },
                RegionSpec {
                    profile: ValueProfile::Pointers,
                    zero_percent: 0,
                },
            ],
            9,
        );
        let region0 = generator.line(LineAddr::new(5));
        assert!(region0.is_zero());
        let region1 = generator.line(LineAddr::new((1 << REGION_SHIFT) + 5));
        assert!(!region1.is_zero());
    }

    #[test]
    fn zero_fraction_applies() {
        let generator = LineGenerator::new(
            vec![RegionSpec {
                profile: ValueProfile::RandomFloats,
                zero_percent: 50,
            }],
            11,
        );
        let zeros = (0..400)
            .filter(|&i| generator.line(LineAddr::new(i)).is_zero())
            .count();
        assert!((120..280).contains(&zeros), "got {zeros} zero lines");
    }
}
