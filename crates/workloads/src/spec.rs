//! Benchmark specifications and the [`SyntheticKernel`] adapter that turns
//! them into `latte-gpusim` kernels.

use crate::access::AccessPattern;
use crate::values::{mix64, LineGenerator, REGION_SHIFT};
use latte_cache::LineAddr;
use latte_compress::CacheLine;
use latte_gpusim::{Kernel, Op, OpStream};

/// Cache-sensitivity category (Table III): a workload is C-Sens if a 4×
/// larger data cache speeds it up by more than 20%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Cache sensitive.
    CSens,
    /// Cache insensitive.
    CInSens,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Category::CSens => "C-Sens",
            Category::CInSens => "C-InSens",
        })
    }
}

/// One execution phase of a kernel: a batch of loads with a given access
/// pattern, compute density and warp participation. Phases end with a
/// block-wide barrier so inactive warps rejoin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Access pattern of the phase's loads.
    pub pattern: AccessPattern,
    /// Loads each *active* warp issues in the phase.
    pub loads_per_warp: u32,
    /// Compute cycles between consecutive loads (latency-tolerance knob:
    /// more compute = more work to overlap with memory).
    pub compute_per_load: u32,
    /// Address region the loads target (selects the value profile).
    pub region: u8,
    /// Percentage (1–100) of warps that participate; the rest wait at the
    /// phase barrier (warp-parallelism knob: fewer active warps = less
    /// latency tolerance).
    pub active_warp_percent: u8,
    /// Percentage (0–100) of accesses that are stores instead of loads.
    pub store_percent: u8,
    /// Intra-warp memory-level parallelism: loads are issued in batches of
    /// `mlp` independent accesses, and the warp blocks only at the end of
    /// each batch. 1 = fully dependent (pointer-chase-like); 4–8 =
    /// array-sweep code with unrolled independent loads.
    pub mlp: u8,
}

impl PhaseSpec {
    /// A simple all-warps load phase.
    #[must_use]
    pub fn loads(pattern: AccessPattern, loads_per_warp: u32, compute_per_load: u32) -> PhaseSpec {
        PhaseSpec {
            pattern,
            loads_per_warp,
            compute_per_load,
            region: 0,
            active_warp_percent: 100,
            store_percent: 0,
            mlp: 1,
        }
    }

    /// Returns a copy targeting `region`.
    #[must_use]
    pub fn in_region(mut self, region: u8) -> PhaseSpec {
        self.region = region;
        self
    }

    /// Returns a copy with only `percent` of warps active.
    #[must_use]
    pub fn with_active(mut self, percent: u8) -> PhaseSpec {
        self.active_warp_percent = percent.clamp(1, 100);
        self
    }

    /// Returns a copy with `percent` stores.
    #[must_use]
    pub fn with_stores(mut self, percent: u8) -> PhaseSpec {
        self.store_percent = percent.min(100);
        self
    }

    /// Returns a copy with intra-warp memory-level parallelism `mlp`.
    #[must_use]
    pub fn with_mlp(mut self, mlp: u8) -> PhaseSpec {
        self.mlp = mlp.max(1);
        self
    }

    /// Folds every field into a simulation fingerprint.
    pub fn write_fingerprint(&self, fp: &mut latte_gpusim::Fingerprinter) {
        self.pattern.write_fingerprint(fp);
        fp.write_u32(self.loads_per_warp);
        fp.write_u32(self.compute_per_load);
        fp.write_u64(u64::from(self.region));
        fp.write_u64(u64::from(self.active_warp_percent));
        fp.write_u64(u64::from(self.store_percent));
        fp.write_u64(u64::from(self.mlp));
    }
}

/// One kernel: warps and a phase script (identical across SMs; data is
/// SM-disjoint).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (for Kernel-OPT reports).
    pub name: String,
    /// Warps launched per SM.
    pub warps_per_sm: usize,
    /// The phase script each warp runs.
    pub phases: Vec<PhaseSpec>,
}

/// A complete benchmark: kernels plus the data-value model.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Short name used in the paper's figures (e.g. "SS").
    pub abbr: &'static str,
    /// Full benchmark name.
    pub name: &'static str,
    /// Table III sensitivity category.
    pub category: Category,
    /// The kernels, run in order.
    pub kernels: Vec<KernelSpec>,
    /// The value model behind every address.
    pub generator: LineGenerator,
    /// Workload seed.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Instantiates the simulator kernels for this benchmark.
    #[must_use]
    pub fn build_kernels(&self) -> Vec<SyntheticKernel> {
        self.kernels
            .iter()
            .map(|k| SyntheticKernel {
                spec: k.clone(),
                generator: self.generator.clone(),
                seed: self.seed,
            })
            .collect()
    }

    /// Folds the complete benchmark definition — names, category, every
    /// kernel's phase script, the value model and the seed — into a
    /// simulation fingerprint. Two specs with equal fingerprints run
    /// identical simulations, which is what lets the bench harness
    /// memoize results even for specs modified away from the registry
    /// versions (sensitivity sweeps and the like).
    pub fn write_fingerprint(&self, fp: &mut latte_gpusim::Fingerprinter) {
        fp.write_str(self.abbr);
        fp.write_str(self.name);
        fp.write_u64(match self.category {
            Category::CSens => 0,
            Category::CInSens => 1,
        });
        fp.write_usize(self.kernels.len());
        for kernel in &self.kernels {
            fp.write_str(&kernel.name);
            fp.write_usize(kernel.warps_per_sm);
            fp.write_usize(kernel.phases.len());
            for phase in &kernel.phases {
                phase.write_fingerprint(fp);
            }
        }
        self.generator.write_fingerprint(fp);
        fp.write_u64(self.seed);
    }

    /// Total loads per SM across all kernels (for run-length estimates).
    #[must_use]
    pub fn approx_loads_per_sm(&self) -> u64 {
        self.kernels
            .iter()
            .map(|k| {
                k.phases
                    .iter()
                    .map(|p| {
                        u64::from(p.loads_per_warp)
                            * (k.warps_per_sm as u64 * u64::from(p.active_warp_percent) / 100)
                    })
                    .sum::<u64>()
            })
            .sum()
    }
}

/// A [`Kernel`] generated from a [`KernelSpec`] + value model.
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    spec: KernelSpec,
    generator: LineGenerator,
    seed: u64,
}

impl SyntheticKernel {
    /// The underlying kernel spec.
    #[must_use]
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }
}

impl Kernel for SyntheticKernel {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        self.spec.warps_per_sm
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(PhaseStream {
            phases: self.spec.phases.clone(),
            warps: self.spec.warps_per_sm as u64,
            sm: sm as u64,
            warp: warp as u64,
            seed: self.seed,
            phase_idx: 0,
            load_idx: 0,
            pending_compute: false,
            barrier_emitted: false,
        })
    }

    fn line_data(&self, addr: LineAddr) -> CacheLine {
        self.generator.line(addr)
    }
}

/// Walks a phase script, emitting ops lazily.
struct PhaseStream {
    phases: Vec<PhaseSpec>,
    warps: u64,
    sm: u64,
    warp: u64,
    seed: u64,
    phase_idx: usize,
    load_idx: u64,
    pending_compute: bool,
    barrier_emitted: bool,
}

impl PhaseStream {
    fn phase(&self) -> &PhaseSpec {
        &self.phases[self.phase_idx]
    }

    fn active_in_phase(&self) -> bool {
        let p = self.phase();
        self.warp * 100 < u64::from(p.active_warp_percent) * self.warps
    }

    fn memory_op(&self, p: &PhaseSpec, i: u64) -> Op {
        let offset = p
            .pattern
            .line_offset(i, self.warp, self.warps, self.seed ^ (self.phase_idx as u64) << 48);
        let line = (self.sm << 32) | (u64::from(p.region) << REGION_SHIFT) | (offset & 0xff_ffff);
        let addr = line * CacheLine::SIZE_BYTES as u64;
        let is_store = p.store_percent > 0
            && mix64(self.seed ^ line ^ i.rotate_left(23)) % 100 < u64::from(p.store_percent);
        if is_store {
            // Stores target one 32-byte sector of the line; the sector
            // choice and payload are pure functions of (seed, line, i) so
            // replays — and the differential oracle — see identical
            // bytes. The sector offset stays inside the line (addr/128
            // is unchanged), so write-through timing is unaffected.
            let (sector, data) = store_payload(self.seed, line, i);
            Op::Store {
                addr: addr + sector as u64 * 32,
                data,
            }
        } else {
            Op::Load { addr }
        }
    }
}

/// The deterministic sector index and 32-byte payload of the `i`-th
/// memory op on `line` when that op is a store. Public so tests can
/// reconstruct the architecturally expected bytes of any workload store
/// without replaying the op stream.
#[must_use]
pub fn store_payload(seed: u64, line: u64, i: u64) -> (usize, [u8; 32]) {
    let sector = (mix64(seed ^ line.rotate_left(17) ^ i) % 4) as usize;
    let mut data = [0u8; 32];
    for (j, chunk) in data.chunks_exact_mut(8).enumerate() {
        let word = mix64(seed ^ line ^ (i << 8) ^ ((sector as u64) << 2) ^ j as u64);
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    (sector, data)
}

impl OpStream for PhaseStream {
    fn next_op(&mut self) -> Op {
        loop {
            if self.phase_idx >= self.phases.len() {
                return Op::Exit;
            }
            let p = *self.phase();
            let loads_done = !self.active_in_phase() || self.load_idx >= u64::from(p.loads_per_warp);
            if loads_done {
                // Phase epilogue: one barrier, then advance.
                if !self.barrier_emitted {
                    self.barrier_emitted = true;
                    return Op::Barrier;
                }
                self.phase_idx += 1;
                self.load_idx = 0;
                self.pending_compute = false;
                self.barrier_emitted = false;
                continue;
            }
            if self.pending_compute && p.compute_per_load > 0 {
                self.pending_compute = false;
                // One compute op per batch, preserving the compute:load
                // ratio regardless of the MLP factor.
                return Op::Compute {
                    cycles: p.compute_per_load * u32::from(p.mlp.max(1)),
                };
            }
            let op = self.memory_op(&p, self.load_idx);
            self.load_idx += 1;
            // Loads within an MLP batch are independent: all but the last
            // of each batch issue asynchronously, and the batch's compute
            // follows the blocking join.
            let mlp = u64::from(p.mlp.max(1));
            let batch_end = self.load_idx.is_multiple_of(mlp) || self.load_idx >= u64::from(p.loads_per_warp);
            if !batch_end {
                if let Op::Load { addr } = op {
                    return Op::LoadAsync { addr };
                }
                return op; // stores never block anyway
            }
            self.pending_compute = true;
            return op;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{RegionSpec, ValueProfile};

    fn bench() -> BenchmarkSpec {
        BenchmarkSpec {
            abbr: "TST",
            name: "test benchmark",
            category: Category::CSens,
            kernels: vec![KernelSpec {
                name: "k0".into(),
                warps_per_sm: 4,
                phases: vec![
                    PhaseSpec::loads(AccessPattern::Stream, 3, 2),
                    PhaseSpec::loads(
                        AccessPattern::UniformReuse {
                            working_set_lines: 8,
                        },
                        2,
                        0,
                    )
                    .in_region(1)
                    .with_active(50),
                ],
            }],
            generator: LineGenerator::new(
                vec![
                    RegionSpec {
                        profile: ValueProfile::SmallInts { max: 10 },
                        zero_percent: 0,
                    },
                    RegionSpec {
                        profile: ValueProfile::Pointers,
                        zero_percent: 0,
                    },
                ],
                7,
            ),
            seed: 7,
        }
    }

    #[test]
    fn phase_stream_walks_phases_with_barriers() {
        let b = bench();
        let kernels = b.build_kernels();
        let mut s = kernels[0].warp_program(0, 0);
        let mut ops = Vec::new();
        loop {
            let op = s.next_op();
            ops.push(op);
            if op == Op::Exit {
                break;
            }
        }
        // Phase 0: load, compute, load, compute, load, compute(pending...)
        // then barrier; phase 1 (warp 0 active at 50%): 2 loads; barrier;
        // exit.
        let barriers = ops.iter().filter(|o| matches!(o, Op::Barrier)).count();
        assert_eq!(barriers, 2);
        let loads = ops.iter().filter(|o| matches!(o, Op::Load { .. })).count();
        assert_eq!(loads, 5);
    }

    #[test]
    fn inactive_warps_skip_to_barrier() {
        let b = bench();
        let kernels = b.build_kernels();
        // Warp 3 of 4 is inactive in phase 1 (50%).
        let mut s = kernels[0].warp_program(0, 3);
        let mut loads = 0;
        loop {
            match s.next_op() {
                Op::Exit => break,
                Op::Load { .. } => loads += 1,
                _ => {}
            }
        }
        assert_eq!(loads, 3, "only phase 0 loads");
    }

    #[test]
    fn regions_map_to_address_bits() {
        let b = bench();
        let kernels = b.build_kernels();
        let mut s = kernels[0].warp_program(2, 0);
        let mut region_seen = [false; 2];
        loop {
            match s.next_op() {
                Op::Exit => break,
                Op::Load { addr } => {
                    let line = addr / 128;
                    assert_eq!(line >> 32, 2, "SM id in high bits");
                    let region = ((line >> REGION_SHIFT) & 0xff) as usize;
                    region_seen[region.min(1)] = true;
                }
                _ => {}
            }
        }
        assert!(region_seen[0] && region_seen[1]);
    }

    #[test]
    fn store_percent_generates_stores() {
        let spec = KernelSpec {
            name: "w".into(),
            warps_per_sm: 1,
            phases: vec![
                PhaseSpec::loads(AccessPattern::Stream, 200, 0).with_stores(50),
            ],
        };
        let b = BenchmarkSpec {
            kernels: vec![spec],
            ..bench()
        };
        let kernels = b.build_kernels();
        let mut s = kernels[0].warp_program(0, 0);
        let mut stores = 0;
        loop {
            match s.next_op() {
                Op::Exit => break,
                Op::Store { .. } => stores += 1,
                _ => {}
            }
        }
        assert!((60..140).contains(&stores), "got {stores}");
    }

    #[test]
    fn approx_loads_accounts_activity() {
        let b = bench();
        // Phase 0: 4 warps x 3 loads = 12; phase 1: 2 warps x 2 = 4.
        assert_eq!(b.approx_loads_per_sm(), 16);
    }

    #[test]
    fn kernel_is_replayable() {
        let b = bench();
        let kernels = b.build_kernels();
        let collect = || {
            let mut s = kernels[0].warp_program(1, 2);
            let mut v = Vec::new();
            loop {
                let op = s.next_op();
                v.push(op);
                if op == Op::Exit {
                    break;
                }
            }
            v
        };
        assert_eq!(collect(), collect());
    }
}
