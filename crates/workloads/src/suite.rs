//! The synthetic benchmark suite modelling Table III of the paper.
//!
//! Each entry reproduces the *characterised behaviour* of its namesake —
//! cache-sensitivity class, compressibility profile (Fig 2), latency
//! tolerance (Fig 1/4), and phase behaviour (Fig 5) — not its source code.
//! Parameters were chosen per the paper's per-benchmark observations:
//!
//! * graph codes (BFS, BC, FW, DJK) carry integer/pointer data → spatial
//!   value locality → BDI-friendly; BC and FW run few warps with little
//!   compute → poor latency tolerance (Fig 4: −22% and −47% under SC);
//! * numeric codes (KM, SS, MM, PRK) carry floating-point data drawn from
//!   small recurring alphabets → temporal value locality → SC-friendly;
//!   PRK is extremely latency tolerant (Fig 1);
//! * PF, MIS and CLR show BPC affinity (Fig 2, §V-E);
//! * KM, SS, MM and VM change their best mode *within* kernels, which is
//!   where LATTE-CC beats Kernel-OPT (Fig 15).

use crate::access::AccessPattern;
use crate::spec::{BenchmarkSpec, Category, KernelSpec, PhaseSpec};
use crate::values::{LineGenerator, RegionSpec, ValueProfile};

fn region(profile: ValueProfile, zero_percent: u8) -> RegionSpec {
    RegionSpec {
        profile,
        zero_percent,
    }
}

fn kernel(name: &str, warps: usize, phases: Vec<PhaseSpec>) -> KernelSpec {
    KernelSpec {
        name: name.to_owned(),
        warps_per_sm: warps,
        phases,
    }
}

/// Uniform-random reuse over a working set.
fn reuse(ws: u32) -> AccessPattern {
    AccessPattern::UniformReuse {
        working_set_lines: ws,
    }
}

/// Zipf reuse: `universe` lines, exponent `alpha_x100`/100.
fn zipf(universe: u32, alpha_x100: u32) -> AccessPattern {
    AccessPattern::Zipf {
        universe_lines: universe,
        alpha_x100,
    }
}

/// The full 23-benchmark suite (Table III plus KM, MIS and VM, which the
/// paper's figures use but its table omits).
#[must_use]
pub fn suite() -> Vec<BenchmarkSpec> {
    let mut v = Vec::new();

    // ---------------- C-InSens ----------------

    // Binomial Options: compute-bound on a tiny working set.
    v.push(BenchmarkSpec {
        abbr: "BO",
        name: "Binomial Options",
        category: Category::CInSens,
        kernels: vec![
            kernel("bo_k0", 32, vec![PhaseSpec::loads(reuse(48), 800, 10).with_mlp(4)]),
            kernel("bo_k1", 32, vec![PhaseSpec::loads(reuse(48), 800, 10).with_mlp(4)]),
        ],
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 128 }, 0xB0),
        seed: 0xB0,
    });

    // PathFinder: pure streaming over a grid.
    v.push(BenchmarkSpec {
        abbr: "PTH",
        name: "Path Finder",
        category: Category::CInSens,
        kernels: vec![kernel(
            "pth_k0",
            32,
            vec![PhaseSpec::loads(AccessPattern::Stream, 1500, 2).with_stores(10).with_mlp(4)],
        )],
        generator: LineGenerator::new(
            vec![region(ValueProfile::SmallInts { max: 64 }, 10)],
            0x47,
        ),
        seed: 0x47,
    });

    // Hotspot: stencil over a grid that fits in the L1.
    v.push(BenchmarkSpec {
        abbr: "HOT",
        name: "Hotspot",
        category: Category::CInSens,
        kernels: vec![kernel(
            "hot_k0",
            24,
            vec![PhaseSpec::loads(reuse(96), 1200, 5).with_stores(10).with_mlp(4)],
        )],
        generator: LineGenerator::uniform(ValueProfile::RandomFloats, 0x107),
        seed: 0x107,
    });

    // Fast Walsh Transform: streaming butterflies.
    v.push(BenchmarkSpec {
        abbr: "FWT",
        name: "Fast Walsh Transform",
        category: Category::CInSens,
        kernels: vec![
            kernel("fwt_k0", 48, vec![PhaseSpec::loads(AccessPattern::Stream, 900, 3).with_mlp(4)]),
            kernel("fwt_k1", 48, vec![PhaseSpec::loads(AccessPattern::Stream, 900, 3).with_mlp(4)]),
        ],
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 256 }, 0xF17),
        seed: 0xF17,
    });

    // Back Propagation: tiled layer sweeps, weak reuse.
    v.push(BenchmarkSpec {
        abbr: "BP",
        name: "Back Propagation",
        category: Category::CInSens,
        kernels: vec![kernel(
            "bp_k0",
            32,
            vec![PhaseSpec::loads(AccessPattern::Stream, 1200, 3)
                .with_stores(10)
                .with_mlp(4)],
        )],
        generator: LineGenerator::uniform(ValueProfile::RandomFloats, 0xB9),
        seed: 0xB9,
    });

    // Needleman-Wunsch: wavefront with few warps, small table.
    v.push(BenchmarkSpec {
        abbr: "NW",
        name: "Needleman-Wunsch",
        category: Category::CInSens,
        kernels: vec![kernel(
            "nw_k0",
            8,
            vec![PhaseSpec::loads(reuse(64), 1500, 1).with_stores(15)],
        )],
        generator: LineGenerator::uniform(ValueProfile::SmallInts { max: 256 }, 0x2b1),
        seed: 0x2b1,
    });

    // SRAD1: streaming stencil.
    v.push(BenchmarkSpec {
        abbr: "SR1",
        name: "SRAD1",
        category: Category::CInSens,
        kernels: vec![kernel(
            "sr1_k0",
            32,
            vec![PhaseSpec::loads(AccessPattern::Stream, 1200, 4).with_stores(15).with_mlp(4)],
        )],
        generator: LineGenerator::uniform(ValueProfile::RandomFloats, 0x521),
        seed: 0x521,
    });

    // Heartwall: few warps, tight tile reuse on SC-compressible floats —
    // the workload Static-SC damages most (+53% energy, Fig 13).
    v.push(BenchmarkSpec {
        abbr: "HW",
        name: "Heartwall",
        category: Category::CInSens,
        kernels: vec![kernel(
            "hw_k0",
            8,
            vec![PhaseSpec::loads(
                AccessPattern::Tiled {
                    tile_lines: 64,
                    reuse_factor: 6,
                },
                1500,
                1,
            )],
        )],
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 512 }, 0x4A11),
        seed: 0x4A11,
    });

    // Streamcluster: streaming with a small resident centre set.
    v.push(BenchmarkSpec {
        abbr: "SCL",
        name: "Streamcluster",
        category: Category::CInSens,
        kernels: vec![kernel(
            "scl_k0",
            24,
            vec![
                PhaseSpec::loads(AccessPattern::Stream, 1000, 2).with_mlp(4),
                PhaseSpec::loads(reuse(112), 600, 2).in_region(1).with_mlp(4),
            ],
        )],
        generator: LineGenerator::new(
            vec![
                region(ValueProfile::RandomFloats, 0),
                region(ValueProfile::RandomFloats, 0),
            ],
            0x5c1,
        ),
        seed: 0x5c1,
    });

    // B+Tree: pointer chasing over a hot index that fits; few warps.
    v.push(BenchmarkSpec {
        abbr: "BT",
        name: "B+Tree",
        category: Category::CInSens,
        kernels: vec![kernel(
            "bt_k0",
            12,
            vec![PhaseSpec::loads(zipf(128, 115), 1200, 1)],
        )],
        generator: LineGenerator::uniform(ValueProfile::SmallInts { max: 4096 }, 0xb7),
        seed: 0xb7,
    });

    // Word Count: streaming text.
    v.push(BenchmarkSpec {
        abbr: "WC",
        name: "Word Count",
        category: Category::CInSens,
        kernels: vec![kernel(
            "wc_k0",
            32,
            vec![PhaseSpec::loads(AccessPattern::Stream, 1500, 1).with_stores(20).with_mlp(4)],
        )],
        generator: LineGenerator::uniform(ValueProfile::Text, 0x3c),
        seed: 0x3c,
    });

    // BFS: highly compressible graph data but a universe so large that
    // even a 4x cache misses (bandwidth-bound, hence C-InSens).
    v.push(BenchmarkSpec {
        abbr: "BFS",
        name: "Breadth First Search",
        category: Category::CInSens,
        kernels: vec![
            kernel("bfs_k0", 48, vec![PhaseSpec::loads(zipf(3072, 45), 700, 1).with_mlp(2)]),
            kernel(
                "bfs_k1",
                48,
                vec![PhaseSpec::loads(zipf(3072, 45), 700, 1).in_region(1).with_mlp(2)],
            ),
        ],
        generator: LineGenerator::new(
            vec![
                region(
                    ValueProfile::Indices {
                        stride: 3,
                        noise_bits: 2,
                    },
                    0,
                ),
                region(ValueProfile::SmallInts { max: 1 << 16 }, 30),
            ],
            0xBF5,
        ),
        seed: 0xBF5,
    });

    // ---------------- C-Sens ----------------

    // Particle Filter: BPC-affine structured indices (Fig 18).
    v.push(BenchmarkSpec {
        abbr: "PF",
        name: "Particle Filter",
        category: Category::CSens,
        kernels: vec![kernel(
            "pf_k0",
            32,
            vec![PhaseSpec::loads(zipf(384, 95), 1500, 3).with_mlp(2)],
        )],
        generator: LineGenerator::uniform(
            ValueProfile::Indices {
                stride: 1,
                noise_bits: 3,
            },
            0x9F,
        ),
        seed: 0x9F,
    });

    // Similarity Score: the paper's showcase (Fig 5/16). Alternating
    // phases of high-tolerance/high-reuse (SC territory) and
    // low-tolerance/latency-critical execution; SC-friendly floats.
    v.push(BenchmarkSpec {
        abbr: "SS",
        name: "Similarity Score",
        category: Category::CSens,
        kernels: (0..2)
            .map(|k| {
                let mut phases = Vec::new();
                for _ in 0..2 {
                    phases.push(PhaseSpec::loads(zipf(768, 100), 800, 8).with_mlp(4));
                    phases.push(PhaseSpec::loads(zipf(112, 90), 1100, 0).with_active(25));
                }
                kernel(&format!("ss_k{k}"), 32, phases)
            })
            .collect(),
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 1024 }, 0x55),
        seed: 0x55,
    });

    // Matrix Multiplication: tiled reuse with occupancy swings.
    v.push(BenchmarkSpec {
        abbr: "MM",
        name: "Matrix Multiplication",
        category: Category::CSens,
        kernels: vec![kernel(
            "mm_k0",
            16,
            vec![
                // Tiles larger than the 128-line L1: the baseline spills,
                // a 3-4x compressed cache holds a whole tile (the classic
                // tiling crossover). Moderate warp counts keep miss
                // latency from being fully overlapped away.
                PhaseSpec::loads(
                    AccessPattern::Tiled {
                        tile_lines: 384,
                        reuse_factor: 6,
                    },
                    900,
                    5,
                )
                .with_mlp(4),
                PhaseSpec::loads(zipf(112, 90), 700, 0).with_active(40),
                PhaseSpec::loads(
                    AccessPattern::Tiled {
                        tile_lines: 384,
                        reuse_factor: 6,
                    },
                    900,
                    8,
                )
                .with_mlp(4),
            ],
        )],
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 768 }, 0x3131),
        seed: 0x3131,
    });

    // K-Means: centroid passes (hot, tolerant) alternate with assignment
    // sweeps (streaming, intolerant) — fine-grained adaptation pays.
    v.push(BenchmarkSpec {
        abbr: "KM",
        name: "K-Means",
        category: Category::CSens,
        kernels: vec![kernel("km_k0", 32, {
            let mut phases = Vec::new();
            for _ in 0..3 {
                phases.push(PhaseSpec::loads(zipf(576, 95), 900, 6).with_mlp(4));
                // Assignment sweep: streaming with little parallelism —
                // compression buys nothing here, and the best mode flips
                // from high-capacity back to none within the kernel.
                phases.push(PhaseSpec::loads(zipf(112, 90), 450, 0).with_active(30));
            }
            phases
        })],
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 768 }, 0x6b3),
        seed: 0x6b3,
    });

    // Betweenness Centrality: pointer-heavy graph walk, few warps, almost
    // no compute — BDI-favoured and latency-fragile (Fig 4: −22%).
    v.push(BenchmarkSpec {
        abbr: "BC",
        name: "Betweenness Centrality",
        category: Category::CSens,
        kernels: vec![
            kernel("bc_k0", 16, vec![PhaseSpec::loads(zipf(384, 85), 1500, 1)]),
            kernel(
                "bc_k1",
                16,
                vec![PhaseSpec::loads(zipf(320, 85), 1000, 1).in_region(1)],
            ),
        ],
        generator: LineGenerator::new(
            vec![
                region(ValueProfile::Pointers, 0),
                // Distance values cluster just beyond the VFT's reach: SC
                // compresses them a little — enough to pay its latency,
                // not enough to buy capacity (the paper's BC behaviour).
                region(ValueProfile::SmallInts { max: 2048 }, 15),
            ],
            0xBC,
        ),
        seed: 0xBC,
    });

    // Graph Coloring: BPC-affine (Fig 18), tolerant up to ~9 cycles
    // (Fig 1).
    v.push(BenchmarkSpec {
        abbr: "CLR",
        name: "Graph Coloring",
        category: Category::CSens,
        kernels: vec![kernel(
            "clr_k0",
            24,
            vec![PhaseSpec::loads(zipf(288, 90), 1400, 4).with_mlp(2)],
        )],
        generator: LineGenerator::uniform(
            ValueProfile::Indices {
                stride: 2,
                noise_bits: 4,
            },
            0xC18,
        ),
        seed: 0xC18,
    });

    // Floyd-Warshall: distance-matrix integers, few warps, zero compute —
    // the most latency-fragile workload (Fig 4: −47% under Static-SC).
    v.push(BenchmarkSpec {
        abbr: "FW",
        name: "Floyd Warshall",
        category: Category::CSens,
        kernels: vec![kernel(
            "fw_k0",
            10,
            vec![PhaseSpec::loads(zipf(256, 90), 1800, 0).with_stores(10)],
        )],
        generator: LineGenerator::uniform(ValueProfile::SmallInts { max: 20000 }, 0xF3),
        seed: 0xF3,
    });

    // Pagerank (SpMV): massive warp parallelism and compute density —
    // tolerates even 14-cycle hits (Fig 1); SC-friendly rank vector.
    v.push(BenchmarkSpec {
        abbr: "PRK",
        name: "Pagerank",
        category: Category::CSens,
        kernels: vec![kernel(
            "prk_k0",
            20,
            vec![
                PhaseSpec::loads(zipf(384, 75), 800, 20).with_mlp(4),
                PhaseSpec::loads(zipf(384, 75), 400, 20).in_region(1).with_mlp(4),
            ],
        )],
        generator: LineGenerator::new(
            vec![
                region(ValueProfile::HotFloats { alphabet: 48 }, 0),
                region(
                    ValueProfile::Indices {
                        stride: 1,
                        noise_bits: 2,
                    },
                    0,
                ),
            ],
            0x99C,
        ),
        seed: 0x99C,
    });

    // Dijkstra: graph adjacency + distance arrays, BDI-favoured.
    v.push(BenchmarkSpec {
        abbr: "DJK",
        name: "Dijkstra",
        category: Category::CSens,
        kernels: vec![kernel(
            "djk_k0",
            16,
            vec![
                PhaseSpec::loads(zipf(384, 80), 1200, 2),
                PhaseSpec::loads(zipf(384, 80), 800, 2).in_region(1),
            ],
        )],
        generator: LineGenerator::new(
            vec![
                region(ValueProfile::Pointers, 0),
                region(ValueProfile::SmallInts { max: 3000 }, 10),
            ],
            0xD7C,
        ),
        seed: 0xD7C,
    });

    // Maximal Independent Set: BPC-affine, moderately tolerant.
    v.push(BenchmarkSpec {
        abbr: "MIS",
        name: "Maximal Independent Set",
        category: Category::CSens,
        kernels: vec![kernel(
            "mis_k0",
            32,
            vec![PhaseSpec::loads(zipf(256, 85), 1200, 5).with_mlp(2)],
        )],
        generator: LineGenerator::uniform(
            ValueProfile::Indices {
                stride: 4,
                noise_bits: 3,
            },
            0x315,
        ),
        seed: 0x315,
    });

    // VM: phase-alternating mixed-type workload with a large adaptive
    // upside (Fig 6).
    v.push(BenchmarkSpec {
        abbr: "VM",
        name: "Virus Matching",
        category: Category::CSens,
        kernels: vec![kernel("vm_k0", 24, {
            let mut phases = Vec::new();
            for _ in 0..3 {
                phases.push(PhaseSpec::loads(zipf(576, 95), 700, 7).with_mlp(4));
                phases.push(
                    PhaseSpec::loads(zipf(112, 90), 800, 0)
                        .in_region(1)
                        .with_active(30),
                );
            }
            phases
        })],
        generator: LineGenerator::new(
            vec![
                region(ValueProfile::HotFloats { alphabet: 1024 }, 0),
                region(ValueProfile::SmallInts { max: 3000 }, 0),
            ],
            0x1111,
        ),
        seed: 0x1111,
    });

    v
}

/// Looks a benchmark up by its figure abbreviation (case-insensitive).
#[must_use]
pub fn benchmark(abbr: &str) -> Option<BenchmarkSpec> {
    suite()
        .into_iter()
        .find(|b| b.abbr.eq_ignore_ascii_case(abbr))
}

/// The cache-sensitive subset.
#[must_use]
pub fn c_sens() -> Vec<BenchmarkSpec> {
    suite()
        .into_iter()
        .filter(|b| b.category == Category::CSens)
        .collect()
}

/// The cache-insensitive subset.
#[must_use]
pub fn c_insens() -> Vec<BenchmarkSpec> {
    suite()
        .into_iter()
        .filter(|b| b.category == Category::CInSens)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 23);
        assert_eq!(c_sens().len(), 11);
        assert_eq!(c_insens().len(), 12);
    }

    #[test]
    fn abbreviations_are_unique() {
        let s = suite();
        let mut abbrs: Vec<&str> = s.iter().map(|b| b.abbr).collect();
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), s.len());
    }

    #[test]
    fn lookup_by_abbr() {
        assert!(benchmark("ss").is_some());
        assert!(benchmark("SS").is_some());
        assert!(benchmark("NOPE").is_none());
    }

    #[test]
    fn every_benchmark_builds_kernels() {
        for b in suite() {
            let kernels = b.build_kernels();
            assert!(!kernels.is_empty(), "{} has no kernels", b.abbr);
            assert!(
                b.approx_loads_per_sm() > 5_000,
                "{} too short: {}",
                b.abbr,
                b.approx_loads_per_sm()
            );
            assert!(
                b.approx_loads_per_sm() < 500_000,
                "{} too long: {}",
                b.abbr,
                b.approx_loads_per_sm()
            );
        }
    }

    #[test]
    fn warp_counts_fit_the_paper_machine() {
        for b in suite() {
            for k in &b.kernels {
                assert!(k.warps_per_sm >= 1 && k.warps_per_sm <= 48, "{}", b.abbr);
            }
        }
    }
}
