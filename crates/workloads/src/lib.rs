//! Synthetic GPGPU workloads modelling the benchmark suite of the
//! LATTE-CC paper (Table III).
//!
//! The paper drives GPGPU-Sim with 20+ CUDA benchmarks from Rodinia,
//! Pannotia, Mars and the NVIDIA SDK. Those binaries cannot run here, so
//! this crate rebuilds each benchmark as a *behavioural model* with two
//! independently calibrated components:
//!
//! * a **value model** ([`ValueProfile`]/[`LineGenerator`]) that
//!   reproduces the benchmark's compressibility profile — which
//!   algorithms compress its data, and by how much (Fig 2);
//! * an **access model** ([`AccessPattern`]/[`PhaseSpec`]) that
//!   reproduces its cache sensitivity (Table III), warp parallelism and
//!   compute density (latency tolerance, Fig 1/4), and phase behaviour
//!   (Fig 5).
//!
//! [`suite`] returns all 23 benchmarks; each builds into
//! [`SyntheticKernel`]s that plug directly into `latte_gpusim::Gpu`.
//!
//! # Example
//!
//! ```
//! use latte_gpusim::{Gpu, GpuConfig, UncompressedPolicy};
//! use latte_workloads::benchmark;
//!
//! let ss = benchmark("SS").expect("similarity score exists");
//! let kernels = ss.build_kernels();
//! let mut gpu = Gpu::new(&GpuConfig { num_sms: 1, ..GpuConfig::small() },
//!                        |_| Box::new(UncompressedPolicy));
//! let stats = gpu.run_kernel(&kernels[0]);
//! assert!(stats.l1.accesses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod spec;
mod suite;
mod values;
mod write_heavy;

pub use access::AccessPattern;
pub use spec::{store_payload, BenchmarkSpec, Category, KernelSpec, PhaseSpec, SyntheticKernel};
pub use suite::{benchmark, c_insens, c_sens, suite};
pub use write_heavy::{write_heavy_benchmark, write_heavy_suite};
pub use values::{mix64, LineGenerator, RegionSpec, ValueProfile, REGION_MASK, REGION_SHIFT};
