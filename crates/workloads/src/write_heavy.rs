//! Write-heavy synthetic benchmarks for the write-back data path.
//!
//! The Table III suite is read-dominated (stores are 10–20% of traffic
//! and fire-and-forget under write-through). These benchmarks invert
//! that: stores are a large fraction of every phase, working sets exceed
//! the L1 so dirty lines are *evicted and refetched within a kernel* —
//! the round trip that makes lost write-backs architecturally visible to
//! the differential oracle — and compute density varies so the
//! latency-tolerance-gated policies (LATTE-CC, Assist-Warp) actually
//! switch modes under store traffic.
//!
//! Kept separate from [`crate::suite`] so the paper-figure suite stays
//! at its pinned 23 benchmarks. Store targets are SM-disjoint by
//! construction (the SM id occupies the address high bits), which is
//! also what makes the write-back model coherence-free; see
//! `latte-gpusim`'s store documentation.

use crate::access::AccessPattern;
use crate::spec::{BenchmarkSpec, Category, KernelSpec, PhaseSpec};
use crate::values::{LineGenerator, RegionSpec, ValueProfile};

fn kernel(name: &str, warps: usize, phases: Vec<PhaseSpec>) -> KernelSpec {
    KernelSpec {
        name: name.to_owned(),
        warps_per_sm: warps,
        phases,
    }
}

fn reuse(ws: u32) -> AccessPattern {
    AccessPattern::UniformReuse {
        working_set_lines: ws,
    }
}

/// The write-heavy benchmarks: ≥40% stores, intra-kernel dirty-eviction
/// round trips, and a spread of latency tolerance.
#[must_use]
pub fn write_heavy_suite() -> Vec<BenchmarkSpec> {
    // Scatter-update: random read-modify-write over a working set well
    // past the L1, little compute — latency intolerant, every eviction
    // is a dirty write-back.
    let wsc = BenchmarkSpec {
        abbr: "WSC",
        name: "Write Scatter",
        category: Category::CSens,
        kernels: vec![kernel(
            "wsc_k0",
            16,
            vec![PhaseSpec::loads(reuse(512), 1200, 1).with_stores(50).with_mlp(2)],
        )],
        generator: LineGenerator::uniform(ValueProfile::SmallInts { max: 256 }, 0x5C1),
        seed: 0x5C1,
    };

    // Streaming writer with a re-read pass: phase 0 writes a large
    // region front to back, phase 1 reads it back — every dropped
    // write-back shows up as a stale refetch in phase 1.
    let wrr = BenchmarkSpec {
        abbr: "WRR",
        name: "Write Then Reread",
        category: Category::CSens,
        kernels: vec![kernel(
            "wrr_k0",
            24,
            vec![
                PhaseSpec::loads(reuse(384), 900, 2).with_stores(70).with_mlp(4),
                PhaseSpec::loads(reuse(384), 900, 2).with_mlp(4),
            ],
        )],
        generator: LineGenerator::new(
            vec![RegionSpec {
                profile: ValueProfile::Pointers,
                zero_percent: 10,
            }],
            0x33E,
        ),
        seed: 0x33E,
    };

    // Compute-dense accumulator: heavy compute between read-modify-write
    // pairs — latency tolerant, so assist warps and LATTE-CC both keep
    // compression on while the dirty traffic flows.
    let wac = BenchmarkSpec {
        abbr: "WAC",
        name: "Write Accumulate",
        category: Category::CInSens,
        kernels: vec![
            kernel(
                "wac_k0",
                32,
                vec![PhaseSpec::loads(reuse(256), 800, 8).with_stores(45).with_mlp(4)],
            ),
            kernel(
                "wac_k1",
                32,
                vec![PhaseSpec::loads(reuse(256), 800, 8).with_stores(45).with_mlp(4)],
            ),
        ],
        generator: LineGenerator::uniform(ValueProfile::HotFloats { alphabet: 64 }, 0xACC),
        seed: 0xACC,
    };

    vec![wsc, wrr, wac]
}

/// Looks a write-heavy benchmark up by abbreviation (case-insensitive).
#[must_use]
pub fn write_heavy_benchmark(abbr: &str) -> Option<BenchmarkSpec> {
    write_heavy_suite()
        .into_iter()
        .find(|b| b.abbr.eq_ignore_ascii_case(abbr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_gpusim::{Kernel, Op};

    #[test]
    fn suite_has_at_least_three_distinct_benchmarks() {
        let suite = write_heavy_suite();
        assert!(suite.len() >= 3);
        let mut abbrs: Vec<&str> = suite.iter().map(|b| b.abbr).collect();
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), suite.len());
        // None shadow a paper-suite abbreviation.
        for b in &suite {
            assert!(crate::benchmark(b.abbr).is_none(), "{} collides", b.abbr);
        }
    }

    #[test]
    fn every_benchmark_is_genuinely_write_heavy() {
        for bench in write_heavy_suite() {
            let kernels = bench.build_kernels();
            let mut stores = 0u64;
            let mut total = 0u64;
            for kernel in &kernels {
                let mut stream = kernel.warp_program(0, 0);
                loop {
                    match stream.next_op() {
                        Op::Exit => break,
                        Op::Store { .. } => {
                            stores += 1;
                            total += 1;
                        }
                        Op::Load { .. } | Op::LoadAsync { .. } => total += 1,
                        _ => {}
                    }
                }
            }
            assert!(
                stores * 100 >= total * 30,
                "{}: {stores}/{total} stores",
                bench.abbr
            );
        }
    }

    #[test]
    fn store_addresses_are_sm_disjoint() {
        for bench in write_heavy_suite() {
            let kernels = bench.build_kernels();
            for sm in 0..2u64 {
                let mut stream = kernels[0].warp_program(sm as usize, 0);
                loop {
                    match stream.next_op() {
                        Op::Exit => break,
                        Op::Store { addr, .. } => {
                            assert_eq!((addr / 128) >> 32, sm, "{}", bench.abbr);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
