//! Per-benchmark characterisation tests: each synthetic benchmark must
//! exhibit the compression affinity the paper attributes to its namesake
//! (Fig 2 / §II-A). These tests pin the calibration — if a value profile
//! change breaks a benchmark's identity, they fail.

use latte_cache::LineAddr;
use latte_compress::{Bdi, Bpc, CacheLine, Compressor, Sc, VftBuilder};
use latte_gpusim::{Kernel, Op};
use latte_workloads::{benchmark, suite, BenchmarkSpec};

/// Collects a sample of the benchmark's actual load-stream lines.
fn stream_lines(bench: &BenchmarkSpec, cap: usize) -> Vec<CacheLine> {
    let mut lines = Vec::with_capacity(cap);
    let kernels = bench.build_kernels();
    'outer: for kernel in &kernels {
        for warp in 0..kernel.warps_on_sm(0).min(8) {
            let mut stream = kernel.warp_program(0, warp);
            for _ in 0..2048 {
                match stream.next_op() {
                    Op::Load { addr } | Op::LoadAsync { addr } => {
                        lines.push(kernel.line_data(LineAddr::from_byte_addr(addr)));
                        if lines.len() >= cap {
                            break 'outer;
                        }
                    }
                    Op::Exit => break,
                    _ => {}
                }
            }
        }
    }
    lines
}

fn ratios(bench: &BenchmarkSpec) -> (f64, f64, f64) {
    let lines = stream_lines(bench, 800);
    assert!(!lines.is_empty(), "{} produced no loads", bench.abbr);
    let mut vft = VftBuilder::new();
    for l in lines.iter().take(lines.len() / 4) {
        vft.observe_line(l);
    }
    let sc = Sc::new(vft.build());
    let total = (lines.len() * CacheLine::SIZE_BYTES) as f64;
    let size = |c: &dyn Compressor| -> f64 {
        total / lines.iter().map(|l| c.compress(l).size_bytes()).sum::<usize>() as f64
    };
    (size(&Bdi::new()), size(&Bpc::new()), size(&sc))
}

#[test]
fn graph_benchmarks_are_bdi_affine() {
    for abbr in ["BC", "DJK", "CLR", "MIS", "PF", "BFS"] {
        let (bdi, _, sc) = ratios(&benchmark(abbr).expect("exists"));
        assert!(bdi > 2.0, "{abbr}: BDI ratio {bdi:.2} too low");
        assert!(
            bdi > sc,
            "{abbr}: BDI ({bdi:.2}) must beat SC ({sc:.2}) on spatial data"
        );
    }
}

#[test]
fn float_benchmarks_are_sc_affine() {
    for abbr in ["SS", "KM", "MM", "PRK"] {
        let (bdi, _, sc) = ratios(&benchmark(abbr).expect("exists"));
        assert!(sc > 1.8, "{abbr}: SC ratio {sc:.2} too low");
        assert!(
            sc > bdi + 0.5,
            "{abbr}: SC ({sc:.2}) must clearly beat BDI ({bdi:.2}) on temporal data"
        );
    }
}

#[test]
fn bpc_affine_benchmarks_prefer_bpc() {
    for abbr in ["PF", "MIS", "CLR", "BFS"] {
        let (bdi, bpc, _) = ratios(&benchmark(abbr).expect("exists"));
        assert!(
            bpc >= bdi,
            "{abbr}: BPC ({bpc:.2}) should be at least BDI ({bdi:.2})"
        );
    }
}

#[test]
fn incompressible_benchmarks_stay_incompressible() {
    for abbr in ["HOT", "SR1", "SCL", "BP"] {
        let (bdi, bpc, sc) = ratios(&benchmark(abbr).expect("exists"));
        assert!(
            bdi < 1.2 && bpc < 1.25 && sc < 1.5,
            "{abbr}: should resist compression, got BDI {bdi:.2} BPC {bpc:.2} SC {sc:.2}"
        );
    }
}

#[test]
fn suite_is_complete_and_balanced() {
    let s = suite();
    assert_eq!(s.len(), 23);
    let sens = s
        .iter()
        .filter(|b| b.category == latte_workloads::Category::CSens)
        .count();
    assert_eq!(sens, 11);
    for b in &s {
        // Every benchmark yields a usable insertion stream.
        assert!(stream_lines(b, 64).len() >= 32, "{}", b.abbr);
    }
}

#[test]
fn kernel_streams_are_sm_disjoint() {
    let bench = benchmark("SS").expect("exists");
    let kernels = bench.build_kernels();
    let addr_of = |sm: usize| -> u64 {
        let mut s = kernels[0].warp_program(sm, 0);
        loop {
            match s.next_op() {
                Op::Load { addr } | Op::LoadAsync { addr } => return addr,
                Op::Exit => panic!("no loads"),
                _ => {}
            }
        }
    };
    assert_ne!(addr_of(0) >> 39, addr_of(1) >> 39, "SMs share address space");
}

#[test]
fn latency_fragile_benchmarks_use_dependent_loads() {
    // The paper's most latency-fragile workloads (FW, BC) must model
    // dependent (mlp = 1) accesses.
    for abbr in ["FW", "BC", "HW"] {
        let bench = benchmark(abbr).expect("exists");
        for k in &bench.kernels {
            for p in &k.phases {
                assert_eq!(p.mlp, 1, "{abbr}/{}: expected dependent loads", k.name);
            }
        }
    }
}
