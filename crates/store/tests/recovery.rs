//! Property tests for store recovery: under *arbitrary* injected
//! corruption — truncation at any offset, any flipped byte, deleted
//! segments, a deleted or torn index — reopening the store always
//! succeeds, and every subsequent read returns either the exact
//! original bytes or a miss. Corruption may cost a recompute; it may
//! never produce a wrong answer.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use latte_store::{Store, StoreConfig, StoreFaultConfig};
use proptest::prelude::*;

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

fn fresh_root(tag: &str) -> PathBuf {
    let serial = DIR_SERIAL.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "latte-store-recovery-{tag}-{}-{serial}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn payload_for(key: u128) -> Vec<u8> {
    format!("result bytes for key {key:#034x} ")
        .repeat((key as usize % 5) + 1)
        .into_bytes()
}

/// Builds a store with `keys` populated and durably flushed.
fn populate(root: &Path, keys: u128) {
    let (store, report) = Store::open(StoreConfig::at(root.to_path_buf()));
    assert!(report.disk_enabled);
    for key in 0..keys {
        store.put(key, Arc::new(payload_for(key)));
    }
    store.flush();
    for key in 0..keys {
        assert!(store.durable(key), "key {key} not durable after flush");
    }
    store.shutdown();
}

fn segment_path(root: &Path, key: u128) -> PathBuf {
    root.join("segments").join(format!("{key:032x}.rec"))
}

/// One corruption to apply between runs. Positions are raw draws,
/// reduced modulo the file length at apply time so any offset is
/// reachable for any file size.
#[derive(Debug, Clone)]
enum Damage {
    Truncate { key: u128, pos: u64 },
    FlipByte { key: u128, pos: u64, mask: u8 },
    DeleteSegment { key: u128 },
    DeleteIndex,
    TornIndex { keep: u64 },
    StrayTmp { name_salt: u64 },
}

fn damage_strategy(keys: u128) -> impl Strategy<Value = Damage> {
    let keys = keys as u64;
    prop_oneof![
        3 => (0..keys, 0u64..1 << 20).prop_map(|(k, pos)| Damage::Truncate { key: k as u128, pos }),
        3 => (0..keys, 0u64..1 << 20, 1u8..=255).prop_map(|(k, pos, mask)| Damage::FlipByte {
            key: k as u128,
            pos,
            mask,
        }),
        1 => (0..keys).prop_map(|k| Damage::DeleteSegment { key: k as u128 }),
        1 => Just(Damage::DeleteIndex),
        1 => (0u64..1 << 16).prop_map(|keep| Damage::TornIndex { keep }),
        1 => (0u64..1 << 16).prop_map(|name_salt| Damage::StrayTmp { name_salt }),
    ]
}

fn apply(root: &Path, damage: &Damage) {
    match damage {
        Damage::Truncate { key, pos } => {
            let path = segment_path(root, *key);
            if let Ok(meta) = fs::metadata(&path) {
                if meta.len() > 0 {
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_len(pos % meta.len());
                    }
                }
            }
        }
        Damage::FlipByte { key, pos, mask } => {
            let path = segment_path(root, *key);
            if let Ok(mut bytes) = fs::read(&path) {
                if !bytes.is_empty() {
                    let i = (*pos as usize) % bytes.len();
                    bytes[i] ^= mask;
                    let _ = fs::write(&path, bytes);
                }
            }
        }
        Damage::DeleteSegment { key } => {
            let _ = fs::remove_file(segment_path(root, *key));
        }
        Damage::DeleteIndex => {
            let _ = fs::remove_file(root.join("index.v1"));
        }
        Damage::TornIndex { keep } => {
            let path = root.join("index.v1");
            if let Ok(text) = fs::read_to_string(&path) {
                let cut = (*keep as usize) % (text.len() + 1);
                let _ = fs::write(&path, &text[..cut]);
            }
        }
        Damage::StrayTmp { name_salt } => {
            let _ = fs::write(
                root.join("segments")
                    .join(format!("{name_salt:032x}.rec.tmp")),
                b"interrupted write",
            );
        }
    }
}

/// The core oracle: after any damage, a reopened store must serve
/// every key either exactly right or not at all, and a rewrite of the
/// lost keys must fully restore the store.
fn check_recovery(root: &Path, keys: u128, damages: &[Damage]) {
    for damage in damages {
        apply(root, damage);
    }

    let (store, report) = Store::open(StoreConfig::at(root.to_path_buf()));
    assert!(report.disk_enabled, "damage must never disable the store");
    let mut lost = Vec::new();
    for key in 0..keys {
        match store.get(key) {
            Some((bytes, _)) => {
                assert_eq!(
                    bytes.as_slice(),
                    payload_for(key).as_slice(),
                    "key {key}: store served wrong bytes after {damages:?}"
                );
            }
            None => lost.push(key),
        }
    }
    // Compute-through: every lost key is rewritable, and the store is
    // whole again afterwards.
    for &key in &lost {
        store.put(key, Arc::new(payload_for(key)));
    }
    store.flush();
    for key in 0..keys {
        let (bytes, _) = store
            .get(key)
            .unwrap_or_else(|| panic!("key {key} still missing after rewrite"));
        assert_eq!(bytes.as_slice(), payload_for(key).as_slice());
    }
    store.shutdown();

    // A second reopen must also be clean (recovery is idempotent).
    let (store, _) = Store::open(StoreConfig::at(root.to_path_buf()));
    for key in 0..keys {
        let (bytes, _) = store
            .get(key)
            .unwrap_or_else(|| panic!("key {key} missing after second reopen"));
        assert_eq!(bytes.as_slice(), payload_for(key).as_slice());
    }
    store.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_corruption_recovers_to_correct_or_miss(
        damages in prop::collection::vec(damage_strategy(6), 0..10)
    ) {
        let root = fresh_root("prop");
        populate(&root, 6);
        check_recovery(&root, 6, &damages);
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn every_truncation_offset_of_one_segment_recovers() {
    let root = fresh_root("trunc-sweep");
    populate(&root, 1);
    let len = fs::metadata(segment_path(&root, 0)).map(|m| m.len()).unwrap_or(0);
    assert!(len > 0);
    // Sweep a spread of truncation points including both edges.
    let mut cuts: Vec<u64> = (0..len).step_by((len as usize / 16).max(1)).collect();
    cuts.push(len - 1);
    for cut in cuts {
        populate(&root, 1); // restore
        apply(&root, &Damage::Truncate { key: 0, pos: cut });
        let (store, _) = Store::open(StoreConfig::at(root.clone()));
        match store.get(0) {
            Some((bytes, _)) => assert_eq!(bytes.as_slice(), payload_for(0).as_slice()),
            None => {}
        }
        store.shutdown();
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn seeded_injector_full_sweep_never_serves_wrong_bytes() {
    for seed in [1u64, 42, 0xdead_beef] {
        let root = fresh_root(&format!("inject-{seed}"));
        populate(&root, 12);
        let mut config = StoreConfig::at(root.clone());
        config.faults = Some(StoreFaultConfig { seed, rate: 0.5 });
        let (store, report) = Store::open(config);
        assert!(report.disk_enabled);
        let mut misses = 0u64;
        for key in 0..12u128 {
            match store.get(key) {
                Some((bytes, _)) => {
                    assert_eq!(bytes.as_slice(), payload_for(key).as_slice(), "seed {seed} key {key}");
                }
                None => misses += 1,
            }
        }
        let stats = store.stats();
        assert_eq!(
            stats.injected_faults > 0,
            misses > 0 || stats.quarantined > 0 || stats.missing > 0,
            "seed {seed}: faults and misses must correlate ({stats:?})"
        );
        store.shutdown();
        let _ = fs::remove_dir_all(&root);
    }
}
