//! The durable tier: checksummed segment files, a serialized writer
//! with bounded retry, and a recovery scan that quarantines instead of
//! failing.
//!
//! On-disk layout under the store root:
//!
//! ```text
//! <root>/segments/<key:032x>.rec      one record per key
//! <root>/segments/<key:032x>.rec.tmp  in-flight write (removed on open)
//! <root>/index.v1                     checksummed list of durable keys
//! <root>/quarantine/<name>.<tag>.bad  records that failed validation
//! ```
//!
//! Invariants:
//!
//! * A segment becomes visible only via `rename` of a fully written
//!   temp file — readers never observe a half-written record.
//! * Every read re-validates the record checksum; a record that fails
//!   is moved to quarantine and reported as a miss. Corruption can cost
//!   a recompute, never a wrong answer.
//! * Opening a store with torn temp files, a missing or corrupt index,
//!   or mangled segments always succeeds: damage is counted and
//!   quarantined, and the store carries on with what validates.
//! * All writes funnel through one writer thread (serialized, bounded
//!   retry with backoff); if the filesystem is unwritable the tier
//!   degrades to read-only and counts dropped writes.

// latte-lint: allow-file(F1, reason = "this module implements the temp+rename atomic writer the rule mandates; every create/write here is renamed into place or is the writability probe")

use std::collections::HashSet;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use crate::faults::{StoreFaultConfig, StoreFaultInjector};
use crate::record;

/// Index file name (versioned so a future format can coexist).
const INDEX_FILE: &str = "index.v1";
/// First line of the index file.
const INDEX_HEADER: &str = "latte-store-index v1";
/// Backoff schedule for transient write errors, in milliseconds.
const RETRY_BACKOFF_MS: [u64; 3] = [1, 5, 25];

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where the kill-point harness simulates a crash inside one put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Crash with the temp file half-written.
    MidTempWrite,
    /// Crash after the temp file is complete but before the rename.
    BeforeRename,
    /// Crash after the rename but before the key is indexed.
    AfterRename,
}

/// Kill the writer at `point` while serving the `at_put`-th put
/// (1-based). After the kill the writer behaves like a dead process:
/// it ignores every later command and never persists the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Which crash site to simulate.
    pub point: KillPoint,
    /// 1-based ordinal of the put to crash in.
    pub at_put: u64,
}

/// Configuration for opening the durable tier.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Store root directory (created if absent).
    pub dir: PathBuf,
    /// Optional seeded fault injection (`--inject-store`).
    pub faults: Option<StoreFaultConfig>,
    /// Optional simulated mid-write crash (test harness only).
    pub kill: Option<KillSpec>,
}

impl DiskConfig {
    /// A plain config with no fault injection.
    #[must_use]
    pub fn new(dir: PathBuf) -> DiskConfig {
        DiskConfig {
            dir,
            faults: None,
            kill: None,
        }
    }
}

/// What the recovery scan found while opening the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The tier opened without write permission.
    pub read_only: bool,
    /// Leftover `.tmp` files from interrupted writes, removed.
    pub torn_removed: u64,
    /// Valid segments found outside the index and adopted into it.
    pub adopted: u64,
    /// Segments that failed validation and were quarantined.
    pub quarantined: u64,
    /// Index entries whose segment file no longer exists, dropped.
    pub missing_dropped: u64,
    /// The index file was absent or corrupt and was rebuilt by a full
    /// segment scan.
    pub index_rebuilt: bool,
}

/// Runtime counter snapshot for the `--timings` report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Reads that validated and returned a payload.
    pub reads_ok: u64,
    /// Records quarantined after failing validation on read.
    pub quarantined: u64,
    /// Indexed records whose file had vanished at read time.
    pub missing: u64,
    /// Records durably written (temp file renamed into place).
    pub durable_writes: u64,
    /// Writes dropped because the tier is read-only or the writer died.
    pub dropped_writes: u64,
    /// Writes abandoned after exhausting the retry budget.
    pub write_failures: u64,
    /// Faults injected by `--inject-store`.
    pub injected_faults: u64,
}

#[derive(Debug, Default)]
struct Counters {
    reads_ok: AtomicU64,
    quarantined: AtomicU64,
    missing: AtomicU64,
    durable_writes: AtomicU64,
    dropped_writes: AtomicU64,
    write_failures: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    /// Keys with a durable, last-known-good segment file.
    index: Mutex<HashSet<u128>>,
    /// Keys whose corrupt segment could be neither moved nor deleted;
    /// never read again this process.
    denylist: Mutex<HashSet<u128>>,
    counters: Counters,
    /// The simulated-crash flag: once set, the writer is "dead".
    crashed: AtomicBool,
}

enum Cmd {
    Put { key: u128, payload: Arc<Vec<u8>> },
    Flush(mpsc::Sender<()>),
    Shutdown,
}

/// The disk-backed tier. See the module docs for the layout and
/// invariants.
#[derive(Debug)]
pub struct DiskTier {
    root: PathBuf,
    segments: PathBuf,
    quarantine: PathBuf,
    shared: Arc<Shared>,
    read_only: bool,
    injector: Option<Arc<StoreFaultInjector>>,
    writer_tx: Option<mpsc::Sender<Cmd>>,
    writer_join: Mutex<Option<thread::JoinHandle<()>>>,
}

impl DiskTier {
    /// Opens (creating if needed) the store at `config.dir`, running
    /// the recovery scan.
    ///
    /// # Errors
    ///
    /// Only if the directory tree cannot even be created or read — the
    /// caller should then degrade to the in-memory tier. Damage inside
    /// an openable store never errors; it is quarantined and counted in
    /// the [`RecoveryReport`].
    pub fn open(config: DiskConfig) -> io::Result<(DiskTier, RecoveryReport)> {
        let root = config.dir;
        let segments = root.join("segments");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&segments)?;
        fs::create_dir_all(&quarantine)?;

        let read_only = !probe_writable(&root);
        let injector = config
            .faults
            .map(|f| Arc::new(StoreFaultInjector::new(f)));

        // Open-time fault: lose the index, forcing a full rebuild.
        if let Some(inj) = injector.as_deref() {
            if !read_only && inj.roll_index_delete() {
                let _ = fs::remove_file(root.join(INDEX_FILE));
            }
        }

        let mut report = RecoveryReport {
            read_only,
            ..RecoveryReport::default()
        };
        let index = recover(&root, &segments, &quarantine, read_only, &mut report);

        let shared = Arc::new(Shared {
            index: Mutex::new(index),
            denylist: Mutex::new(HashSet::new()),
            counters: Counters::default(),
            crashed: AtomicBool::new(false),
        });

        let (writer_tx, writer_join) = if read_only {
            (None, None)
        } else {
            let (tx, rx) = mpsc::channel();
            let ctx = WriterCtx {
                root: root.clone(),
                segments: segments.clone(),
                shared: Arc::clone(&shared),
                kill: config.kill,
            };
            let join = thread::Builder::new()
                .name("latte-store-writer".into())
                .spawn(move || writer_loop(&ctx, &rx))?;
            (Some(tx), Some(join))
        };

        Ok((
            DiskTier {
                root,
                segments,
                quarantine,
                shared,
                read_only,
                injector,
                writer_tx,
                writer_join: Mutex::new(writer_join),
            },
            report,
        ))
    }

    /// `true` when the tier opened without write permission.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// `true` when `key` has a durable segment (written and renamed
    /// into place, or adopted by the recovery scan).
    #[must_use]
    pub fn durable(&self, key: u128) -> bool {
        lock(&self.shared.index).contains(&key)
    }

    /// Number of durable keys.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.shared.index).len()
    }

    /// `true` when no keys are durable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads and validates the record for `key`. Any validation
    /// failure quarantines the file and returns `None` — a corrupt
    /// entry is a miss, never an answer.
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        if lock(&self.shared.denylist).contains(&key) {
            return None;
        }
        if !lock(&self.shared.index).contains(&key) {
            return None;
        }
        let path = self.segment_path(key);
        if let Some(inj) = self.injector.as_deref() {
            if !self.read_only {
                if let Some((kind, ordinal)) = inj.roll_read() {
                    inj.apply(kind, ordinal, &path);
                }
            }
        }
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.shared.counters.missing.fetch_add(1, Ordering::Relaxed);
                lock(&self.shared.index).remove(&key);
                return None;
            }
        };
        match record::decode(&bytes, key) {
            Ok(payload) => {
                self.shared.counters.reads_ok.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            Err(err) => {
                self.quarantine_segment(key, &path, err.tag());
                self.shared
                    .counters
                    .quarantined
                    .fetch_add(1, Ordering::Relaxed);
                lock(&self.shared.index).remove(&key);
                None
            }
        }
    }

    /// Queues `payload` for durable storage under `key`. Returns
    /// immediately; durability is observable later via
    /// [`Self::durable`]. On a read-only tier the write is counted as
    /// dropped.
    pub fn put(&self, key: u128, payload: Arc<Vec<u8>>) {
        if lock(&self.shared.index).contains(&key) {
            return; // already durable; content-addressed, so identical
        }
        match &self.writer_tx {
            Some(tx) => {
                if tx.send(Cmd::Put { key, payload }).is_err() {
                    self.shared
                        .counters
                        .dropped_writes
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.shared
                    .counters
                    .dropped_writes
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Blocks until every queued write has been applied and the index
    /// is persisted (or the writer has died).
    pub fn flush(&self) {
        if let Some(tx) = &self.writer_tx {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(Cmd::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv_timeout(Duration::from_secs(30));
            }
        }
    }

    /// Flushes, persists the index, and joins the writer thread.
    /// Idempotent.
    pub fn shutdown(&self) {
        if let Some(tx) = &self.writer_tx {
            let _ = tx.send(Cmd::Shutdown);
        }
        if let Some(join) = lock(&self.writer_join).take() {
            let _ = join.join();
        }
    }

    /// Runtime counter snapshot.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        let c = &self.shared.counters;
        DiskStats {
            reads_ok: c.reads_ok.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            missing: c.missing.load(Ordering::Relaxed),
            durable_writes: c.durable_writes.load(Ordering::Relaxed),
            dropped_writes: c.dropped_writes.load(Ordering::Relaxed),
            write_failures: c.write_failures.load(Ordering::Relaxed),
            injected_faults: self.injector.as_deref().map_or(0, StoreFaultInjector::injected),
        }
    }

    /// The store root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn segment_path(&self, key: u128) -> PathBuf {
        self.segments.join(format!("{key:032x}.rec"))
    }

    /// Moves a failed segment out of the way. Escalation ladder:
    /// rename into quarantine → delete → in-memory denylist. Each step
    /// only runs if the previous one failed, so a read-only filesystem
    /// still ends with the entry unreachable.
    fn quarantine_segment(&self, key: u128, path: &Path, tag: &str) {
        let dest = self.quarantine.join(format!("{key:032x}.{tag}.bad"));
        if fs::rename(path, &dest).is_ok() {
            return;
        }
        if fs::remove_file(path).is_ok() {
            return;
        }
        lock(&self.shared.denylist).insert(key);
    }
}

impl Drop for DiskTier {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Can we create, write, and remove a file under `root`?
fn probe_writable(root: &Path) -> bool {
    let probe = root.join(format!(".probe.{}", std::process::id()));
    let ok = fs::File::create(&probe)
        .and_then(|mut f| f.write_all(b"probe"))
        .is_ok();
    let _ = fs::remove_file(&probe);
    ok
}

/// The recovery scan. Returns the set of keys the store will trust.
fn recover(
    root: &Path,
    segments: &Path,
    quarantine: &Path,
    read_only: bool,
    report: &mut RecoveryReport,
) -> HashSet<u128> {
    let indexed = match load_index(&root.join(INDEX_FILE)) {
        Some(keys) => keys,
        None => {
            report.index_rebuilt = true;
            HashSet::new()
        }
    };

    let mut trusted = HashSet::new();
    let mut seen = HashSet::new();
    let entries = match fs::read_dir(segments) {
        Ok(entries) => entries,
        Err(_) => return trusted,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".tmp") {
            // A torn write from a previous process; the rename never
            // happened, so nothing ever referenced this file.
            if !read_only && fs::remove_file(&path).is_ok() {
                report.torn_removed += 1;
            }
            continue;
        }
        let Some(key) = parse_segment_name(&name) else {
            // Not one of ours; move it aside so it cannot shadow a
            // future segment.
            if !read_only {
                let dest = quarantine.join(format!("{name}.foreign.bad"));
                let _ = fs::rename(&path, dest);
            }
            continue;
        };
        seen.insert(key);
        if indexed.contains(&key) {
            // Indexed segments are trusted now and re-validated on
            // every read.
            trusted.insert(key);
            continue;
        }
        // Unindexed segment (crash after rename, or lost index):
        // adopt only what fully validates.
        let valid = fs::read(&path)
            .ok()
            .and_then(|bytes| record::decode(&bytes, key).map(<[u8]>::to_vec).ok());
        match valid {
            Some(_) => {
                trusted.insert(key);
                report.adopted += 1;
            }
            None => {
                let tag = match fs::read(&path) {
                    Ok(bytes) => match record::decode(&bytes, key) {
                        Err(err) => err.tag(),
                        Ok(_) => "race",
                    },
                    Err(_) => "unreadable",
                };
                if !read_only {
                    let dest = quarantine.join(format!("{key:032x}.{tag}.bad"));
                    if fs::rename(&path, dest).is_err() {
                        let _ = fs::remove_file(&path);
                    }
                }
                report.quarantined += 1;
            }
        }
    }
    report.missing_dropped = indexed.iter().filter(|k| !seen.contains(k)).count() as u64;
    trusted
}

fn parse_segment_name(name: &str) -> Option<u128> {
    let stem = name.strip_suffix(".rec")?;
    if stem.len() != 32 {
        return None;
    }
    u128::from_str_radix(stem, 16).ok()
}

/// Loads the index file; `None` if absent or failing any validation
/// (the caller then rebuilds by scanning segments).
fn load_index(path: &Path) -> Option<HashSet<u128>> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != INDEX_HEADER {
        return None;
    }
    let mut keys = HashSet::new();
    let mut body = String::new();
    body.push_str(INDEX_HEADER);
    body.push('\n');
    for line in lines {
        if let Some(sum_hex) = line.strip_prefix("sum ") {
            let stored = u64::from_str_radix(sum_hex, 16).ok()?;
            if record::checksum(body.as_bytes()) != stored {
                return None;
            }
            return Some(keys);
        }
        if line.len() != 32 {
            return None;
        }
        keys.insert(u128::from_str_radix(line, 16).ok()?);
        body.push_str(line);
        body.push('\n');
    }
    None // no trailing checksum line: torn index write
}

/// Serializes the index with a trailing checksum; written temp+rename.
fn persist_index(root: &Path, keys: &HashSet<u128>) -> io::Result<()> {
    let mut sorted: Vec<&u128> = keys.iter().collect();
    sorted.sort_unstable();
    let mut body = String::with_capacity(sorted.len() * 33 + 64);
    body.push_str(INDEX_HEADER);
    body.push('\n');
    for key in sorted {
        body.push_str(&format!("{key:032x}\n"));
    }
    let sum = record::checksum(body.as_bytes());
    body.push_str(&format!("sum {sum:016x}\n"));
    let tmp = root.join(format!("{INDEX_FILE}.tmp"));
    fs::write(&tmp, body)?;
    fs::rename(&tmp, root.join(INDEX_FILE))
}

struct WriterCtx {
    root: PathBuf,
    segments: PathBuf,
    shared: Arc<Shared>,
    kill: Option<KillSpec>,
}

fn writer_loop(ctx: &WriterCtx, rx: &mpsc::Receiver<Cmd>) {
    let mut put_ordinal: u64 = 0;
    while let Ok(cmd) = rx.recv() {
        let crashed = ctx.shared.crashed.load(Ordering::Relaxed);
        match cmd {
            Cmd::Put { key, payload } => {
                if crashed {
                    // A crashed writer is a dead process: the write is
                    // simply lost.
                    ctx.shared
                        .counters
                        .dropped_writes
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                put_ordinal += 1;
                let kill_now = ctx
                    .kill
                    .filter(|k| k.at_put == put_ordinal)
                    .map(|k| k.point);
                write_one(ctx, key, &payload, kill_now);
            }
            Cmd::Flush(ack) => {
                if !crashed {
                    let _ = persist_index(&ctx.root, &lock(&ctx.shared.index));
                }
                let _ = ack.send(());
            }
            Cmd::Shutdown => {
                if !crashed {
                    let _ = persist_index(&ctx.root, &lock(&ctx.shared.index));
                }
                break;
            }
        }
    }
}

/// Writes one record durably: encode → temp file → rename → index.
/// Transient I/O errors retry on the bounded backoff schedule; after
/// that the write is abandoned and counted as a failure (the result
/// still exists in memory, so correctness is unaffected).
fn write_one(ctx: &WriterCtx, key: u128, payload: &[u8], kill_now: Option<KillPoint>) {
    let rec = record::encode(key, payload);
    let tmp = ctx.segments.join(format!("{key:032x}.rec.tmp"));
    let dest = ctx.segments.join(format!("{key:032x}.rec"));

    if let Some(point) = kill_now {
        simulate_crash(ctx, point, &rec, &tmp, &dest);
        return;
    }

    for (attempt, backoff) in RETRY_BACKOFF_MS.iter().enumerate() {
        match try_write(&rec, &tmp, &dest) {
            Ok(()) => {
                lock(&ctx.shared.index).insert(key);
                ctx.shared
                    .counters
                    .durable_writes
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) if attempt + 1 < RETRY_BACKOFF_MS.len() => {
                thread::sleep(Duration::from_millis(*backoff));
            }
            Err(_) => break,
        }
    }
    let _ = fs::remove_file(&tmp);
    ctx.shared
        .counters
        .write_failures
        .fetch_add(1, Ordering::Relaxed);
}

fn try_write(rec: &[u8], tmp: &Path, dest: &Path) -> io::Result<()> {
    let mut file = fs::File::create(tmp)?;
    file.write_all(rec)?;
    file.sync_all()?;
    drop(file);
    fs::rename(tmp, dest)
}

/// Leaves the filesystem exactly as a crash at `point` would, then
/// marks the writer dead.
fn simulate_crash(ctx: &WriterCtx, point: KillPoint, rec: &[u8], tmp: &Path, dest: &Path) {
    match point {
        KillPoint::MidTempWrite => {
            if let Ok(mut file) = fs::File::create(tmp) {
                let _ = file.write_all(&rec[..rec.len() / 2]);
            }
        }
        KillPoint::BeforeRename => {
            if let Ok(mut file) = fs::File::create(tmp) {
                let _ = file.write_all(rec);
            }
        }
        KillPoint::AfterRename => {
            if let Ok(mut file) = fs::File::create(tmp) {
                let _ = file.write_all(rec);
                let _ = fs::rename(tmp, dest);
            }
            // ...but the key is never indexed and the index is never
            // persisted again: recovery must adopt the orphan segment.
        }
    }
    ctx.shared.crashed.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "latte-store-disk-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_plain(dir: &Path) -> (DiskTier, RecoveryReport) {
        DiskTier::open(DiskConfig::new(dir.to_path_buf())).unwrap()
    }

    fn put_and_flush(tier: &DiskTier, key: u128, payload: &[u8]) {
        tier.put(key, Arc::new(payload.to_vec()));
        tier.flush();
    }

    #[test]
    fn write_then_read_round_trips() {
        let root = tmp_root("roundtrip");
        let (tier, report) = open_plain(&root);
        assert_eq!(report, RecoveryReport { index_rebuilt: true, ..Default::default() });
        put_and_flush(&tier, 7, b"payload");
        assert!(tier.durable(7));
        assert_eq!(tier.get(7).as_deref(), Some(&b"payload"[..]));
        assert_eq!(tier.stats().durable_writes, 1);
        tier.shutdown();
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_trusts_persisted_index() {
        let root = tmp_root("reopen");
        {
            let (tier, _) = open_plain(&root);
            put_and_flush(&tier, 1, b"one");
            put_and_flush(&tier, 2, b"two");
            tier.shutdown();
        }
        let (tier, report) = open_plain(&root);
        assert!(!report.index_rebuilt);
        assert_eq!(report.adopted, 0);
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.get(1).as_deref(), Some(&b"one"[..]));
        assert_eq!(tier.get(2).as_deref(), Some(&b"two"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_index_rebuilds_by_validation() {
        let root = tmp_root("rebuild");
        {
            let (tier, _) = open_plain(&root);
            put_and_flush(&tier, 1, b"one");
            tier.shutdown();
        }
        fs::remove_file(root.join(INDEX_FILE)).unwrap();
        let (tier, report) = open_plain(&root);
        assert!(report.index_rebuilt);
        assert_eq!(report.adopted, 1);
        assert_eq!(tier.get(1).as_deref(), Some(&b"one"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_segment_is_quarantined_on_read() {
        let root = tmp_root("quarantine");
        let (tier, _) = open_plain(&root);
        put_and_flush(&tier, 5, b"soon to be corrupt");
        let seg = root.join("segments").join(format!("{:032x}.rec", 5u128));
        let mut bytes = fs::read(&seg).unwrap();
        let len = bytes.len();
        bytes[len - 3] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        assert_eq!(tier.get(5), None, "corrupt entry must be a miss");
        assert_eq!(tier.stats().quarantined, 1);
        assert!(!tier.durable(5));
        assert!(!seg.exists(), "segment must be moved out of segments/");
        let quarantined: Vec<_> = fs::read_dir(root.join("quarantine"))
            .unwrap()
            .flatten()
            .collect();
        assert_eq!(quarantined.len(), 1);
        // And once quarantined it can be rewritten.
        put_and_flush(&tier, 5, b"soon to be corrupt");
        assert_eq!(tier.get(5).as_deref(), Some(&b"soon to be corrupt"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tmp_files_are_removed_on_open() {
        let root = tmp_root("torn");
        fs::create_dir_all(root.join("segments")).unwrap();
        fs::write(root.join("segments/deadbeef.rec.tmp"), b"half a rec").unwrap();
        let (_tier, report) = open_plain(&root);
        assert_eq!(report.torn_removed, 1);
        assert!(!root.join("segments/deadbeef.rec.tmp").exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unindexed_garbage_is_quarantined_on_open() {
        let root = tmp_root("garbage");
        fs::create_dir_all(root.join("segments")).unwrap();
        // A keyed name with invalid contents.
        fs::write(
            root.join("segments").join(format!("{:032x}.rec", 9u128)),
            b"not a record",
        )
        .unwrap();
        // A foreign file.
        fs::write(root.join("segments/readme.txt"), b"hello").unwrap();
        let (tier, report) = open_plain(&root);
        assert_eq!(report.quarantined, 1);
        assert!(tier.is_empty());
        assert_eq!(tier.get(9), None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn index_entry_without_file_is_dropped() {
        let root = tmp_root("missing");
        {
            let (tier, _) = open_plain(&root);
            put_and_flush(&tier, 3, b"three");
            tier.shutdown();
        }
        fs::remove_file(root.join("segments").join(format!("{:032x}.rec", 3u128))).unwrap();
        let (tier, report) = open_plain(&root);
        assert_eq!(report.missing_dropped, 1);
        assert!(!tier.durable(3));
        assert_eq!(tier.get(3), None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_points_lose_at_most_the_in_flight_write() {
        for (point, survives_on_disk) in [
            (KillPoint::MidTempWrite, false),
            (KillPoint::BeforeRename, false),
            (KillPoint::AfterRename, true),
        ] {
            let root = tmp_root(&format!("kill-{point:?}"));
            {
                let (tier, _) = DiskTier::open(DiskConfig {
                    dir: root.clone(),
                    faults: None,
                    kill: Some(KillSpec { point, at_put: 2 }),
                })
                .unwrap();
                put_and_flush(&tier, 1, b"before crash");
                tier.put(2, Arc::new(b"crashes".to_vec()));
                tier.put(3, Arc::new(b"after crash".to_vec()));
                tier.flush();
                assert!(!tier.durable(2), "{point:?}: crashed write must not be durable");
                assert!(!tier.durable(3), "{point:?}: post-crash write must be dropped");
                tier.shutdown();
            }
            let (tier, report) = open_plain(&root);
            // Key 1 was written and the index was persisted by the
            // pre-crash flush; it must always survive.
            assert_eq!(
                tier.get(1).as_deref(),
                Some(&b"before crash"[..]),
                "{point:?}: pre-crash durable write lost"
            );
            if survives_on_disk {
                // AfterRename: the segment landed; recovery adopts it.
                assert_eq!(report.adopted, 1, "{point:?}");
                assert_eq!(tier.get(2).as_deref(), Some(&b"crashes"[..]));
            } else {
                assert_eq!(tier.get(2), None, "{point:?}: torn write must be a miss");
                assert_eq!(report.adopted, 0, "{point:?}");
            }
            assert_eq!(tier.get(3), None, "{point:?}");
            // No stale tmp files remain after recovery.
            let tmps: Vec<_> = fs::read_dir(root.join("segments"))
                .unwrap()
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
                .collect();
            assert!(tmps.is_empty(), "{point:?}: {tmps:?}");
            fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn duplicate_put_is_skipped() {
        let root = tmp_root("dup");
        let (tier, _) = open_plain(&root);
        put_and_flush(&tier, 4, b"four");
        put_and_flush(&tier, 4, b"four");
        assert_eq!(tier.stats().durable_writes, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn injected_faults_never_serve_corrupt_data() {
        let root = tmp_root("inject");
        let (tier, _) = DiskTier::open(DiskConfig {
            dir: root.clone(),
            faults: Some(StoreFaultConfig { seed: 1234, rate: 1.0 }),
            kill: None,
        })
        .unwrap();
        for key in 0..8u128 {
            put_and_flush(&tier, key, format!("payload {key}").as_bytes());
        }
        // Every read is corrupted first; all must come back as misses,
        // never as wrong bytes.
        for key in 0..8u128 {
            assert_eq!(tier.get(key), None, "key {key}");
        }
        let stats = tier.stats();
        assert_eq!(stats.injected_faults, 8);
        assert_eq!(stats.reads_ok, 0);
        assert_eq!(stats.quarantined + stats.missing, 8);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_index_file_forces_rebuild() {
        let root = tmp_root("torn-index");
        {
            let (tier, _) = open_plain(&root);
            put_and_flush(&tier, 6, b"six");
            tier.shutdown();
        }
        // Chop the checksum line off the index.
        let index = root.join(INDEX_FILE);
        let text = fs::read_to_string(&index).unwrap();
        let cut = text.rfind("sum ").unwrap();
        fs::write(&index, &text[..cut]).unwrap();
        let (tier, report) = open_plain(&root);
        assert!(report.index_rebuilt);
        assert_eq!(tier.get(6).as_deref(), Some(&b"six"[..]));
        fs::remove_dir_all(&root).unwrap();
    }
}
