//! A crash-safe, content-addressed result store for simulation
//! outcomes.
//!
//! Simulation results are pure functions of their structural
//! fingerprint, so the store is content-addressed: the key *is* the
//! identity, and a valid record for a key is always the right answer.
//! That makes corruption handling simple in principle — a record that
//! fails validation is worth nothing, so it is treated as a miss and
//! recomputed — and this crate makes it true in practice:
//!
//! * [`record`] — the checksummed on-disk envelope; every way a record
//!   can be wrong maps to a typed error.
//! * [`disk`] — durable segments written temp+rename through a
//!   serialized writer with bounded retry, a recovery scan that
//!   quarantines damage instead of failing, and a kill-point harness
//!   for simulating mid-write crashes.
//! * [`admission`] — a bounded in-memory hot tier with TinyLFU
//!   admission in front of disk.
//! * [`faults`] — deterministic, seeded corruption of the disk tier
//!   (`--inject-store`) to prove the recovery path.
//!
//! The [`Store`] facade composes the tiers behind a degradation
//! ladder: an unusable directory degrades to memory-only, an
//! unwritable one to read-only, and a corrupt record to a recompute —
//! each with a warning, never an error. `Store::open` cannot fail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod disk;
pub mod faults;
pub mod record;

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

pub use admission::{MemTier, MemTierStats};
pub use disk::{DiskConfig, DiskStats, DiskTier, KillPoint, KillSpec, RecoveryReport};
pub use faults::{StoreFaultConfig, StoreFaultInjector, StoreFaultKind};
pub use record::{RecordError, RECORD_SCHEMA};

/// Default hot-tier budget: enough for every result of a full sweep,
/// small enough to never matter on a laptop.
pub const DEFAULT_MEM_CAPACITY: usize = 64 * 1024 * 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How to open a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Disk root; `None` runs memory-only by design (not degraded).
    pub dir: Option<PathBuf>,
    /// Hot-tier byte budget.
    pub mem_capacity_bytes: usize,
    /// Seeded store fault injection (`--inject-store`).
    pub faults: Option<StoreFaultConfig>,
    /// Simulated mid-write crash (test harness only).
    pub kill: Option<KillSpec>,
}

impl StoreConfig {
    /// Memory-only store (no disk tier, nothing degraded).
    #[must_use]
    pub fn memory_only() -> StoreConfig {
        StoreConfig {
            dir: None,
            mem_capacity_bytes: DEFAULT_MEM_CAPACITY,
            faults: None,
            kill: None,
        }
    }

    /// Disk-backed store rooted at `dir` with default settings.
    #[must_use]
    pub fn at(dir: PathBuf) -> StoreConfig {
        StoreConfig {
            dir: Some(dir),
            mem_capacity_bytes: DEFAULT_MEM_CAPACITY,
            faults: None,
            kill: None,
        }
    }
}

/// Which tier served a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory hot tier.
    Memory,
    /// The durable disk tier (record re-validated on this read).
    Disk,
}

/// The outcome of [`Store::open`]: what was recovered and what, if
/// anything, was degraded. `warnings` is for the user; one line each.
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// The disk tier is active.
    pub disk_enabled: bool,
    /// What the recovery scan found (zeroed when memory-only).
    pub recovery: RecoveryReport,
    /// Human-readable degradation warnings (print once).
    pub warnings: Vec<String>,
}

/// Merged counter snapshot across tiers, for `--timings`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Hits served from the hot tier.
    pub mem_hits: u64,
    /// Hits served (and re-validated) from disk.
    pub disk_hits: u64,
    /// Records durably written this run.
    pub durable_writes: u64,
    /// Writes dropped (read-only tier or dead writer).
    pub dropped_writes: u64,
    /// Writes abandoned after the retry budget.
    pub write_failures: u64,
    /// Records quarantined, including at open.
    pub quarantined: u64,
    /// Indexed records missing at read time.
    pub missing: u64,
    /// Valid unindexed segments adopted at open.
    pub adopted: u64,
    /// Torn temp files removed at open.
    pub torn_removed: u64,
    /// Hot-tier candidates rejected by TinyLFU admission.
    pub admission_rejects: u64,
    /// Hot-tier evictions.
    pub evictions: u64,
    /// Faults injected by `--inject-store`.
    pub injected_faults: u64,
}

/// The two-tier store facade. Thread-safe; share via reference or
/// `Arc`.
#[derive(Debug)]
pub struct Store {
    mem: Mutex<MemTier>,
    disk: Option<DiskTier>,
    recovery: RecoveryReport,
}

impl Store {
    /// Opens a store. Never fails: every problem steps down the
    /// degradation ladder (disk → read-only → memory-only) and is
    /// reported in the [`OpenReport`].
    #[must_use]
    pub fn open(config: StoreConfig) -> (Store, OpenReport) {
        let mem = Mutex::new(MemTier::new(config.mem_capacity_bytes));
        let mut report = OpenReport::default();
        let disk = match config.dir {
            None => None,
            Some(dir) => {
                let disk_config = DiskConfig {
                    dir: dir.clone(),
                    faults: config.faults,
                    kill: config.kill,
                };
                match DiskTier::open(disk_config) {
                    Ok((tier, recovery)) => {
                        report.disk_enabled = true;
                        report.recovery = recovery;
                        if recovery.read_only {
                            report.warnings.push(format!(
                                "store: {} is not writable; serving existing entries read-only, new results stay in memory",
                                dir.display()
                            ));
                        }
                        if recovery.quarantined > 0 {
                            report.warnings.push(format!(
                                "store: quarantined {} corrupt record(s) during recovery at {}",
                                recovery.quarantined,
                                dir.display()
                            ));
                        }
                        Some(tier)
                    }
                    Err(err) => {
                        report.warnings.push(format!(
                            "store: {} unavailable ({err}); continuing in-memory only",
                            dir.display()
                        ));
                        None
                    }
                }
            }
        };
        let recovery = report.recovery;
        (
            Store {
                mem,
                disk,
                recovery,
            },
            report,
        )
    }

    /// Looks up `key`: hot tier first, then disk (with record
    /// re-validation). A disk hit is promoted into the hot tier,
    /// subject to admission.
    pub fn get(&self, key: u128) -> Option<(Arc<Vec<u8>>, Tier)> {
        if let Some(bytes) = lock(&self.mem).get(key) {
            return Some((bytes, Tier::Memory));
        }
        let disk = self.disk.as_ref()?;
        let bytes = Arc::new(disk.get(key)?);
        lock(&self.mem).insert(key, Arc::clone(&bytes));
        Some((bytes, Tier::Disk))
    }

    /// Stores `bytes` under `key` in both tiers. The disk write is
    /// asynchronous; poll [`Store::durable`] or call [`Store::flush`].
    pub fn put(&self, key: u128, bytes: Arc<Vec<u8>>) {
        lock(&self.mem).insert(key, Arc::clone(&bytes));
        if let Some(disk) = &self.disk {
            disk.put(key, bytes);
        }
    }

    /// `true` when `key` has a durable on-disk record. Always `false`
    /// for a memory-only store — callers use this to decide whether an
    /// in-memory entry may be dropped.
    #[must_use]
    pub fn durable(&self, key: u128) -> bool {
        self.disk.as_ref().is_some_and(|d| d.durable(key))
    }

    /// `true` when the disk tier is active (even read-only).
    #[must_use]
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Blocks until queued writes are applied and the index is
    /// persisted.
    pub fn flush(&self) {
        if let Some(disk) = &self.disk {
            disk.flush();
        }
    }

    /// Flushes and joins the writer thread. Idempotent.
    pub fn shutdown(&self) {
        if let Some(disk) = &self.disk {
            disk.shutdown();
        }
    }

    /// Merged counter snapshot (open-time recovery counts included).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mem = lock(&self.mem).stats();
        let disk = self.disk.as_ref().map(DiskTier::stats).unwrap_or_default();
        StoreStats {
            mem_hits: mem.hits,
            disk_hits: disk.reads_ok,
            durable_writes: disk.durable_writes,
            dropped_writes: disk.dropped_writes,
            write_failures: disk.write_failures,
            quarantined: disk.quarantined + self.recovery.quarantined,
            missing: disk.missing + self.recovery.missing_dropped,
            adopted: self.recovery.adopted,
            torn_removed: self.recovery.torn_removed,
            admission_rejects: mem.admission_rejects,
            evictions: mem.evictions,
            injected_faults: disk.injected_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "latte-store-facade-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_only_round_trip() {
        let (store, report) = Store::open(StoreConfig::memory_only());
        assert!(!report.disk_enabled);
        assert!(report.warnings.is_empty());
        store.put(1, Arc::new(b"one".to_vec()));
        let (bytes, tier) = store.get(1).unwrap();
        assert_eq!(&bytes[..], b"one");
        assert_eq!(tier, Tier::Memory);
        assert!(!store.durable(1), "memory-only is never durable");
    }

    #[test]
    fn disk_backed_survives_process_restart() {
        let root = tmp_root("restart");
        {
            let (store, report) = Store::open(StoreConfig::at(root.clone()));
            assert!(report.disk_enabled);
            store.put(9, Arc::new(b"persisted".to_vec()));
            store.flush();
            assert!(store.durable(9));
            store.shutdown();
        }
        let (store, _) = Store::open(StoreConfig::at(root.clone()));
        let (bytes, tier) = store.get(9).unwrap();
        assert_eq!(&bytes[..], b"persisted");
        assert_eq!(tier, Tier::Disk, "first read after reopen comes from disk");
        // The disk hit is promoted to the hot tier.
        let (_, tier) = store.get(9).unwrap();
        assert_eq!(tier, Tier::Memory);
        let stats = store.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.mem_hits, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unusable_directory_degrades_to_memory_only() {
        let root = tmp_root("degrade");
        fs::create_dir_all(&root).unwrap();
        // Make `segments` impossible to create: occupy the name with a
        // file.
        fs::write(root.join("segments"), b"not a directory").unwrap();
        let (store, report) = Store::open(StoreConfig::at(root.clone()));
        assert!(!report.disk_enabled);
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("in-memory only"), "{:?}", report.warnings);
        // Still fully functional in memory.
        store.put(2, Arc::new(b"two".to_vec()));
        assert!(store.get(2).is_some());
        assert!(!store.durable(2));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_disk_record_falls_back_to_miss() {
        let root = tmp_root("corrupt");
        {
            let (store, _) = Store::open(StoreConfig::at(root.clone()));
            store.put(5, Arc::new(b"fragile".to_vec()));
            store.flush();
            store.shutdown();
        }
        corrupt_one_segment(&root);
        let (store, _) = Store::open(StoreConfig::at(root.clone()));
        assert_eq!(store.get(5), None, "corruption must be a miss, not data");
        assert_eq!(store.stats().quarantined, 1);
        // The slot is writable again.
        store.put(5, Arc::new(b"fragile".to_vec()));
        store.flush();
        assert!(store.durable(5));
        fs::remove_dir_all(&root).unwrap();
    }

    fn corrupt_one_segment(root: &Path) {
        let seg_dir = root.join("segments");
        let entry = fs::read_dir(&seg_dir).unwrap().flatten().next().unwrap();
        let mut bytes = fs::read(entry.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(entry.path(), bytes).unwrap();
    }

    #[test]
    fn stats_merge_recovery_counts() {
        let root = tmp_root("stats");
        fs::create_dir_all(root.join("segments")).unwrap();
        fs::write(root.join("segments/junk.rec.tmp"), b"torn").unwrap();
        fs::write(
            root.join("segments").join(format!("{:032x}.rec", 3u128)),
            b"garbage",
        )
        .unwrap();
        let (store, report) = Store::open(StoreConfig::at(root.clone()));
        assert_eq!(report.recovery.torn_removed, 1);
        let stats = store.stats();
        assert_eq!(stats.torn_removed, 1);
        assert_eq!(stats.quarantined, 1);
        assert!(report.warnings.iter().any(|w| w.contains("quarantined")));
        fs::remove_dir_all(&root).unwrap();
    }
}
