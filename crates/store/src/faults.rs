//! Store-level fault injection: deterministic, seeded corruption of the
//! on-disk tier, used to prove the recovery path end to end.
//!
//! The injector sits between the index lookup and the segment read: on
//! each disk read it rolls a seeded splitmix64 stream and, at the
//! configured rate, mutilates the segment file *before* the store reads
//! it — truncation, a single bit flip, a stale schema stamp, or outright
//! deletion, cycled deterministically. A separate roll at open time
//! deletes the index file to exercise the full-rescan rebuild.
//!
//! Faults only ever touch files the store owns, and only when the store
//! is writable (corrupting a read-only store would mutate state the
//! user asked us not to touch). Everything is a pure function of
//! `(seed, operation ordinal)`, so a failing run replays exactly.

// latte-lint: allow-file(F1, reason = "the corruptor deliberately mutilates segment files in place; simulating non-atomic damage is its entire purpose")

use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration for the `--inject-store` fault family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreFaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given disk read is corrupted.
    pub rate: f64,
}

/// Which mutilation a fault roll selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultKind {
    /// Truncate the segment at a seeded offset.
    Truncate,
    /// Flip one seeded bit.
    BitFlip,
    /// Overwrite the schema field with a bogus version.
    StaleSchema,
    /// Delete the segment file entirely.
    Delete,
}

const KINDS: [StoreFaultKind; 4] = [
    StoreFaultKind::Truncate,
    StoreFaultKind::BitFlip,
    StoreFaultKind::StaleSchema,
    StoreFaultKind::Delete,
];

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded corruptor. One instance per store; thread-safe because
/// reads can race under the parallel driver (the ordinal counter is the
/// only mutable state).
#[derive(Debug)]
pub struct StoreFaultInjector {
    config: StoreFaultConfig,
    /// Operation ordinal — each read consumes one slot in the stream.
    ordinal: AtomicU64,
    /// Faults actually injected.
    injected: AtomicU64,
}

impl StoreFaultInjector {
    /// A new injector for `config`.
    #[must_use]
    pub fn new(config: StoreFaultConfig) -> StoreFaultInjector {
        StoreFaultInjector {
            config,
            ordinal: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Draws the raw stream value for slot `n`, domain-separated by
    /// `salt`.
    fn draw(&self, n: u64, salt: u64) -> u64 {
        splitmix(self.config.seed ^ splitmix(n.wrapping_mul(2).wrapping_add(salt)))
    }

    /// Rolls whether the *open-time* fault (index deletion) fires. Uses
    /// a fixed slot outside the per-read stream so it does not shift
    /// read faults.
    #[must_use]
    pub fn roll_index_delete(&self) -> bool {
        let v = self.draw(u64::MAX, 0x1d0e);
        (v as f64 / u64::MAX as f64) < self.config.rate
    }

    /// Rolls the next per-read fault. Returns the selected kind when
    /// the roll fires; callers then apply it via [`Self::apply`].
    #[must_use]
    pub fn roll_read(&self) -> Option<(StoreFaultKind, u64)> {
        let n = self.ordinal.fetch_add(1, Ordering::Relaxed);
        let v = self.draw(n, 0x5eed);
        if (v as f64 / u64::MAX as f64) < self.config.rate {
            Some((KINDS[(n % KINDS.len() as u64) as usize], n))
        } else {
            None
        }
    }

    /// Applies `kind` to the segment at `path`. Best-effort: an I/O
    /// error while corrupting (file already gone, etc.) is itself an
    /// acceptable fault outcome, so errors are swallowed. Returns
    /// whether anything was actually mutated.
    pub fn apply(&self, kind: StoreFaultKind, ordinal: u64, path: &Path) -> bool {
        let done = match kind {
            StoreFaultKind::Delete => fs::remove_file(path).is_ok(),
            StoreFaultKind::Truncate => self.truncate(ordinal, path),
            StoreFaultKind::BitFlip => self.flip_bit(ordinal, path),
            StoreFaultKind::StaleSchema => stamp_stale_schema(path),
        };
        if done {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        done
    }

    fn truncate(&self, ordinal: u64, path: &Path) -> bool {
        let Ok(meta) = fs::metadata(path) else {
            return false;
        };
        let len = meta.len();
        if len == 0 {
            return false;
        }
        let cut = self.draw(ordinal, 0x7c07) % len;
        let Ok(file) = fs::OpenOptions::new().write(true).open(path) else {
            return false;
        };
        file.set_len(cut).is_ok()
    }

    fn flip_bit(&self, ordinal: u64, path: &Path) -> bool {
        let Ok(mut bytes) = fs::read(path) else {
            return false;
        };
        if bytes.is_empty() {
            return false;
        }
        let bit = self.draw(ordinal, 0xf11b) % (bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        overwrite_in_place(path, &bytes)
    }
}

/// Stamps a bogus schema version over bytes [8, 12) of the record
/// header, simulating a record left behind by a different store
/// generation.
fn stamp_stale_schema(path: &Path) -> bool {
    let Ok(mut file) = fs::OpenOptions::new().write(true).open(path) else {
        return false;
    };
    if file.seek(SeekFrom::Start(8)).is_err() {
        return false;
    }
    file.write_all(&u32::MAX.to_le_bytes()).is_ok()
}

/// Overwrites `path` with `bytes` *without* temp+rename — deliberately:
/// the corruptor simulates in-place damage (bit rot, partial
/// overwrites), which is exactly the failure mode atomic writes exist
/// to prevent.
fn overwrite_in_place(path: &Path, bytes: &[u8]) -> bool {
    fs::write(path, bytes).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(rate: f64) -> StoreFaultInjector {
        StoreFaultInjector::new(StoreFaultConfig { seed: 42, rate })
    }

    #[test]
    fn zero_rate_never_fires() {
        let inj = injector(0.0);
        for _ in 0..1000 {
            assert!(inj.roll_read().is_none());
        }
        assert!(!inj.roll_index_delete());
    }

    #[test]
    fn full_rate_always_fires_and_cycles_kinds() {
        let inj = injector(1.0);
        let kinds: Vec<_> = (0..8).filter_map(|_| inj.roll_read()).collect();
        assert_eq!(kinds.len(), 8);
        assert_eq!(kinds[0].0, kinds[4].0);
        assert_eq!(kinds[1].0, kinds[5].0);
        // All four kinds appear in one cycle.
        let first_four: Vec<_> = kinds[..4].iter().map(|k| k.0).collect();
        for kind in KINDS {
            assert!(first_four.contains(&kind), "{kind:?} missing from cycle");
        }
    }

    #[test]
    fn stream_is_deterministic_across_instances() {
        let a = injector(0.3);
        let b = injector(0.3);
        for _ in 0..100 {
            assert_eq!(a.roll_read(), b.roll_read());
        }
        assert_eq!(a.roll_index_delete(), b.roll_index_delete());
    }

    #[test]
    fn different_seeds_differ() {
        let a = StoreFaultInjector::new(StoreFaultConfig { seed: 1, rate: 0.5 });
        let b = StoreFaultInjector::new(StoreFaultConfig { seed: 2, rate: 0.5 });
        let rolls_a: Vec<_> = (0..64).map(|_| a.roll_read().is_some()).collect();
        let rolls_b: Vec<_> = (0..64).map(|_| b.roll_read().is_some()).collect();
        assert_ne!(rolls_a, rolls_b);
    }

    #[test]
    fn apply_mutilates_files() {
        let dir = std::env::temp_dir().join(format!("latte-store-faults-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inj = injector(1.0);

        let rec = crate::record::encode(9, b"victim payload bytes");

        let p = dir.join("del.rec");
        fs::write(&p, &rec).unwrap();
        assert!(inj.apply(StoreFaultKind::Delete, 0, &p));
        assert!(!p.exists());

        let p = dir.join("trunc.rec");
        fs::write(&p, &rec).unwrap();
        assert!(inj.apply(StoreFaultKind::Truncate, 1, &p));
        assert!(fs::metadata(&p).unwrap().len() < rec.len() as u64);

        let p = dir.join("flip.rec");
        fs::write(&p, &rec).unwrap();
        assert!(inj.apply(StoreFaultKind::BitFlip, 2, &p));
        let mutated = fs::read(&p).unwrap();
        assert_eq!(mutated.len(), rec.len());
        assert_ne!(mutated, rec);

        let p = dir.join("schema.rec");
        fs::write(&p, &rec).unwrap();
        assert!(inj.apply(StoreFaultKind::StaleSchema, 3, &p));
        assert!(matches!(
            crate::record::decode(&fs::read(&p).unwrap(), 9),
            Err(crate::record::RecordError::StaleSchema { .. })
        ));

        assert_eq!(inj.injected(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
