//! The on-disk record format: a self-describing, checksummed envelope
//! around one opaque payload.
//!
//! Every segment file holds exactly one record:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"LATTERC1"
//!      8     4  schema version (LE u32)
//!     12    16  key (LE u128) — must match the file name
//!     28     8  payload length (LE u64)
//!     36     n  payload bytes
//!   36+n     8  checksum (LE u64) over bytes [8, 36+n)
//! ```
//!
//! Decoding is paranoid by construction: every field is validated
//! before the payload is handed out, and every way a record can be
//! wrong maps to a distinct [`RecordError`] so the recovery scan can
//! report *why* an entry was quarantined. A record that fails any check
//! is worth exactly nothing — the store treats it as a miss, never as
//! data.

use std::fmt;

/// File magic. The trailing `1` is generational: a future incompatible
/// container layout gets a new magic, and old files fail fast at the
/// first eight bytes.
pub const RECORD_MAGIC: [u8; 8] = *b"LATTERC1";

/// Version of the record *envelope* (header layout + checksum rule).
/// Payload schema changes are covered separately by the key's
/// fingerprint salt ([`latte_gpusim::FINGERPRINT_SCHEMA_VERSION`] on
/// the bench side); this version only bumps when the container itself
/// changes shape.
pub const RECORD_SCHEMA: u32 = 1;

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 8 + 4 + 16 + 8;

/// Trailing checksum bytes.
pub const CHECKSUM_LEN: usize = 8;

/// Everything that can be wrong with a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Shorter than a header + checksum can ever be (torn write or
    /// truncation).
    Truncated {
        /// Bytes actually present.
        len: usize,
    },
    /// The first eight bytes are not [`RECORD_MAGIC`].
    BadMagic,
    /// Written by a different (older or newer) record schema.
    StaleSchema {
        /// The schema version found in the header.
        found: u32,
    },
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length the header claims.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The stored key does not match the key the caller asked for (a
    /// renamed or cross-linked file).
    KeyMismatch {
        /// Key found in the header.
        found: u128,
    },
    /// Header/payload bytes do not hash to the stored checksum (bit
    /// rot, partial overwrite).
    ChecksumMismatch,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated { len } => write!(f, "truncated record ({len} bytes)"),
            RecordError::BadMagic => write!(f, "bad magic"),
            RecordError::StaleSchema { found } => {
                write!(f, "stale schema {found} (current {RECORD_SCHEMA})")
            }
            RecordError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch (declared {declared}, actual {actual})")
            }
            RecordError::KeyMismatch { found } => write!(f, "key mismatch (found {found:032x})"),
            RecordError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl RecordError {
    /// Short tag used in quarantine file names (`<key>.checksum.bad`).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RecordError::Truncated { .. } => "truncated",
            RecordError::BadMagic => "magic",
            RecordError::StaleSchema { .. } => "schema",
            RecordError::LengthMismatch { .. } => "length",
            RecordError::KeyMismatch { .. } => "key",
            RecordError::ChecksumMismatch => "checksum",
        }
    }
}

/// splitmix64 finalizer — a full-avalanche bijection on u64, used to
/// harden the FNV accumulator against short-input clustering.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes`, finalized with one splitmix round. Stable
/// across processes and platforms (no per-process hasher state) — the
/// property the whole recovery design rests on.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix(h)
}

/// Encodes one record.
#[must_use]
pub fn encode(key: u128, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&RECORD_SCHEMA.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum(&out[8..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and validates one record, returning the payload slice.
///
/// # Errors
///
/// Returns the first failed validation; see [`RecordError`] for the
/// catalogue. A record that errors here must be quarantined, never
/// partially trusted.
pub fn decode(bytes: &[u8], expected_key: u128) -> Result<&[u8], RecordError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(RecordError::Truncated { len: bytes.len() });
    }
    if bytes[..8] != RECORD_MAGIC {
        return Err(RecordError::BadMagic);
    }
    let schema = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if schema != RECORD_SCHEMA {
        return Err(RecordError::StaleSchema { found: schema });
    }
    let mut key_bytes = [0u8; 16];
    key_bytes.copy_from_slice(&bytes[12..28]);
    let key = u128::from_le_bytes(key_bytes);
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[28..36]);
    let declared = u64::from_le_bytes(len_bytes);
    let actual = (bytes.len() - HEADER_LEN - CHECKSUM_LEN) as u64;
    if declared != actual {
        return Err(RecordError::LengthMismatch { declared, actual });
    }
    if key != expected_key {
        return Err(RecordError::KeyMismatch { found: key });
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let mut sum_bytes = [0u8; 8];
    sum_bytes.copy_from_slice(&bytes[body_end..]);
    let stored = u64::from_le_bytes(sum_bytes);
    if checksum(&bytes[8..body_end]) != stored {
        return Err(RecordError::ChecksumMismatch);
    }
    Ok(&bytes[HEADER_LEN..body_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = b"some simulation result bytes";
        let rec = encode(0xdead_beef_cafe, payload);
        assert_eq!(decode(&rec, 0xdead_beef_cafe), Ok(&payload[..]));
    }

    #[test]
    fn empty_payload_round_trips() {
        let rec = encode(7, b"");
        assert_eq!(decode(&rec, 7), Ok(&b""[..]));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let rec = encode(42, b"payload under test");
        for byte in 0..rec.len() {
            for bit in 0..8u8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode(&bad, 42).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let rec = encode(42, b"payload under test");
        for len in 0..rec.len() {
            assert!(decode(&rec[..len], 42).is_err(), "truncation to {len} bytes");
        }
    }

    #[test]
    fn wrong_key_is_detected() {
        let rec = encode(1, b"x");
        assert_eq!(decode(&rec, 2), Err(RecordError::KeyMismatch { found: 1 }));
    }

    #[test]
    fn stale_schema_is_detected() {
        let mut rec = encode(1, b"x");
        rec[8..12].copy_from_slice(&(RECORD_SCHEMA + 1).to_le_bytes());
        assert_eq!(
            decode(&rec, 1),
            Err(RecordError::StaleSchema {
                found: RECORD_SCHEMA + 1
            })
        );
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut rec = encode(1, b"x");
        rec.push(0);
        assert!(matches!(
            decode(&rec, 1),
            Err(RecordError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // Pinned value: the checksum is part of the on-disk format, so
        // an accidental change to the hash breaks every existing store.
        assert_eq!(checksum(b"latte"), checksum(b"latte"));
        assert_ne!(checksum(b"latte"), checksum(b"lattf"));
    }
}
