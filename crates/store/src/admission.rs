//! The in-memory hot tier: a bounded byte-budget cache with
//! TinyLFU-style admission.
//!
//! Plain LRU caches are defenseless against scans: a sweep of
//! once-requested keys evicts the whole working set. TinyLFU fixes this
//! with an *admission* policy — a new entry only displaces the LRU
//! victim if its estimated access frequency is higher — backed by a
//! tiny count-min sketch with periodic halving so estimates age out.
//! (The design follows the cacheD / Caffeine lineage; this is a small,
//! dependency-free re-derivation, not a port.)
//!
//! Determinism note: the tier only decides *where* bytes are served
//! from, never what they are. Admission and eviction decisions may
//! depend on request order (which varies under the parallel driver),
//! and that is fine — a rejected entry is simply re-read from disk or
//! recomputed, producing identical bytes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Four sketch rows; the classic count-min depth.
const SKETCH_ROWS: usize = 4;
/// Counters saturate here; halving keeps them fresh.
const COUNTER_MAX: u8 = 15;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A count-min sketch of access frequencies over `u128` keys, with
/// 4-bit-equivalent saturating counters and sample-triggered halving.
#[derive(Debug)]
pub struct FrequencySketch {
    /// `SKETCH_ROWS` rows of `width` counters each, flattened.
    counters: Vec<u8>,
    /// Power-of-two row width minus one (mask).
    mask: usize,
    /// Increments since the last halving.
    additions: u64,
    /// Halve all counters when `additions` reaches this.
    sample_cap: u64,
}

impl FrequencySketch {
    /// A sketch sized for roughly `capacity_hint` resident entries.
    #[must_use]
    pub fn new(capacity_hint: usize) -> FrequencySketch {
        let width = capacity_hint.max(16).next_power_of_two() * 4;
        FrequencySketch {
            counters: vec![0; width * SKETCH_ROWS],
            mask: width - 1,
            additions: 0,
            sample_cap: (width as u64) * 10,
        }
    }

    fn slot(&self, key: u128, row: usize) -> usize {
        // Mix both key halves with a per-row seed so rows are
        // independent hash functions.
        let h = splitmix((key as u64) ^ splitmix((key >> 64) as u64 ^ (row as u64).wrapping_mul(0x9e37)));
        row * (self.mask + 1) + (h as usize & self.mask)
    }

    /// Records one access.
    pub fn record(&mut self, key: u128) {
        let mut bumped = false;
        for row in 0..SKETCH_ROWS {
            let slot = self.slot(key, row);
            if self.counters[slot] < COUNTER_MAX {
                self.counters[slot] += 1;
                bumped = true;
            }
        }
        if bumped {
            self.additions += 1;
            if self.additions >= self.sample_cap {
                self.halve();
            }
        }
    }

    /// The frequency estimate for `key` (min over rows).
    #[must_use]
    pub fn estimate(&self, key: u128) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.counters[self.slot(key, row)])
            .min()
            .unwrap_or(0)
    }

    /// Ages every counter so stale popularity decays.
    fn halve(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.additions /= 2;
    }
}

/// Counters the tier exposes for the `--timings` report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTierStats {
    /// Lookups served from the tier.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub inserted: u64,
    /// Candidates the admission policy turned away.
    pub admission_rejects: u64,
    /// Resident entries evicted to make room.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    bytes: Arc<Vec<u8>>,
    /// Logical touch time, key into `lru`.
    touch: u64,
}

/// The bounded hot tier: key → serialized record payload.
#[derive(Debug)]
pub struct MemTier {
    capacity_bytes: usize,
    used_bytes: usize,
    entries: HashMap<u128, Entry>,
    /// Recency order: logical touch time → key. `u64` touches never
    /// collide (one per operation) and never wrap in practice.
    lru: BTreeMap<u64, u128>,
    clock: u64,
    sketch: FrequencySketch,
    stats: MemTierStats,
}

impl MemTier {
    /// A tier bounded at `capacity_bytes` of payload.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> MemTier {
        MemTier {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            sketch: FrequencySketch::new(1024),
            stats: MemTierStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, recording the access in the frequency sketch
    /// either way (misses inform future admission decisions).
    pub fn get(&mut self, key: u128) -> Option<Arc<Vec<u8>>> {
        self.sketch.record(key);
        let tick = self.tick();
        match self.entries.get_mut(&key) {
            Some(entry) => {
                self.lru.remove(&entry.touch);
                entry.touch = tick;
                self.lru.insert(tick, key);
                self.stats.hits += 1;
                Some(Arc::clone(&entry.bytes))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Offers `key` to the tier. TinyLFU admission: the candidate only
    /// displaces resident entries whose estimated frequency it beats;
    /// otherwise it is rejected and the caller keeps serving it from
    /// the tier below. Returns whether the entry was admitted.
    pub fn insert(&mut self, key: u128, bytes: Arc<Vec<u8>>) -> bool {
        let len = bytes.len();
        if len > self.capacity_bytes {
            self.stats.admission_rejects += 1;
            return false;
        }
        if let Some(old) = self.entries.remove(&key) {
            // Refresh in place — replacing our own entry needs no vote.
            self.used_bytes -= old.bytes.len();
            self.lru.remove(&old.touch);
        }
        while self.used_bytes + len > self.capacity_bytes {
            let Some((&victim_touch, &victim_key)) = self.lru.iter().next() else {
                break;
            };
            if self.sketch.estimate(key) > self.sketch.estimate(victim_key) {
                self.lru.remove(&victim_touch);
                if let Some(evicted) = self.entries.remove(&victim_key) {
                    self.used_bytes -= evicted.bytes.len();
                }
                self.stats.evictions += 1;
            } else {
                // The coldest resident is still hotter than the
                // candidate: keep the working set, reject the newcomer.
                self.stats.admission_rejects += 1;
                return false;
            }
        }
        let touch = self.tick();
        self.used_bytes += len;
        self.entries.insert(key, Entry { bytes, touch });
        self.lru.insert(touch, key);
        self.stats.inserted += 1;
        true
    }

    /// Payload bytes currently resident.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Resident entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> MemTierStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn stores_and_serves_within_budget() {
        let mut tier = MemTier::new(1000);
        assert!(tier.insert(1, bytes(400)));
        assert!(tier.insert(2, bytes(400)));
        assert!(tier.get(1).is_some());
        assert!(tier.get(2).is_some());
        assert_eq!(tier.used_bytes(), 800);
        assert_eq!(tier.len(), 2);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut tier = MemTier::new(100);
        assert!(!tier.insert(1, bytes(101)));
        assert!(tier.is_empty());
    }

    #[test]
    fn hot_entries_survive_a_cold_scan() {
        let mut tier = MemTier::new(1000);
        tier.insert(1, bytes(900));
        // Make key 1 hot.
        for _ in 0..10 {
            assert!(tier.get(1).is_some());
        }
        // A scan of cold keys must not displace it.
        for cold in 100..120u128 {
            tier.insert(cold, bytes(900));
            assert!(tier.get(1).is_some(), "hot key evicted by cold key {cold}");
        }
        assert!(tier.stats().admission_rejects > 0);
    }

    #[test]
    fn a_hotter_candidate_does_evict() {
        let mut tier = MemTier::new(1000);
        tier.insert(1, bytes(900));
        // Key 2 becomes hotter than key 1 (misses still train the
        // sketch).
        for _ in 0..12 {
            let _ = tier.get(2);
        }
        assert!(tier.insert(2, bytes(900)), "hotter candidate must be admitted");
        assert!(tier.get(1).is_none(), "colder resident must be gone");
        assert_eq!(tier.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut tier = MemTier::new(1000);
        tier.insert(1, bytes(600));
        assert!(tier.insert(1, bytes(700)), "self-replacement needs no vote");
        assert_eq!(tier.used_bytes(), 700);
        assert_eq!(tier.len(), 1);
    }

    #[test]
    fn sketch_estimates_grow_and_age() {
        let mut sketch = FrequencySketch::new(16);
        assert_eq!(sketch.estimate(7), 0);
        for _ in 0..5 {
            sketch.record(7);
        }
        assert!(sketch.estimate(7) >= 4, "got {}", sketch.estimate(7));
        sketch.halve();
        assert!(sketch.estimate(7) <= 3);
    }

    #[test]
    fn eviction_loop_terminates_when_lru_is_empty() {
        let mut tier = MemTier::new(10);
        // Insert cannot fit but entries/lru are empty: must not spin.
        assert!(tier.insert(1, bytes(10)));
        assert_eq!(tier.used_bytes(), 10);
    }
}
