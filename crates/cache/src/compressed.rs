//! The compressed L1 data cache organisation of §IV-A.
// latte-lint: allow-file(D3, reason = "the payload shadow and line-data maps are keyed-access only; validate() and drain_dirty() walk the deterministic tag arrays and consult the maps per key, so hash iteration order can never reach results or output")

use crate::geometry::{CacheGeometry, LineAddr};
use crate::stats::CacheStats;
use latte_compress::{CacheLine, Compression, CompressionAlgo};
use std::collections::HashMap;

/// One allocated tag in a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TagEntry {
    addr: LineAddr,
    algo: CompressionAlgo,
    compressed: bool,
    subblocks: u8,
    lru: u64,
    /// The line has been written since it was filled and its current
    /// bytes exist only in this cache — eviction must write it back.
    dirty: bool,
}

/// One cache set: up to `tags_per_set` lines sharing `subblocks_per_set`
/// data sub-blocks.
#[derive(Debug, Clone, Default)]
struct Set {
    tags: Vec<TagEntry>,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line is resident.
    Hit {
        /// Algorithm the stored line was compressed with.
        algo: CompressionAlgo,
        /// `false` when the line is stored raw (no decompression needed).
        compressed: bool,
    },
    /// The line is not resident.
    Miss,
}

impl LookupOutcome {
    /// `true` on a hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, LookupOutcome::Hit { .. })
    }

    /// `true` on a miss.
    #[must_use]
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// `true` when the hit requires decompression.
    #[must_use]
    pub fn needs_decompression(self) -> bool {
        matches!(
            self,
            LookupOutcome::Hit {
                compressed: true,
                ..
            }
        )
    }
}

/// A line evicted by a fill or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// Algorithm it was stored with.
    pub algo: CompressionAlgo,
    /// Whether the line was dirty (written since fill): the caller must
    /// write `data` back to the next level or the write is lost.
    pub dirty: bool,
    /// The line's architectural bytes at eviction, when line-data
    /// tracking is enabled ([`CompressedCache::enable_data_tracking`]).
    pub data: Option<CacheLine>,
}

/// The compressed sector cache (§IV-A): 4× tags, 32-byte sub-block data
/// array, LRU replacement that frees both a tag and enough sub-blocks.
///
/// The cache tracks *placement*, not payload bytes: in the simulator, line
/// contents are a deterministic function of the address (the workload's
/// value generator), so only sizes and compression metadata need modelling.
/// Accordingly, fills are fed from the compressors' size-only probe stage
/// (`Compressor::probe`) — no bitstream is ever materialised on this path.
/// For shadow-checked runs an optional **payload shadow**
/// ([`CompressedCache::enable_payload_shadow`]) additionally carries the
/// bytes each resident line would hold after its compression round trip,
/// giving the differential oracle a real data path to diff against.
///
/// # Example
///
/// ```
/// use latte_cache::{CacheGeometry, CompressedCache, LineAddr};
/// use latte_compress::{Compression, CompressionAlgo};
///
/// let mut cache = CompressedCache::new(CacheGeometry::paper_l1());
/// // Compressed fills pack many lines per set: here 16 lines at 32 B each
/// // land in one 512 B set without eviction.
/// for i in 0..16u64 {
///     let addr = LineAddr::new(i * 32); // all map to set 0
///     let evicted = cache.fill(addr, CompressionAlgo::Bdi, Compression::new(24), i);
///     assert!(evicted.is_empty());
/// }
/// assert_eq!(cache.valid_lines(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct CompressedCache {
    geometry: CacheGeometry,
    sets: Vec<Set>,
    stats: CacheStats,
    clock: u64,
    /// When enabled, the post-round-trip bytes of every resident line,
    /// maintained in lockstep with the tag array (every eviction and
    /// invalidation path removes its entry). `None` in normal runs: the
    /// timing model needs no payloads and pays nothing for them.
    payload_shadow: Option<HashMap<LineAddr, CacheLine>>,
    /// When enabled (the write-back data path), the *architectural* bytes
    /// of every resident line — the fill data as delivered, overlaid with
    /// every store since. Unlike the payload shadow this is part of the
    /// simulation proper: dirty evictions carry these bytes to the next
    /// level, and re-compression on write probes them.
    line_data: Option<HashMap<LineAddr, CacheLine>>,
}

impl CompressedCache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> CompressedCache {
        CompressedCache {
            geometry,
            sets: vec![Set::default(); geometry.num_sets()],
            stats: CacheStats::new(),
            clock: 0,
            payload_shadow: None,
            line_data: None,
        }
    }

    /// Turns on architectural line-data tracking (the write-back data
    /// path). All resident lines are invalidated so every tracked line
    /// entered through a recorded fill.
    pub fn enable_data_tracking(&mut self) {
        self.invalidate_all();
        self.line_data = Some(HashMap::new());
    }

    /// Whether [`CompressedCache::enable_data_tracking`] was called.
    #[must_use]
    pub fn data_tracking_enabled(&self) -> bool {
        self.line_data.is_some()
    }

    /// Records the architectural bytes of a just-filled resident line.
    /// No-op when tracking is disabled or the line is not resident.
    pub fn record_line_data(&mut self, addr: LineAddr, data: CacheLine) {
        if self.line_data.is_some() && self.contains(addr) {
            if let Some(map) = &mut self.line_data {
                map.insert(addr, data);
            }
        }
    }

    /// The architectural bytes of a resident line, when tracking is on.
    #[must_use]
    pub fn line_data(&self, addr: LineAddr) -> Option<&CacheLine> {
        self.line_data.as_ref().and_then(|m| m.get(&addr))
    }

    /// Whether a resident line is dirty.
    #[must_use]
    pub fn is_dirty(&self, addr: LineAddr) -> bool {
        self.sets[self.geometry.set_of(addr)]
            .tags
            .iter()
            .any(|t| t.addr == addr && t.dirty)
    }

    /// Number of dirty resident lines.
    #[must_use]
    pub fn dirty_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.tags.iter())
            .filter(|t| t.dirty)
            .count()
    }

    /// Clears every dirty bit and returns the drained lines with their
    /// architectural bytes, in deterministic (set index, tag slot) order.
    /// Used by the kernel-end flush: the lines stay resident and clean.
    pub fn drain_dirty(&mut self) -> Vec<(LineAddr, CacheLine)> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for tag in &mut set.tags {
                if tag.dirty {
                    tag.dirty = false;
                    let data = self
                        .line_data
                        .as_ref()
                        .and_then(|m| m.get(&tag.addr))
                        .copied()
                        .unwrap_or_else(CacheLine::zeroed);
                    out.push((tag.addr, data));
                }
            }
        }
        out
    }

    /// Turns on the payload shadow for differential verification. All
    /// resident lines are invalidated so that every line the shadow ever
    /// covers entered through a recorded fill.
    pub fn enable_payload_shadow(&mut self) {
        self.invalidate_all();
        self.payload_shadow = Some(HashMap::new());
    }

    /// Whether [`CompressedCache::enable_payload_shadow`] was called.
    #[must_use]
    pub fn payload_shadow_enabled(&self) -> bool {
        self.payload_shadow.is_some()
    }

    /// Records the bytes a just-filled resident line holds. No-op when
    /// the shadow is disabled or the line is not resident (e.g. the fill
    /// was dropped by tag corruption).
    pub fn record_payload(&mut self, addr: LineAddr, data: CacheLine) {
        if self.payload_shadow.is_some() && self.contains(addr) {
            if let Some(map) = &mut self.payload_shadow {
                map.insert(addr, data);
            }
        }
    }

    /// The recorded payload of a resident line, when the shadow is on.
    #[must_use]
    pub fn payload(&self, addr: LineAddr) -> Option<&CacheLine> {
        self.payload_shadow.as_ref().and_then(|m| m.get(&addr))
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (contents stay).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The set index a line maps to (used by set sampling).
    #[must_use]
    pub fn set_of(&self, addr: LineAddr) -> usize {
        self.geometry.set_of(addr)
    }

    /// Looks up `addr`, updating LRU state and hit/miss statistics.
    pub fn lookup(&mut self, addr: LineAddr, _cycle: u64) -> LookupOutcome {
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[self.geometry.set_of(addr)];
        if let Some(tag) = set.tags.iter_mut().find(|t| t.addr == addr) {
            tag.lru = clock;
            self.stats.hits += 1;
            if tag.compressed {
                self.stats.compressed_hits += 1;
            }
            LookupOutcome::Hit {
                algo: tag.algo,
                compressed: tag.compressed,
            }
        } else {
            self.stats.misses += 1;
            LookupOutcome::Miss
        }
    }

    /// Checks residency without perturbing LRU or statistics.
    #[must_use]
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.sets[self.geometry.set_of(addr)]
            .tags
            .iter()
            .any(|t| t.addr == addr)
    }

    /// Inserts (or re-inserts) a line stored with `algo` at the compressed
    /// size `compression`, evicting LRU lines as needed. Returns the
    /// evicted lines.
    ///
    /// Sizes are quantised to 32-byte sub-blocks; an uncompressed line
    /// always occupies four sub-blocks.
    pub fn fill(
        &mut self,
        addr: LineAddr,
        algo: CompressionAlgo,
        compression: Compression,
        _cycle: u64,
    ) -> Vec<EvictedLine> {
        self.clock += 1;
        let clock = self.clock;
        let (algo, compressed) = if compression.is_compressed() {
            (algo, true)
        } else {
            (CompressionAlgo::None, false)
        };
        let needed = if compressed {
            CacheGeometry::subblocks_for(compression.size_bytes())
        } else {
            CacheLine::SIZE_BYTES / crate::geometry::SUBBLOCK_BYTES
        } as u8;

        self.stats.fills += 1;
        if compressed {
            self.stats.compressed_fills += 1;
        }
        self.stats.filled_bytes_uncompressed += CacheLine::SIZE_BYTES as u64;
        self.stats.filled_bytes_stored +=
            u64::from(needed) * crate::geometry::SUBBLOCK_BYTES as u64;

        let set_idx = self.geometry.set_of(addr);
        let max_tags = self.geometry.tags_per_set();
        let max_subblocks = self.geometry.subblocks_per_set() as u32;
        let set = &mut self.sets[set_idx];

        // Re-fill in place when the line is already resident. The stale
        // payload and data go too; the caller re-records after the fill.
        if let Some(pos) = set.tags.iter().position(|t| t.addr == addr) {
            set.tags.remove(pos);
            if let Some(map) = &mut self.payload_shadow {
                map.remove(&addr);
            }
            if let Some(map) = &mut self.line_data {
                map.remove(&addr);
            }
        }

        let evicted = Self::make_room(
            set,
            needed,
            max_tags,
            max_subblocks,
            &mut self.stats,
            &mut self.payload_shadow,
            &mut self.line_data,
        );

        set.tags.push(TagEntry {
            addr,
            algo,
            compressed,
            subblocks: needed,
            lru: clock,
            dirty: false,
        });
        evicted
    }

    /// Evicts LRU lines from `set` until a `needed`-sub-block line fits,
    /// returning the victims (with their dirty bits and, when tracking is
    /// on, their architectural bytes — the caller owns writing them back).
    fn make_room(
        set: &mut Set,
        needed: u8,
        max_tags: usize,
        max_subblocks: u32,
        stats: &mut CacheStats,
        payload_shadow: &mut Option<HashMap<LineAddr, CacheLine>>,
        line_data: &mut Option<HashMap<LineAddr, CacheLine>>,
    ) -> Vec<EvictedLine> {
        let mut evicted = Vec::new();
        loop {
            let used: u32 = set.tags.iter().map(|t| u32::from(t.subblocks)).sum();
            let tags_free = set.tags.len() < max_tags;
            let space_free = used + u32::from(needed) <= max_subblocks;
            if tags_free && space_free {
                break;
            }
            // An empty set always has both a free tag and enough
            // sub-blocks (needed ≤ subblocks_per_set), so a missing
            // victim is unreachable; bail out instead of panicking.
            let Some(victim_pos) = set
                .tags
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.lru)
                .map(|(i, _)| i)
            else {
                break;
            };
            let victim = set.tags.remove(victim_pos);
            if let Some(map) = payload_shadow {
                map.remove(&victim.addr);
            }
            let data = line_data.as_mut().and_then(|map| map.remove(&victim.addr));
            evicted.push(EvictedLine {
                addr: victim.addr,
                algo: victim.algo,
                dirty: victim.dirty,
                data,
            });
            stats.evictions += 1;
        }
        evicted
    }

    /// Writes a full line image to a *resident* line: re-places it at its
    /// re-compressed size (`algo`, `compression`, probed by the caller on
    /// the merged bytes), marks it dirty, and records `data` as its
    /// architectural bytes. A grown line that no longer fits evicts LRU
    /// victims — never itself. Returns `None` when the line is not
    /// resident (the caller should treat the store as a miss), otherwise
    /// the evicted lines.
    ///
    /// Unlike [`CompressedCache::fill`] this bumps no fill statistics: a
    /// write to a resident line is not a fill, and a silent store (same
    /// bytes, same size) leaves every miss/eviction counter untouched.
    pub fn write(
        &mut self,
        addr: LineAddr,
        algo: CompressionAlgo,
        compression: Compression,
        data: &CacheLine,
        _cycle: u64,
    ) -> Option<Vec<EvictedLine>> {
        self.clock += 1;
        let clock = self.clock;
        let (algo, compressed) = if compression.is_compressed() {
            (algo, true)
        } else {
            (CompressionAlgo::None, false)
        };
        let needed = if compressed {
            CacheGeometry::subblocks_for(compression.size_bytes())
        } else {
            CacheLine::SIZE_BYTES / crate::geometry::SUBBLOCK_BYTES
        } as u8;

        let set_idx = self.geometry.set_of(addr);
        let max_tags = self.geometry.tags_per_set();
        let max_subblocks = self.geometry.subblocks_per_set() as u32;
        let set = &mut self.sets[set_idx];
        let pos = set.tags.iter().position(|t| t.addr == addr)?;
        // Pull the line out, make room for its new size, re-insert dirty.
        set.tags.remove(pos);
        if let Some(map) = &mut self.payload_shadow {
            map.remove(&addr);
        }
        let evicted = Self::make_room(
            set,
            needed,
            max_tags,
            max_subblocks,
            &mut self.stats,
            &mut self.payload_shadow,
            &mut self.line_data,
        );
        set.tags.push(TagEntry {
            addr,
            algo,
            compressed,
            subblocks: needed,
            lru: clock,
            dirty: true,
        });
        if let Some(map) = &mut self.line_data {
            map.insert(addr, *data);
        }
        Some(evicted)
    }

    /// Reacts to a failed decompression of a line that just hit: the hit
    /// is re-classified as a miss (the requester must re-fetch from the
    /// next level), the corrupted line is invalidated, and
    /// [`CacheStats::decode_failures`] is bumped. Returns whether the line
    /// was resident.
    ///
    /// Call this immediately after the [`CompressedCache::lookup`] that
    /// reported the hit, so the hit/compressed-hit counters being rolled
    /// back are the ones that lookup just incremented.
    pub fn on_decode_failure(&mut self, addr: LineAddr) -> bool {
        let was_resident = self.invalidate(addr);
        if was_resident {
            self.stats.hits = self.stats.hits.saturating_sub(1);
            self.stats.compressed_hits = self.stats.compressed_hits.saturating_sub(1);
            self.stats.misses += 1;
        }
        self.stats.decode_failures += 1;
        was_resident
    }

    /// Invalidates one line if resident; returns whether it was.
    pub fn invalidate(&mut self, addr: LineAddr) -> bool {
        let set = &mut self.sets[self.geometry.set_of(addr)];
        if let Some(pos) = set.tags.iter().position(|t| t.addr == addr) {
            set.tags.remove(pos);
            if let Some(map) = &mut self.payload_shadow {
                map.remove(&addr);
            }
            if let Some(map) = &mut self.line_data {
                map.remove(&addr);
            }
            true
        } else {
            false
        }
    }

    /// Invalidates every line; returns how many were valid. Used at kernel
    /// boundaries.
    pub fn invalidate_all(&mut self) -> usize {
        let mut count = 0;
        for set in &mut self.sets {
            count += set.tags.len();
            set.tags.clear();
        }
        if let Some(map) = &mut self.payload_shadow {
            map.clear();
        }
        if let Some(map) = &mut self.line_data {
            map.clear();
        }
        count
    }

    /// Invalidates every line stored with `algo`, returning the dropped
    /// lines (with their dirty bits and tracked bytes, so the caller can
    /// write dirty victims back). The paper's SC invalidates stale lines
    /// when a period's codebook is rebuilt (§IV-C2).
    pub fn invalidate_algo(&mut self, algo: CompressionAlgo) -> Vec<EvictedLine> {
        let mut dropped = Vec::new();
        for set in &mut self.sets {
            let payload_shadow = &mut self.payload_shadow;
            let line_data = &mut self.line_data;
            set.tags.retain(|t| {
                let keep = t.algo != algo;
                if !keep {
                    if let Some(map) = payload_shadow {
                        map.remove(&t.addr);
                    }
                    let data = line_data.as_mut().and_then(|map| map.remove(&t.addr));
                    dropped.push(EvictedLine {
                        addr: t.addr,
                        algo: t.algo,
                        dirty: t.dirty,
                        data,
                    });
                }
                keep
            });
        }
        dropped
    }

    /// Number of valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().map(|s| s.tags.len()).sum()
    }

    /// Sum of the *uncompressed* sizes of all valid lines, in bytes — the
    /// "effective cache capacity" metric of Fig 16.
    #[must_use]
    pub fn effective_capacity_bytes(&self) -> usize {
        self.valid_lines() * CacheLine::SIZE_BYTES
    }

    /// Sum of the stored (sub-block-quantised) sizes of all valid lines.
    #[must_use]
    pub fn stored_bytes(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.tags.iter())
            .map(|t| usize::from(t.subblocks) * crate::geometry::SUBBLOCK_BYTES)
            .sum()
    }

    /// Verifies the structural invariants of every set without panicking,
    /// returning a description of the first violation found. Used by the
    /// simulator's forward-progress watchdog to distinguish a workload
    /// that is merely stalled from corrupted cache state.
    ///
    /// # Errors
    ///
    /// Returns `Err` if a set exceeds its tag or sub-block budget, holds
    /// duplicate addresses, holds a line mapped to the wrong set, holds
    /// a tag with an out-of-range sub-block count, or (when the payload
    /// shadow is enabled) the shadow and the tag array disagree about
    /// which lines are resident.
    pub fn validate(&self) -> Result<(), String> {
        for (i, set) in self.sets.iter().enumerate() {
            if set.tags.len() > self.geometry.tags_per_set() {
                return Err(format!(
                    "set {i} exceeds tag budget: {} > {}",
                    set.tags.len(),
                    self.geometry.tags_per_set()
                ));
            }
            let used: u32 = set.tags.iter().map(|t| u32::from(t.subblocks)).sum();
            if used > self.geometry.subblocks_per_set() as u32 {
                return Err(format!("set {i} exceeds sub-block budget: {used}"));
            }
            for (j, t) in set.tags.iter().enumerate() {
                if set.tags[j + 1..].iter().any(|u| u.addr == t.addr) {
                    return Err(format!("set {i} holds duplicate address {}", t.addr));
                }
                if t.subblocks < 1 || t.subblocks > 4 {
                    return Err(format!(
                        "set {i} holds tag with {} sub-blocks",
                        t.subblocks
                    ));
                }
                if self.geometry.set_of(t.addr) != i {
                    return Err(format!("line {} mapped to wrong set {i}", t.addr));
                }
            }
        }
        if let Some(map) = &self.payload_shadow {
            // Keyed lookups against the deterministic tag walk; the map
            // itself is never iterated, so the check is order-free.
            let mut resident = 0usize;
            for (i, set) in self.sets.iter().enumerate() {
                for t in &set.tags {
                    resident += 1;
                    if !map.contains_key(&t.addr) {
                        return Err(format!(
                            "set {i}: resident {} has no shadow payload",
                            t.addr
                        ));
                    }
                }
            }
            if map.len() != resident {
                return Err(format!(
                    "payload shadow holds {} entries for {resident} resident lines (orphaned payloads)",
                    map.len()
                ));
            }
        }
        if let Some(map) = &self.line_data {
            // Same keyed walk as the payload shadow: every resident line
            // must carry architectural bytes, dirty or not, and the map
            // must hold nothing else (an orphaned entry would be a write
            // surviving its line's eviction without a write-back).
            let mut resident = 0usize;
            for (i, set) in self.sets.iter().enumerate() {
                for t in &set.tags {
                    resident += 1;
                    if !map.contains_key(&t.addr) {
                        return Err(format!(
                            "set {i}: resident {} has no tracked line data{}",
                            t.addr,
                            if t.dirty { " (and is dirty)" } else { "" }
                        ));
                    }
                }
            }
            if map.len() != resident {
                return Err(format!(
                    "line-data map holds {} entries for {resident} resident lines (orphaned data)",
                    map.len()
                ));
            }
        } else {
            for (i, set) in self.sets.iter().enumerate() {
                if let Some(t) = set.tags.iter().find(|t| t.dirty) {
                    return Err(format!(
                        "set {i}: {} is dirty but line-data tracking is off — its bytes are nowhere",
                        t.addr
                    ));
                }
            }
        }
        Ok(())
    }

    /// Verifies the structural invariants of every set. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if [`CompressedCache::validate`] reports a violation.
    pub fn assert_invariants(&self) {
        if let Err(violation) = self.validate() {
            // latte-lint: allow(P1, reason = "documented panicking test-support API; sim paths use validate()")
            panic!("{violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CompressedCache {
        CompressedCache::new(CacheGeometry::paper_l1())
    }

    /// Addresses that all map to set 0 of the paper L1 (32 sets).
    fn set0_addr(i: u64) -> LineAddr {
        LineAddr::new(i * 32)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = l1();
        let a = LineAddr::new(42);
        assert!(c.lookup(a, 0).is_miss());
        c.fill(a, CompressionAlgo::Bdi, Compression::new(40), 1);
        let out = c.lookup(a, 2);
        assert!(out.is_hit());
        assert!(out.needs_decompression());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn uncompressed_fill_occupies_four_subblocks() {
        let mut c = l1();
        // 4 uncompressed lines fill a set; the 5th evicts.
        for i in 0..4 {
            let ev = c.fill(set0_addr(i), CompressionAlgo::None, Compression::UNCOMPRESSED, i);
            assert!(ev.is_empty());
        }
        let ev = c.fill(set0_addr(4), CompressionAlgo::None, Compression::UNCOMPRESSED, 4);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, set0_addr(0), "LRU victim");
        c.assert_invariants();
    }

    #[test]
    fn compressed_fills_quadruple_capacity() {
        let mut c = l1();
        for i in 0..16 {
            let ev = c.fill(set0_addr(i), CompressionAlgo::Sc, Compression::new(32), i);
            assert!(ev.is_empty(), "line {i} evicted {ev:?}");
        }
        assert_eq!(c.valid_lines(), 16);
        assert_eq!(c.effective_capacity_bytes(), 16 * 128);
        // The 17th line exceeds the tag budget.
        let ev = c.fill(set0_addr(16), CompressionAlgo::Sc, Compression::new(32), 99);
        assert_eq!(ev.len(), 1);
        c.assert_invariants();
    }

    #[test]
    fn mixed_sizes_evict_until_space() {
        let mut c = l1();
        // Two uncompressed (4 sb each) + three 2-sb lines: 14/16 sub-blocks.
        c.fill(set0_addr(0), CompressionAlgo::None, Compression::UNCOMPRESSED, 0);
        c.fill(set0_addr(1), CompressionAlgo::None, Compression::UNCOMPRESSED, 1);
        c.fill(set0_addr(2), CompressionAlgo::Bdi, Compression::new(64), 2);
        c.fill(set0_addr(3), CompressionAlgo::Bdi, Compression::new(64), 3);
        c.fill(set0_addr(5), CompressionAlgo::Bdi, Compression::new(64), 5);
        // An uncompressed fill needs 4 sub-blocks but only 2 are free:
        // exactly one eviction (the LRU, a 4-sb line) frees enough.
        let ev = c.fill(set0_addr(4), CompressionAlgo::None, Compression::UNCOMPRESSED, 6);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, set0_addr(0));
        c.assert_invariants();
    }

    #[test]
    fn lru_respects_lookups() {
        let mut c = l1();
        for i in 0..4 {
            c.fill(set0_addr(i), CompressionAlgo::None, Compression::UNCOMPRESSED, i);
        }
        // Touch line 0 so line 1 becomes LRU.
        assert!(c.lookup(set0_addr(0), 10).is_hit());
        let ev = c.fill(set0_addr(9), CompressionAlgo::None, Compression::UNCOMPRESSED, 11);
        assert_eq!(ev[0].addr, set0_addr(1));
    }

    #[test]
    fn refill_replaces_in_place() {
        let mut c = l1();
        let a = set0_addr(0);
        c.fill(a, CompressionAlgo::Bdi, Compression::new(24), 0);
        // Recompress the same line to a larger footprint.
        let ev = c.fill(a, CompressionAlgo::None, Compression::UNCOMPRESSED, 1);
        assert!(ev.is_empty());
        assert_eq!(c.valid_lines(), 1);
        assert_eq!(c.stored_bytes(), 128);
        c.assert_invariants();
    }

    #[test]
    fn incompressible_fill_downgrades_to_none() {
        let mut c = l1();
        let a = set0_addr(0);
        c.fill(a, CompressionAlgo::Sc, Compression::UNCOMPRESSED, 0);
        let out = c.lookup(a, 1);
        assert_eq!(
            out,
            LookupOutcome::Hit {
                algo: CompressionAlgo::None,
                compressed: false
            }
        );
        assert!(!out.needs_decompression());
    }

    #[test]
    fn invalidate_algo_removes_only_matching() {
        let mut c = l1();
        c.fill(set0_addr(0), CompressionAlgo::Sc, Compression::new(16), 0);
        c.fill(set0_addr(1), CompressionAlgo::Bdi, Compression::new(16), 1);
        c.fill(set0_addr(2), CompressionAlgo::Sc, Compression::new(16), 2);
        assert_eq!(c.invalidate_algo(CompressionAlgo::Sc).len(), 2);
        assert_eq!(c.valid_lines(), 1);
        assert!(c.contains(set0_addr(1)));
    }

    #[test]
    fn invalidate_all_counts() {
        let mut c = l1();
        for i in 0..10 {
            c.fill(LineAddr::new(i), CompressionAlgo::Bdi, Compression::new(30), i);
        }
        assert_eq!(c.invalidate_all(), 10);
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.effective_capacity_bytes(), 0);
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = l1();
        let a = LineAddr::new(7);
        c.fill(a, CompressionAlgo::Bdi, Compression::new(30), 0);
        let before = *c.stats();
        assert!(c.contains(a));
        assert!(!c.contains(LineAddr::new(8)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn decode_failure_reclassifies_hit_as_miss() {
        let mut c = l1();
        let a = set0_addr(0);
        c.fill(a, CompressionAlgo::Bdi, Compression::new(40), 0);
        assert!(c.lookup(a, 1).needs_decompression());
        assert!(c.on_decode_failure(a));
        // The hit above is rolled back into a miss, and the corrupted
        // line is gone so the next access re-fetches.
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().compressed_hits, 0);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().decode_failures, 1);
        assert!(!c.contains(a));
        assert!(c.lookup(a, 2).is_miss());
        c.assert_invariants();
    }

    #[test]
    fn decode_failure_on_absent_line_only_counts() {
        let mut c = l1();
        let before = *c.stats();
        assert!(!c.on_decode_failure(set0_addr(3)));
        assert_eq!(c.stats().hits, before.hits);
        assert_eq!(c.stats().misses, before.misses);
        assert_eq!(c.stats().decode_failures, 1);
    }

    #[test]
    fn validate_accepts_live_state() {
        let mut c = l1();
        for i in 0..40 {
            c.fill(LineAddr::new(i * 32), CompressionAlgo::Bdi, Compression::new(48), i);
            c.lookup(LineAddr::new(i * 16), i);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn payload_shadow_tracks_fills_and_evictions() {
        let mut c = l1();
        c.enable_payload_shadow();
        let data = CacheLine::from_u32_words(&[7; 32]);
        for i in 0..4 {
            c.fill(set0_addr(i), CompressionAlgo::None, Compression::UNCOMPRESSED, i);
            c.record_payload(set0_addr(i), data);
        }
        assert_eq!(c.payload(set0_addr(0)), Some(&data));
        assert_eq!(c.validate(), Ok(()));
        // The 5th uncompressed fill evicts the LRU line and its payload.
        c.fill(set0_addr(9), CompressionAlgo::None, Compression::UNCOMPRESSED, 9);
        c.record_payload(set0_addr(9), data);
        assert_eq!(c.payload(set0_addr(0)), None);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn payload_shadow_follows_every_invalidation_path() {
        let mut c = l1();
        c.enable_payload_shadow();
        let data = CacheLine::zeroed();
        c.fill(set0_addr(0), CompressionAlgo::Sc, Compression::new(16), 0);
        c.record_payload(set0_addr(0), data);
        c.fill(set0_addr(1), CompressionAlgo::Bdi, Compression::new(16), 1);
        c.record_payload(set0_addr(1), data);

        c.invalidate_algo(CompressionAlgo::Sc);
        assert_eq!(c.payload(set0_addr(0)), None);
        assert_eq!(c.validate(), Ok(()));

        assert!(c.invalidate(set0_addr(1)));
        assert_eq!(c.payload(set0_addr(1)), None);

        c.fill(set0_addr(2), CompressionAlgo::Bdi, Compression::new(16), 2);
        c.record_payload(set0_addr(2), data);
        c.invalidate_all();
        assert_eq!(c.payload(set0_addr(2)), None);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn refill_drops_the_stale_payload_until_rerecorded() {
        let mut c = l1();
        c.enable_payload_shadow();
        let old = CacheLine::from_u32_words(&[1; 32]);
        let new = CacheLine::from_u32_words(&[2; 32]);
        c.fill(set0_addr(0), CompressionAlgo::Bdi, Compression::new(24), 0);
        c.record_payload(set0_addr(0), old);
        c.fill(set0_addr(0), CompressionAlgo::None, Compression::UNCOMPRESSED, 1);
        assert_eq!(c.payload(set0_addr(0)), None, "stale payload must not survive a refill");
        c.record_payload(set0_addr(0), new);
        assert_eq!(c.payload(set0_addr(0)), Some(&new));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn record_payload_ignores_non_resident_lines() {
        let mut c = l1();
        c.enable_payload_shadow();
        c.record_payload(set0_addr(5), CacheLine::zeroed());
        assert_eq!(c.payload(set0_addr(5)), None);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_flags_shadow_divergence() {
        let mut c = l1();
        c.enable_payload_shadow();
        // A resident line without a payload is a divergence…
        c.fill(set0_addr(0), CompressionAlgo::Bdi, Compression::new(24), 0);
        let err = c.validate().expect_err("missing payload must fail validation");
        assert!(err.contains("no shadow payload"), "{err}");
        c.record_payload(set0_addr(0), CacheLine::zeroed());
        assert_eq!(c.validate(), Ok(()));
        // …and so is an orphaned payload with no resident line.
        if let Some(map) = &mut c.payload_shadow {
            map.insert(set0_addr(31), CacheLine::zeroed());
        }
        let err = c.validate().expect_err("orphaned payload must fail validation");
        assert!(err.contains("orphaned"), "{err}");
    }

    fn tracked() -> CompressedCache {
        let mut c = l1();
        c.enable_data_tracking();
        c
    }

    fn line_of(byte: u8) -> CacheLine {
        CacheLine::from_bytes([byte; CacheLine::SIZE_BYTES])
    }

    #[test]
    fn write_marks_dirty_and_records_bytes() {
        let mut c = tracked();
        let a = set0_addr(0);
        c.fill(a, CompressionAlgo::Bdi, Compression::new(24), 0);
        c.record_line_data(a, line_of(1));
        assert!(!c.is_dirty(a));
        let ev = c.write(a, CompressionAlgo::Bdi, Compression::new(24), &line_of(2), 1);
        assert_eq!(ev, Some(vec![]), "same size: no evictions");
        assert!(c.is_dirty(a));
        assert_eq!(c.line_data(a), Some(&line_of(2)));
        assert_eq!(c.stats().fills, 1, "a write is not a fill");
        assert_eq!(c.stats().evictions, 0);
        c.assert_invariants();
    }

    #[test]
    fn write_to_absent_line_is_none() {
        let mut c = tracked();
        assert_eq!(
            c.write(set0_addr(7), CompressionAlgo::None, Compression::UNCOMPRESSED, &line_of(0), 0),
            None
        );
    }

    #[test]
    fn grown_write_evicts_others_never_itself() {
        let mut c = tracked();
        // Pack the set to exactly its 16-sub-block budget: four 1-block
        // compressed lines plus three uncompressed ones.
        for i in 0..4 {
            c.fill(set0_addr(i), CompressionAlgo::Bdi, Compression::new(32), i);
            c.record_line_data(set0_addr(i), line_of(i as u8));
        }
        for i in 4..7 {
            c.fill(set0_addr(i), CompressionAlgo::None, Compression::UNCOMPRESSED, i);
            c.record_line_data(set0_addr(i), line_of(i as u8));
        }
        // Growing line 0 from 1 to 4 sub-blocks exceeds the budget by 3.
        let ev = c
            .write(set0_addr(0), CompressionAlgo::None, Compression::UNCOMPRESSED, &line_of(9), 6)
            .unwrap_or_default();
        assert!(!ev.is_empty(), "grown line must evict");
        assert!(ev.iter().all(|e| e.addr != set0_addr(0)), "never evicts itself");
        assert!(ev.iter().all(|e| e.data.is_some()), "victims carry their bytes");
        assert!(c.is_dirty(set0_addr(0)));
        assert_eq!(c.line_data(set0_addr(0)), Some(&line_of(9)));
        c.assert_invariants();
    }

    #[test]
    fn evicted_dirty_line_carries_its_written_bytes() {
        let mut c = tracked();
        for i in 0..4 {
            c.fill(set0_addr(i), CompressionAlgo::None, Compression::UNCOMPRESSED, i);
            c.record_line_data(set0_addr(i), line_of(i as u8));
        }
        c.write(set0_addr(0), CompressionAlgo::None, Compression::UNCOMPRESSED, &line_of(0xAA), 4);
        // Touch the clean lines so the dirty one becomes LRU.
        for i in 1..4 {
            c.lookup(set0_addr(i), 5 + i);
        }
        let ev = c.fill(set0_addr(9), CompressionAlgo::None, Compression::UNCOMPRESSED, 9);
        c.record_line_data(set0_addr(9), line_of(9));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, set0_addr(0));
        assert!(ev[0].dirty);
        assert_eq!(ev[0].data, Some(line_of(0xAA)));
        c.assert_invariants();
    }

    #[test]
    fn drain_dirty_clears_bits_in_deterministic_order() {
        let mut c = tracked();
        for i in 0..3 {
            c.fill(set0_addr(i), CompressionAlgo::Bdi, Compression::new(32), i);
            c.record_line_data(set0_addr(i), line_of(i as u8));
        }
        c.write(set0_addr(2), CompressionAlgo::Bdi, Compression::new(32), &line_of(12), 3);
        c.write(set0_addr(0), CompressionAlgo::Bdi, Compression::new(32), &line_of(10), 4);
        assert_eq!(c.dirty_lines(), 2);
        let drained = c.drain_dirty();
        // Tag-slot order within the set, regardless of write order.
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], (set0_addr(2), line_of(12)));
        assert_eq!(drained[1], (set0_addr(0), line_of(10)));
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.valid_lines(), 3, "flushed lines stay resident");
        assert!(c.drain_dirty().is_empty());
        c.assert_invariants();
    }

    #[test]
    fn invalidate_algo_reports_dirty_victims() {
        let mut c = tracked();
        c.fill(set0_addr(0), CompressionAlgo::Sc, Compression::new(16), 0);
        c.record_line_data(set0_addr(0), line_of(1));
        c.write(set0_addr(0), CompressionAlgo::Sc, Compression::new(16), &line_of(2), 1);
        let dropped = c.invalidate_algo(CompressionAlgo::Sc);
        assert_eq!(dropped.len(), 1);
        assert!(dropped[0].dirty);
        assert_eq!(dropped[0].data, Some(line_of(2)));
        c.assert_invariants();
    }

    #[test]
    fn fill_ratio_statistics() {
        let mut c = l1();
        c.fill(LineAddr::new(0), CompressionAlgo::Bdi, Compression::new(32), 0);
        c.fill(LineAddr::new(1), CompressionAlgo::Bdi, Compression::new(32), 1);
        // 2 lines of 128 B stored in 2 x 32 B.
        assert!((c.stats().fill_compression_ratio() - 4.0).abs() < 1e-12);
    }
}
