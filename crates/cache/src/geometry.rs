//! Cache geometry: sizes, set/way arithmetic and line addressing.

use latte_compress::CacheLine;
use std::fmt;

/// Sub-block granularity of the compressed data array (§IV-A: "allows data
/// to be stored in 32B sub blocks").
pub const SUBBLOCK_BYTES: usize = 32;

/// The address of a cache line (byte address with the line offset shifted
/// out). Using a newtype keeps line and byte addresses from mixing.
///
/// # Example
///
/// ```
/// use latte_cache::LineAddr;
///
/// let a = LineAddr::from_byte_addr(0x1234);
/// assert_eq!(a.byte_addr(), 0x1200);
/// assert_eq!(LineAddr::new(0x24), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line number.
    #[must_use]
    pub fn new(line_number: u64) -> LineAddr {
        LineAddr(line_number)
    }

    /// The line containing a byte address.
    #[must_use]
    pub fn from_byte_addr(byte_addr: u64) -> LineAddr {
        LineAddr(byte_addr / CacheLine::SIZE_BYTES as u64)
    }

    /// The raw line number.
    #[must_use]
    pub fn line_number(self) -> u64 {
        self.0
    }

    /// The first byte address of the line.
    #[must_use]
    pub fn byte_addr(self) -> u64 {
        self.0 * CacheLine::SIZE_BYTES as u64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// Geometry of one cache: capacity, associativity and (for compressed
/// caches) tag over-provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Data capacity in bytes.
    pub size_bytes: usize,
    /// Nominal associativity (data ways).
    pub ways: usize,
    /// Tag blocks per set = `ways * tag_factor` (4 for the paper's
    /// compressed L1, 1 for a conventional cache).
    pub tag_factor: usize,
}

impl CacheGeometry {
    /// The paper's per-SM L1 data cache: 16 KB, 128 B lines, 4-way, 4× tags
    /// (Table II + §IV-A).
    #[must_use]
    pub fn paper_l1() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            tag_factor: 4,
        }
    }

    /// The §V-E sensitivity configuration: 48 KB L1 per SM.
    #[must_use]
    pub fn large_l1() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 48 * 1024,
            ways: 4,
            tag_factor: 4,
        }
    }

    /// The paper's shared L2: 768 KB, 8-way (Table II). Uncompressed, so
    /// `tag_factor` is 1.
    #[must_use]
    pub fn paper_l2() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 768 * 1024,
            ways: 8,
            tag_factor: 1,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        let set_bytes = self.ways * CacheLine::SIZE_BYTES;
        assert!(
            self.size_bytes.is_multiple_of(set_bytes),
            "cache size {} is not a multiple of the set size {set_bytes}",
            self.size_bytes
        );
        self.size_bytes / set_bytes
    }

    /// Tag entries per set.
    #[must_use]
    pub fn tags_per_set(&self) -> usize {
        self.ways * self.tag_factor
    }

    /// Data sub-blocks per set.
    #[must_use]
    pub fn subblocks_per_set(&self) -> usize {
        self.ways * CacheLine::SIZE_BYTES / SUBBLOCK_BYTES
    }

    /// The set index for a line address (modulo interleaving).
    #[must_use]
    pub fn set_of(&self, addr: LineAddr) -> usize {
        (addr.line_number() % self.num_sets() as u64) as usize
    }

    /// Sub-blocks needed for a payload of `bytes` (rounded up, minimum 1).
    #[must_use]
    pub fn subblocks_for(bytes: usize) -> usize {
        bytes.div_ceil(SUBBLOCK_BYTES).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let g = CacheGeometry::paper_l1();
        assert_eq!(g.num_sets(), 32);
        assert_eq!(g.tags_per_set(), 16);
        assert_eq!(g.subblocks_per_set(), 16);
    }

    #[test]
    fn paper_l2_geometry() {
        let g = CacheGeometry::paper_l2();
        assert_eq!(g.num_sets(), 768);
        assert_eq!(g.tags_per_set(), 8);
    }

    #[test]
    fn line_addr_round_trip() {
        let a = LineAddr::from_byte_addr(0x12345678);
        assert_eq!(LineAddr::from_byte_addr(a.byte_addr()), a);
        assert_eq!(a.byte_addr() % 128, 0);
    }

    #[test]
    fn subblock_rounding() {
        assert_eq!(CacheGeometry::subblocks_for(1), 1);
        assert_eq!(CacheGeometry::subblocks_for(32), 1);
        assert_eq!(CacheGeometry::subblocks_for(33), 2);
        assert_eq!(CacheGeometry::subblocks_for(128), 4);
        assert_eq!(CacheGeometry::subblocks_for(0), 1);
    }

    #[test]
    fn set_mapping_is_total() {
        let g = CacheGeometry::paper_l1();
        for i in 0..1000 {
            assert!(g.set_of(LineAddr::new(i)) < g.num_sets());
        }
    }
}
