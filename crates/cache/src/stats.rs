//! Per-cache event counters.

/// Counters accumulated by a cache over its lifetime (or since the last
/// [`CacheStats::reset`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that found the line stored in compressed form.
    pub compressed_hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Lines inserted in compressed form.
    pub compressed_fills: u64,
    /// Valid lines evicted to make room.
    pub evictions: u64,
    /// Total uncompressed bytes of all filled lines.
    pub filled_bytes_uncompressed: u64,
    /// Total stored (compressed, sub-block-quantised) bytes of all filled
    /// lines.
    pub filled_bytes_stored: u64,
    /// Hits whose decompression failed (corrupted stored line); each is
    /// re-classified as a miss and the line re-fetched.
    pub decode_failures: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Total lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0 when no accesses were made.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Miss rate in [0, 1]; 0 when no accesses were made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Mean compression ratio of filled lines (1.0 when nothing stored).
    #[must_use]
    pub fn fill_compression_ratio(&self) -> f64 {
        if self.filled_bytes_stored == 0 {
            1.0
        } else {
            self.filled_bytes_uncompressed as f64 / self.filled_bytes_stored as f64
        }
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            compressed_hits: self.compressed_hits + rhs.compressed_hits,
            misses: self.misses + rhs.misses,
            fills: self.fills + rhs.fills,
            compressed_fills: self.compressed_fills + rhs.compressed_fills,
            evictions: self.evictions + rhs.evictions,
            filled_bytes_uncompressed: self.filled_bytes_uncompressed
                + rhs.filled_bytes_uncompressed,
            filled_bytes_stored: self.filled_bytes_stored + rhs.filled_bytes_stored,
            decode_failures: self.decode_failures + rhs.decode_failures,
        }
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            hits: 30,
            misses: 70,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.3).abs() < 1e-12);
        assert!((s.miss_rate() - 0.7).abs() < 1e-12);
        assert_eq!(s.accesses(), 100);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.fill_compression_ratio(), 1.0);
    }

    #[test]
    fn sum_adds_fields() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            fills: 3,
            ..CacheStats::default()
        };
        let total: CacheStats = [a, a, a].into_iter().sum();
        assert_eq!(total.hits, 3);
        assert_eq!(total.misses, 6);
        assert_eq!(total.fills, 9);
    }
}
