//! A conventional (uncompressed) set-associative cache with LRU
//! replacement, used for the shared L2 and for baseline configurations.

use crate::geometry::{CacheGeometry, LineAddr};
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy)]
struct Way {
    addr: LineAddr,
    lru: u64,
}

/// An uncompressed set-associative LRU cache tracking line presence only.
///
/// # Example
///
/// ```
/// use latte_cache::{CacheGeometry, LineAddr, SimpleCache};
///
/// let mut l2 = SimpleCache::new(CacheGeometry::paper_l2());
/// let addr = LineAddr::new(99);
/// assert!(!l2.access_and_fill(addr));
/// assert!(l2.access_and_fill(addr));
/// ```
#[derive(Debug, Clone)]
pub struct SimpleCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    clock: u64,
}

impl SimpleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> SimpleCache {
        SimpleCache {
            geometry,
            sets: vec![Vec::new(); geometry.num_sets()],
            stats: CacheStats::new(),
            clock: 0,
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (contents stay).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Looks up `addr`; on a miss, fills it (evicting the LRU way when the
    /// set is full). Returns `true` on a hit.
    pub fn access_and_fill(&mut self, addr: LineAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.geometry.ways;
        let set = &mut self.sets[self.geometry.set_of(addr)];
        if let Some(w) = set.iter_mut().find(|w| w.addr == addr) {
            w.lru = clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        self.stats.fills += 1;
        if set.len() == ways {
            // `ways` is nonzero, so a full set always yields a victim;
            // the `if let` keeps the path panic-free regardless.
            if let Some(victim) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
            {
                set.remove(victim);
                self.stats.evictions += 1;
            }
        }
        set.push(Way { addr, lru: clock });
        false
    }

    /// Checks residency without perturbing LRU or statistics.
    #[must_use]
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.sets[self.geometry.set_of(addr)]
            .iter()
            .any(|w| w.addr == addr)
    }

    /// Invalidates every line; returns how many were valid.
    pub fn invalidate_all(&mut self) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            n += set.len();
            set.clear();
        }
        n
    }

    /// Number of valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimpleCache {
        // 2 sets x 2 ways for easy eviction testing.
        SimpleCache::new(CacheGeometry {
            size_bytes: 4 * 128,
            ways: 2,
            tag_factor: 1,
        })
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small();
        let a = LineAddr::new(0);
        assert!(!c.access_and_fill(a));
        assert!(c.access_and_fill(a));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.access_and_fill(a);
        c.access_and_fill(b);
        c.access_and_fill(a); // b is now LRU
        c.access_and_fill(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        // Lines 0 and 1 map to different sets.
        c.access_and_fill(LineAddr::new(0));
        c.access_and_fill(LineAddr::new(1));
        c.access_and_fill(LineAddr::new(2));
        c.access_and_fill(LineAddr::new(3));
        assert_eq!(c.valid_lines(), 4);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn invalidate_all() {
        let mut c = small();
        c.access_and_fill(LineAddr::new(0));
        c.access_and_fill(LineAddr::new(1));
        assert_eq!(c.invalidate_all(), 2);
        assert!(!c.contains(LineAddr::new(0)));
    }
}
