//! Compressed cache models for the LATTE-CC reproduction.
//!
//! The centrepiece is [`CompressedCache`], the paper's L1 data cache
//! organisation (§IV-A): a set-associative cache provisioned with **4× the
//! tag blocks** of a conventional cache whose data array is managed in
//! **32-byte sub-blocks**, so a set that nominally holds four 128-byte
//! lines can hold up to sixteen compressed lines as long as their combined
//! footprint fits in the set's sixteen sub-blocks.
//!
//! Also provided:
//!
//! * [`SimpleCache`] — a conventional uncompressed set-associative cache
//!   (used for the L2 and for baseline configurations),
//! * [`DecompressionQueue`] — the shared decompressor port that gives
//!   compressed hits their *effective* hit latency (Eq. 3 of the paper),
//! * [`Mshr`] — miss-status holding registers that merge outstanding
//!   misses to the same line,
//! * [`SetRole`] / [`SetSampler`] — the set-sampling machinery LATTE-CC's
//!   learning phase uses to run dedicated sets per compression mode.
//!
//! # Example
//!
//! ```
//! use latte_cache::{CacheGeometry, CompressedCache, LineAddr};
//! use latte_compress::{Compression, CompressionAlgo};
//!
//! // The paper's per-SM L1: 16 KB, 128 B lines, 4-way, 4x tags.
//! let mut l1 = CompressedCache::new(CacheGeometry::paper_l1());
//! let addr = LineAddr::from_byte_addr(0x1000);
//! assert!(l1.lookup(addr, 0).is_miss());
//! // Fill with a line BDI-compressed to one sub-block.
//! l1.fill(addr, CompressionAlgo::Bdi, Compression::new(24), 10);
//! assert!(l1.lookup(addr, 11).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compressed;
mod geometry;
mod mshr;
mod queue;
mod sampler;
mod simple;
mod stats;

pub use compressed::{CompressedCache, EvictedLine, LookupOutcome};
pub use geometry::{CacheGeometry, LineAddr, SUBBLOCK_BYTES};
pub use mshr::{Mshr, MshrOutcome};
pub use queue::DecompressionQueue;
pub use sampler::{SetRole, SetSampler};
pub use simple::SimpleCache;
pub use stats::CacheStats;
