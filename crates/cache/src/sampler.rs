//! Set sampling for LATTE-CC's learning phase (§III-B1).
//!
//! During each period's learning phase a few *dedicated sets* run each
//! compression mode (no-compression / low-latency / high-capacity) so the
//! controller can measure per-mode hit and insertion counts. All remaining
//! sets are *followers* that apply the winning mode. The paper dedicates
//! four sets per mode (§IV-C3).

/// The sampling role of one cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetRole {
    /// Dedicated to the no-compression (baseline) mode.
    DedicatedNone,
    /// Dedicated to the low-latency mode (BDI).
    DedicatedLowLatency,
    /// Dedicated to the high-capacity mode (SC or BPC).
    DedicatedHighCapacity,
    /// Applies whatever mode the controller currently selects.
    Follower,
}

impl SetRole {
    /// `true` for any dedicated role.
    #[must_use]
    pub fn is_dedicated(self) -> bool {
        self != SetRole::Follower
    }
}

/// Maps set indices to sampling roles.
///
/// Dedicated sets are spread across the index space (one group of three —
/// none / low-latency / high-capacity — at the start of each of
/// `dedicated_per_mode` equal strides), mirroring the complement-selection
/// scheme used by set-dueling designs.
///
/// # Example
///
/// ```
/// use latte_cache::{SetRole, SetSampler};
///
/// // The paper's L1 has 32 sets and 4 dedicated sets per mode.
/// let s = SetSampler::new(32, 4);
/// assert_eq!(s.role_of(0), SetRole::DedicatedNone);
/// assert_eq!(s.role_of(1), SetRole::DedicatedLowLatency);
/// assert_eq!(s.role_of(2), SetRole::DedicatedHighCapacity);
/// assert_eq!(s.role_of(3), SetRole::Follower);
/// assert_eq!(s.role_of(8), SetRole::DedicatedNone);
/// ```
#[derive(Debug, Clone)]
pub struct SetSampler {
    num_sets: usize,
    stride: usize,
    dedicated_per_mode: usize,
}

impl SetSampler {
    /// Creates a sampler for `num_sets` sets with `dedicated_per_mode`
    /// dedicated sets per compression mode. `dedicated_per_mode == 0`
    /// disables sampling entirely: every set is a follower (used by
    /// calibration runs that pin the mode via `force_mode` and want the
    /// cache to behave exactly like a single-mode policy).
    ///
    /// # Panics
    ///
    /// Panics if the cache is too small to dedicate three distinct sets
    /// per stride (needs `num_sets >= 3 * dedicated_per_mode`).
    #[must_use]
    pub fn new(num_sets: usize, dedicated_per_mode: usize) -> SetSampler {
        assert!(
            num_sets >= 3 * dedicated_per_mode,
            "{num_sets} sets cannot host 3x{dedicated_per_mode} dedicated sets"
        );
        SetSampler {
            num_sets,
            // With sampling disabled the stride is never consulted (see
            // `role_of`); 1 keeps the modulo well-defined.
            stride: num_sets.checked_div(dedicated_per_mode).unwrap_or(1),
            dedicated_per_mode,
        }
    }

    /// The role of set `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn role_of(&self, idx: usize) -> SetRole {
        assert!(idx < self.num_sets, "set {idx} out of range");
        if self.dedicated_per_mode == 0 {
            return SetRole::Follower;
        }
        match idx % self.stride {
            0 => SetRole::DedicatedNone,
            1 => SetRole::DedicatedLowLatency,
            2 => SetRole::DedicatedHighCapacity,
            _ => SetRole::Follower,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Dedicated sets per mode.
    #[must_use]
    pub fn dedicated_per_mode(&self) -> usize {
        self.dedicated_per_mode
    }

    /// Iterator over `(set index, role)` for all dedicated sets.
    pub fn dedicated_sets(&self) -> impl Iterator<Item = (usize, SetRole)> + '_ {
        (0..self.num_sets)
            .map(|i| (i, self.role_of(i)))
            .filter(|&(_, r)| r.is_dedicated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let s = SetSampler::new(32, 4);
        let mut none = 0;
        let mut low = 0;
        let mut high = 0;
        let mut follower = 0;
        for i in 0..32 {
            match s.role_of(i) {
                SetRole::DedicatedNone => none += 1,
                SetRole::DedicatedLowLatency => low += 1,
                SetRole::DedicatedHighCapacity => high += 1,
                SetRole::Follower => follower += 1,
            }
        }
        assert_eq!((none, low, high, follower), (4, 4, 4, 20));
    }

    #[test]
    fn dedicated_sets_iterator() {
        let s = SetSampler::new(32, 4);
        assert_eq!(s.dedicated_sets().count(), 12);
    }

    #[test]
    fn follower_majority() {
        let s = SetSampler::new(64, 4);
        let followers = (0..64).filter(|&i| s.role_of(i) == SetRole::Follower).count();
        assert_eq!(followers, 64 - 12);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn too_small_cache_panics() {
        let _ = SetSampler::new(8, 4);
    }

    #[test]
    fn zero_dedicated_disables_sampling() {
        let s = SetSampler::new(32, 0);
        assert!((0..32).all(|i| s.role_of(i) == SetRole::Follower));
        assert_eq!(s.dedicated_sets().count(), 0);
    }

    #[test]
    fn minimum_viable() {
        let s = SetSampler::new(3, 1);
        assert_eq!(s.role_of(0), SetRole::DedicatedNone);
        assert_eq!(s.role_of(1), SetRole::DedicatedLowLatency);
        assert_eq!(s.role_of(2), SetRole::DedicatedHighCapacity);
    }
}
