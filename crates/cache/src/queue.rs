//! The decompression queue that turns a decompressor's pipeline latency
//! into the *effective* hit latency of Eq. (3):
//!
//! ```text
//! effective_hit_latency = decompression_latency + (queue_insertion_pos + 1)
//! ```
//!
//! The decompressor is pipelined: it accepts one line per cycle and
//! completes each `decompression_latency` cycles after it enters the pipe.
//! A burst of compressed hits therefore queues at the pipe entrance —
//! `queue_insertion_pos` entries are already waiting — and each waits one
//! extra cycle per predecessor. §V-C shows this contention is a
//! first-order effect: Static-SC loses performance on SS partly because
//! its higher hit rate *congests the decompressor*.

use latte_compress::Cycles;

/// Models the entry queue in front of one SM's pipelined decompressor.
///
/// # Example
///
/// ```
/// use latte_cache::DecompressionQueue;
///
/// let mut q = DecompressionQueue::new();
/// // Back-to-back 14-cycle (SC) hits in the same cycle queue up.
/// assert_eq!(q.enqueue(100, 14), 15); // enters the pipe next cycle
/// assert_eq!(q.enqueue(100, 14), 16); // one entry ahead of it
/// // After the queue drains, a new hit sees no contention.
/// assert_eq!(q.enqueue(200, 14), 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecompressionQueue {
    /// The cycle at which the most recently accepted line enters the
    /// pipeline (`None` when idle).
    last_entry_slot: Option<Cycles>,
    /// Peak queue depth observed (entries waiting at the pipe entrance).
    peak_depth: usize,
    /// Total lines enqueued.
    total_enqueued: u64,
    /// Sum of queue positions at insertion.
    total_wait: u64,
}

impl DecompressionQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> DecompressionQueue {
        DecompressionQueue::default()
    }

    /// Enqueues a decompression arriving at `cycle` with pipeline latency
    /// `decompression_latency`, returning the **effective hit latency**
    /// (Eq. 3): one cycle per queued predecessor, plus this line's own
    /// entry slot, plus the pipeline latency.
    pub fn enqueue(&mut self, cycle: Cycles, decompression_latency: Cycles) -> Cycles {
        let slot = match self.last_entry_slot {
            Some(last) if last >= cycle => last + 1,
            _ => cycle + 1,
        };
        self.last_entry_slot = Some(slot);
        let insertion_pos = slot - cycle - 1;
        self.peak_depth = self.peak_depth.max(insertion_pos as usize + 1);
        self.total_enqueued += 1;
        self.total_wait += insertion_pos;
        decompression_latency + insertion_pos + 1
    }

    /// Number of lines waiting at the pipe entrance at `cycle` (excluding
    /// any line entering exactly at `cycle`).
    #[must_use]
    pub fn depth_at(&self, cycle: Cycles) -> usize {
        match self.last_entry_slot {
            Some(last) if last > cycle => (last - cycle) as usize,
            _ => 0,
        }
    }

    /// Highest depth seen (including the entering line).
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Total lines decompressed.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Mean queue position at insertion (0 = always idle).
    #[must_use]
    pub fn mean_insertion_pos(&self) -> f64 {
        if self.total_enqueued == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.total_enqueued as f64
        }
    }

    /// Clears in-flight state (kernel boundary).
    pub fn flush(&mut self) {
        self.last_entry_slot = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_adds_one_service_slot() {
        let mut q = DecompressionQueue::new();
        assert_eq!(q.enqueue(0, 2), 3); // BDI
        assert_eq!(q.enqueue(1000, 14), 15); // SC, long after
    }

    #[test]
    fn burst_builds_contention() {
        let mut q = DecompressionQueue::new();
        let lats: Vec<u64> = (0..5).map(|_| q.enqueue(10, 14)).collect();
        assert_eq!(lats, vec![15, 16, 17, 18, 19]);
        assert_eq!(q.peak_depth(), 5);
    }

    #[test]
    fn pipeline_drains_one_per_cycle() {
        let mut q = DecompressionQueue::new();
        q.enqueue(0, 14); // enters pipe at 1
        q.enqueue(0, 14); // enters pipe at 2
        assert_eq!(q.depth_at(0), 2);
        assert_eq!(q.depth_at(1), 1);
        assert_eq!(q.depth_at(2), 0);
        // A steady 1-per-cycle arrival stream sees no queueing at all:
        // the pipe accepts one line per cycle.
        assert_eq!(q.enqueue(3, 14), 15);
        assert_eq!(q.enqueue(4, 14), 15);
        assert_eq!(q.enqueue(5, 14), 15);
    }

    #[test]
    fn overlapping_bursts_accumulate() {
        let mut q = DecompressionQueue::new();
        assert_eq!(q.enqueue(0, 2), 3); // slot 1
        assert_eq!(q.enqueue(0, 2), 4); // slot 2
        assert_eq!(q.enqueue(1, 2), 4); // slot 3: one predecessor still queued
        assert_eq!(q.enqueue(10, 2), 3); // drained by cycle 10
    }

    #[test]
    fn mean_insertion_pos_statistics() {
        let mut q = DecompressionQueue::new();
        q.enqueue(0, 2);
        q.enqueue(0, 2);
        q.enqueue(0, 2);
        // Positions 0, 1, 2 -> mean 1.
        assert!((q.mean_insertion_pos() - 1.0).abs() < 1e-12);
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn flush_clears_contention() {
        let mut q = DecompressionQueue::new();
        q.enqueue(0, 14);
        q.enqueue(0, 14);
        q.flush();
        assert_eq!(q.enqueue(1, 14), 15);
    }
}
