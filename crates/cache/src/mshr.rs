//! Miss-status holding registers: outstanding misses to the same line are
//! merged so the memory system sees one request per line.

// Order-independence audit (2026-08): `entries` is accessed only through
// keyed operations — get/get_mut/insert/remove/contains_key/len/clear —
// with one exception: `validate()` folds the values into order-independent
// aggregates (counts of out-of-bounds entries), so HashMap's
// nondeterministic iteration order still cannot reach any observable
// result. Guarded by the `iteration_order_cannot_leak` test below.
// latte-lint: allow-file(D3, reason = "keyed access plus order-independent aggregation in validate(); see audit note above")

use crate::geometry::LineAddr;
use std::collections::HashMap;

/// Outcome of reserving an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to this line: a memory request must be issued.
    Primary,
    /// A request for this line is already in flight; this miss merged.
    Merged,
    /// No MSHR entry (or merge slot) available; the access must stall and
    /// retry.
    Full,
}

/// A fixed-capacity MSHR file.
///
/// # Example
///
/// ```
/// use latte_cache::{LineAddr, Mshr, MshrOutcome};
///
/// let mut mshr = Mshr::new(2, 4);
/// let a = LineAddr::new(1);
/// assert_eq!(mshr.allocate(a), MshrOutcome::Primary);
/// assert_eq!(mshr.allocate(a), MshrOutcome::Merged);
/// mshr.release(a);
/// assert_eq!(mshr.allocate(a), MshrOutcome::Primary);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: HashMap<LineAddr, u32>,
    capacity: usize,
    max_merges: u32,
    peak_used: usize,
    merged_total: u64,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries, each able to hold
    /// `max_merges` merged requests (including the primary).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_merges` is zero.
    #[must_use]
    pub fn new(capacity: usize, max_merges: u32) -> Mshr {
        assert!(capacity > 0, "MSHR needs at least one entry");
        assert!(max_merges > 0, "MSHR entries need at least one slot");
        Mshr {
            entries: HashMap::new(),
            capacity,
            max_merges,
            peak_used: 0,
            merged_total: 0,
        }
    }

    /// `true` if [`Mshr::allocate`] for `addr` would succeed (as primary
    /// or merged) without changing any state.
    #[must_use]
    pub fn would_accept(&self, addr: LineAddr) -> bool {
        match self.entries.get(&addr) {
            Some(&count) => count < self.max_merges,
            None => self.entries.len() < self.capacity,
        }
    }

    /// Reserves an entry (or merge slot) for a miss to `addr`.
    pub fn allocate(&mut self, addr: LineAddr) -> MshrOutcome {
        if let Some(count) = self.entries.get_mut(&addr) {
            if *count >= self.max_merges {
                return MshrOutcome::Full;
            }
            *count += 1;
            self.merged_total += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(addr, 1);
        self.peak_used = self.peak_used.max(self.entries.len());
        MshrOutcome::Primary
    }

    /// Releases the entry for `addr` when its refill returns. Releasing an
    /// address with no entry is a no-op.
    pub fn release(&mut self, addr: LineAddr) {
        self.entries.remove(&addr);
    }

    /// `true` if a request for `addr` is in flight.
    #[must_use]
    pub fn is_pending(&self, addr: LineAddr) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Entries currently in use.
    #[must_use]
    pub fn used(&self) -> usize {
        self.entries.len()
    }

    /// Peak simultaneous entries.
    #[must_use]
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Total merged (secondary) misses.
    #[must_use]
    pub fn merged_total(&self) -> u64 {
        self.merged_total
    }

    /// Clears all in-flight state (kernel boundary).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Verifies the MSHR file's structural invariants without panicking:
    /// entries never exceed capacity, every entry's merge count is in
    /// `1..=max_merges`, and the peak-usage statistic is within capacity.
    /// Used by the shadow-verification checkpoints.
    ///
    /// The error message reports *how many* entries are out of bounds —
    /// an order-independent aggregate — never *which* entry, so HashMap
    /// iteration order cannot leak into diagnostics.
    ///
    /// # Errors
    ///
    /// Returns `Err` describing the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.len() > self.capacity {
            return Err(format!(
                "MSHR holds {} entries, capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        if self.peak_used > self.capacity {
            return Err(format!(
                "MSHR peak usage {} exceeds capacity {}",
                self.peak_used, self.capacity
            ));
        }
        let out_of_bounds = self
            .entries
            // latte-lint: allow(T1, reason = "order-independent fold: filter().count() yields the same value under any iteration order")
            .values()
            .filter(|&&c| c == 0 || c > self.max_merges)
            .count();
        if out_of_bounds > 0 {
            return Err(format!(
                "{out_of_bounds} MSHR entries hold merge counts outside 1..={}",
                self.max_merges
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_then_release() {
        let mut m = Mshr::new(4, 8);
        let a = LineAddr::new(10);
        assert_eq!(m.allocate(a), MshrOutcome::Primary);
        assert_eq!(m.allocate(a), MshrOutcome::Merged);
        assert!(m.is_pending(a));
        m.release(a);
        assert!(!m.is_pending(a));
        assert_eq!(m.merged_total(), 1);
    }

    #[test]
    fn capacity_limit() {
        let mut m = Mshr::new(2, 8);
        assert_eq!(m.allocate(LineAddr::new(1)), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr::new(2)), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr::new(3)), MshrOutcome::Full);
        // Merging into an existing entry still works when full.
        assert_eq!(m.allocate(LineAddr::new(1)), MshrOutcome::Merged);
        assert_eq!(m.peak_used(), 2);
    }

    #[test]
    fn merge_limit() {
        let mut m = Mshr::new(2, 2);
        let a = LineAddr::new(5);
        assert_eq!(m.allocate(a), MshrOutcome::Primary);
        assert_eq!(m.allocate(a), MshrOutcome::Merged);
        assert_eq!(m.allocate(a), MshrOutcome::Full);
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut m = Mshr::new(1, 1);
        m.release(LineAddr::new(99));
        assert_eq!(m.used(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Mshr::new(0, 1);
    }

    #[test]
    fn validate_accepts_live_state_and_bounds() {
        let mut m = Mshr::new(4, 2);
        for i in 0..4 {
            assert_eq!(m.allocate(LineAddr::new(i)), MshrOutcome::Primary);
        }
        assert_eq!(m.allocate(LineAddr::new(0)), MshrOutcome::Merged);
        assert_eq!(m.validate(), Ok(()));
        m.release(LineAddr::new(2));
        assert_eq!(m.validate(), Ok(()));
        m.flush();
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn validate_flags_corrupted_merge_counts() {
        let mut m = Mshr::new(4, 2);
        m.allocate(LineAddr::new(1));
        // Corrupt the internal state directly — no public API can produce
        // this, which is exactly what validate() is for.
        if let Some(c) = m.entries.get_mut(&LineAddr::new(1)) {
            *c = 99;
        }
        let err = m.validate().expect_err("merge count 99 must fail");
        assert!(err.contains("merge counts"), "{err}");
    }

    #[test]
    fn iteration_order_cannot_leak() {
        // Backs the file's D3 allow marker: every observable output of an
        // MSHR filled in two different insertion orders must be identical,
        // because no API iterates the underlying HashMap. If someone adds
        // an iterating accessor, this test is the reminder to make it
        // order-stable (and to re-justify or drop the marker).
        let addrs: Vec<LineAddr> = (0..32).map(|i| LineAddr::new(i * 7 + 1)).collect();
        let mut fwd = Mshr::new(64, 4);
        for &a in &addrs {
            fwd.allocate(a);
        }
        let mut rev = Mshr::new(64, 4);
        for &a in addrs.iter().rev() {
            rev.allocate(a);
        }
        assert_eq!(fwd.used(), rev.used());
        assert_eq!(fwd.peak_used(), rev.peak_used());
        assert_eq!(fwd.merged_total(), rev.merged_total());
        for &a in &addrs {
            assert_eq!(fwd.is_pending(a), rev.is_pending(a));
            assert_eq!(fwd.would_accept(a), rev.would_accept(a));
        }
    }
}
