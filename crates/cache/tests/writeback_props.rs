//! Property tests for the write-back data path: under arbitrary
//! store/load interleavings the cache and a byte-exact reference model
//! agree on every resident line's architectural bytes, every dirty
//! eviction carries the last-written bytes through a real
//! `decode(encode(..))` round trip, and size-changing writes never
//! orphan a tracked segment or exceed the set's sub-block budget.

use std::collections::{HashMap, HashSet};

use latte_cache::{CacheGeometry, CompressedCache, EvictedLine, LineAddr};
use latte_compress::{Bdi, CacheLine, Compression, CompressionAlgo, Compressor, Fpc};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum WbOp {
    /// A load: miss-fill from backing memory (write-allocate shape).
    Access(u64),
    /// A store of `[fill; 32]` into `sector` of the line at `addr`
    /// (allocating on miss), re-compressed with the selected algorithm.
    Store { addr: u64, sector: u8, fill: u8, algo_sel: u8 },
    /// The kernel-end flush: every dirty line written back in place.
    DrainDirty,
    /// Invalidation of one line (dirty bytes written back first, as the
    /// simulator does).
    Invalidate(u64),
    /// The SC-style bulk invalidation path, aimed at BDI lines here.
    InvalidateBdi,
}

fn op_strategy(addr_space: u64) -> impl Strategy<Value = WbOp> {
    prop_oneof![
        4 => (0..addr_space).prop_map(WbOp::Access),
        4 => (0..addr_space, 0u8..4, any::<u8>(), 0u8..3).prop_map(|(addr, sector, fill, algo_sel)| {
            WbOp::Store { addr, sector, fill, algo_sel }
        }),
        1 => Just(WbOp::DrainDirty),
        1 => (0..addr_space).prop_map(WbOp::Invalidate),
        1 => Just(WbOp::InvalidateBdi),
    ]
}

fn algo_of(sel: u8) -> CompressionAlgo {
    match sel {
        0 => CompressionAlgo::Bdi,
        1 => CompressionAlgo::Fpc,
        _ => CompressionAlgo::None,
    }
}

fn probe(algo: CompressionAlgo, line: &CacheLine) -> Compression {
    match algo {
        CompressionAlgo::Bdi => Bdi::new().probe(line),
        CompressionAlgo::Fpc => Fpc::new().probe(line),
        _ => Compression::UNCOMPRESSED,
    }
}

/// The bytes the line would hold after its stored representation is read
/// back: the genuine compressor round trip for the payload-bearing
/// algorithms, identity for raw storage.
fn roundtrip(algo: CompressionAlgo, line: &CacheLine) -> CacheLine {
    match algo {
        CompressionAlgo::Bdi => {
            let bdi = Bdi::new();
            bdi.decode(&bdi.encode(line)).expect("BDI decodes its own encoding")
        }
        CompressionAlgo::Fpc => {
            let fpc = Fpc::new();
            fpc.decode(&fpc.encode(line)).expect("FPC decodes its own encoding")
        }
        _ => *line,
    }
}

/// Deterministic backing-memory contents for lines never written.
fn pristine(addr: u64) -> CacheLine {
    let mut bytes = [0u8; CacheLine::SIZE_BYTES];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = (addr as u8).wrapping_mul(37).wrapping_add(i as u8);
    }
    CacheLine::from_bytes(bytes)
}

/// The byte-exact reference model the cache is diffed against: backing
/// memory, the expected bytes of every resident line, and the dirty set.
#[derive(Default)]
struct Model {
    mem: HashMap<u64, CacheLine>,
    resident: HashMap<u64, CacheLine>,
    dirty: HashSet<u64>,
}

impl Model {
    fn mem_bytes(&self, addr: u64) -> CacheLine {
        self.mem.get(&addr).copied().unwrap_or_else(|| pristine(addr))
    }

    /// Audits one eviction batch: every victim must carry exactly the
    /// bytes the model expected for it (no orphaned or stale segments),
    /// and dirty victims write those bytes back to memory.
    fn absorb_evictions(&mut self, evicted: &[EvictedLine]) {
        for e in evicted {
            let key = e.addr.line_number();
            let expected = self.resident.remove(&key);
            prop_assert!(expected.is_some(), "evicted non-resident line {}", e.addr);
            prop_assert_eq!(
                e.data.as_ref(),
                expected.as_ref(),
                "victim {} must carry its tracked bytes",
                e.addr
            );
            let was_dirty = self.dirty.remove(&key);
            prop_assert_eq!(e.dirty, was_dirty, "dirty bit of {} diverged", e.addr);
            if e.dirty {
                let data = e.data.expect("dirty victims carry data");
                self.mem.insert(key, data);
            }
        }
    }
}

/// Fills `addr` from backing memory (the miss path) and syncs the model.
fn fill_line(
    cache: &mut CompressedCache,
    model: &mut Model,
    addr: u64,
    cycle: u64,
) {
    let data = model.mem_bytes(addr);
    let line = LineAddr::new(addr);
    // Fills always come from memory at BDI size here; the algorithm mix
    // on the write path is what varies sizes.
    let evicted = cache.fill(line, CompressionAlgo::Bdi, Bdi::new().probe(&data), cycle);
    prop_assert!(evicted.iter().all(|e| e.addr != line), "fill evicted itself");
    model.absorb_evictions(&evicted);
    cache.record_line_data(line, data);
    model.resident.insert(addr, data);
}

/// Checks the cache against the model after every step.
fn check_sync(cache: &CompressedCache, model: &Model) {
    prop_assert_eq!(cache.validate(), Ok(()));
    prop_assert!(cache.stored_bytes() <= cache.geometry().size_bytes);
    prop_assert_eq!(cache.valid_lines(), model.resident.len());
    prop_assert_eq!(cache.dirty_lines(), model.dirty.len());
    for (&addr, bytes) in &model.resident {
        let line = LineAddr::new(addr);
        prop_assert!(cache.contains(line), "model thinks {line} is resident");
        prop_assert_eq!(cache.line_data(line), Some(bytes), "bytes of {} diverged", line);
        prop_assert_eq!(cache.is_dirty(line), model.dirty.contains(&addr));
    }
}

fn run_interleaving(ops: &[WbOp], addr_space: u64) {
    let mut cache = CompressedCache::new(CacheGeometry::paper_l1());
    cache.enable_data_tracking();
    let mut model = Model::default();
    let mut last_written: HashMap<u64, CacheLine> = HashMap::new();

    for (cycle, op) in ops.iter().enumerate() {
        let cycle = cycle as u64;
        match *op {
            WbOp::Access(addr) => {
                let line = LineAddr::new(addr);
                if cache.lookup(line, cycle).is_miss() {
                    fill_line(&mut cache, &mut model, addr, cycle);
                }
            }
            WbOp::Store { addr, sector, fill, algo_sel } => {
                let line = LineAddr::new(addr);
                if !cache.contains(line) {
                    // Write-allocate: fetch the line, then merge the store.
                    fill_line(&mut cache, &mut model, addr, cycle);
                }
                let mut bytes = *model.resident[&addr].as_bytes();
                let lo = usize::from(sector) * 32;
                bytes[lo..lo + 32].fill(fill);
                let merged = CacheLine::from_bytes(bytes);
                let algo = algo_of(algo_sel);
                // The dirty line's stored representation must read back
                // as exactly the bytes just written.
                prop_assert_eq!(
                    roundtrip(algo, &merged),
                    merged,
                    "{:?} round trip lost a write to {}",
                    algo,
                    line
                );
                let evicted = cache
                    .write(line, algo, probe(algo, &merged), &merged, cycle)
                    .expect("line is resident");
                prop_assert!(
                    evicted.iter().all(|e| e.addr != line),
                    "grown write evicted itself"
                );
                model.absorb_evictions(&evicted);
                model.resident.insert(addr, merged);
                model.dirty.insert(addr);
                last_written.insert(addr, merged);
            }
            WbOp::DrainDirty => {
                let drained = cache.drain_dirty();
                prop_assert_eq!(drained.len(), model.dirty.len());
                for (line, data) in drained {
                    let key = line.line_number();
                    prop_assert!(model.dirty.remove(&key), "drained clean line {line}");
                    prop_assert_eq!(
                        Some(&data),
                        model.resident.get(&key),
                        "flush of {} diverged",
                        line
                    );
                    model.mem.insert(key, data);
                }
                prop_assert_eq!(cache.dirty_lines(), 0);
            }
            WbOp::Invalidate(addr) => {
                let line = LineAddr::new(addr);
                if cache.contains(line) {
                    if cache.is_dirty(line) {
                        model.mem.insert(addr, model.resident[&addr]);
                        model.dirty.remove(&addr);
                    }
                    prop_assert!(cache.invalidate(line));
                    model.resident.remove(&addr);
                }
            }
            WbOp::InvalidateBdi => {
                let dropped = cache.invalidate_algo(CompressionAlgo::Bdi);
                model.absorb_evictions(&dropped);
            }
        }
        check_sync(&cache, &model);
    }

    // End of run: flush everything, then replay every line ever written
    // through a cold refetch — the bytes that come back from memory must
    // be the last bytes stored, or a write-back was lost along the way.
    for (line, data) in cache.drain_dirty() {
        model.mem.insert(line.line_number(), data);
    }
    for addr in 0..addr_space {
        if let Some(expected) = last_written.get(&addr) {
            prop_assert_eq!(
                &model.mem_bytes(addr),
                expected,
                "cold refetch of line {} lost the last write",
                addr
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wide address space: cross-set traffic with moderate contention.
    #[test]
    fn interleavings_preserve_last_written_bytes(
        ops in prop::collection::vec(op_strategy(96), 1..300)
    ) {
        run_interleaving(&ops, 96);
    }

    /// Every address maps to set 0 (strides of the set count), so
    /// size-changing writes constantly grow/shrink against a full set —
    /// the worst case for sub-block budget and orphaned-segment bugs.
    #[test]
    fn single_set_churn_never_orphans_or_overflows(
        raw in prop::collection::vec(op_strategy(16), 1..300)
    ) {
        // Spread the 16 logical lines across set-0 aliases.
        let sets = CacheGeometry::paper_l1().num_sets() as u64;
        let ops: Vec<WbOp> = raw
            .into_iter()
            .map(|op| match op {
                WbOp::Access(a) => WbOp::Access(a * sets),
                WbOp::Store { addr, sector, fill, algo_sel } => WbOp::Store {
                    addr: addr * sets,
                    sector,
                    fill,
                    algo_sel,
                },
                WbOp::Invalidate(a) => WbOp::Invalidate(a * sets),
                other => other,
            })
            .collect();
        run_interleaving(&ops, 16 * sets);
    }
}
