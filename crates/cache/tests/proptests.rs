//! Property tests for the compressed cache: structural invariants hold
//! under arbitrary operation sequences, and the compressed cache strictly
//! generalises a conventional cache.

use latte_cache::{CacheGeometry, CompressedCache, LineAddr, SimpleCache};
use latte_compress::{Compression, CompressionAlgo};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Fill(u64, u8, usize), // addr, algo selector, size bytes
    Invalidate(u64),
    InvalidateAll,
    DecodeFailure(u64),
}

fn op_strategy(addr_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..addr_space).prop_map(Op::Lookup),
        4 => (0..addr_space, 0u8..3, 1usize..=128).prop_map(|(a, g, s)| Op::Fill(a, g, s)),
        1 => (0..addr_space).prop_map(Op::Invalidate),
        1 => Just(Op::InvalidateAll),
        1 => (0..addr_space).prop_map(Op::DecodeFailure),
    ]
}

fn algo_of(sel: u8) -> CompressionAlgo {
    match sel {
        0 => CompressionAlgo::Bdi,
        1 => CompressionAlgo::Sc,
        _ => CompressionAlgo::None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_random_ops(
        ops in prop::collection::vec(op_strategy(512), 1..400)
    ) {
        let mut cache = CompressedCache::new(CacheGeometry::paper_l1());
        for (cycle, op) in ops.iter().enumerate() {
            let cycle = cycle as u64;
            match *op {
                Op::Lookup(a) => {
                    let _ = cache.lookup(LineAddr::new(a), cycle);
                }
                Op::Fill(a, g, s) => {
                    let addr = LineAddr::new(a);
                    let evicted = cache.fill(addr, algo_of(g), Compression::new(s), cycle);
                    // A fill never evicts the line it inserts.
                    prop_assert!(evicted.iter().all(|e| e.addr != addr));
                    prop_assert!(cache.contains(addr));
                }
                Op::Invalidate(a) => {
                    let addr = LineAddr::new(a);
                    cache.invalidate(addr);
                    prop_assert!(!cache.contains(addr));
                }
                Op::InvalidateAll => {
                    cache.invalidate_all();
                    prop_assert_eq!(cache.valid_lines(), 0);
                }
                Op::DecodeFailure(a) => {
                    // Model a corrupted stored line discovered on a hit:
                    // lookup, then report the decompression failure.
                    let addr = LineAddr::new(a);
                    if cache.lookup(addr, cycle).needs_decompression() {
                        prop_assert!(cache.on_decode_failure(addr));
                        prop_assert!(!cache.contains(addr));
                    }
                }
            }
            cache.assert_invariants();
        }
        // Accounting identities (decode failures shift hits to misses but
        // never break them).
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), s.hits + s.misses);
        prop_assert!(s.compressed_hits <= s.hits);
        prop_assert!(s.compressed_fills <= s.fills);
        prop_assert!(s.decode_failures <= s.misses);
        prop_assert!(cache.stored_bytes() <= cache.geometry().size_bytes);
    }

    #[test]
    fn uncompressed_compressed_cache_matches_simple_cache(
        addrs in prop::collection::vec(0u64..256, 1..500)
    ) {
        // A CompressedCache that only ever stores raw lines must produce
        // exactly the hit/miss sequence of a conventional LRU cache.
        let geom = CacheGeometry::paper_l1();
        let mut compressed = CompressedCache::new(geom);
        let mut simple = SimpleCache::new(CacheGeometry { tag_factor: 1, ..geom });
        for (cycle, &a) in addrs.iter().enumerate() {
            let addr = LineAddr::new(a);
            let hit_c = compressed.lookup(addr, cycle as u64).is_hit();
            if !hit_c {
                compressed.fill(addr, CompressionAlgo::None, Compression::UNCOMPRESSED, cycle as u64);
            }
            let hit_s = simple.access_and_fill(addr);
            prop_assert_eq!(hit_c, hit_s, "divergence at access {} (addr {})", cycle, a);
        }
        prop_assert_eq!(compressed.stats().hits, simple.stats().hits);
        prop_assert_eq!(compressed.stats().misses, simple.stats().misses);
    }

    #[test]
    fn compressed_cache_dominates_uncompressed_on_hits(
        addrs in prop::collection::vec(0u64..192, 100..600)
    ) {
        // With everything compressed 4:1, the compressed cache holds a
        // superset of the uncompressed cache's lines under LRU... not a
        // theorem for adversarial patterns (Belady), but with 4x tags and
        // 4x capacity the hit count should never be dramatically lower.
        // We assert the weaker, always-true invariant: at least as many
        // lines resident at the end.
        let geom = CacheGeometry::paper_l1();
        let mut small = CompressedCache::new(geom);
        let mut big = CompressedCache::new(geom);
        for (cycle, &a) in addrs.iter().enumerate() {
            let addr = LineAddr::new(a);
            let cycle = cycle as u64;
            if small.lookup(addr, cycle).is_miss() {
                small.fill(addr, CompressionAlgo::None, Compression::UNCOMPRESSED, cycle);
            }
            if big.lookup(addr, cycle).is_miss() {
                big.fill(addr, CompressionAlgo::Sc, Compression::new(32), cycle);
            }
        }
        prop_assert!(big.valid_lines() >= small.valid_lines());
        prop_assert!(big.stats().hits >= small.stats().hits);
    }
}
