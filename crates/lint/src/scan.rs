//! Workspace walking and per-file orchestration.

use crate::lexer::lex;
use crate::rules::{check, FileContext, FileKind, Violation, SIM_CRATES};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
///
/// * `target` — build output.
/// * `vendor` — offline API-subset shims of third-party crates
///   (proptest/criterion); they are not this project's code and
///   legitimately contain RNG plumbing.
/// * `fixtures` — latte-lint's own test fixtures, which *deliberately*
///   violate the rules.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "results"];

/// Result of scanning a tree.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All violations, in path order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files checked.
    pub files_scanned: usize,
}

impl ScanReport {
    /// `true` when no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Classifies a workspace-relative path, or returns `None` when the file
/// is out of scope for linting.
#[must_use]
pub fn classify(rel_path: &str) -> Option<FileContext> {
    let parts: Vec<&str> = rel_path.split('/').filter(|p| !p.is_empty()).collect();
    if parts.iter().any(|p| SKIP_DIRS.contains(p)) {
        return None;
    }
    match parts.as_slice() {
        ["crates", crate_dir, rest @ ..] => {
            let crate_name = (*crate_dir).to_owned();
            let is_sim_crate = SIM_CRATES.contains(crate_dir);
            let kind = match rest {
                ["src", "main.rs"] | ["src", "bin", ..] | ["build.rs"] => FileKind::Bin,
                ["src", ..] => FileKind::Lib,
                ["tests", ..] | ["benches", ..] => FileKind::Test,
                ["examples", ..] => FileKind::Example,
                _ => return None,
            };
            Some(FileContext {
                crate_name: Some(crate_name),
                is_sim_crate,
                kind,
            })
        }
        // Repository-root integration tests and examples belong to the
        // bench (driver) crate via explicit [[test]]/[[example]] paths.
        ["tests", ..] => Some(FileContext {
            crate_name: Some("bench".to_owned()),
            is_sim_crate: false,
            kind: FileKind::Test,
        }),
        ["examples", ..] => Some(FileContext {
            crate_name: Some("bench".to_owned()),
            is_sim_crate: false,
            kind: FileKind::Example,
        }),
        _ => None,
    }
}

/// Lexes and checks one file's source under the context derived from
/// `rel_path`. Returns an empty list for out-of-scope paths.
#[must_use]
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Violation> {
    match classify(rel_path) {
        Some(ctx) => check(rel_path, src, &lex(src), &ctx),
        None => Vec::new(),
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic report order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every in-scope `.rs` file of the workspace rooted at `root`.
///
/// # Errors
///
/// Returns an error when `root` is not a workspace root (no
/// `Cargo.toml`) or a file cannot be read.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} does not look like a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut report = ScanReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.violations.extend(scan_source(&rel, &src));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let lib = classify("crates/gpusim/src/sm.rs").map(|c| (c.is_sim_crate, c.kind));
        assert_eq!(lib, Some((true, FileKind::Lib)));
        let bin = classify("crates/bench/src/main.rs").map(|c| (c.is_sim_crate, c.kind));
        assert_eq!(bin, Some((false, FileKind::Bin)));
        let tool = classify("crates/bench/src/bin/probe.rs").map(|c| c.kind);
        assert_eq!(tool, Some(FileKind::Bin));
        let test = classify("crates/cache/tests/proptests.rs").map(|c| c.kind);
        assert_eq!(test, Some(FileKind::Test));
        let bench = classify("crates/bench/benches/simulator.rs").map(|c| c.kind);
        assert_eq!(bench, Some(FileKind::Test));
        let root_test = classify("tests/end_to_end.rs").map(|c| c.kind);
        assert_eq!(root_test, Some(FileKind::Test));
        let example = classify("examples/quickstart.rs").map(|c| c.kind);
        assert_eq!(example, Some(FileKind::Example));
    }

    #[test]
    fn out_of_scope_paths_are_skipped() {
        assert_eq!(classify("vendor/proptest/src/lib.rs"), None);
        assert_eq!(classify("target/debug/build/x.rs"), None);
        assert_eq!(classify("crates/lint/tests/fixtures/d1_fail.rs"), None);
        assert_eq!(classify("README.md"), None);
    }
}
