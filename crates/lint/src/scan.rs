//! Workspace walking, the two-pass analysis pipeline, and the `A1`
//! stale-allow audit.
//!
//! Pass 1 lexes + parses every in-scope file into a [`FileUnit`]. Pass 2
//! runs the lexer-tier rules pre-suppression ([`crate::rules::check_raw`])
//! plus the graph-tier analyses ([`crate::graph`] for S1,
//! [`crate::taint`] for T1) over the whole unit set, then applies
//! suppressions while recording which markers actually earned their
//! keep. Any marker that suppressed nothing (and never served as a T1
//! barrier or a consumed shared-boundary annotation) is itself reported
//! as `A1`.

use crate::graph;
use crate::lexer::{lex, LexOutput};
use crate::parser::{parse, ParsedFile};
use crate::rules::{
    check_raw, is_unsuppressible, marker_covers, rule, FileContext, FileKind, Severity, Violation,
    SIM_CRATES,
};
use crate::taint;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
///
/// * `target` — build output.
/// * `vendor` — offline API-subset shims of third-party crates
///   (proptest/criterion); they are not this project's code and
///   legitimately contain RNG plumbing.
/// * `fixtures` — latte-lint's own test fixtures, which *deliberately*
///   violate the rules.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "results"];

/// One in-scope source file, fully lexed and parsed. The graph-tier
/// analyses index into a slice of these by position.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// Classification (crate, sim-ness, target kind).
    pub ctx: FileContext,
    /// Raw source text.
    pub src: String,
    /// Token stream, markers, boundary annotations.
    pub lex: LexOutput,
    /// Item-level parse (structs, fns, calls, uses, ...).
    pub parsed: ParsedFile,
}

/// Result of scanning a tree.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All violations, in path order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files checked.
    pub files_scanned: usize,
}

impl ScanReport {
    /// `true` when no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Everything a full analysis produces: the violation report plus the
/// S1 partition classification.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// Violations + file count.
    pub report: ScanReport,
    /// The Send-partitionability classification
    /// (`results/lint_partition.json`).
    pub partition: graph::PartitionReport,
    /// Every tainted function with its cause chain (for `--graph`).
    pub tainted: Vec<taint::TaintedFn>,
}

/// The two-pass analyzer over a set of source files.
#[derive(Debug, Default)]
pub struct Analysis {
    files: Vec<FileUnit>,
}

impl Analysis {
    /// Builds the unit set from `(rel_path, source)` pairs, dropping
    /// out-of-scope paths.
    #[must_use]
    pub fn new(sources: Vec<(String, String)>) -> Self {
        let mut files = Vec::new();
        for (rel_path, src) in sources {
            let Some(ctx) = classify(&rel_path) else {
                continue;
            };
            let lexed = lex(&src);
            let parsed = parse(&lexed.tokens);
            files.push(FileUnit { rel_path, ctx, src, lex: lexed, parsed });
        }
        Analysis { files }
    }

    /// The analyzed units, in input order.
    #[must_use]
    pub fn files(&self) -> &[FileUnit] {
        &self.files
    }

    /// Runs every tier and assembles the final report.
    #[must_use]
    pub fn run(&self) -> AnalysisReport {
        let idx = graph::TypeIndex::build(&self.files);
        let s1 = graph::analyze(&idx);
        let t1 = taint::analyze(&idx);

        // Markers earn their keep by suppressing a raw finding, serving
        // as a T1 taint barrier, or annotating a genuinely shared field.
        let mut used_allow: BTreeSet<(usize, u32)> = t1.barrier_uses.clone();
        let used_boundary: &BTreeSet<(usize, u32)> = &s1.used_boundaries;

        let mut kept: Vec<Violation> = Vec::new();
        let mut suppress = |fi: usize, unit: &FileUnit, v: Violation, out: &mut Vec<Violation>| {
            if is_unsuppressible(v.rule) {
                out.push(v);
                return;
            }
            let mut suppressed = false;
            for m in &unit.lex.markers {
                if m.rule == v.rule && marker_covers(m.file_scope, m.line, v.line) {
                    used_allow.insert((fi, m.line));
                    suppressed = true;
                }
            }
            if !suppressed {
                out.push(v);
            }
        };

        for (fi, unit) in self.files.iter().enumerate() {
            for v in check_raw(&unit.rel_path, &unit.src, &unit.lex, &unit.ctx) {
                suppress(fi, unit, v, &mut kept);
            }
        }
        for v in s1.violations.into_iter().chain(t1.violations) {
            if let Some(fi) = self.files.iter().position(|u| u.rel_path == v.path) {
                suppress(fi, &self.files[fi], v, &mut kept);
            } else {
                kept.push(v);
            }
        }

        // A1: every surviving marker must have done something.
        for (fi, unit) in self.files.iter().enumerate() {
            for m in &unit.lex.markers {
                // Unknown-rule and allow(A0)/allow(A1) markers are A0
                // findings already; flagging them A1 too is noise.
                if rule(&m.rule).is_none() || is_unsuppressible(&m.rule) {
                    continue;
                }
                if !used_allow.contains(&(fi, m.line)) {
                    kept.push(Violation {
                        rule: "A1",
                        severity: Severity::Error,
                        path: unit.rel_path.clone(),
                        line: m.line,
                        col: 1,
                        message: format!(
                            "stale suppression: rule `{}` no longer fires in this marker's \
                             scope; delete the marker",
                            m.rule
                        ),
                        snippet: snippet_of(unit, m.line),
                    });
                }
            }
            for b in &unit.lex.boundaries {
                if !used_boundary.contains(&(fi, b.line)) {
                    kept.push(Violation {
                        rule: "A1",
                        severity: Severity::Error,
                        path: unit.rel_path.clone(),
                        line: b.line,
                        col: 1,
                        message: "stale shared-boundary marker: it annotates no field or \
                                  static holding a shared capability; delete the marker"
                            .to_owned(),
                        snippet: snippet_of(unit, b.line),
                    });
                }
            }
        }

        kept.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        AnalysisReport {
            report: ScanReport { violations: kept, files_scanned: self.files.len() },
            partition: s1.partition,
            tainted: t1.tainted,
        }
    }
}

fn snippet_of(unit: &FileUnit, line: u32) -> String {
    unit.src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .map(|l| l.trim_end().to_owned())
        .unwrap_or_default()
}

/// Classifies a workspace-relative path, or returns `None` when the file
/// is out of scope for linting.
#[must_use]
pub fn classify(rel_path: &str) -> Option<FileContext> {
    let parts: Vec<&str> = rel_path.split('/').filter(|p| !p.is_empty()).collect();
    if parts.iter().any(|p| SKIP_DIRS.contains(p)) {
        return None;
    }
    match parts.as_slice() {
        ["crates", crate_dir, rest @ ..] => {
            let crate_name = (*crate_dir).to_owned();
            let is_sim_crate = SIM_CRATES.contains(crate_dir);
            let kind = match rest {
                ["src", "main.rs"] | ["src", "bin", ..] | ["build.rs"] => FileKind::Bin,
                ["src", ..] => FileKind::Lib,
                ["tests", ..] | ["benches", ..] => FileKind::Test,
                ["examples", ..] => FileKind::Example,
                _ => return None,
            };
            Some(FileContext {
                crate_name: Some(crate_name),
                is_sim_crate,
                kind,
            })
        }
        // Repository-root integration tests and examples belong to the
        // bench (driver) crate via explicit [[test]]/[[example]] paths.
        ["tests", ..] => Some(FileContext {
            crate_name: Some("bench".to_owned()),
            is_sim_crate: false,
            kind: FileKind::Test,
        }),
        ["examples", ..] => Some(FileContext {
            crate_name: Some("bench".to_owned()),
            is_sim_crate: false,
            kind: FileKind::Example,
        }),
        _ => None,
    }
}

/// Runs the full analysis on one file's source under the context derived
/// from `rel_path` (graph-tier rules see just this file). Returns an
/// empty list for out-of-scope paths.
#[must_use]
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Violation> {
    Analysis::new(vec![(rel_path.to_owned(), src.to_owned())])
        .run()
        .report
        .violations
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic report order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full analysis over every in-scope `.rs` file of the
/// workspace rooted at `root`.
///
/// # Errors
///
/// Returns an error when `root` is not a workspace root (no
/// `Cargo.toml`) or a file cannot be read.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalysisReport> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} does not look like a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let mut paths = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    let mut sources = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(Analysis::new(sources).run())
}

/// Scans every in-scope `.rs` file of the workspace rooted at `root`
/// (violations only; see [`analyze_workspace`] for the partition
/// report).
///
/// # Errors
///
/// Returns an error when `root` is not a workspace root or a file
/// cannot be read.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    analyze_workspace(root).map(|a| a.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let lib = classify("crates/gpusim/src/sm.rs").map(|c| (c.is_sim_crate, c.kind));
        assert_eq!(lib, Some((true, FileKind::Lib)));
        let bin = classify("crates/bench/src/main.rs").map(|c| (c.is_sim_crate, c.kind));
        assert_eq!(bin, Some((false, FileKind::Bin)));
        let tool = classify("crates/bench/src/bin/probe.rs").map(|c| c.kind);
        assert_eq!(tool, Some(FileKind::Bin));
        let test = classify("crates/cache/tests/proptests.rs").map(|c| c.kind);
        assert_eq!(test, Some(FileKind::Test));
        let bench = classify("crates/bench/benches/simulator.rs").map(|c| c.kind);
        assert_eq!(bench, Some(FileKind::Test));
        let root_test = classify("tests/end_to_end.rs").map(|c| c.kind);
        assert_eq!(root_test, Some(FileKind::Test));
        let example = classify("examples/quickstart.rs").map(|c| c.kind);
        assert_eq!(example, Some(FileKind::Example));
    }

    #[test]
    fn out_of_scope_paths_are_skipped() {
        assert_eq!(classify("vendor/proptest/src/lib.rs"), None);
        assert_eq!(classify("target/debug/build/x.rs"), None);
        assert_eq!(classify("crates/lint/tests/fixtures/d1_fail.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn used_marker_survives_stale_marker_fires_a1() {
        let src = "
// latte-lint: allow(D3, reason = \"keyed access only, never iterated\")
use std::collections::HashMap;
// latte-lint: allow(D4, reason = \"nothing prints here anymore\")
fn quiet() -> u32 { 1 }
";
        let v = scan_source("crates/gpusim/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "A1");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn a1_cannot_be_suppressed() {
        let src = "
// latte-lint: allow(A1, reason = \"please ignore the audit\")
fn f() -> u32 { 1 }
";
        let v = scan_source("crates/gpusim/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "A0");
    }

    #[test]
    fn stale_boundary_marker_fires_a1() {
        let src = "
struct Sm {
    // latte-lint: shared-boundary(reason = \"this field is not actually shared\")
    counter: u64,
}
";
        let v = scan_source("crates/gpusim/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "A1");
        assert_eq!(v[0].line, 3);
    }
}
