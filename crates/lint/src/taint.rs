//! Interprocedural determinism taint (`T1`).
//!
//! The per-line rules `D1`–`D3` flag nondeterminism *sources* (wall-clock
//! reads, ambient RNG, hash containers) where they are written. This
//! module tracks where their values *flow*: a function is **tainted**
//! when it reads a nondeterministic source, or calls (transitively) a
//! function that does. Three things become violations:
//!
//! * **T1a** — hash-map/set iteration in simulation library code. The
//!   container itself may be fine (`allow(D3)` markers justify keyed
//!   access), but iterating one injects platform-dependent order into
//!   whatever consumes the loop.
//! * **T1b** — a simulation-library call site whose resolved workspace
//!   callee is tainted: nondeterminism entering the simulation through a
//!   function boundary, which the per-line rules cannot see.
//! * **T1c** — a tainted non-simulation function that also writes output
//!   (trace/CSV/stdout): the site where nondeterminism reaches an
//!   artifact that the differential oracle would diff.
//!
//! An `allow(T1, reason = ...)` marker is both a suppression and a
//! **taint barrier**: a seed or call edge under a marker does not
//! propagate. Barriers consumed this way count as "used" for the `A1`
//! stale-allow audit even when no violation is ultimately reported.

use crate::graph::TypeIndex;
use crate::parser::{Callee, FnDef};
use crate::rules::{FileKind, Severity, Violation};
use crate::scan::FileUnit;
use std::collections::{BTreeMap, BTreeSet};

/// Hash-container methods whose results depend on iteration order.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "retain",
    "into_keys", "into_values",
];

/// Macros that write program output.
const OUTPUT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "out", "outln"];

/// A function under taint analysis: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// One tainted function, with the chain of calls leading to its source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintedFn {
    /// `crate::Type::name`-style descriptor.
    pub fn_desc: String,
    /// Call chain from this function down to the seed description.
    pub chain: Vec<String>,
    /// Workspace-relative path of the function.
    pub path: String,
    /// 1-based line of the function name.
    pub line: u32,
}

/// Everything the taint analysis produces.
#[derive(Debug, Default)]
pub struct TaintOutput {
    /// Raw (pre-suppression) `T1` violations.
    pub violations: Vec<Violation>,
    /// `allow(T1)` markers consumed as barriers, as
    /// `(file index, marker line)` — input to the `A1` stale-allow audit.
    pub barrier_uses: BTreeSet<(usize, u32)>,
    /// Every tainted function, sorted by descriptor (for `--graph`).
    pub tainted: Vec<TaintedFn>,
}

/// What kind of nondeterminism a seed injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedKind {
    Clock,
    Rng,
    HashIter,
}

/// One detected seed site inside a function body.
struct Seed {
    kind: SeedKind,
    line: u32,
    col: u32,
    desc: String,
}

struct Tainter<'a> {
    idx: &'a TypeIndex<'a>,
    /// `(owner, method)` → definitions.
    methods: BTreeMap<(String, String), Vec<FnId>>,
    /// free fn name → definitions.
    free: BTreeMap<String, Vec<FnId>>,
    /// All analyzable fns in deterministic order.
    fns: Vec<FnId>,
}

fn analyzable(f: &FileUnit) -> bool {
    matches!(f.ctx.kind, FileKind::Lib | FileKind::Bin)
}

/// `allow(T1)` marker covering `line` of file `fi`, if any; returns the
/// marker line.
fn t1_barrier(files: &[FileUnit], fi: usize, line: u32) -> Option<u32> {
    files.get(fi)?.lex.markers.iter().find_map(|m| {
        (m.rule == "T1" && (m.file_scope || m.line == line || m.line + 1 == line))
            .then_some(m.line)
    })
}

impl<'a> Tainter<'a> {
    fn build(idx: &'a TypeIndex<'a>) -> Self {
        let mut methods: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut fns = Vec::new();
        for (fi, f) in idx.files.iter().enumerate() {
            if !analyzable(f) {
                continue;
            }
            for (ni, fun) in f.parsed.fns.iter().enumerate() {
                if fun.in_test || !fun.has_body {
                    continue;
                }
                fns.push((fi, ni));
                match &fun.owner {
                    Some(owner) => methods
                        .entry((owner.clone(), fun.name.clone()))
                        .or_default()
                        .push((fi, ni)),
                    None => free.entry(fun.name.clone()).or_default().push((fi, ni)),
                }
            }
        }
        Tainter { idx, methods, free, fns }
    }

    fn fn_def(&self, id: FnId) -> Option<&FnDef> {
        self.idx.files.get(id.0).and_then(|f| f.parsed.fns.get(id.1))
    }

    fn fn_desc(&self, id: FnId) -> String {
        let krate = self
            .idx
            .files
            .get(id.0)
            .and_then(|f| f.ctx.crate_name.clone())
            .unwrap_or_else(|| "?".to_owned());
        match self.fn_def(id) {
            Some(f) => match &f.owner {
                Some(o) => format!("{krate}::{o}::{}", f.name),
                None => format!("{krate}::{}", f.name),
            },
            None => format!("{krate}::?"),
        }
    }

    fn prefer_same_crate(&self, cands: Vec<FnId>, from_file: usize) -> Vec<FnId> {
        let from = self.idx.files.get(from_file).and_then(|f| f.ctx.crate_name.clone());
        let same: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|&(fi, _)| {
                self.idx.files.get(fi).and_then(|f| f.ctx.crate_name.clone()) == from
            })
            .collect();
        if same.is_empty() { cands } else { same }
    }

    /// `true` when struct field `field` of type `owner` (resolved from
    /// `from_file`) is a hash container after alias expansion.
    fn field_is_hash(&self, owner: &str, field: &str, from_file: usize) -> bool {
        for (fi, si) in self.idx.resolve_type(owner, from_file) {
            let Some(def) = self.idx.files.get(fi).and_then(|f| f.parsed.structs.get(si)) else {
                continue;
            };
            if let Some(fd) = def.fields.iter().find(|fd| fd.name == field) {
                let exp = self.idx.expand(&fd.ty, fi);
                if exp.idents.contains("HashMap") || exp.idents.contains("HashSet") {
                    return true;
                }
            }
        }
        false
    }

    /// Detects nondeterminism seeds in one function body.
    fn seeds(&self, id: FnId) -> Vec<Seed> {
        let Some(fun) = self.fn_def(id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for call in &fun.calls {
            match &call.callee {
                Callee::Path(segs) => {
                    if let Some(tok) =
                        segs.iter().find(|s| *s == "Instant" || *s == "SystemTime")
                    {
                        out.push(Seed {
                            kind: SeedKind::Clock,
                            line: call.line,
                            col: call.col,
                            desc: format!("wall-clock read (`{tok}`)"),
                        });
                    } else if segs.iter().any(|s| s == "OsRng")
                        || segs
                            .last()
                            .is_some_and(|s| s == "thread_rng" || s == "from_entropy")
                    {
                        out.push(Seed {
                            kind: SeedKind::Rng,
                            line: call.line,
                            col: call.col,
                            desc: "ambient RNG".to_owned(),
                        });
                    }
                }
                Callee::Free(name) if name == "thread_rng" || name == "from_entropy" => {
                    out.push(Seed {
                        kind: SeedKind::Rng,
                        line: call.line,
                        col: call.col,
                        desc: format!("ambient RNG (`{name}`)"),
                    });
                }
                Callee::FieldMethod { field, method }
                    if ITER_METHODS.contains(&method.as_str()) =>
                {
                    if let Some(owner) = &fun.owner {
                        if self.field_is_hash(owner, field, id.0) {
                            out.push(Seed {
                                kind: SeedKind::HashIter,
                                line: call.line,
                                col: call.col,
                                desc: format!(
                                    "hash-container iteration (`self.{field}.{method}`)"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        for (field, line) in &fun.field_iters {
            if let Some(owner) = &fun.owner {
                if self.field_is_hash(owner, field, id.0) {
                    out.push(Seed {
                        kind: SeedKind::HashIter,
                        line: *line,
                        col: 1,
                        desc: format!("hash-container iteration (`for _ in &self.{field}`)"),
                    });
                }
            }
        }
        out
    }

    /// Resolves a call site to its possible workspace definitions.
    fn resolve_call(&self, id: FnId, callee: &Callee) -> Vec<FnId> {
        let Some(fun) = self.fn_def(id) else {
            return Vec::new();
        };
        match callee {
            Callee::SelfMethod(m) => {
                let Some(owner) = &fun.owner else {
                    return Vec::new();
                };
                self.prefer_same_crate(
                    self.methods.get(&(owner.clone(), m.clone())).cloned().unwrap_or_default(),
                    id.0,
                )
            }
            Callee::FieldMethod { field, method } => {
                let Some(owner) = &fun.owner else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for (fi, si) in self.idx.resolve_type(owner, id.0) {
                    let Some(def) =
                        self.idx.files.get(fi).and_then(|f| f.parsed.structs.get(si))
                    else {
                        continue;
                    };
                    let Some(fd) = def.fields.iter().find(|fd| fd.name == *field) else {
                        continue;
                    };
                    let exp = self.idx.expand(&fd.ty, fi);
                    for ident in &exp.idents {
                        if self.idx.resolve_type(ident, fi).is_empty() {
                            continue;
                        }
                        if let Some(c) = self.methods.get(&(ident.clone(), method.clone())) {
                            out.extend(self.prefer_same_crate(c.clone(), fi));
                        }
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Callee::Path(segs) => {
                if segs.len() < 2 {
                    return Vec::new();
                }
                let method = &segs[segs.len() - 1];
                let mut owner = segs[segs.len() - 2].clone();
                if owner == "Self" {
                    match &fun.owner {
                        Some(o) => owner = o.clone(),
                        None => return Vec::new(),
                    }
                }
                if owner == "crate" || owner == "self" || owner == "super" {
                    return self.prefer_same_crate(
                        self.free.get(method).cloned().unwrap_or_default(),
                        id.0,
                    );
                }
                self.prefer_same_crate(
                    self.methods.get(&(owner, method.clone())).cloned().unwrap_or_default(),
                    id.0,
                )
            }
            Callee::Free(name) => {
                let cands = self.free.get(name).cloned().unwrap_or_default();
                let preferred = self.prefer_same_crate(cands.clone(), id.0);
                let from =
                    self.idx.files.get(id.0).and_then(|f| f.ctx.crate_name.clone());
                let same_crate = preferred.iter().any(|&(fi, _)| {
                    self.idx.files.get(fi).and_then(|f| f.ctx.crate_name.clone()) == from
                });
                if same_crate || cands.len() == 1 {
                    preferred
                } else {
                    // Ambiguous cross-crate free fn: no edge (avoids
                    // false taint through unrelated same-name helpers).
                    Vec::new()
                }
            }
            Callee::OtherMethod(_) | Callee::Macro(_) => Vec::new(),
        }
    }

    /// `true` when the call site writes program output.
    fn is_output_op(&self, callee: &Callee) -> bool {
        match callee {
            Callee::Macro(name) => OUTPUT_MACROS.contains(&name.as_str()),
            Callee::SelfMethod(m) | Callee::OtherMethod(m) => m == "emit",
            Callee::FieldMethod { method, .. } => method == "emit",
            Callee::Path(segs) => {
                let last = segs.last().map(String::as_str);
                (segs.iter().any(|s| s == "fs")
                    && matches!(last, Some("write" | "write_all")))
                    || (segs.iter().any(|s| s == "File") && last == Some("create"))
            }
            Callee::Free(_) => false,
        }
    }
}

/// Runs the determinism taint over the indexed workspace.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(idx: &TypeIndex<'_>) -> TaintOutput {
    let t = Tainter::build(idx);
    let files = idx.files;
    let mut out = TaintOutput::default();

    // Seed pass. Seeds under an allow(T1) barrier consume the marker and
    // do not taint their function.
    let mut taint: BTreeMap<FnId, Vec<String>> = BTreeMap::new();
    let mut seeds_by_fn: BTreeMap<FnId, Vec<Seed>> = BTreeMap::new();
    for &id in &t.fns {
        let seeds = t.seeds(id);
        let mut chain: Option<Vec<String>> = None;
        for s in &seeds {
            if let Some(marker_line) = t1_barrier(files, id.0, s.line) {
                out.barrier_uses.insert((id.0, marker_line));
            } else if chain.is_none() {
                chain = Some(vec![t.fn_desc(id), s.desc.clone()]);
            }
        }
        if let Some(chain) = chain {
            taint.insert(id, chain);
        }
        if !seeds.is_empty() {
            seeds_by_fn.insert(id, seeds);
        }
    }

    // Fixpoint propagation over resolved call edges. A barrier at the
    // call line stops the edge (and consumes the marker).
    loop {
        let mut changed = false;
        for &id in &t.fns {
            if taint.contains_key(&id) {
                continue;
            }
            let Some(fun) = t.fn_def(id) else {
                continue;
            };
            let mut new_chain: Option<Vec<String>> = None;
            for call in &fun.calls {
                let callees = t.resolve_call(id, &call.callee);
                let Some(tainted_callee) =
                    callees.iter().copied().find(|c| taint.contains_key(c))
                else {
                    continue;
                };
                if let Some(marker_line) = t1_barrier(files, id.0, call.line) {
                    out.barrier_uses.insert((id.0, marker_line));
                    continue;
                }
                if new_chain.is_none() {
                    let mut chain = vec![t.fn_desc(id)];
                    if let Some(rest) = taint.get(&tainted_callee) {
                        chain.extend(rest.iter().take(5).cloned());
                    }
                    new_chain = Some(chain);
                }
            }
            if let Some(chain) = new_chain {
                taint.insert(id, chain);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // T1a: hash-iteration seeds in simulation library code are raw
    // violations at the seed site (suppression is the scan layer's job).
    for (&id, seeds) in &seeds_by_fn {
        let f = &files[id.0];
        if !f.ctx.is_sim_crate || f.ctx.kind != FileKind::Lib {
            continue;
        }
        for s in seeds {
            if s.kind != SeedKind::HashIter {
                continue;
            }
            out.violations.push(Violation {
                rule: "T1",
                severity: Severity::Error,
                path: f.rel_path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "{} in `{}`: iteration order is platform/seed-dependent and taints \
                     everything consuming this loop; iterate a sorted projection or a Vec \
                     side-list instead",
                    s.desc,
                    t.fn_desc(id)
                ),
                snippet: snippet_of(files, id.0, s.line),
            });
        }
    }

    // T1b: simulation code calling a tainted workspace function.
    for &id in &t.fns {
        let f = &files[id.0];
        if !f.ctx.is_sim_crate || !matches!(f.ctx.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let Some(fun) = t.fn_def(id) else {
            continue;
        };
        for call in &fun.calls {
            let callees = t.resolve_call(id, &call.callee);
            let Some(chain) = callees.iter().find_map(|c| taint.get(c)) else {
                continue;
            };
            out.violations.push(Violation {
                rule: "T1",
                severity: Severity::Error,
                path: f.rel_path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "simulation code calls a nondeterministic function: {}",
                    chain.join(" -> ")
                ),
                snippet: snippet_of(files, id.0, call.line),
            });
        }
    }

    // T1c: a tainted non-simulation function that writes output reports
    // at the output site — nondeterminism reaching an artifact.
    for (&id, chain) in &taint {
        let f = &files[id.0];
        if f.ctx.is_sim_crate || !matches!(f.ctx.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let Some(fun) = t.fn_def(id) else {
            continue;
        };
        for call in &fun.calls {
            if !t.is_output_op(&call.callee) {
                continue;
            }
            out.violations.push(Violation {
                rule: "T1",
                severity: Severity::Error,
                path: f.rel_path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "output written by a nondeterminism-tainted function: {}",
                    chain.join(" -> ")
                ),
                snippet: snippet_of(files, id.0, call.line),
            });
        }
    }

    out.violations
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.message).cmp(&(&b.path, b.line, b.col, &b.message)));
    out.tainted = taint
        .iter()
        .map(|(&id, chain)| TaintedFn {
            fn_desc: t.fn_desc(id),
            chain: chain.clone(),
            path: files[id.0].rel_path.clone(),
            line: t.fn_def(id).map_or(0, |f| f.line),
        })
        .collect();
    out.tainted.sort_by(|a, b| (&a.fn_desc, &a.path, a.line).cmp(&(&b.fn_desc, &b.path, b.line)));
    out
}

fn snippet_of(files: &[FileUnit], fi: usize, line: u32) -> String {
    files
        .get(fi)
        .and_then(|f| f.src.lines().nth(line.saturating_sub(1) as usize))
        .map(|l| l.trim_end().to_owned())
        .unwrap_or_default()
}
