//! The type-field graph and the `S1` Send-partitionability audit.
//!
//! The future `--sim-threads` refactor shards per-SM state across worker
//! threads; that is only sound if everything transitively owned by `Sm`
//! is `Send` and free of shared mutability, and if every edge from
//! per-SM state into shared `Gpu`-level state (the L2, the DRAM event
//! queue, the `TraceSink`, the stats) is explicit. This module walks the
//! type-field graph from the partition roots and classifies every
//! reachable field:
//!
//! * **`per_sm`** — exclusively owned data, freely movable to a worker.
//! * **`shared`** — crosses into shared state through an explicitly
//!   annotated boundary (`// latte-lint: shared-boundary(reason = ...)`)
//!   or contains a type that does.
//! * **`violating`** — non-`Send` shared mutability (`Rc`, `RefCell`,
//!   `Cell`, raw pointers, `static mut`, un-`Send`-bounded trait
//!   objects) or an *unannotated* shared handle. Each such field is an
//!   `S1` violation.
//!
//! The classification is exported as `results/lint_partition.json`; the
//! parallelism PR consumes it as a machine-checked precondition.

use crate::lexer::BoundaryMarker;
use crate::parser::{FieldDef, TypeExpr};
use crate::rules::{FileKind, Severity, Violation};
use crate::scan::FileUnit;
use std::collections::{BTreeMap, BTreeSet};

/// The partition roots: the types whose transitive fields must be
/// cleanly partitionable before SMs can be sharded across threads.
/// `Sm` is the per-SM state itself, `MemCtx` is the borrowed view of
/// shared memory-system state every SM tick receives, and `Gpu` owns
/// both sides.
pub const PARTITION_ROOTS: &[&str] = &["Sm", "MemCtx", "Gpu"];

/// Capability types that are fundamentally non-`Send`-partitionable:
/// shared mutability without synchronization.
const NONSEND_CAPS: &[&str] = &["Rc", "RefCell", "Cell", "UnsafeCell", "OnceCell"];

/// Capability types that make a field a *shared* handle: fine under
/// SM-parallelism, but only across an explicitly annotated boundary.
const SHARED_CAPS: &[&str] = &[
    "Arc", "Weak", "Mutex", "RwLock", "Condvar", "OnceLock", "LazyLock", "Sender", "SyncSender",
    "Receiver", "Barrier", "JoinHandle",
];

/// How a field partitions. Ordering is by severity: a type's summary
/// class is the maximum over its fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Exclusively owned, Send-movable per-SM data.
    PerSm,
    /// Crosses into shared state through an annotated boundary (or
    /// contains a type that does).
    Shared,
    /// Non-Send shared mutability or an unannotated shared handle.
    Violating,
}

impl Class {
    /// Stable lowercase name used in the JSON report.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Class::PerSm => "per_sm",
            Class::Shared => "shared",
            Class::Violating => "violating",
        }
    }
}

/// One classified field (or audited static) in the partition report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEntry {
    /// Owning type name (or `"static"` for the statics audit).
    pub owner: String,
    /// Field name (statics: `crate::NAME`).
    pub field: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the field.
    pub line: u32,
    /// Declared type (token-joined text).
    pub type_text: String,
    /// Partition class.
    pub class: Class,
    /// For contained classes: the chain of type names leading to the
    /// decisive capability (`["Warp", "Inner"]`).
    pub via: Vec<String>,
    /// The boundary-marker reason, when the field is annotated shared.
    pub reason: Option<String>,
    /// Which partition roots reach this field's owner.
    pub roots: Vec<String>,
    /// `true` when a violating entry carries an `allow(S1)` suppression.
    pub allowed: bool,
}

/// The machine-readable partition report (`results/lint_partition.json`).
#[derive(Debug, Clone, Default)]
pub struct PartitionReport {
    /// Root type names that resolved in this workspace.
    pub roots: Vec<String>,
    /// Classified fields of every type reachable from the roots.
    pub fields: Vec<PartitionEntry>,
    /// Audited statics in simulation crates.
    pub statics: Vec<PartitionEntry>,
}

impl PartitionReport {
    /// `true` when no entry is violating without a suppression.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.fields
            .iter()
            .chain(&self.statics)
            .all(|e| e.class != Class::Violating || e.allowed)
    }

    /// `(per_sm, shared, violating)` counts over fields and statics.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in self.fields.iter().chain(&self.statics) {
            match e.class {
                Class::PerSm => c.0 += 1,
                Class::Shared => c.1 += 1,
                Class::Violating => c.2 += 1,
            }
        }
        c
    }
}

/// Everything the S1 analysis produces.
#[derive(Debug, Default)]
pub struct GraphOutput {
    /// The partition report.
    pub partition: PartitionReport,
    /// Raw (pre-suppression) `S1` violations.
    pub violations: Vec<Violation>,
    /// Boundary markers that were consumed by an annotated field or
    /// static, as `(file index, marker line)`.
    pub used_boundaries: BTreeSet<(usize, u32)>,
}

/// A type expression's features after alias expansion.
#[derive(Debug, Clone, Default)]
pub struct Expanded {
    /// All identifiers, including those pulled in through aliases.
    pub idents: BTreeSet<String>,
    /// `&` reference anywhere in the (expanded) type.
    pub has_ref: bool,
    /// Raw pointer anywhere in the (expanded) type.
    pub has_raw_ptr: bool,
    /// `dyn Trait` heads anywhere in the (expanded) type.
    pub dyn_traits: BTreeSet<String>,
}

/// Name-indexed view of every parsed file: types, traits and aliases,
/// with crate-aware resolution. Shared by the S1 partition walk and the
/// T1 taint propagation.
pub struct TypeIndex<'a> {
    /// The files under analysis (indices into this slice are the file
    /// ids used throughout).
    pub files: &'a [FileUnit],
    types: BTreeMap<String, Vec<(usize, usize)>>,
    traits: BTreeMap<String, Vec<(usize, usize)>>,
    aliases: BTreeMap<String, Vec<(usize, usize)>>,
}

/// `true` when the file's items define workspace (non-test) API surface
/// worth indexing.
fn indexable(f: &FileUnit) -> bool {
    matches!(f.ctx.kind, FileKind::Lib | FileKind::Bin)
}

impl<'a> TypeIndex<'a> {
    /// Builds the index over `files`. Items under `#[cfg(test)]` and
    /// test/example targets are excluded: a test-local type must never
    /// shadow a workspace type during resolution.
    #[must_use]
    pub fn build(files: &'a [FileUnit]) -> Self {
        let mut types: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let mut traits: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let mut aliases: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            if !indexable(f) {
                continue;
            }
            for (si, s) in f.parsed.structs.iter().enumerate() {
                if !s.in_test {
                    types.entry(s.name.clone()).or_default().push((fi, si));
                }
            }
            for (ti, t) in f.parsed.traits.iter().enumerate() {
                if !t.in_test {
                    traits.entry(t.name.clone()).or_default().push((fi, ti));
                }
            }
            for (ai, a) in f.parsed.aliases.iter().enumerate() {
                if !a.in_test {
                    aliases.entry(a.name.clone()).or_default().push((fi, ai));
                }
            }
        }
        TypeIndex { files, types, traits, aliases }
    }

    fn crate_of(&self, file: usize) -> Option<&str> {
        self.files.get(file).and_then(|f| f.ctx.crate_name.as_deref())
    }

    /// A `use`-based crate hint: `use latte_cache::mshr::Mshr;` means
    /// `Mshr` in this file resolves into crate `cache`.
    fn use_hint(&self, from_file: usize, name: &str) -> Option<String> {
        let uses = &self.files.get(from_file)?.parsed.uses;
        for u in uses {
            if u.path.last().map(String::as_str) == Some(name) {
                if let Some(first) = u.path.first() {
                    if let Some(c) = first.strip_prefix("latte_") {
                        return Some(c.to_owned());
                    }
                }
            }
        }
        None
    }

    fn resolve_pref(
        &self,
        map: &BTreeMap<String, Vec<(usize, usize)>>,
        name: &str,
        from_file: usize,
    ) -> Vec<(usize, usize)> {
        let Some(cands) = map.get(name) else {
            return Vec::new();
        };
        let from_crate = self.crate_of(from_file).map(str::to_owned);
        let same: Vec<(usize, usize)> = cands
            .iter()
            .copied()
            .filter(|&(fi, _)| self.crate_of(fi).map(str::to_owned) == from_crate)
            .collect();
        if !same.is_empty() {
            return same;
        }
        if let Some(hint) = self.use_hint(from_file, name) {
            let hinted: Vec<(usize, usize)> = cands
                .iter()
                .copied()
                .filter(|&(fi, _)| self.crate_of(fi) == Some(hint.as_str()))
                .collect();
            if !hinted.is_empty() {
                return hinted;
            }
        }
        cands.clone()
    }

    /// Resolves a type name to its candidate definitions, preferring the
    /// referring file's own crate, then its `use` hints, then anything.
    #[must_use]
    pub fn resolve_type(&self, name: &str, from_file: usize) -> Vec<(usize, usize)> {
        self.resolve_pref(&self.types, name, from_file)
    }

    /// All definitions of a type name across the workspace.
    #[must_use]
    pub fn resolve_type_anywhere(&self, name: &str) -> Vec<(usize, usize)> {
        self.types.get(name).cloned().unwrap_or_default()
    }

    /// `true` when trait `name`'s supertrait closure contains `Send`.
    #[must_use]
    pub fn trait_is_send(&self, name: &str, from_file: usize, depth: u32) -> bool {
        if name == "Send" {
            return true;
        }
        if depth > 8 {
            return false;
        }
        for (fi, ti) in self.resolve_pref(&self.traits, name, from_file) {
            if let Some(t) = self.files.get(fi).and_then(|f| f.parsed.traits.get(ti)) {
                if t.supertraits.iter().any(|s| self.trait_is_send(s, fi, depth + 1)) {
                    return true;
                }
            }
        }
        false
    }

    /// `true` when `name` names a known trait (or a std `Fn` trait).
    #[must_use]
    pub fn is_known_trait(&self, name: &str) -> bool {
        self.traits.contains_key(name) || matches!(name, "Fn" | "FnMut" | "FnOnce" | "Send" | "Sync")
    }

    /// Expands a type expression through type aliases, merging the
    /// features of every alias target.
    #[must_use]
    pub fn expand(&self, ty: &TypeExpr, from_file: usize) -> Expanded {
        let mut e = Expanded {
            idents: BTreeSet::new(),
            has_ref: ty.has_ref,
            has_raw_ptr: ty.has_raw_ptr,
            dyn_traits: ty.dyn_traits.iter().cloned().collect(),
        };
        let mut work: Vec<String> = ty.idents.clone();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        while let Some(n) = work.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            e.idents.insert(n.clone());
            for (fi, ai) in self.resolve_pref(&self.aliases, &n, from_file) {
                if let Some(a) = self.files.get(fi).and_then(|f| f.parsed.aliases.get(ai)) {
                    e.has_ref |= a.ty.has_ref;
                    e.has_raw_ptr |= a.ty.has_raw_ptr;
                    e.dyn_traits.extend(a.ty.dyn_traits.iter().cloned());
                    work.extend(a.ty.idents.iter().cloned());
                }
            }
        }
        e
    }
}

/// Finds the boundary marker (if any) annotating `line` of file `fi`:
/// file-scope markers, or a line marker on the line itself / the line
/// above.
fn boundary_for(files: &[FileUnit], fi: usize, line: u32) -> Option<&BoundaryMarker> {
    files
        .get(fi)?
        .lex
        .boundaries
        .iter()
        .find(|b| b.file_scope || b.line == line || b.line + 1 == line)
}

/// `true` when an `allow(S1)` suppression covers `line` of file `fi`.
fn s1_allowed(files: &[FileUnit], fi: usize, line: u32) -> bool {
    files.get(fi).is_some_and(|f| {
        f.lex
            .markers
            .iter()
            .any(|m| m.rule == "S1" && (m.file_scope || m.line == line || m.line + 1 == line))
    })
}

/// How one field classified, before boundary annotation is applied.
struct FieldVerdict {
    class: Class,
    /// Chain of type names to the decisive capability (empty for direct).
    via: Vec<String>,
    /// For a *direct* problem at this field: the violation message.
    direct_problem: Option<String>,
    /// `true` when the field holds a direct shared capability (what a
    /// boundary annotation can bless).
    direct_shared: Option<String>,
}

/// The S1 analysis engine.
struct Partitioner<'a> {
    idx: &'a TypeIndex<'a>,
    /// Memoized per-type summaries: worst field class + via chain.
    summaries: BTreeMap<(usize, usize), (Class, Vec<String>)>,
    in_progress: BTreeSet<(usize, usize)>,
}

impl Partitioner<'_> {
    /// Worst-case class over a type's fields, with the chain of type
    /// names leading to the decisive capability. Cycles break as
    /// `PerSm`: a recursive type contributes whatever its other fields
    /// say, and every member of the cycle is classified individually.
    fn summary(&mut self, tid: (usize, usize)) -> (Class, Vec<String>) {
        if let Some(s) = self.summaries.get(&tid) {
            return s.clone();
        }
        if !self.in_progress.insert(tid) {
            return (Class::PerSm, Vec::new());
        }
        let mut worst = (Class::PerSm, Vec::new());
        let Some(def) = self
            .idx
            .files
            .get(tid.0)
            .and_then(|f| f.parsed.structs.get(tid.1))
            .cloned()
        else {
            self.in_progress.remove(&tid);
            return worst;
        };
        for field in &def.fields {
            let annotated = boundary_for(self.idx.files, tid.0, field.line).cloned();
            let v = self.field_verdict(tid.0, field);
            let (class, via) = apply_annotation(&v, annotated.is_some());
            if class > worst.0 {
                let mut chain = vec![format!("{}.{}", def.name, field.name)];
                chain.extend(via);
                worst = (class, chain);
            }
        }
        self.in_progress.remove(&tid);
        self.summaries.insert(tid, worst.clone());
        worst
    }

    /// Classifies one field ignoring any boundary annotation on it.
    fn field_verdict(&mut self, file: usize, field: &FieldDef) -> FieldVerdict {
        let exp = self.idx.expand(&field.ty, file);
        // 1. Fundamentally non-Send capabilities: nothing blesses these.
        if let Some(tok) = NONSEND_CAPS.iter().find(|c| exp.idents.contains(**c)) {
            return FieldVerdict {
                class: Class::Violating,
                via: Vec::new(),
                direct_problem: Some(format!(
                    "non-Send shared-mutability type `{tok}`; per-SM state must use owned data \
                     or a synchronized handle behind a shared-boundary marker"
                )),
                direct_shared: None,
            };
        }
        if exp.has_raw_ptr {
            return FieldVerdict {
                class: Class::Violating,
                via: Vec::new(),
                direct_problem: Some(
                    "raw pointer in per-SM-reachable state; raw pointers are not Send-auditable"
                        .to_owned(),
                ),
                direct_shared: None,
            };
        }
        // 2. Trait objects must be Send-bounded (inline `+ Send` or via
        // the trait's supertrait closure).
        for tr in &exp.dyn_traits {
            let send = exp.idents.contains("Send") || self.idx.trait_is_send(tr, file, 0);
            if !send {
                return FieldVerdict {
                    class: Class::Violating,
                    via: Vec::new(),
                    direct_problem: Some(format!(
                        "trait object `dyn {tr}` has no Send bound; add `Send` to the trait's \
                         supertraits (or `+ Send` at this use) so the field can move to a worker"
                    )),
                    direct_shared: None,
                };
            }
        }
        // 3. Direct shared capabilities (annotatable).
        let direct_shared = SHARED_CAPS
            .iter()
            .find(|c| exp.idents.contains(**c))
            .map(|c| format!("`{c}`"))
            .or_else(|| {
                exp.idents
                    .iter()
                    .find(|i| i.starts_with("Atomic"))
                    .map(|i| format!("`{i}`"))
            })
            .or_else(|| exp.has_ref.then(|| "`&`-reference".to_owned()));
        // 4. Containment: the worst over resolvable child types.
        let mut child_worst = (Class::PerSm, Vec::new());
        for ident in &exp.idents {
            if NONSEND_CAPS.contains(&ident.as_str()) || SHARED_CAPS.contains(&ident.as_str()) {
                continue;
            }
            for tid in self.idx.resolve_type(ident, file) {
                let (class, via) = self.summary(tid);
                if class > child_worst.0 {
                    let mut chain = vec![ident.clone()];
                    chain.extend(via);
                    child_worst = (class, chain);
                }
            }
        }
        let class = if direct_shared.is_some() {
            Class::Violating // pending annotation; `apply_annotation` downgrades
        } else {
            child_worst.0
        };
        FieldVerdict {
            class,
            via: if direct_shared.is_some() { Vec::new() } else { child_worst.1 },
            direct_problem: None,
            direct_shared,
        }
    }
}

/// Applies a boundary annotation to a verdict: an annotated direct
/// shared capability becomes `Shared`; everything else is unchanged
/// (annotations cannot bless `Rc` or a non-Send trait object).
fn apply_annotation(v: &FieldVerdict, annotated: bool) -> (Class, Vec<String>) {
    if v.direct_problem.is_some() {
        return (Class::Violating, v.via.clone());
    }
    if v.direct_shared.is_some() {
        if annotated {
            return (Class::Shared, Vec::new());
        }
        return (Class::Violating, Vec::new());
    }
    (v.class, v.via.clone())
}

/// Runs the S1 partition audit over the indexed workspace.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(idx: &TypeIndex<'_>) -> GraphOutput {
    let mut out = GraphOutput::default();
    let files = idx.files;

    // Reachability closure: every type transitively reachable from the
    // partition roots, tagged with the roots that reach it.
    let mut closure: BTreeMap<(usize, usize), BTreeSet<&'static str>> = BTreeMap::new();
    let mut resolved_roots: Vec<String> = Vec::new();
    for root in PARTITION_ROOTS {
        let mut cands = idx.resolve_type_anywhere(root);
        // Prefer the simulator's own definition when several crates
        // define a type with a root's name.
        let gpusim: Vec<(usize, usize)> = cands
            .iter()
            .copied()
            .filter(|&(fi, _)| idx.files.get(fi).is_some_and(|f| f.ctx.crate_name.as_deref() == Some("gpusim")))
            .collect();
        if !gpusim.is_empty() {
            cands = gpusim;
        }
        if cands.is_empty() {
            continue;
        }
        resolved_roots.push((*root).to_owned());
        let mut work: Vec<(usize, usize)> = cands;
        while let Some(tid) = work.pop() {
            if !closure.entry(tid).or_default().insert(root) {
                continue;
            }
            let Some(def) = files.get(tid.0).and_then(|f| f.parsed.structs.get(tid.1)) else {
                continue;
            };
            for field in &def.fields {
                let exp = idx.expand(&field.ty, tid.0);
                for ident in &exp.idents {
                    for child in idx.resolve_type(ident, tid.0) {
                        work.push(child);
                    }
                }
            }
        }
    }
    out.partition.roots = resolved_roots;

    // Classify every field of every closure type.
    let mut part = Partitioner { idx, summaries: BTreeMap::new(), in_progress: BTreeSet::new() };
    for (&tid, roots) in &closure {
        let Some(def) = files.get(tid.0).and_then(|f| f.parsed.structs.get(tid.1)) else {
            continue;
        };
        let path = files[tid.0].rel_path.clone();
        for field in &def.fields {
            let annotated = boundary_for(files, tid.0, field.line).cloned();
            let v = part.field_verdict(tid.0, field);
            let (class, via) = apply_annotation(&v, annotated.is_some());
            let mut reason = None;
            if let Some(b) = &annotated {
                if v.direct_shared.is_some() && v.direct_problem.is_none() {
                    out.used_boundaries.insert((tid.0, b.line));
                    reason = Some(b.reason.clone());
                }
            }
            let allowed = s1_allowed(files, tid.0, field.line);
            // Direct problems are violations here; contained problems
            // were reported at the field that owns the capability.
            let message = if let Some(p) = &v.direct_problem {
                Some(format!("field `{}.{}`: {p}", def.name, field.name))
            } else if v.direct_shared.is_some() && class == Class::Violating {
                v.direct_shared.as_ref().map(|cap| {
                    format!(
                        "field `{}.{}` holds a shared handle ({cap}) crossing the per-SM \
                         boundary without a marker; annotate it with `// latte-lint: \
                         shared-boundary(reason = \"...\")` or make the state per-SM owned",
                        def.name, field.name
                    )
                })
            } else {
                None
            };
            if let Some(message) = message {
                out.violations.push(Violation {
                    rule: "S1",
                    severity: Severity::Error,
                    path: path.clone(),
                    line: field.line,
                    col: field.col,
                    message,
                    snippet: snippet_of(files, tid.0, field.line),
                });
            }
            out.partition.fields.push(PartitionEntry {
                owner: def.name.clone(),
                field: field.name.clone(),
                path: path.clone(),
                line: field.line,
                type_text: field.ty.text.clone(),
                class,
                via,
                reason,
                roots: roots.iter().map(|r| (*r).to_owned()).collect(),
                allowed,
            });
        }
    }
    out.partition.fields.sort_by(|a, b| {
        (&a.owner, &a.field, &a.path, a.line).cmp(&(&b.owner, &b.field, &b.path, b.line))
    });

    // Statics audit: simulation crates must not hide shared state in
    // globals. `static mut` and non-Send caps are violations outright;
    // synchronized globals (atomics, OnceLock, ...) need a boundary
    // marker like any other shared handle.
    for (fi, f) in files.iter().enumerate() {
        if !f.ctx.is_sim_crate || !indexable(f) {
            continue;
        }
        for s in &f.parsed.statics {
            if s.in_test {
                continue;
            }
            let exp = idx.expand(&s.ty, fi);
            let nonsend = NONSEND_CAPS.iter().find(|c| exp.idents.contains(**c));
            let shared = SHARED_CAPS
                .iter()
                .find(|c| exp.idents.contains(**c))
                .map(|c| (*c).to_owned())
                .or_else(|| exp.idents.iter().find(|i| i.starts_with("Atomic")).cloned());
            let (class, problem) = if s.is_mut {
                (Class::Violating, Some("`static mut` is unsynchronized shared state".to_owned()))
            } else if let Some(tok) = nonsend {
                (Class::Violating, Some(format!("non-Send type `{tok}` in a static")))
            } else if let Some(tok) = &shared {
                match boundary_for(files, fi, s.line) {
                    Some(_) => (Class::Shared, None),
                    None => (
                        Class::Violating,
                        Some(format!(
                            "synchronized global `{tok}` without a shared-boundary marker; \
                             justify why cross-SM sharing through it is deterministic"
                        )),
                    ),
                }
            } else {
                continue; // plain (immutable, Sync-by-construction) data
            };
            let annotated = boundary_for(files, fi, s.line).cloned();
            let mut reason = None;
            if class == Class::Shared {
                if let Some(b) = &annotated {
                    out.used_boundaries.insert((fi, b.line));
                    reason = Some(b.reason.clone());
                }
            }
            let allowed = s1_allowed(files, fi, s.line);
            if let Some(problem) = problem {
                out.violations.push(Violation {
                    rule: "S1",
                    severity: Severity::Error,
                    path: f.rel_path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("static `{}`: {problem}", s.name),
                    snippet: snippet_of(files, fi, s.line),
                });
            }
            out.partition.statics.push(PartitionEntry {
                owner: "static".to_owned(),
                field: format!(
                    "{}::{}",
                    f.ctx.crate_name.as_deref().unwrap_or("?"),
                    s.name
                ),
                path: f.rel_path.clone(),
                line: s.line,
                type_text: s.ty.text.clone(),
                class,
                via: Vec::new(),
                reason,
                roots: vec!["static".to_owned()],
                allowed,
            });
        }
    }
    out.partition
        .statics
        .sort_by(|a, b| (&a.field, &a.path, a.line).cmp(&(&b.field, &b.path, b.line)));
    out
}

fn snippet_of(files: &[FileUnit], fi: usize, line: u32) -> String {
    files
        .get(fi)
        .and_then(|f| f.src.lines().nth(line.saturating_sub(1) as usize))
        .map(|l| l.trim_end().to_owned())
        .unwrap_or_default()
}
