//! `latte-lint` — the workspace's own static-analysis pass.
//!
//! PR 2 made the experiment pipeline bit-identical across `--jobs`
//! values, but that guarantee rests on source-level conventions: all RNG
//! through per-SM seeded streams, no wall-clock reads in simulation
//! code, stdout only via the capture macros, no iteration-order
//! dependence on hash containers, and panic-free library code. The
//! serial-vs-parallel byte-comparison suite checks these only at
//! runtime, on the configs it happens to run; this crate checks them at
//! the source level, before any experiment runs.
//!
//! The scanner is a hand-rolled lexer (the build environment is
//! offline, so no syn/proc-macro stack): it skips comments, string and
//! char literals, raw strings and lifetimes, and feeds an identifier/
//! punctuation token stream to the rules in [`rules::RULES`].
//!
//! Suppression is per-site and must be justified:
//!
//! ```text
//! // latte-lint: allow(D3, reason = "keyed access only; never iterated")
//! use std::collections::HashMap;
//! ```
//!
//! `allow` covers the marker's line and the next line; `allow-file`
//! covers the whole file. A marker without a nonempty reason is itself a
//! violation (rule `A0`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The linter lints itself: P1 (panic-freedom) applies to this crate's
// library and binary code, so keep the same clippy gate the rest of the
// workspace uses.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod scan;
pub mod taint;

pub use graph::{Class, PartitionEntry, PartitionReport, TypeIndex, PARTITION_ROOTS};
pub use lexer::{lex, AllowMarker, BoundaryMarker, LexOutput, MarkerError, Tok, TokKind};
pub use parser::{parse, ParsedFile};
pub use rules::{rule, FileContext, FileKind, RuleInfo, Severity, Violation, RULES, SIM_CRATES};
pub use scan::{
    analyze_workspace, classify, scan_source, scan_workspace, Analysis, AnalysisReport, FileUnit,
    ScanReport,
};
pub use taint::TaintedFn;

/// Serializes violations as a stable JSON document (hand-rolled: the
/// environment is offline, and the schema is flat).
#[must_use]
pub fn to_json(report: &ScanReport) -> String {
    let mut s = String::from("{\"clean\":");
    s.push_str(if report.is_clean() { "true" } else { "false" });
    s.push_str(",\"files_scanned\":");
    s.push_str(&report.files_scanned.to_string());
    s.push_str(",\"violations\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"rule\":");
        json_string(&mut s, v.rule);
        s.push_str(",\"severity\":");
        json_string(&mut s, v.severity.as_str());
        s.push_str(",\"path\":");
        json_string(&mut s, &v.path);
        s.push_str(",\"line\":");
        s.push_str(&v.line.to_string());
        s.push_str(",\"col\":");
        s.push_str(&v.col.to_string());
        s.push_str(",\"message\":");
        json_string(&mut s, &v.message);
        s.push_str(",\"snippet\":");
        json_string(&mut s, &v.snippet);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Serializes the S1 partition report as a stable JSON document — the
/// `results/lint_partition.json` contract the parallelism PR consumes.
#[must_use]
pub fn partition_to_json(p: &PartitionReport) -> String {
    let (per_sm, shared, violating) = p.counts();
    let mut s = String::from("{\"roots\":[");
    for (i, r) in p.roots.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json_string(&mut s, r);
    }
    s.push_str("],\"clean\":");
    s.push_str(if p.is_clean() { "true" } else { "false" });
    s.push_str(&format!(
        ",\"summary\":{{\"per_sm\":{per_sm},\"shared\":{shared},\"violating\":{violating}}}"
    ));
    for (key, entries) in [("fields", &p.fields), ("statics", &p.statics)] {
        s.push_str(&format!(",\"{key}\":["));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"owner\":");
            json_string(&mut s, &e.owner);
            s.push_str(",\"field\":");
            json_string(&mut s, &e.field);
            s.push_str(",\"path\":");
            json_string(&mut s, &e.path);
            s.push_str(",\"line\":");
            s.push_str(&e.line.to_string());
            s.push_str(",\"type\":");
            json_string(&mut s, &e.type_text);
            s.push_str(",\"class\":");
            json_string(&mut s, e.class.as_str());
            s.push_str(",\"via\":[");
            for (j, v) in e.via.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_string(&mut s, v);
            }
            s.push_str("],\"reason\":");
            match &e.reason {
                Some(r) => json_string(&mut s, r),
                None => s.push_str("null"),
            }
            s.push_str(",\"roots\":[");
            for (j, r) in e.roots.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_string(&mut s, r);
            }
            s.push_str("],\"allowed\":");
            s.push_str(if e.allowed { "true" } else { "false" });
            s.push('}');
        }
        s.push(']');
    }
    s.push('}');
    s
}

/// Serializes the tainted-function list (the `--graph` payload).
#[must_use]
pub fn taint_to_json(tainted: &[TaintedFn]) -> String {
    let mut s = String::from("{\"tainted\":[");
    for (i, t) in tainted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"fn\":");
        json_string(&mut s, &t.fn_desc);
        s.push_str(",\"path\":");
        json_string(&mut s, &t.path);
        s.push_str(",\"line\":");
        s.push_str(&t.line.to_string());
        s.push_str(",\"chain\":[");
        for (j, c) in t.chain.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            json_string(&mut s, c);
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

fn json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let hi = (c as u32) >> 4;
                let lo = (c as u32) & 0xF;
                for d in [hi, lo] {
                    out.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let report = ScanReport {
            violations: vec![Violation {
                rule: "D1",
                severity: Severity::Error,
                path: "crates/x/src/lib.rs".to_owned(),
                line: 3,
                col: 9,
                message: "msg".to_owned(),
                snippet: "let t = Instant::now();".to_owned(),
            }],
            files_scanned: 2,
        };
        let json = to_json(&report);
        assert!(json.starts_with("{\"clean\":false,\"files_scanned\":2,"));
        assert!(json.contains("\"rule\":\"D1\""));
        assert!(json.contains("\"line\":3"));
        let empty = to_json(&ScanReport::default());
        assert_eq!(empty, "{\"clean\":true,\"files_scanned\":0,\"violations\":[]}");
    }
}
