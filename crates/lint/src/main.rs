//! The `latte-lint` binary: scans the workspace and reports violations.
//!
//! ```text
//! latte-lint [--root <dir>] [--format text|json] [--json]
//!            [--report <path>] [--partition <path>] [--graph <path>]
//!            [--explain <rule>] [--list-rules]
//! ```
//!
//! Besides the violation report, every run classifies the fields
//! transitively reachable from the partition roots (`Sm`, `MemCtx`,
//! `Gpu`) and writes the result to `<root>/results/lint_partition.json`
//! (override with `--partition`; written atomically via temp+rename).
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use latte_lint::{
    analyze_workspace, partition_to_json, rule, taint_to_json, to_json, ScanReport, RULES,
};
use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: latte-lint [--root <dir>] [--format text|json] [--json]\n\
         \x20                 [--report <path>] [--partition <path>] [--graph <path>]\n\
         \x20                 [--explain <rule>] [--list-rules]\n"
    );
    eprintln!("Scans the workspace's .rs files for determinism, panic-freedom,");
    eprintln!("output-discipline and Send-partitionability violations.");
    eprintln!("  --report <path>     also write the violation report JSON to <path>");
    eprintln!("  --partition <path>  where to write the S1 partition report");
    eprintln!("                      (default: <root>/results/lint_partition.json)");
    eprintln!("  --graph <path>      write the tainted-function graph JSON to <path>");
    eprintln!("  --explain <rule>    print the long-form guidance for one rule");
    eprintln!("Exit codes: 0 clean, 1 violations, 2 error.");
    ExitCode::from(2)
}

fn list_rules() {
    for r in RULES {
        println!("{} [{}]: {}", r.id, r.severity.as_str(), r.title);
        println!("    {}", r.rationale);
    }
    println!("\nSuppression: // latte-lint: allow(RULE, reason = \"...\")   (this + next line)");
    println!("             // latte-lint: allow-file(RULE, reason = \"...\")  (whole file)");
    println!("Shared edge: // latte-lint: shared-boundary(reason = \"...\")  (next field/static)");
    println!("Details:     latte-lint --explain <rule>");
}

fn explain(rule_id: &str) -> ExitCode {
    match rule(rule_id) {
        Some(r) => {
            println!("{} [{}]: {}\n", r.id, r.severity.as_str(), r.title);
            println!("Why: {}\n", r.rationale);
            println!("{}", r.explain);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("latte-lint: unknown rule `{rule_id}` (try --list-rules)");
            ExitCode::from(2)
        }
    }
}

fn print_text(report: &ScanReport) {
    for v in &report.violations {
        println!(
            "{}:{}:{}: {}[{}]: {}",
            v.path,
            v.line,
            v.col,
            v.severity.as_str(),
            v.rule,
            v.message
        );
        if !v.snippet.is_empty() {
            println!("    {}", v.snippet.trim_start());
        }
    }
    if report.is_clean() {
        println!(
            "latte-lint: {} files scanned, no violations",
            report.files_scanned
        );
    } else {
        println!(
            "latte-lint: {} violation(s) in {} files scanned (run with --list-rules for rule docs)",
            report.violations.len(),
            report.files_scanned
        );
    }
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, then rename into place.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut report_path: Option<PathBuf> = None;
    let mut partition_path: Option<PathBuf> = None;
    let mut graph_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage(),
            },
            "--json" => format = Format::Json,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--partition" => match args.next() {
                Some(p) => partition_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--graph" => match args.next() {
                Some(p) => graph_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--explain" => match args.next() {
                Some(r) => return explain(&r),
                None => return usage(),
            },
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("latte-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let partition_path =
        partition_path.unwrap_or_else(|| root.join("results").join("lint_partition.json"));
    if let Err(e) = write_atomic(&partition_path, &partition_to_json(&analysis.partition)) {
        eprintln!("latte-lint: cannot write {}: {e}", partition_path.display());
        return ExitCode::from(2);
    }
    if let Some(p) = &report_path {
        if let Err(e) = write_atomic(p, &to_json(&analysis.report)) {
            eprintln!("latte-lint: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &graph_path {
        if let Err(e) = write_atomic(p, &taint_to_json(&analysis.tainted)) {
            eprintln!("latte-lint: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    match format {
        Format::Text => print_text(&analysis.report),
        Format::Json => println!("{}", to_json(&analysis.report)),
    }
    if analysis.report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
