//! The `latte-lint` binary: scans the workspace and reports violations.
//!
//! ```text
//! latte-lint [--root <dir>] [--format text|json] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use latte_lint::{scan_workspace, to_json, ScanReport, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn usage() -> ExitCode {
    eprintln!("usage: latte-lint [--root <dir>] [--format text|json] [--list-rules]\n");
    eprintln!("Scans the workspace's .rs files for determinism, panic-freedom and");
    eprintln!("output-discipline violations. Exit codes: 0 clean, 1 violations, 2 error.");
    ExitCode::from(2)
}

fn list_rules() {
    for r in RULES {
        println!("{} [{}]: {}", r.id, r.severity.as_str(), r.title);
        println!("    {}", r.rationale);
    }
    println!("\nSuppression: // latte-lint: allow(RULE, reason = \"...\")   (this + next line)");
    println!("             // latte-lint: allow-file(RULE, reason = \"...\")  (whole file)");
}

fn print_text(report: &ScanReport) {
    for v in &report.violations {
        println!(
            "{}:{}:{}: {}[{}]: {}",
            v.path,
            v.line,
            v.col,
            v.severity.as_str(),
            v.rule,
            v.message
        );
        if !v.snippet.is_empty() {
            println!("    {}", v.snippet.trim_start());
        }
    }
    if report.is_clean() {
        println!(
            "latte-lint: {} files scanned, no violations",
            report.files_scanned
        );
    } else {
        println!(
            "latte-lint: {} violation(s) in {} files scanned (run with --list-rules for rule docs)",
            report.violations.len(),
            report.files_scanned
        );
    }
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage(),
            },
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("latte-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => print_text(&report),
        Format::Json => println!("{}", to_json(&report)),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
