//! The lint rules and the token-stream checker.
//!
//! Every rule is named, severity-tagged and documented here; DESIGN.md's
//! "Determinism invariants" section is the prose counterpart. A rule
//! fires on a token pattern in a *context* (which crate the file belongs
//! to, whether it is library/binary/test code, whether the token sits in
//! a `#[cfg(test)]` region) and can be suppressed per-site with
//! `// latte-lint: allow(RULE, reason = "...")` — the reason is
//! mandatory and checked (rule `A0`).

use crate::lexer::{LexOutput, Tok, TokKind};

/// Crates whose code runs *inside* a simulation (anything that can
/// influence simulated results). The bench driver and this linter are
/// deliberately not listed: wall-clock timing and stdout are their job.
pub const SIM_CRATES: &[&str] = &[
    "gpusim",
    "cache",
    "compress",
    "core",
    "workloads",
    "energy",
    "oracle",
];

/// How severe a violation is. Every current rule is `Error` (the binary
/// exits nonzero); the distinction exists so a future rule can be
/// introduced as `Warn` before being promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run.
    Error,
    /// Reported but does not fail the run.
    Warn,
}

impl Severity {
    /// Lowercase display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
        }
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Short stable identifier (`D1`, `P1`, ...).
    pub id: &'static str,
    /// One-line summary.
    pub title: &'static str,
    /// Why the invariant exists.
    pub rationale: &'static str,
    /// Long-form guidance shown by `latte-lint --explain <rule>`: what
    /// the rule analyzes, how to fix a finding, and when (if ever) a
    /// suppression is appropriate.
    pub explain: &'static str,
    /// Severity of a violation.
    pub severity: Severity,
}

/// Every rule latte-lint enforces, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        title: "no wall-clock reads in simulation crates",
        rationale: "std::time::Instant/SystemTime in simulation code makes results depend on \
                    host timing; wall-clock measurement belongs to the bench driver only",
        explain: "Lexer tier. Flags the identifiers `Instant` and `SystemTime` in non-test \
                  library/binary code of simulation crates. Simulated time is the cycle \
                  counter; host time may only be observed by the bench driver. Fix by \
                  threading the cycle count (or a caller-supplied clock fn) to the use site. \
                  Suppress only for code that is provably reporting-side, with \
                  `// latte-lint: allow(D1, reason = \"...\")`.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "D2",
        title: "no ambient randomness anywhere",
        rationale: "thread_rng/from_entropy/OsRng/random() draw from process-global or OS \
                    entropy; all randomness must flow through explicitly seeded streams \
                    (e.g. FaultInjector) so equal seeds give bit-identical runs",
        explain: "Lexer tier. Flags `thread_rng`, `from_entropy`, `OsRng` and `random(` \
                  everywhere, including tests (a test drawing OS entropy is a flaky test). \
                  Fix by accepting a seed or an explicitly seeded stream (splitmix64 et al.) \
                  from the caller. There is almost never a valid suppression.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "D3",
        title: "hash containers in simulation library code need an order-independence marker",
        rationale: "HashMap/HashSet iteration order is unspecified and can leak into stats or \
                    replay order; each use site must either switch to an ordered container or \
                    carry an allow marker asserting it is never iterated (keyed access only)",
        explain: "Lexer tier. Flags the identifiers `HashMap`/`HashSet` in non-test library \
                  code of simulation crates. Keyed access is fine; iteration is not (see T1, \
                  which checks the iteration sites themselves). Either switch to \
                  BTreeMap/BTreeSet, or keep the hash container for O(1) access and assert \
                  keyed-only use with `// latte-lint: allow(D3, reason = \"...\")`.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "D4",
        title: "no direct stdout/stderr printing in simulation library code",
        rationale: "println!/eprintln! from inside a simulation interleaves across the parallel \
                    driver's worker threads; output must flow through the bench capture macros \
                    or a caller-supplied TraceSink",
        explain: "Lexer tier. Flags `println!`, `print!`, `eprintln!`, `eprint!` and `dbg!` in \
                  non-test library code of simulation crates. Route diagnostics through a \
                  caller-supplied `TraceSink` and driver output through the bench capture \
                  macros, which serialize per worker.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "P1",
        title: "no panic!/todo!/unimplemented!/unwrap/expect outside test code",
        rationale: "library and binary code must surface failures as typed Results (a panicking \
                    simulation loses the whole experiment batch); extends the clippy \
                    unwrap_used/expect_used gate to crates it cannot cover",
        explain: "Lexer tier. Flags `panic!`/`todo!`/`unimplemented!` and `.unwrap()`/\
                  `.expect()` in non-test, non-example code. Propagate a typed error instead. \
                  Suppress only where a panic is provably unreachable and the proof is in the \
                  marker's reason.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "F1",
        title: "non-atomic file writes in bench/store code must use temp+rename",
        rationale: "File::create / fs::write / OpenOptions aimed at a final path can leave a \
                    torn file behind a crash; results and store segments are contracts with \
                    the *next* run, so they must be written to a temp name in the same \
                    directory and renamed into place (the sites that implement exactly that \
                    pattern carry a justified allow marker)",
        explain: "Lexer tier. Flags `File::create`, `fs::write` and `OpenOptions` in bench/\
                  store library and binary code. Write to `<final>.tmp.<nonce>` in the same \
                  directory, fsync, then rename into place. The helpers that implement \
                  exactly that pattern carry the justified allow markers; new code should \
                  call them instead of adding markers.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "S1",
        title: "per-SM state must be Send-partitionable; shared edges need a boundary marker",
        rationale: "the planned --sim-threads refactor moves each Sm to a worker thread; that \
                    is only sound if everything Sm transitively owns is Send and free of \
                    shared mutability, and every edge into shared Gpu-level state (L2, DRAM \
                    queue, TraceSink, stats) is explicit and auditable",
        explain: "Graph tier. Walks the type-field graph from the partition roots (Sm, \
                  MemCtx, Gpu) and classifies every reachable field as per_sm, shared or \
                  violating; the result is exported as results/lint_partition.json. \
                  Rc/RefCell/Cell/UnsafeCell/OnceCell, raw pointers, `static mut` and trait \
                  objects without a Send bound are violations nothing can bless — restructure \
                  to owned data, atomics or locks. Arc/Mutex/atomics/&-references are shared \
                  handles: legal, but only under an explicit \
                  `// latte-lint: shared-boundary(reason = \"...\")` marker on the field or \
                  static, which documents why cross-SM sharing through it is deterministic.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "T1",
        title: "no nondeterminism may flow through the call graph into simulation or output",
        rationale: "per-line source checks (D1-D3) cannot see a clock read two calls away; \
                    taint propagation over the approximate call graph can, and it also checks \
                    the hash-container *iteration* sites that D3's declaration-site check \
                    structurally cannot",
        explain: "Graph tier. Marks functions that read wall-clock/ambient RNG or iterate a \
                  hash container as tainted, propagates taint over resolved workspace call \
                  edges, and reports: hash iteration in simulation library code (T1a), \
                  simulation call sites whose callee is tainted (T1b), and output written by \
                  a tainted non-simulation function (T1c). An \
                  `// latte-lint: allow(T1, reason = \"...\")` marker is also a taint \
                  *barrier*: the seed or call edge under it stops propagating, so one \
                  justified marker at the source replaces many downstream ones.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "A0",
        title: "allow markers must be well-formed and carry a nonempty reason",
        rationale: "a suppression is a claim about the code; an unjustified or malformed \
                    marker is itself a violation and suppresses nothing",
        explain: "Marker tier. A marker must parse as `allow(RULE, reason = \"...\")`, \
                  `allow-file(...)`, `shared-boundary(reason = \"...\")` or \
                  `shared-boundary-file(...)`, name a real rule, and carry a nonempty \
                  reason. The audit rules A0 and A1 cannot themselves be suppressed.",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "A1",
        title: "stale suppressions: every marker must still do something",
        rationale: "an allow marker whose rule no longer fires in its scope (or a \
                    shared-boundary marker annotating nothing shared) is dead weight that \
                    hides real future findings; the marker inventory may only shrink",
        explain: "Audit tier. After all rules run pre-suppression, every `allow` marker must \
                  have suppressed at least one raw finding (or served as a T1 taint barrier), \
                  and every `shared-boundary` marker must annotate a field or static that \
                  actually holds a shared capability. Anything else is reported at the marker \
                  itself: delete the marker. A1 cannot be suppressed.",
        severity: Severity::Error,
    },
];

/// Looks up a rule by id.
#[must_use]
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// What kind of target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` except `src/main.rs` and `src/bin/`).
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/`, `build.rs`).
    Bin,
    /// Integration tests and benches (`tests/`, `benches/`).
    Test,
    /// Examples (`examples/`).
    Example,
}

/// Per-file context the rules dispatch on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Crate directory name (`gpusim`, `bench`, ...), if under `crates/`.
    pub crate_name: Option<String>,
    /// `true` when the crate is in [`SIM_CRATES`].
    pub is_sim_crate: bool,
    /// Target kind.
    pub kind: FileKind,
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`D1`, ..., `A0`).
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong at this site.
    pub message: String,
    /// The offending source line, trimmed of trailing whitespace.
    pub snippet: String,
}

const D1_IDENTS: &[&str] = &["Instant", "SystemTime"];
const D2_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];
const D3_IDENTS: &[&str] = &["HashMap", "HashSet"];
const D4_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
const P1_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const P1_METHODS: &[&str] = &["unwrap", "expect"];

/// Rules that audit the marker inventory itself and therefore can never
/// be suppressed by a marker.
#[must_use]
pub fn is_unsuppressible(rule_id: &str) -> bool {
    matches!(rule_id, "A0" | "A1")
}

/// `true` when a marker at `marker_line` (with the given scope) covers
/// source `line`: file-scope markers cover everything; line markers
/// cover their own line and the next.
#[must_use]
pub fn marker_covers(file_scope: bool, marker_line: u32, line: u32) -> bool {
    file_scope || marker_line == line || marker_line + 1 == line
}

/// Checks one lexed file against every lexer-tier rule, applying
/// `allow` suppressions. Equivalent to [`check_raw`] filtered through
/// the file's markers.
#[must_use]
pub fn check(path: &str, src: &str, lexed: &LexOutput, ctx: &FileContext) -> Vec<Violation> {
    check_raw(path, src, lexed, ctx)
        .into_iter()
        .filter(|v| {
            is_unsuppressible(v.rule)
                || !lexed
                    .markers
                    .iter()
                    .any(|m| m.rule == v.rule && marker_covers(m.file_scope, m.line, v.line))
        })
        .collect()
}

/// Checks one lexed file against every lexer-tier rule **without**
/// applying suppressions. The scan layer consumes raw findings so the
/// `A1` stale-allow audit can tell which markers actually earn their
/// keep.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_raw(path: &str, src: &str, lexed: &LexOutput, ctx: &FileContext) -> Vec<Violation> {
    let mut violations = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim_end().to_owned())
            .unwrap_or_default()
    };

    // Malformed markers are violations in their own right (A0), and so
    // are markers naming a rule that does not exist (a typo would
    // otherwise silently suppress nothing while looking intentional).
    for err in &lexed.marker_errors {
        violations.push(Violation {
            rule: "A0",
            severity: Severity::Error,
            path: path.to_owned(),
            line: err.line,
            col: 1,
            message: err.message.clone(),
            snippet: snippet(err.line),
        });
    }
    for marker in &lexed.markers {
        if rule(&marker.rule).is_none() {
            violations.push(Violation {
                rule: "A0",
                severity: Severity::Error,
                path: path.to_owned(),
                line: marker.line,
                col: 1,
                message: format!("allow marker names unknown rule `{}`", marker.rule),
                snippet: snippet(marker.line),
            });
        } else if is_unsuppressible(&marker.rule) {
            violations.push(Violation {
                rule: "A0",
                severity: Severity::Error,
                path: path.to_owned(),
                line: marker.line,
                col: 1,
                message: format!(
                    "rule `{}` audits the marker inventory itself and cannot be suppressed",
                    marker.rule
                ),
                snippet: snippet(marker.line),
            });
        }
    }

    let in_code = matches!(ctx.kind, FileKind::Lib | FileKind::Bin);
    let sim_lib = ctx.is_sim_crate && ctx.kind == FileKind::Lib;

    // `#[cfg(test)]` region tracking: `pending` is set when the attribute
    // is seen and resolves at the next `{` (opening the test item's body)
    // or dies at a `;` (attribute on a brace-less item).
    let mut depth: i32 = 0;
    let mut test_region_entry: Option<i32> = None;
    let mut pending_cfg_test = false;

    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                if pending_cfg_test {
                    pending_cfg_test = false;
                    if test_region_entry.is_none() {
                        test_region_entry = Some(depth);
                    }
                }
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if test_region_entry.is_some_and(|entry| depth < entry) {
                    test_region_entry = None;
                }
            }
            TokKind::Punct(';') => {
                pending_cfg_test = false;
            }
            TokKind::Punct('#') if is_cfg_test_attr(toks, i) => {
                pending_cfg_test = true;
                i += 7; // past `# [ cfg ( test ) ]`
                continue;
            }
            TokKind::Punct(_) => {}
            TokKind::Ident(name) => {
                let in_test = test_region_entry.is_some() || matches!(ctx.kind, FileKind::Test);
                let next_punct = |ch: char| toks.get(i + 1).is_some_and(|n| n.is_punct(ch));
                let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');

                let mut report = |rule_id: &'static str, message: String| {
                    violations.push(Violation {
                        rule: rule_id,
                        severity: Severity::Error,
                        path: path.to_owned(),
                        line: t.line,
                        col: t.col,
                        message,
                        snippet: snippet(t.line),
                    });
                };

                // D1: wall-clock in simulation crates (lib and bin; test
                // code may time things for diagnostics).
                if ctx.is_sim_crate && in_code && !in_test && D1_IDENTS.contains(&name.as_str()) {
                    report(
                        "D1",
                        format!("`{name}` (wall-clock) in simulation crate `{}`; timing belongs to the driver", crate_label(ctx)),
                    );
                }

                // D2: ambient randomness — everywhere, including tests
                // (a test drawing OS entropy is a flaky test).
                if D2_IDENTS.contains(&name.as_str()) || (name == "random" && next_punct('(')) {
                    report(
                        "D2",
                        format!("`{name}` draws ambient randomness; route RNG through an explicitly seeded stream"),
                    );
                }

                // D3: hash containers in simulation library code.
                if sim_lib && !in_test && D3_IDENTS.contains(&name.as_str()) {
                    report(
                        "D3",
                        format!(
                            "`{name}` in simulation crate `{}`: iteration order may leak into results; \
                             use an ordered container or assert order-independence with an allow marker",
                            crate_label(ctx)
                        ),
                    );
                }

                // D4: direct printing from simulation library code.
                if sim_lib && !in_test && next_punct('!') && D4_MACROS.contains(&name.as_str()) {
                    report(
                        "D4",
                        format!("`{name}!` in simulation library code; use the bench capture macros or a TraceSink"),
                    );
                }

                // P1: panic-freedom outside test code (examples are
                // documentation and may unwrap for brevity).
                if in_code && !in_test {
                    if next_punct('!') && P1_MACROS.contains(&name.as_str()) {
                        report(
                            "P1",
                            format!("`{name}!` in non-test code; surface the failure as a typed Result"),
                        );
                    }
                    if prev_is_dot && next_punct('(') && P1_METHODS.contains(&name.as_str()) {
                        report(
                            "P1",
                            format!("`.{name}()` in non-test code; propagate the error or handle the None/Err case"),
                        );
                    }
                }

                // F1: non-atomic file writes in the two crates whose
                // files a later run depends on (results CSVs, store
                // segments). `::` lexes as two ':' puncts.
                let writes_durable_files =
                    matches!(ctx.crate_name.as_deref(), Some("bench" | "store"));
                if writes_durable_files && in_code && !in_test {
                    let prev_path_seg = |seg: &str| -> bool {
                        i >= 3
                            && toks[i - 1].is_punct(':')
                            && toks[i - 2].is_punct(':')
                            && toks[i - 3].ident() == Some(seg)
                    };
                    if (name == "create" && prev_path_seg("File"))
                        || (name == "write" && prev_path_seg("fs"))
                        || (name == "OpenOptions" && next_punct(':'))
                    {
                        report(
                            "F1",
                            format!(
                                "`{name}` writes a file directly in crate `{}`; write to a temp \
                                 name and rename into place, or justify the site with an allow \
                                 marker",
                                crate_label(ctx)
                            ),
                        );
                    }
                }
            }
        }
        i += 1;
    }
    violations
}

fn crate_label(ctx: &FileContext) -> &str {
    ctx.crate_name.as_deref().unwrap_or("?")
}

/// `true` when `toks[i..]` spells `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let idents = [None, Some("cfg"), None, Some("test"), None, None];
    let puncts = ['[', '\0', '(', '\0', ')', ']'];
    for (off, (want_ident, want_punct)) in idents.iter().zip(puncts).enumerate() {
        let Some(t) = toks.get(i + 1 + off) else {
            return false;
        };
        match want_ident {
            Some(name) => {
                if t.ident() != Some(name) {
                    return false;
                }
            }
            None => {
                if !t.is_punct(want_punct) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sim_lib_ctx() -> FileContext {
        FileContext {
            crate_name: Some("gpusim".to_owned()),
            is_sim_crate: true,
            kind: FileKind::Lib,
        }
    }

    fn check_src(src: &str, ctx: &FileContext) -> Vec<Violation> {
        check("crates/gpusim/src/x.rs", src, &lex(src), ctx)
    }

    #[test]
    fn cfg_test_region_exempts_p1_and_d4() {
        let src = "
fn lib_code() -> u32 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        println!(\"test output is fine\");
        panic!(\"also fine\");
    }
}
";
        assert_eq!(check_src(src, &sim_lib_ctx()), []);
    }

    #[test]
    fn cfg_test_on_single_item_without_braces_does_not_leak() {
        let src = "
#[cfg(test)]
use std::x::Y;
fn f(o: Option<u32>) -> u32 { o.unwrap() }
";
        let v = check_src(src, &sim_lib_ctx());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P1");
    }

    #[test]
    fn d2_fires_even_in_tests() {
        let src = "
#[cfg(test)]
mod tests {
    fn t() { let x = thread_rng(); }
}
";
        let v = check_src(src, &sim_lib_ctx());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D2");
    }

    #[test]
    fn allow_marker_suppresses_next_line() {
        let src = "
// latte-lint: allow(D3, reason = \"keyed access only, never iterated\")
use std::collections::HashMap;
";
        assert_eq!(check_src(src, &sim_lib_ctx()), []);
    }

    #[test]
    fn file_scope_marker_suppresses_everywhere() {
        let src = "
// latte-lint: allow-file(D3, reason = \"keyed access only, never iterated\")
use std::collections::HashMap;
struct S { m: HashMap<u32, u32> }
";
        assert_eq!(check_src(src, &sim_lib_ctx()), []);
    }

    #[test]
    fn unknown_rule_in_marker_is_a0() {
        let src = "// latte-lint: allow(D9, reason = \"typo\")\n";
        let v = check_src(src, &sim_lib_ctx());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "A0");
    }

    #[test]
    fn unwrap_or_and_expect_err_are_not_p1() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0).max(o.unwrap_or_default()) }";
        assert_eq!(check_src(src, &sim_lib_ctx()), []);
    }

    #[test]
    fn bench_crate_is_exempt_from_sim_rules_but_not_p1() {
        let ctx = FileContext {
            crate_name: Some("bench".to_owned()),
            is_sim_crate: false,
            kind: FileKind::Lib,
        };
        let src = "
use std::time::Instant;
use std::collections::HashMap;
fn f() { println!(\"driver output\"); }
fn g(o: Option<u32>) -> u32 { o.unwrap() }
";
        let v = check("crates/bench/src/x.rs", src, &lex(src), &ctx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P1");
    }

    #[test]
    fn examples_are_exempt_from_p1() {
        let ctx = FileContext {
            crate_name: Some("bench".to_owned()),
            is_sim_crate: false,
            kind: FileKind::Example,
        };
        let src = "fn main() { let b = benchmark(\"SS\").expect(\"exists\"); run(b); }";
        assert_eq!(check("examples/q.rs", src, &lex(src), &ctx), []);
    }

    #[test]
    fn every_rule_id_is_unique() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
    }
}
