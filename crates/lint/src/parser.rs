//! An item-level Rust parser built on the [`crate::lexer`] token stream.
//!
//! This is *not* a full Rust grammar — the build environment is offline,
//! so no `syn` — but a recursive-descent pass that recovers exactly the
//! structure the interprocedural rules need:
//!
//! * structs/enums with per-field [`TypeExpr`]s (rule `S1` walks the
//!   type-field graph from the partition roots),
//! * traits with their supertraits (the `Send`-audit of `dyn Trait`
//!   fields),
//! * functions with an approximate call list and hash-iteration sites
//!   (rule `T1` propagates determinism taint along these edges),
//! * `use` declarations (cross-crate resolution hints for the graphs),
//! * statics and type aliases.
//!
//! The parser is defensive: unknown constructs are skipped token by
//! token, every loop makes forward progress, and a malformed item
//! degrades to "not extracted" rather than a panic. Generic parameter
//! lists are skipped with an angle-depth counter that treats `->` and
//! `=>` as atomic so a `>` inside them never closes a generic scope.

use crate::lexer::{Tok, TokKind};

/// A type expression, kept as flat text plus the features the rules
/// dispatch on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeExpr {
    /// Roughly the source text of the type (token-joined).
    pub text: String,
    /// Every identifier appearing in the type, in order, minus type
    /// keywords (`dyn`, `mut`, `impl`, ...).
    pub idents: Vec<String>,
    /// `true` when the type contains a `&` reference at any depth.
    pub has_ref: bool,
    /// `true` when the type contains a raw pointer (`*mut T`/`*const T`).
    pub has_raw_ptr: bool,
    /// The head trait of each `dyn Trait` appearing in the type.
    pub dyn_traits: Vec<String>,
}

impl TypeExpr {
    /// `true` when the expression carries no tokens at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

/// One named (or tuple-indexed) field of a struct, or one variant of an
/// enum with its merged payload type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (`"0"`, `"1"`, ... for tuple fields; the variant name
    /// for enum variants).
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
    /// The field's type (for enum variants: all payload types merged).
    pub ty: TypeExpr,
}

/// A struct, union or enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Enclosing module path within the file (empty at file scope).
    pub module: Vec<String>,
    /// Fields (or enum variants with payload types).
    pub fields: Vec<FieldDef>,
    /// `true` when defined under `#[cfg(test)]` or inside a test fn.
    pub in_test: bool,
    /// `true` for `enum` definitions.
    pub is_enum: bool,
}

/// A trait definition with its supertraits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Supertrait names (`trait Kernel: Send + Sync` → `[Send, Sync]`),
    /// last path segment only.
    pub supertraits: Vec<String>,
    /// `true` when defined under `#[cfg(test)]`.
    pub in_test: bool,
}

/// What a call site refers to, as far as tokens can tell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `helper(...)` — a free function (or tuple-struct constructor).
    Free(String),
    /// `Type::method(...)` / `a::b::f(...)` — a path call; all segments.
    Path(Vec<String>),
    /// `self.method(...)` — a method on the surrounding impl type.
    SelfMethod(String),
    /// `self.field.method(...)` — a method on a field's type.
    FieldMethod {
        /// The field name.
        field: String,
        /// The method name.
        method: String,
    },
    /// `expr.method(...)` with an unresolvable receiver.
    OtherMethod(String),
    /// `name!(...)` — a macro invocation.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// A function definition (free, inherent, trait method or default body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// The impl'd / trait'd type name, when inside an `impl` or `trait`
    /// block.
    pub owner: Option<String>,
    /// Enclosing module path within the file.
    pub module: Vec<String>,
    /// `true` when the fn is test code (`#[cfg(test)]` region, or nested
    /// in one).
    pub in_test: bool,
    /// `false` for bodyless trait-method declarations.
    pub has_body: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Raw `for _ in &self.field { ... }` iteration sites: `(field, line)`.
    pub field_iters: Vec<(String, u32)>,
}

/// A `static` item (module level or function-local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDef {
    /// Static name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// `true` for `static mut`.
    pub is_mut: bool,
    /// Declared type.
    pub ty: TypeExpr,
    /// `true` when in test code.
    pub in_test: bool,
}

/// One `use` declaration leaf (groups are expanded: `use a::{b, c}` is
/// two decls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Full path segments, `as`-renames resolved to the original name.
    pub path: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// A `type Name = ...;` alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasDef {
    /// Alias name.
    pub name: String,
    /// The aliased type.
    pub ty: TypeExpr,
    /// `true` when in test code.
    pub in_test: bool,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Structs, unions and enums.
    pub structs: Vec<StructDef>,
    /// Traits.
    pub traits: Vec<TraitDef>,
    /// Functions.
    pub fns: Vec<FnDef>,
    /// Statics (module-level and function-local).
    pub statics: Vec<StaticDef>,
    /// Use declarations.
    pub uses: Vec<UseDecl>,
    /// Type aliases.
    pub aliases: Vec<AliasDef>,
}

/// Identifiers that are keywords inside type expressions and never name
/// a type.
const TYPE_KEYWORDS: &[&str] = &[
    "dyn", "mut", "const", "impl", "as", "where", "for", "unsafe", "extern", "fn", "ref", "pub",
    "in", "crate", "self", "super", "Self",
];

/// Reserved words that can never start a call expression.
const STMT_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "loop", "else", "break", "continue", "move",
    "let", "mut", "ref", "as", "dyn", "impl", "unsafe", "self", "Self", "super", "crate", "true",
    "false", "where", "use", "static", "const", "struct", "enum", "fn", "trait", "type", "mod",
    "pub", "async", "await", "box",
];

/// Parses a lexed token stream into its item-level structure.
#[must_use]
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut p = Parser { toks, i: 0, out: ParsedFile::default() };
    let mut module = Vec::new();
    p.items(&mut module, false, None, false);
    p.out
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    out: ParsedFile,
}

impl Parser<'_> {
    fn peek(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.i + off)
    }

    fn cur_ident(&self) -> Option<&str> {
        self.peek(0).and_then(Tok::ident)
    }

    fn at_punct(&self, ch: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(ch))
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.at_punct(ch) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes an identifier and returns it (with its position), or
    /// `None` without advancing.
    fn eat_ident(&mut self) -> Option<(String, u32, u32)> {
        match self.peek(0) {
            Some(Tok { kind: TokKind::Ident(s), line, col }) => {
                let out = (s.clone(), *line, *col);
                self.bump();
                Some(out)
            }
            _ => None,
        }
    }

    /// Parses a run of items until end of input or (when `stop_at_close`)
    /// an unmatched `}`. `owner` is the surrounding impl/trait type.
    fn items(&mut self, module: &mut Vec<String>, in_test: bool, owner: Option<&str>, stop_at_close: bool) {
        let mut pending_test = false;
        while self.i < self.toks.len() {
            if self.at_punct('}') {
                if stop_at_close {
                    return;
                }
                self.bump();
                continue;
            }
            if self.at_punct('#') {
                pending_test |= self.attr_is_cfg_test();
                continue;
            }
            let Some(name) = self.cur_ident().map(str::to_owned) else {
                self.bump();
                continue;
            };
            let item_test = in_test || pending_test;
            match name.as_str() {
                "pub" => {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                    continue; // modifier: re-dispatch without clearing pending_test
                }
                "unsafe" | "async" | "default" | "extern" => {
                    self.bump();
                    continue;
                }
                "const" => {
                    self.bump();
                    if self.cur_ident() == Some("fn") {
                        continue; // `const fn`: fall through to the fn arm
                    }
                    self.skip_to_semi(); // `const NAME: T = ...;`
                }
                "mod" => {
                    self.bump();
                    let Some((m, _, _)) = self.eat_ident() else { continue };
                    if self.eat_punct('{') {
                        module.push(m);
                        self.items(module, item_test, None, true);
                        module.pop();
                        self.eat_punct('}');
                    } else {
                        self.eat_punct(';');
                    }
                }
                "struct" | "union" => {
                    self.bump();
                    self.parse_struct(module, item_test, false);
                }
                "enum" => {
                    self.bump();
                    self.parse_enum(module, item_test);
                }
                "trait" => {
                    self.bump();
                    self.parse_trait(module, item_test);
                }
                "impl" => {
                    self.bump();
                    self.parse_impl(module, item_test);
                }
                "fn" => {
                    self.bump();
                    self.parse_fn(module, item_test, owner);
                }
                "use" => {
                    self.bump();
                    self.parse_use();
                }
                "static" => {
                    self.bump();
                    self.parse_static(item_test);
                }
                "type" => {
                    self.bump();
                    self.parse_alias(item_test);
                }
                "macro_rules" => {
                    self.bump();
                    self.eat_punct('!');
                    self.eat_ident();
                    if self.at_punct('{') {
                        self.skip_balanced('{', '}');
                    } else {
                        self.skip_to_semi();
                    }
                }
                _ => self.bump(),
            }
            pending_test = false;
        }
    }

    /// At `#`: skips one attribute, returning `true` for `#[cfg(test)]`
    /// (or any `cfg(...)` whose arguments mention `test`).
    fn attr_is_cfg_test(&mut self) -> bool {
        self.bump(); // '#'
        self.eat_punct('!');
        if !self.at_punct('[') {
            return false;
        }
        let start = self.i;
        self.skip_balanced('[', ']');
        let attr = &self.toks[start..self.i];
        let mut idents = attr.iter().filter_map(Tok::ident);
        idents.next() == Some("cfg") && attr.iter().filter_map(Tok::ident).any(|s| s == "test")
    }

    /// At an opening delimiter: skips past its matching close.
    fn skip_balanced(&mut self, open: char, close: char) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1u32;
        while self.i < self.toks.len() && depth > 0 {
            if self.at_punct(open) {
                depth += 1;
            } else if self.at_punct(close) {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Skips to just past the next `;` at bracket depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while self.i < self.toks.len() {
            if let Some(TokKind::Punct(c)) = self.peek(0).map(|t| t.kind.clone()) {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => {
                        if depth == 0 {
                            return; // unbalanced close: stop before it
                        }
                        depth -= 1;
                    }
                    ';' if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// At `<`: skips a generic parameter list, treating `->` and `=>` as
    /// atomic so their `>` never closes the scope.
    fn skip_generics(&mut self) {
        if !self.eat_punct('<') {
            return;
        }
        let mut depth = 1u32;
        while self.i < self.toks.len() && depth > 0 {
            if (self.at_punct('-') || self.at_punct('=')) && self.peek(1).is_some_and(|t| t.is_punct('>')) {
                self.bump();
                self.bump();
                continue;
            }
            if self.at_punct('<') {
                depth += 1;
            } else if self.at_punct('>') {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Collects a type expression until one of `stops` appears at depth 0
    /// (the stop token is not consumed). Returns the collected type.
    #[allow(clippy::too_many_lines)]
    fn collect_type(&mut self, stops: &[char]) -> TypeExpr {
        let mut ty = TypeExpr::default();
        let mut bracket = 0i32;
        let mut angle = 0i32;
        let mut dyn_pending = false;
        let mut dyn_last: Option<String> = None;
        while self.i < self.toks.len() {
            let tok = match self.peek(0) {
                Some(t) => t.clone(),
                None => break,
            };
            match &tok.kind {
                TokKind::Punct(c) => {
                    // `->` / `=>` are atomic; their `>` is not a closer.
                    if (*c == '-' || *c == '=')
                        && self.peek(1).is_some_and(|t| t.is_punct('>'))
                        && !(bracket == 0 && angle == 0 && stops.contains(c))
                    {
                        ty.text.push(*c);
                        ty.text.push('>');
                        self.bump();
                        self.bump();
                        continue;
                    }
                    if bracket == 0 && angle == 0 && stops.contains(c) {
                        break;
                    }
                    match c {
                        '(' | '[' | '{' => bracket += 1,
                        ')' | ']' | '}' => {
                            if bracket == 0 {
                                break; // unbalanced close belongs to the caller
                            }
                            bracket -= 1;
                        }
                        '<' => angle += 1,
                        '>' => {
                            if angle == 0 {
                                break;
                            }
                            angle -= 1;
                        }
                        '&' => ty.has_ref = true,
                        '*' if self
                            .peek(1)
                            .and_then(Tok::ident)
                            .is_some_and(|s| s == "mut" || s == "const") =>
                        {
                            ty.has_raw_ptr = true;
                        }
                        _ => {}
                    }
                    if dyn_pending && *c != ':' {
                        if let Some(t) = dyn_last.take() {
                            ty.dyn_traits.push(t);
                        }
                        dyn_pending = false;
                    }
                    ty.text.push(*c);
                    if *c == ',' {
                        ty.text.push(' ');
                    }
                    self.bump();
                }
                TokKind::Ident(s) => {
                    if s == "dyn" {
                        dyn_pending = true;
                        dyn_last = None;
                    } else {
                        if dyn_pending {
                            dyn_last = Some(s.clone());
                        }
                        if !TYPE_KEYWORDS.contains(&s.as_str()) {
                            ty.idents.push(s.clone());
                        }
                    }
                    if ty.text.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                        ty.text.push(' ');
                    }
                    ty.text.push_str(s);
                    self.bump();
                }
            }
        }
        if let Some(t) = dyn_last.take() {
            ty.dyn_traits.push(t);
        }
        ty
    }

    /// After the `struct` keyword (already consumed): parses a struct or
    /// union body. `merge_into_enum` is unused here (see `parse_enum`).
    fn parse_struct(&mut self, module: &[String], in_test: bool, _merge_into_enum: bool) {
        let Some((name, line, _)) = self.eat_ident() else { return };
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.cur_ident() == Some("where") {
            // Skip the where clause up to the body or `;`.
            while self.i < self.toks.len() && !self.at_punct('{') && !self.at_punct(';') && !self.at_punct('(') {
                if self.at_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let mut fields = Vec::new();
        if self.eat_punct('(') {
            // Tuple struct: `struct W(Arc<X>, u32);`
            let mut idx = 0usize;
            while self.i < self.toks.len() && !self.at_punct(')') {
                while self.cur_ident() == Some("pub") {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                let (fline, fcol) = self.peek(0).map_or((line, 1), |t| (t.line, t.col));
                let ty = self.collect_type(&[',', ')']);
                if !ty.is_empty() {
                    fields.push(FieldDef { name: idx.to_string(), line: fline, col: fcol, ty });
                    idx += 1;
                }
                self.eat_punct(',');
            }
            self.eat_punct(')');
            self.skip_to_semi();
        } else if self.eat_punct('{') {
            while self.i < self.toks.len() && !self.at_punct('}') {
                if self.at_punct('#') {
                    self.attr_is_cfg_test();
                    continue;
                }
                while self.cur_ident() == Some("pub") {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                let Some((fname, fline, fcol)) = self.eat_ident() else {
                    self.bump();
                    continue;
                };
                if !self.eat_punct(':') {
                    continue; // not a field (recovered)
                }
                let ty = self.collect_type(&[',', '}']);
                fields.push(FieldDef { name: fname, line: fline, col: fcol, ty });
                self.eat_punct(',');
            }
            self.eat_punct('}');
        } else {
            self.eat_punct(';'); // unit struct
        }
        self.out.structs.push(StructDef {
            name,
            line,
            module: module.to_vec(),
            fields,
            in_test,
            is_enum: false,
        });
    }

    /// After the `enum` keyword: parses variants; each variant's payload
    /// types are merged into one `TypeExpr`.
    fn parse_enum(&mut self, module: &[String], in_test: bool) {
        let Some((name, line, _)) = self.eat_ident() else { return };
        if self.at_punct('<') {
            self.skip_generics();
        }
        while self.i < self.toks.len() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        let mut fields = Vec::new();
        if self.eat_punct('{') {
            while self.i < self.toks.len() && !self.at_punct('}') {
                if self.at_punct('#') {
                    self.attr_is_cfg_test();
                    continue;
                }
                let Some((vname, vline, vcol)) = self.eat_ident() else {
                    self.bump();
                    continue;
                };
                let mut ty = TypeExpr::default();
                if self.eat_punct('(') {
                    ty = self.collect_type(&[')']);
                    self.eat_punct(')');
                } else if self.eat_punct('{') {
                    while self.i < self.toks.len() && !self.at_punct('}') {
                        if self.at_punct('#') {
                            self.attr_is_cfg_test();
                            continue;
                        }
                        let Some((_f, _, _)) = self.eat_ident() else {
                            self.bump();
                            continue;
                        };
                        if !self.eat_punct(':') {
                            continue;
                        }
                        let fty = self.collect_type(&[',', '}']);
                        merge_type(&mut ty, fty);
                        self.eat_punct(',');
                    }
                    self.eat_punct('}');
                } else if self.eat_punct('=') {
                    // Discriminant: skip the expression with a
                    // bracket-only depth counter (`1 << 2` must not be
                    // mistaken for an opening generic).
                    let mut depth = 0i32;
                    while self.i < self.toks.len() {
                        if self.at_punct('(') || self.at_punct('[') || self.at_punct('{') {
                            depth += 1;
                        } else if self.at_punct(')') || self.at_punct(']') || self.at_punct('}') {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        } else if depth == 0 && self.at_punct(',') {
                            break;
                        }
                        self.bump();
                    }
                }
                fields.push(FieldDef { name: vname, line: vline, col: vcol, ty });
                self.eat_punct(',');
            }
            self.eat_punct('}');
        }
        self.out.structs.push(StructDef {
            name,
            line,
            module: module.to_vec(),
            fields,
            in_test,
            is_enum: true,
        });
    }

    /// After the `trait` keyword: records the trait and its supertraits,
    /// then parses default-method bodies with the trait as owner.
    fn parse_trait(&mut self, module: &mut Vec<String>, in_test: bool) {
        let Some((name, line, _)) = self.eat_ident() else { return };
        if self.at_punct('<') {
            self.skip_generics();
        }
        let mut supertraits = Vec::new();
        if self.eat_punct(':') {
            while let Some(seg) = self.last_path_segment() {
                supertraits.push(seg);
                if self.at_punct('<') {
                    self.skip_generics();
                }
                if self.at_punct('(') {
                    // `Fn(..)`-style bound sugar.
                    self.skip_balanced('(', ')');
                    if self.at_punct('-') && self.peek(1).is_some_and(|t| t.is_punct('>')) {
                        self.bump();
                        self.bump();
                        let _ = self.collect_type(&['+', '{', ';']);
                    }
                }
                if !self.eat_punct('+') {
                    break;
                }
            }
        }
        while self.i < self.toks.len() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        self.out.traits.push(TraitDef { name: name.clone(), line, supertraits, in_test });
        if self.eat_punct('{') {
            self.items(module, in_test, Some(&name), true);
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
    }

    /// Reads a `::`-joined path at the cursor and returns its last
    /// segment (`a::b::C` → `C`). Returns `None` when not at an ident.
    fn last_path_segment(&mut self) -> Option<String> {
        let (mut last, _, _) = self.eat_ident()?;
        loop {
            if self.at_punct(':') && self.peek(1).is_some_and(|t| t.is_punct(':')) {
                if let Some(s) = self.peek(2).and_then(Tok::ident).map(str::to_owned) {
                    self.bump();
                    self.bump();
                    self.bump();
                    last = s;
                    continue;
                }
            }
            return Some(last);
        }
    }

    /// After the `impl` keyword: works out the self type (and discards
    /// the trait path, if any), then parses the body with that owner.
    fn parse_impl(&mut self, module: &mut Vec<String>, in_test: bool) {
        if self.at_punct('<') {
            self.skip_generics();
        }
        // `impl Trait for Type` | `impl Type`; either side may be a path
        // with generics. References / dyn heads are skipped.
        let read_head = |p: &mut Self| -> Option<String> {
            while p.at_punct('&') || p.cur_ident().is_some_and(|s| s == "dyn" || s == "mut") {
                p.bump();
            }
            let seg = p.last_path_segment();
            if p.at_punct('<') {
                p.skip_generics();
            }
            seg
        };
        let first = read_head(self);
        let owner = if self.cur_ident() == Some("for") {
            self.bump();
            read_head(self)
        } else {
            first
        };
        while self.i < self.toks.len() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        if self.eat_punct('{') {
            self.items(module, in_test, owner.as_deref(), true);
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
    }

    /// After the `fn` keyword: parses signature and (when present) the
    /// body, extracting call sites and iteration sites.
    fn parse_fn(&mut self, module: &[String], in_test: bool, owner: Option<&str>) {
        let Some((name, line, _)) = self.eat_ident() else { return };
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_punct('(') {
            self.skip_balanced('(', ')');
        }
        // Return type + where clause, up to the body or `;`.
        while self.i < self.toks.len() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('<') {
                self.skip_generics();
            } else if (self.at_punct('-') || self.at_punct('=')) && self.peek(1).is_some_and(|t| t.is_punct('>')) {
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let mut def = FnDef {
            name,
            line,
            owner: owner.map(str::to_owned),
            module: module.to_vec(),
            in_test,
            has_body: false,
            calls: Vec::new(),
            field_iters: Vec::new(),
        };
        if self.at_punct('{') {
            def.has_body = true;
            self.walk_body(&mut def, module, in_test);
        } else {
            self.eat_punct(';');
        }
        self.out.fns.push(def);
    }

    /// At the body's `{`: walks the body, recording call sites, raw
    /// `for _ in self.field` iterations, and nested items.
    #[allow(clippy::too_many_lines)]
    fn walk_body(&mut self, def: &mut FnDef, module: &[String], in_test: bool) {
        self.bump(); // '{'
        let mut depth = 1i32;
        while self.i < self.toks.len() && depth > 0 {
            if self.at_punct('{') {
                depth += 1;
                self.bump();
                continue;
            }
            if self.at_punct('}') {
                depth -= 1;
                self.bump();
                continue;
            }
            let Some(name) = self.cur_ident().map(str::to_owned) else {
                self.bump();
                continue;
            };
            // Nested items worth extracting.
            match name.as_str() {
                "fn" if self.peek(1).and_then(Tok::ident).is_some() => {
                    self.bump();
                    self.parse_fn(module, in_test, None);
                    continue;
                }
                "static" if self.peek(1).and_then(Tok::ident).is_some() => {
                    self.bump();
                    self.parse_static(in_test);
                    continue;
                }
                "in" => {
                    // `for x in [&][mut] self.field` raw iteration.
                    self.bump();
                    let mut j = 0usize;
                    if self.peek(j).is_some_and(|t| t.is_punct('&')) {
                        j += 1;
                    }
                    if self.peek(j).and_then(Tok::ident) == Some("mut") {
                        j += 1;
                    }
                    if self.peek(j).and_then(Tok::ident) == Some("self")
                        && self.peek(j + 1).is_some_and(|t| t.is_punct('.'))
                    {
                        if let Some(ft) = self.peek(j + 2) {
                            if let Some(f) = ft.ident() {
                                // A following `.` means a method call that
                                // the call scan already classifies.
                                if !self.peek(j + 3).is_some_and(|t| t.is_punct('.')) {
                                    def.field_iters.push((f.to_owned(), ft.line));
                                }
                            }
                        }
                    }
                    continue;
                }
                _ => {}
            }
            if STMT_KEYWORDS.contains(&name.as_str()) {
                self.bump();
                continue;
            }
            let tok = match self.peek(0) {
                Some(t) => t.clone(),
                None => break,
            };
            // Macro call: `name!(..)` / `name![..]` / `name!{..}`.
            if self.peek(1).is_some_and(|t| t.is_punct('!'))
                && self
                    .peek(2)
                    .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
            {
                def.calls.push(CallSite {
                    callee: Callee::Macro(name),
                    line: tok.line,
                    col: tok.col,
                });
                self.bump(); // the macro args are walked as ordinary tokens
                continue;
            }
            // Call expression: `name(` with receiver classified by
            // looking back at the already-consumed tokens.
            if self.peek(1).is_some_and(|t| t.is_punct('(')) {
                let callee = self.classify_call(&name);
                def.calls.push(CallSite { callee, line: tok.line, col: tok.col });
            }
            self.bump();
        }
    }

    /// Classifies the call `name(` at the cursor by inspecting the
    /// tokens before it.
    fn classify_call(&self, name: &str) -> Callee {
        let before = |off: usize| -> Option<&Tok> {
            self.i.checked_sub(off).and_then(|j| self.toks.get(j))
        };
        if before(1).is_some_and(|t| t.is_punct('.')) {
            if before(2).and_then(Tok::ident) == Some("self") && !before(3).is_some_and(|t| t.is_punct('.')) {
                return Callee::SelfMethod(name.to_owned());
            }
            if before(3).is_some_and(|t| t.is_punct('.'))
                && before(4).and_then(Tok::ident) == Some("self")
                && !before(5).is_some_and(|t| t.is_punct('.'))
            {
                if let Some(field) = before(2).and_then(Tok::ident) {
                    return Callee::FieldMethod { field: field.to_owned(), method: name.to_owned() };
                }
            }
            return Callee::OtherMethod(name.to_owned());
        }
        if before(1).is_some_and(|t| t.is_punct(':')) && before(2).is_some_and(|t| t.is_punct(':')) {
            let mut segs = vec![name.to_owned()];
            let mut j = 0usize; // offset of the current leftmost segment
            loop {
                let a = before(j + 1).is_some_and(|t| t.is_punct(':'));
                let b = before(j + 2).is_some_and(|t| t.is_punct(':'));
                let seg = before(j + 3).and_then(Tok::ident);
                match (a && b, seg) {
                    (true, Some(s)) => {
                        segs.insert(0, s.to_owned());
                        j += 3;
                    }
                    _ => break,
                }
            }
            return Callee::Path(segs);
        }
        Callee::Free(name.to_owned())
    }

    /// After the `use` keyword: records each leaf path.
    fn parse_use(&mut self) {
        let line = self.line();
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, line);
        self.eat_punct(';');
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, line: u32) {
        let depth_in = prefix.len();
        loop {
            if let Some((seg, _, _)) = self.eat_ident() {
                if seg == "as" {
                    // rename: consume the alias, keep the original path
                    self.eat_ident();
                    self.out.uses.push(UseDecl { path: prefix.clone(), line });
                    break;
                }
                prefix.push(seg);
                if self.at_punct(':') && self.peek(1).is_some_and(|t| t.is_punct(':')) {
                    self.bump();
                    self.bump();
                    continue;
                }
                self.out.uses.push(UseDecl { path: prefix.clone(), line });
                break;
            }
            if self.at_punct('{') {
                self.bump();
                while self.i < self.toks.len() && !self.at_punct('}') {
                    let mut sub = prefix.clone();
                    self.use_tree(&mut sub, line);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.eat_punct('}');
                break;
            }
            if self.at_punct('*') {
                self.bump();
                prefix.push("*".to_owned());
                self.out.uses.push(UseDecl { path: prefix.clone(), line });
                break;
            }
            break;
        }
        prefix.truncate(depth_in);
    }

    /// After the `static` keyword: records the static's name, mutability
    /// and type, skipping the initializer.
    fn parse_static(&mut self, in_test: bool) {
        let is_mut = if self.cur_ident() == Some("mut") {
            self.bump();
            true
        } else {
            false
        };
        let Some((name, line, _)) = self.eat_ident() else { return };
        if !self.eat_punct(':') {
            self.skip_to_semi();
            return;
        }
        let ty = self.collect_type(&['=', ';']);
        self.skip_to_semi();
        self.out.statics.push(StaticDef { name, line, is_mut, ty, in_test });
    }

    /// After the `type` keyword: records `type Name = ...;` aliases;
    /// associated types without a definition are skipped.
    fn parse_alias(&mut self, in_test: bool) {
        let Some((name, _, _)) = self.eat_ident() else { return };
        if self.at_punct('<') {
            self.skip_generics();
        }
        // `type X: Bound;` (associated type declaration) has no alias.
        if !self.eat_punct('=') {
            self.skip_to_semi();
            return;
        }
        let ty = self.collect_type(&[';']);
        self.skip_to_semi();
        self.out.aliases.push(AliasDef { name, ty, in_test });
    }
}

/// Merges `src` into `dst` (used for enum-variant payloads).
fn merge_type(dst: &mut TypeExpr, src: TypeExpr) {
    if dst.is_empty() {
        *dst = src;
        return;
    }
    dst.text.push_str(", ");
    dst.text.push_str(&src.text);
    dst.idents.extend(src.idents);
    dst.has_ref |= src.has_ref;
    dst.has_raw_ptr |= src.has_raw_ptr;
    dst.dyn_traits.extend(src.dyn_traits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn named_struct_fields_with_generics() {
        let p = parse_src(
            "pub struct Sm { pub id: usize, warps: Vec<Warp>, waiters: HashMap<LineAddr, Vec<(usize, Cycles)>> }",
        );
        let s = &p.structs[0];
        assert_eq!(s.name, "Sm");
        assert!(!s.is_enum);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["id", "warps", "waiters"]);
        assert!(s.fields[1].ty.idents.contains(&"Warp".to_owned()));
        assert!(s.fields[2].ty.idents.contains(&"HashMap".to_owned()));
        assert!(s.fields[2].ty.idents.contains(&"Cycles".to_owned()));
    }

    #[test]
    fn tuple_struct_and_refs_and_dyn() {
        let p = parse_src("pub struct TraceSink(Arc<dyn Fn(&str) + Send + Sync>);");
        let s = &p.structs[0];
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.fields[0].name, "0");
        let ty = &s.fields[0].ty;
        assert!(ty.idents.contains(&"Arc".to_owned()));
        assert!(ty.idents.contains(&"Send".to_owned()));
        assert_eq!(ty.dyn_traits, ["Fn"]);
        assert!(ty.has_ref, "&str inside the Fn signature");
    }

    #[test]
    fn struct_with_lifetime_refs_and_mut() {
        let p = parse_src(
            "pub struct MemCtx<'a> { pub l2: &'a mut SimpleCache, pub policy: &'a mut dyn L1CompressionPolicy, pub shadow_every: u64 }",
        );
        let s = &p.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert!(s.fields[0].ty.has_ref);
        assert!(s.fields[1].ty.has_ref);
        assert_eq!(s.fields[1].ty.dyn_traits, ["L1CompressionPolicy"]);
        assert!(!s.fields[2].ty.has_ref);
    }

    #[test]
    fn raw_pointers_are_flagged() {
        let p = parse_src("struct P { a: *mut u8, b: *const Gpu }");
        assert!(p.structs[0].fields[0].ty.has_raw_ptr);
        assert!(p.structs[0].fields[1].ty.has_raw_ptr);
    }

    #[test]
    fn enum_variant_payloads_merge() {
        let p = parse_src(
            "enum Op { Load(LineAddr), Fill { line: CacheLine, at: Cycles }, Nop, Prio = 3 }",
        );
        let e = &p.structs[0];
        assert!(e.is_enum);
        let names: Vec<&str> = e.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["Load", "Fill", "Nop", "Prio"]);
        assert!(e.fields[0].ty.idents.contains(&"LineAddr".to_owned()));
        assert!(e.fields[1].ty.idents.contains(&"CacheLine".to_owned()));
        assert!(e.fields[1].ty.idents.contains(&"Cycles".to_owned()));
        assert!(e.fields[2].ty.is_empty());
        assert!(e.fields[3].ty.is_empty(), "discriminant is not a payload");
    }

    #[test]
    fn traits_record_supertraits_and_methods() {
        let p = parse_src(
            "pub trait Kernel: Send + Sync { fn next(&mut self) -> Option<Op>; fn len(&self) -> usize { self.total() } }",
        );
        assert_eq!(p.traits[0].name, "Kernel");
        assert_eq!(p.traits[0].supertraits, ["Send", "Sync"]);
        let fns: Vec<(&str, bool)> = p.fns.iter().map(|f| (f.name.as_str(), f.has_body)).collect();
        assert_eq!(fns, [("next", false), ("len", true)]);
        assert_eq!(p.fns[1].owner.as_deref(), Some("Kernel"));
        let callees: Vec<&Callee> = p.fns[1].calls.iter().map(|c| &c.callee).collect();
        assert_eq!(callees, [&Callee::SelfMethod("total".to_owned())]);
    }

    #[test]
    fn supertraits_with_paths() {
        let p = parse_src("trait Check: std::marker::Send {}");
        assert_eq!(p.traits[0].supertraits, ["Send"]);
    }

    #[test]
    fn impl_blocks_attribute_methods_to_the_self_type() {
        let p = parse_src(
            "impl latte_compress::Compressor for Fpc { fn probe(&self, w: &[u32]) -> u32 { helper(w) } }\n\
             impl<T: Clone> Holder<T> { fn get(&self) -> T { self.value.clone() } }",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("Fpc"));
        assert_eq!(p.fns[0].calls[0].callee, Callee::Free("helper".to_owned()));
        assert_eq!(p.fns[1].owner.as_deref(), Some("Holder"));
        assert_eq!(
            p.fns[1].calls[0].callee,
            Callee::FieldMethod { field: "value".to_owned(), method: "clone".to_owned() }
        );
    }

    #[test]
    fn call_classification_covers_all_shapes() {
        let src = "
fn f(&mut self) {
    self.tick();
    self.l1.lookup(addr);
    Mshr::validate(x);
    std::time::Instant::now();
    helper(1);
    other.thing(2);
    outln!(\"{} {}\", a, b.len());
}
";
        let p = parse_src(src);
        let calls: Vec<&Callee> = p.fns[0].calls.iter().map(|c| &c.callee).collect();
        assert!(calls.contains(&&Callee::SelfMethod("tick".to_owned())));
        assert!(calls.contains(&&Callee::FieldMethod { field: "l1".to_owned(), method: "lookup".to_owned() }));
        assert!(calls.contains(&&Callee::Path(vec!["Mshr".to_owned(), "validate".to_owned()])));
        assert!(calls.contains(&&Callee::Path(vec![
            "std".to_owned(),
            "time".to_owned(),
            "Instant".to_owned(),
            "now".to_owned()
        ])));
        assert!(calls.contains(&&Callee::Free("helper".to_owned())));
        assert!(calls.contains(&&Callee::OtherMethod("thing".to_owned())));
        assert!(calls.contains(&&Callee::Macro("outln".to_owned())));
        // Calls inside macro arguments are still seen.
        assert!(calls.contains(&&Callee::OtherMethod("len".to_owned())));
    }

    #[test]
    fn raw_field_iteration_is_recorded() {
        let src = "
impl Sm {
    fn drain(&mut self) {
        for (addr, list) in &self.waiters { use_it(addr, list); }
        for w in &mut self.warps { w.step(); }
        for v in self.blocks.iter() { v.len(); }
    }
}
";
        let p = parse_src(src);
        let iters: Vec<&str> = p.fns[0].field_iters.iter().map(|(f, _)| f.as_str()).collect();
        // `self.blocks.iter()` is a FieldMethod call, not a raw iteration.
        assert_eq!(iters, ["waiters", "warps"]);
        assert!(p.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::FieldMethod { field: "blocks".to_owned(), method: "iter".to_owned() }));
    }

    #[test]
    fn nested_modules_and_cfg_test_marking() {
        let src = "
mod inner {
    pub struct A { x: u32 }
    #[cfg(test)]
    mod tests {
        struct Fixture { y: u32 }
        #[test]
        fn t() { helper(); }
    }
}
#[cfg(test)]
struct OnlyInTests { z: u32 }
struct AfterTests { w: u32 }
";
        let p = parse_src(src);
        let find = |n: &str| p.structs.iter().find(|s| s.name == n).map(|s| (s.in_test, s.module.clone()));
        assert_eq!(find("A"), Some((false, vec!["inner".to_owned()])));
        assert_eq!(find("Fixture"), Some((true, vec!["inner".to_owned(), "tests".to_owned()])));
        assert_eq!(find("OnlyInTests"), Some((true, vec![])));
        assert_eq!(find("AfterTests"), Some((false, vec![])), "cfg(test) must not leak");
        let t = p.fns.iter().find(|f| f.name == "t");
        assert!(t.is_some_and(|f| f.in_test));
    }

    #[test]
    fn statics_module_level_and_fn_local() {
        let src = "
static CLOCK: OnceLock<fn() -> u64> = OnceLock::new();
static mut SCRATCH: u64 = 0;
fn f() {
    static BASELINE: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    touch(BASELINE);
}
";
        let p = parse_src(src);
        let names: Vec<(&str, bool)> = p.statics.iter().map(|s| (s.name.as_str(), s.is_mut)).collect();
        assert_eq!(names, [("CLOCK", false), ("SCRATCH", true), ("BASELINE", false)]);
        assert!(p.statics[0].ty.idents.contains(&"OnceLock".to_owned()));
        assert!(p.statics[2].ty.idents.contains(&"Instant".to_owned()));
    }

    #[test]
    fn use_groups_expand_to_leaves() {
        let src = "use latte_cache::{mshr::Mshr, compressed::{CompressedCache, Set}};\nuse std::collections::HashMap as Map;\n";
        let p = parse_src(src);
        let paths: Vec<String> = p.uses.iter().map(|u| u.path.join("::")).collect();
        assert!(paths.contains(&"latte_cache::mshr::Mshr".to_owned()), "{paths:?}");
        assert!(paths.contains(&"latte_cache::compressed::CompressedCache".to_owned()), "{paths:?}");
        assert!(paths.contains(&"latte_cache::compressed::Set".to_owned()), "{paths:?}");
        assert!(paths.contains(&"std::collections::HashMap".to_owned()), "{paths:?}");
    }

    #[test]
    fn type_aliases_resolve() {
        let p = parse_src("pub type LineAddr = u64;\npub type SharedSink = Arc<dyn Fn(u32)>;\n");
        assert_eq!(p.aliases.len(), 2);
        assert_eq!(p.aliases[0].name, "LineAddr");
        assert!(p.aliases[1].ty.idents.contains(&"Arc".to_owned()));
        assert_eq!(p.aliases[1].ty.dyn_traits, ["Fn"]);
    }

    #[test]
    fn fn_pointer_return_types_do_not_break_generics() {
        // The `->` inside the generics of `new` must not close the angle
        // scope early (regression shape from gpusim::Gpu::new).
        let src = "
impl Gpu {
    pub fn new<F: Fn(usize) -> Box<dyn L1CompressionPolicy>>(config: GpuConfig, make: F) -> Self {
        build(config, make)
    }
}
struct After { ok: u32 }
";
        let p = parse_src(src);
        assert_eq!(p.fns[0].name, "new");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Gpu"));
        assert!(p.structs.iter().any(|s| s.name == "After"), "parser must resync after generics");
    }

    #[test]
    fn bodyless_and_const_fns() {
        let src = "pub const fn geometry() -> u32 { helper() }\nextern \"C\" { fn ffi_thing(); }\n";
        let p = parse_src(src);
        assert!(p.fns.iter().any(|f| f.name == "geometry" && f.has_body));
    }
}
