//! A minimal Rust lexer for `latte-lint`.
//!
//! It does *not* parse Rust; it produces just enough structure for the
//! lint rules: identifier and punctuation tokens with `line:col`
//! positions, with line/block comments, string/char/byte literals, raw
//! strings (any `#` depth) and lifetimes correctly skipped so that, e.g.,
//! `"println!"` inside a string or a doc comment never triggers a rule.
//! Line comments are additionally inspected for `// latte-lint:
//! allow(...)` suppression markers.

/// What a token is. Only identifiers and single-character punctuation
/// survive lexing; literals, comments and whitespace are consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`println`, `fn`, `HashMap`, ...).
    Ident(String),
    /// One character of punctuation (`!`, `.`, `(`, `{`, `#`, ...).
    Punct(char),
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

impl Tok {
    /// The identifier text, or `None` for punctuation.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            TokKind::Punct(_) => None,
        }
    }

    /// `true` if this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct(ch)
    }
}

/// A parsed `// latte-lint: allow(RULE, reason = "...")` marker.
///
/// `allow` suppresses `RULE` on the marker's own line and the line
/// directly below it; `allow-file` suppresses `RULE` for the whole file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowMarker {
    /// Line the marker comment starts on.
    pub line: u32,
    /// Rule name being allowed (e.g. `"D3"`).
    pub rule: String,
    /// The (nonempty) justification string.
    pub reason: String,
    /// `true` for `allow-file` (whole-file scope).
    pub file_scope: bool,
}

/// A parsed `// latte-lint: shared-boundary(reason = "...")` marker.
///
/// Boundary markers are how rule `S1` lets per-SM state reference shared
/// `Gpu`-level state: the field holding the shared handle (an `Arc`, a
/// `&mut` borrow of the L2, a channel end, ...) must carry one, and the
/// reason must say why the crossing is safe under SM-parallel execution.
/// `shared-boundary` covers the marker's line and the line below it;
/// `shared-boundary-file` covers every field and static in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryMarker {
    /// Line the marker comment starts on.
    pub line: u32,
    /// The (nonempty) justification string.
    pub reason: String,
    /// `true` for `shared-boundary-file` (whole-file scope).
    pub file_scope: bool,
}

/// A malformed allow marker (missing reason, bad syntax). These become
/// `A0` violations: a suppression without a justification is itself an
/// error, and a broken marker must not silently suppress anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerError {
    /// Line the marker comment starts on.
    pub line: u32,
    /// Human-readable description of what is wrong.
    pub message: String,
}

/// Everything lexing a file produces.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Well-formed suppression markers.
    pub markers: Vec<AllowMarker>,
    /// Well-formed shared-boundary annotations (rule `S1`).
    pub boundaries: Vec<BoundaryMarker>,
    /// Malformed suppression markers.
    pub marker_errors: Vec<MarkerError>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens and suppression markers.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> LexOutput {
    let b = src.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances past one byte, maintaining the position counters.
    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            // Whitespace (and any stray non-ASCII byte outside literals).
            _ if c.is_ascii_whitespace() || !c.is_ascii() => bump!(),

            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment: collect the text, check for a marker.
                // Doc comments (`///`, `//!`) are documentation, not
                // directives: marker syntax quoted in them stays inert.
                let is_doc = matches!(b.get(i + 2), Some(&b'/' | &b'!'));
                let start_line = line;
                let text_start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    bump!();
                }
                if !is_doc {
                    let text = src.get(text_start..i).unwrap_or_default();
                    parse_marker(text, start_line, &mut out);
                }
            }

            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nested.
                bump!();
                bump!();
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
            }

            b'"' => {
                // Ordinary string literal.
                bump!();
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        bump!();
                        bump!();
                    } else if b[i] == b'"' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
            }

            b'\'' => {
                // Char literal or lifetime.
                if let Some(&n) = b.get(i + 1) {
                    if n == b'\\' {
                        // Escaped char literal: skip to the closing quote.
                        bump!(); // '
                        bump!(); // backslash
                        if i < b.len() {
                            bump!(); // escaped char
                        }
                        while i < b.len() && b[i] != b'\'' {
                            bump!();
                        }
                        if i < b.len() {
                            bump!(); // closing '
                        }
                    } else if is_ident_start(n) && b.get(i + 2) != Some(&b'\'') {
                        // Lifetime: consume the quote and the name without
                        // emitting an identifier token.
                        bump!();
                        while i < b.len() && is_ident_continue(b[i]) {
                            bump!();
                        }
                    } else {
                        // Plain char literal: 'a', '(', ...
                        bump!(); // '
                        if i < b.len() {
                            bump!(); // the char
                        }
                        if i < b.len() && b[i] == b'\'' {
                            bump!(); // closing '
                        }
                    }
                } else {
                    bump!();
                }
            }

            b'0'..=b'9' => {
                // Numeric literal (incl. hex/suffixes, and `1.5` but not
                // the range in `0..3`).
                bump!();
                while i < b.len()
                    && (is_ident_continue(b[i])
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    bump!();
                }
            }

            _ if is_ident_start(c) => {
                // Raw strings / byte strings / raw identifiers first.
                if (c == b'r' || c == b'b') && skip_raw_or_byte_literal(b, &mut i, &mut line, &mut col) {
                    continue;
                }
                let (tok_line, tok_col) = (line, col);
                let start = i;
                // A raw identifier `r#name` reaches here with `i` at `r`.
                if c == b'r' && b.get(i + 1) == Some(&b'#') && b.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    bump!();
                    bump!();
                }
                let name_start = if i == start { start } else { i };
                while i < b.len() && is_ident_continue(b[i]) {
                    bump!();
                }
                let name = src.get(name_start..i).unwrap_or_default().to_owned();
                out.tokens.push(Tok {
                    kind: TokKind::Ident(name),
                    line: tok_line,
                    col: tok_col,
                });
            }

            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    line,
                    col,
                });
                bump!();
            }
        }
    }
    out
}

/// If `b[*i]` starts a raw string (`r"`, `r#"`), byte string (`b"`),
/// byte char (`b'`), or raw byte string (`br#"`), consumes it and
/// returns `true`. Otherwise leaves the position untouched.
fn skip_raw_or_byte_literal(b: &[u8], i: &mut usize, line: &mut u32, col: &mut u32) -> bool {
    let start = *i;
    let mut j = *i;
    let c = b[j];
    if c == b'b' {
        match b.get(j + 1) {
            Some(&b'\'') => {
                // Byte char b'x' / b'\n': skip to closing quote.
                j += 2;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                advance_to(b, i, j, line, col);
                return true;
            }
            Some(&b'"') => {
                j += 1; // now at the quote; fall through to plain-string scan
                let end = scan_plain_string(b, j);
                advance_to(b, i, end, line, col);
                return true;
            }
            Some(&b'r') => {
                j += 1; // `br...`: raw-string scan below
            }
            _ => return false,
        }
    }
    // Here b[j] is `r` (from `r...` or `br...`).
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        // `r#ident` or a plain identifier starting with r/b.
        *i = start;
        return false;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                j += 1 + hashes;
                break;
            }
        }
        j += 1;
    }
    advance_to(b, i, j, line, col);
    true
}

/// Returns the index just past the closing quote of a plain string whose
/// opening quote is at `j`.
fn scan_plain_string(b: &[u8], mut j: usize) -> usize {
    j += 1;
    while j < b.len() {
        if b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'"' {
            return j + 1;
        } else {
            j += 1;
        }
    }
    j
}

/// Moves `*i` to `target`, updating line/col counters over the skipped
/// bytes.
fn advance_to(b: &[u8], i: &mut usize, target: usize, line: &mut u32, col: &mut u32) {
    while *i < target && *i < b.len() {
        if b[*i] == b'\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    }
}

/// Parses one line-comment body for a `latte-lint:` marker.
///
/// Grammar: `latte-lint: allow(RULE, reason = "...")`,
/// `latte-lint: allow-file(RULE, reason = "...")`,
/// `latte-lint: shared-boundary(reason = "...")` or
/// `latte-lint: shared-boundary-file(reason = "...")`. The reason is
/// mandatory and must be nonempty: a suppression or boundary annotation
/// is a claim about the code (e.g. "this map is never iterated") and the
/// claim must be stated.
fn parse_marker(comment_text: &str, line: u32, out: &mut LexOutput) {
    let text = comment_text.trim();
    let Some(rest) = text.strip_prefix("latte-lint:") else {
        return;
    };
    let rest = rest.trim();
    if let Some(r) = rest.strip_prefix("shared-boundary-file") {
        parse_boundary(r, line, true, out);
        return;
    }
    if let Some(r) = rest.strip_prefix("shared-boundary") {
        parse_boundary(r, line, false, out);
        return;
    }
    let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        out.marker_errors.push(MarkerError {
            line,
            message: format!(
                "unknown latte-lint directive: `{rest}` (expected `allow(...)`, `allow-file(...)`, \
                 `shared-boundary(...)` or `shared-boundary-file(...)`)"
            ),
        });
        return;
    };
    let rest = rest.trim();
    let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
        out.marker_errors.push(MarkerError {
            line,
            message: "malformed allow marker: expected `(RULE, reason = \"...\")`".to_owned(),
        });
        return;
    };
    let (rule_part, reason_part) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (inner.trim(), None),
    };
    if rule_part.is_empty() {
        out.marker_errors.push(MarkerError {
            line,
            message: "allow marker names no rule".to_owned(),
        });
        return;
    }
    let Some(reason_part) = reason_part else {
        out.marker_errors.push(MarkerError {
            line,
            message: format!("allow({rule_part}) carries no reason; suppressions must justify themselves"),
        });
        return;
    };
    match parse_reason(reason_part) {
        Ok(reason) => out.markers.push(AllowMarker {
            line,
            rule: rule_part.to_owned(),
            reason,
            file_scope,
        }),
        Err(what) => out.marker_errors.push(MarkerError {
            line,
            message: format!("allow({rule_part}): {what}"),
        }),
    }
}

/// Parses the tail of a `shared-boundary(...)` / `shared-boundary-file(...)`
/// directive: `(reason = "...")` with a mandatory nonempty reason.
fn parse_boundary(rest: &str, line: u32, file_scope: bool, out: &mut LexOutput) {
    let kind = if file_scope { "shared-boundary-file" } else { "shared-boundary" };
    let Some(inner) = rest.trim().strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
        out.marker_errors.push(MarkerError {
            line,
            message: format!("malformed {kind} marker: expected `(reason = \"...\")`"),
        });
        return;
    };
    match parse_reason(inner.trim()) {
        Ok(reason) => out.boundaries.push(BoundaryMarker { line, reason, file_scope }),
        Err(what) => out.marker_errors.push(MarkerError {
            line,
            message: format!("{kind}: {what}"),
        }),
    }
}

/// Parses `reason = "..."` into the reason string; the reason must be
/// nonempty.
fn parse_reason(text: &str) -> Result<String, String> {
    let Some(reason) = text
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
    else {
        return Err("malformed reason; expected `reason = \"...\"`".to_owned());
    };
    if reason.trim().is_empty() {
        return Err("empty reason; markers must justify themselves".to_owned());
    }
    Ok(reason.trim().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                TokKind::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn skips_line_and_doc_comments() {
        let src = "// println! here\n/// and panic! here\n//! and unwrap() here\nfn ok() {}\n";
        assert_eq!(idents(src), ["fn", "ok"]);
    }

    #[test]
    fn skips_nested_block_comments() {
        let src = "/* outer /* inner panic! */ still comment println! */ fn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
    }

    #[test]
    fn skips_string_contents_and_escapes() {
        let src = r#"let s = "println!(\"panic!\")"; let t = s;"#;
        assert_eq!(idents(src), ["let", "s", "let", "t", "s"]);
    }

    #[test]
    fn skips_raw_strings_with_hashes() {
        let src = r####"let s = r#"contains "quotes" and println!("x")"#; f(s);"####;
        assert_eq!(idents(src), ["let", "s", "f", "s"]);
    }

    #[test]
    fn skips_byte_and_raw_byte_strings() {
        let src = r####"let a = b"unwrap()"; let c = br#"expect("x")"#; let d = b'\'';"####;
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A lifetime must not swallow following code as a "char literal".
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_owned()));
        assert!(ids.contains(&"x".to_owned()));
        // And char literals still work, including the escaped quote.
        let src2 = "let c = 'x'; let q = '\\''; let n = '\\n'; done();";
        assert!(idents(src2).contains(&"done".to_owned()));
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        let src = "let r#fn = 1; use r#type;";
        let ids = idents(src);
        assert!(ids.contains(&"fn".to_owned()));
        assert!(ids.contains(&"type".to_owned()));
    }

    #[test]
    fn positions_are_one_based() {
        let src = "fn main() {\n    foo();\n}\n";
        let toks = lex(src).tokens;
        let foo = toks
            .iter()
            .find(|t| t.ident() == Some("foo"))
            .map(|t| (t.line, t.col));
        assert_eq!(foo, Some((2, 5)));
    }

    #[test]
    fn parses_allow_marker_with_reason() {
        let src = "// latte-lint: allow(D3, reason = \"never iterated\")\nlet x = 1;\n";
        let out = lex(src);
        assert_eq!(out.marker_errors, []);
        assert_eq!(
            out.markers,
            [AllowMarker {
                line: 1,
                rule: "D3".to_owned(),
                reason: "never iterated".to_owned(),
                file_scope: false,
            }]
        );
    }

    #[test]
    fn parses_file_scope_marker() {
        let src = "// latte-lint: allow-file(D3, reason = \"keyed access only\")\n";
        let out = lex(src);
        assert_eq!(out.markers.len(), 1);
        assert!(out.markers[0].file_scope);
    }

    #[test]
    fn marker_without_reason_is_an_error_and_does_not_suppress() {
        for src in [
            "// latte-lint: allow(D3)\n",
            "// latte-lint: allow(D3, reason = \"\")\n",
            "// latte-lint: allow(D3, reason = \"  \")\n",
            "// latte-lint: allow(D3, because = \"x\")\n",
            "// latte-lint: permit(D3, reason = \"x\")\n",
        ] {
            let out = lex(src);
            assert_eq!(out.markers, [], "should not parse: {src}");
            assert_eq!(out.marker_errors.len(), 1, "should error: {src}");
        }
    }

    #[test]
    fn ordinary_comments_are_not_markers() {
        let out = lex("// just a note about latte-lint rules\n");
        assert_eq!(out.markers, []);
        assert_eq!(out.marker_errors, []);
    }

    #[test]
    fn doc_comments_never_parse_as_markers() {
        // Marker syntax *quoted in documentation* must stay inert; only a
        // plain `//` comment is a directive.
        let src = "\
/// latte-lint: allow(D3, reason = \"doc example\")
//! latte-lint: allow-file(D1, reason = \"doc example\")
/// latte-lint: shared-boundary(reason = \"doc example\")
fn f() {}
";
        let out = lex(src);
        assert_eq!(out.markers, []);
        assert_eq!(out.boundaries, []);
        assert_eq!(out.marker_errors, []);
    }

    #[test]
    fn parses_shared_boundary_markers() {
        let src = "\
// latte-lint: shared-boundary(reason = \"L2 access is epoch-ordered\")
// latte-lint: shared-boundary-file(reason = \"whole file holds shared handles\")
";
        let out = lex(src);
        assert_eq!(out.marker_errors, []);
        assert_eq!(
            out.boundaries,
            [
                BoundaryMarker {
                    line: 1,
                    reason: "L2 access is epoch-ordered".to_owned(),
                    file_scope: false,
                },
                BoundaryMarker {
                    line: 2,
                    reason: "whole file holds shared handles".to_owned(),
                    file_scope: true,
                },
            ]
        );
    }

    #[test]
    fn boundary_marker_without_reason_is_an_error() {
        for src in [
            "// latte-lint: shared-boundary\n",
            "// latte-lint: shared-boundary()\n",
            "// latte-lint: shared-boundary(reason = \"\")\n",
            "// latte-lint: shared-boundary-file(because = \"x\")\n",
        ] {
            let out = lex(src);
            assert_eq!(out.boundaries, [], "should not parse: {src}");
            assert_eq!(out.marker_errors.len(), 1, "should error: {src}");
        }
    }

    #[test]
    fn numeric_literals_and_ranges() {
        // `0..3` must not eat the dots; hex and suffixes lex as one unit.
        let src = "for i in 0..3 { let x = 0xFFu64 + 1.5e3; use_it(x, i); }";
        assert!(idents(src).contains(&"use_it".to_owned()));
    }
}
