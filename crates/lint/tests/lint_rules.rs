//! Fixture-driven rule tests plus end-to-end runs of the `latte-lint`
//! binary, and the self-test that keeps the workspace itself clean.
//!
//! Fixtures live in `tests/fixtures/` (a directory cargo does not
//! compile and the scanner skips); each is lexed and checked as if it
//! were library code of a simulation crate.

use latte_lint::{scan_source, Analysis, Class, Violation};
use std::fs;
use std::path::Path;
use std::process::Command;

/// Scans fixture source as if it were sim-crate library code and
/// returns the distinct rule ids that fired.
fn rules_fired(src: &str) -> Vec<&'static str> {
    let violations = scan_source("crates/gpusim/src/fixture.rs", src);
    let mut ids: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn assert_clean(name: &str, src: &str) {
    let violations = scan_source("crates/gpusim/src/fixture.rs", src);
    assert!(
        violations.is_empty(),
        "{name} should be clean, got: {violations:?}"
    );
}

#[test]
fn d1_wall_clock_in_sim_lib_fires() {
    let fired = rules_fired(include_str!("fixtures/d1_fail.rs"));
    assert_eq!(fired, ["D1"]);
}

#[test]
fn d1_simulated_time_and_test_code_pass() {
    assert_clean("d1_pass", include_str!("fixtures/d1_pass.rs"));
}

#[test]
fn d2_ambient_randomness_fires() {
    let fired = rules_fired(include_str!("fixtures/d2_fail.rs"));
    assert_eq!(fired, ["D2"]);
}

#[test]
fn d2_seeded_prng_passes() {
    assert_clean("d2_pass", include_str!("fixtures/d2_pass.rs"));
}

#[test]
fn d2_fires_even_in_test_code() {
    // D2 has no test exemption: a seeded stream is required everywhere.
    let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); }\n}\n";
    let fired = rules_fired(src);
    assert_eq!(fired, ["D2"]);
}

#[test]
fn d3_unannotated_hash_container_fires() {
    let fired = rules_fired(include_str!("fixtures/d3_fail.rs"));
    assert_eq!(fired, ["D3"]);
}

#[test]
fn d3_annotated_hash_container_passes() {
    assert_clean("d3_pass", include_str!("fixtures/d3_pass.rs"));
}

#[test]
fn d3_does_not_apply_outside_sim_crates() {
    let src = include_str!("fixtures/d3_fail.rs");
    let violations = scan_source("crates/bench/src/runner.rs", src);
    assert!(violations.is_empty(), "driver crates may use HashMap freely");
}

#[test]
fn d4_raw_print_in_sim_lib_fires() {
    let fired = rules_fired(include_str!("fixtures/d4_fail.rs"));
    assert_eq!(fired, ["D4"]);
}

#[test]
fn d4_sink_based_output_passes() {
    assert_clean("d4_pass", include_str!("fixtures/d4_pass.rs"));
}

#[test]
fn d4_does_not_apply_to_binaries() {
    let src = include_str!("fixtures/d4_fail.rs");
    let violations = scan_source("crates/bench/src/main.rs", src);
    assert!(violations.is_empty(), "binaries own stdout; D4 is lib-only");
}

#[test]
fn p1_panicking_library_code_fires() {
    let fired = rules_fired(include_str!("fixtures/p1_fail.rs"));
    assert_eq!(fired, ["P1"]);
    // All three constructs (unwrap, panic!, todo!) are reported.
    let violations = scan_source(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/p1_fail.rs"),
    );
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn p1_fallible_code_and_test_unwraps_pass() {
    assert_clean("p1_pass", include_str!("fixtures/p1_pass.rs"));
}

#[test]
fn f1_non_atomic_writes_in_store_code_fire() {
    let violations = scan_source(
        "crates/store/src/fixture.rs",
        include_str!("fixtures/f1_fail.rs"),
    );
    let f1 = violations.iter().filter(|v| v.rule == "F1").count();
    // fs::write, File::create, and fs::OpenOptions::new each fire once.
    assert_eq!(f1, 3, "{violations:?}");
}

#[test]
fn f1_temp_rename_and_reads_and_tests_pass() {
    let violations = scan_source(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/f1_pass.rs"),
    );
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn f1_does_not_apply_outside_bench_and_store() {
    let violations = scan_source(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/f1_fail.rs"),
    );
    assert!(
        violations.iter().all(|v| v.rule != "F1"),
        "sim crates never write files; F1 is scoped to bench/store: {violations:?}"
    );
}

#[test]
fn f1_does_not_apply_to_test_targets() {
    let violations = scan_source(
        "crates/store/tests/fixture.rs",
        include_str!("fixtures/f1_fail.rs"),
    );
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn a0_markers_without_reasons_fire_and_do_not_suppress() {
    let violations = scan_source(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/a0_fail.rs"),
    );
    let a0 = violations.iter().filter(|v| v.rule == "A0").count();
    assert_eq!(a0, 2, "both bad markers are A0 violations: {violations:?}");
    // The malformed markers must not silence the sites they annotate.
    assert!(violations.iter().any(|v| v.rule == "D3"), "{violations:?}");
    assert!(violations.iter().any(|v| v.rule == "D4"), "{violations:?}");
}

#[test]
fn s1_unpartitionable_state_fires() {
    let src = include_str!("fixtures/s1_fail.rs");
    let fired = rules_fired(src);
    assert_eq!(fired, ["S1"]);
    let violations = scan_source("crates/gpusim/src/fixture.rs", src);
    // Rc/RefCell, raw pointer, unannotated Arc, non-Send dyn, static mut.
    assert_eq!(violations.len(), 5, "{violations:?}");
    let msgs: String = violations.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.contains("non-Send shared-mutability type `Rc`"), "{msgs}");
    assert!(msgs.contains("raw pointer"), "{msgs}");
    assert!(msgs.contains("shared handle (`Arc`)"), "{msgs}");
    assert!(msgs.contains("`dyn Hooks` has no Send bound"), "{msgs}");
    assert!(msgs.contains("`static mut`"), "{msgs}");
}

#[test]
fn s1_partitionable_state_passes() {
    assert_clean("s1_pass", include_str!("fixtures/s1_pass.rs"));
}

#[test]
fn s1_partition_report_classifies_fields() {
    let analysis = Analysis::new(vec![(
        "crates/gpusim/src/fixture.rs".to_owned(),
        include_str!("fixtures/s1_pass.rs").to_owned(),
    )])
    .run();
    let p = &analysis.partition;
    assert_eq!(p.roots, ["Sm"]);
    assert!(p.is_clean());
    let class_of = |owner: &str, field: &str| {
        p.fields
            .iter()
            .find(|e| e.owner == owner && e.field == field)
            .map(|e| e.class)
    };
    assert_eq!(class_of("Sm", "warps"), Some(Class::PerSm));
    assert_eq!(class_of("Warp", "pc"), Some(Class::PerSm), "closure descends into Warp");
    assert_eq!(class_of("Sm", "shared_cycles"), Some(Class::Shared));
    let annotated = p
        .fields
        .iter()
        .find(|e| e.field == "shared_cycles")
        .unwrap();
    assert!(annotated.reason.as_deref().unwrap_or("").contains("commutative atomic adds"));
}

#[test]
fn t1_taint_fires_on_iteration_and_tainted_calls() {
    let src = include_str!("fixtures/t1_fail.rs");
    let fired = rules_fired(src);
    assert_eq!(fired, ["T1"]);
    let violations = scan_source("crates/gpusim/src/fixture.rs", src);
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(
        violations.iter().any(|v| v.message.contains("hash-container iteration")),
        "{violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("nondeterministic function")
                && v.message.contains("wall-clock")),
        "{violations:?}"
    );
}

#[test]
fn t1_barriers_suppress_and_stop_propagation() {
    assert_clean("t1_pass", include_str!("fixtures/t1_pass.rs"));
}

#[test]
fn a1_stale_markers_fire() {
    let src = include_str!("fixtures/a1_fail.rs");
    let fired = rules_fired(src);
    assert_eq!(fired, ["A1"]);
    let violations = scan_source("crates/gpusim/src/fixture.rs", src);
    // Stale allow(D3), stale shared-boundary, stale allow(P1).
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn a1_used_markers_pass() {
    assert_clean("a1_pass", include_str!("fixtures/a1_pass.rs"));
}

#[test]
fn violations_carry_precise_locations() {
    let violations = scan_source(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/d1_fail.rs"),
    );
    let v: &Violation = violations.first().unwrap();
    assert_eq!(v.path, "crates/gpusim/src/fixture.rs");
    // `use std::time::Instant;` is line 3 of the fixture.
    assert_eq!((v.line, v.col), (3, 16), "{v:?}");
    assert!(v.snippet.contains("Instant"));
}

// ---------------------------------------------------------------------------
// End-to-end: run the compiled binary against a synthetic workspace.
// ---------------------------------------------------------------------------

/// Builds `<tmp>/<name>/{Cargo.toml, crates/gpusim/src/lib.rs}` with the
/// given library source and returns the workspace root.
fn synth_workspace(name: &str, lib_src: &str) -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("crates/gpusim/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(src_dir.join("lib.rs"), lib_src).unwrap();
    root
}

fn run_lint(root: &Path, extra: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_latte-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .unwrap();
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn binary_reports_violations_with_exit_code_one() {
    let root = synth_workspace("lint_e2e_fail", include_str!("fixtures/d1_fail.rs"));
    let (code, stdout, _) = run_lint(&root, &[]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("crates/gpusim/src/lib.rs:3:16"), "{stdout}");
    assert!(stdout.contains("[D1]"), "{stdout}");

    let (code, stdout, _) = run_lint(&root, &["--format", "json"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"clean\":false"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"D1\""), "{stdout}");
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let root = synth_workspace("lint_e2e_pass", include_str!("fixtures/d1_pass.rs"));
    let (code, stdout, _) = run_lint(&root, &["--format", "json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"clean\":true"), "{stdout}");
}

#[test]
fn binary_writes_partition_report_and_flags_s1() {
    let root = synth_workspace("lint_e2e_s1", include_str!("fixtures/s1_fail.rs"));
    let (code, stdout, _) = run_lint(&root, &[]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[S1]"), "{stdout}");
    let partition = fs::read_to_string(root.join("results/lint_partition.json")).unwrap();
    assert!(partition.contains("\"clean\":false"), "{partition}");
    assert!(partition.contains("\"class\":\"violating\""), "{partition}");
}

#[test]
fn binary_explains_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_latte-lint"))
        .args(["--explain", "T1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("barrier"), "{stdout}");
    let out = Command::new(env!("CARGO_BIN_EXE_latte-lint"))
        .args(["--explain", "Z9"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_rejects_bad_usage_and_missing_root() {
    let (code, _, stderr) = run_lint(Path::new("/nonexistent-latte-root"), &[]);
    assert_eq!(code, Some(2), "{stderr}");
    let out = Command::new(env!("CARGO_BIN_EXE_latte-lint"))
        .arg("--format")
        .arg("yaml")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

// ---------------------------------------------------------------------------
// Self-test: the workspace this crate lives in must be clean.
// ---------------------------------------------------------------------------

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap();
    let report = latte_lint::scan_workspace(root).unwrap();
    assert!(report.files_scanned > 20, "walked {} files", report.files_scanned);
    for v in &report.violations {
        eprintln!("{}:{}:{}: [{}] {}", v.path, v.line, v.col, v.rule, v.message);
    }
    assert!(
        report.is_clean(),
        "workspace has {} lint violation(s); see stderr",
        report.violations.len()
    );
}

#[test]
fn workspace_partition_is_clean_and_sm_is_per_sm() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap();
    let analysis = latte_lint::analyze_workspace(root).unwrap();
    let p = &analysis.partition;
    assert_eq!(p.roots, ["Sm", "MemCtx", "Gpu"]);
    let (per_sm, shared, violating) = p.counts();
    assert_eq!(violating, 0, "unexplained partition violations: {:?}", {
        let mut bad: Vec<_> = p
            .fields
            .iter()
            .chain(&p.statics)
            .filter(|e| e.class == Class::Violating)
            .map(|e| format!("{}.{} ({})", e.owner, e.field, e.path))
            .collect();
        bad.sort();
        bad
    });
    assert!(per_sm > 100, "closure unexpectedly small: {per_sm} per-SM fields");
    assert!(shared >= 9, "expected the MemCtx/TraceSink/stats boundaries: {shared}");
    // The tentpole claim: everything Sm itself owns is per-SM movable.
    assert!(
        p.fields
            .iter()
            .filter(|e| e.owner == "Sm")
            .all(|e| e.class == Class::PerSm),
        "Sm's own fields must be exclusively owned"
    );
    // Every directly-annotated shared edge carries its justification.
    assert!(
        p.fields
            .iter()
            .chain(&p.statics)
            .filter(|e| e.class == Class::Shared && e.via.is_empty())
            .all(|e| e.reason.is_some()),
        "annotated shared edges must carry reasons"
    );
}
