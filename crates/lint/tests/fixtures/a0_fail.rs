//! A0 failing fixture: allow markers must carry a nonempty reason, and
//! a malformed marker must not suppress the violation it sits on.

// latte-lint: allow(D3)
use std::collections::HashMap;

// latte-lint: allow(D4, reason = "")
pub fn shout(map: &HashMap<u64, u32>) {
    println!("{}", map.len());
}
