//! D3 failing fixture: hash container in sim library code with no
//! order-independence marker.

use std::collections::HashMap;

pub struct Tracker {
    pub hits: HashMap<u64, u32>,
}
