//! S1 passing fixture: cleanly partitionable per-SM state. Owned data
//! everywhere, a Send-bounded trait object, and the one genuinely
//! shared handle behind an annotated boundary.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Send supertrait makes `Box<dyn Hooks>` movable to a worker.
pub trait Hooks: Send {
    fn on_tick(&mut self, cycle: u64);
}

pub struct Warp {
    pub pc: u64,
    pub active: bool,
}

pub struct Sm {
    pub id: usize,
    pub warps: Vec<Warp>,
    pub hooks: Box<dyn Hooks>,
    // latte-lint: shared-boundary(reason = "cross-SM cycle counter; updates are commutative atomic adds and only the driver reads it")
    pub shared_cycles: Arc<AtomicU64>,
}
