//! F1 fixture: every non-atomic file-write idiom the rule catches, as
//! it would appear in bench/store library code.

use std::fs;
use std::fs::File;

fn dump_results(path: &std::path::Path, body: &str) -> std::io::Result<()> {
    // Direct write to the final path: a crash here leaves a torn file.
    fs::write(path, body)?;
    Ok(())
}

fn open_final(path: &std::path::Path) -> std::io::Result<File> {
    File::create(path)
}

fn append_log(path: &std::path::Path) -> std::io::Result<File> {
    fs::OpenOptions::new().append(true).open(path)
}
