//! T1 passing fixture: hash iteration behind a justified barrier, and
//! the barrier stopping propagation — callers of the barriered function
//! are not re-flagged.

// latte-lint: allow-file(D3, reason = "keyed access plus one order-independent fold")
use std::collections::HashMap;

pub struct Sampler {
    counts: HashMap<u64, u64>,
}

impl Sampler {
    /// An order-independent fold over the container is deterministic.
    pub fn total(&self) -> u64 {
        // latte-lint: allow(T1, reason = "order-independent fold: a sum is the same under any iteration order")
        self.counts.values().sum()
    }

    /// Calling the barriered function does not taint this one.
    pub fn report(&self) -> u64 {
        self.total() + 1
    }
}
