//! A1 passing fixture: every marker earns its keep — each suppresses a
//! raw finding that would otherwise fire.

// latte-lint: allow(D3, reason = "keyed access only; never iterated")
use std::collections::HashMap;

pub struct Sm {
    // latte-lint: allow(D3, reason = "keyed access only; never iterated")
    pub table: HashMap<u64, u64>,
}
