//! T1 failing fixture: nondeterminism flowing where per-line rules
//! cannot see it. The hash container and the clock read each carry a
//! justified marker for their *declaration-site* rules (D3/D1) — T1
//! still catches the iteration site and the tainted call chain.

// latte-lint: allow-file(D3, reason = "fixture isolates T1; the container itself is keyed-justified")
use std::collections::HashMap;

pub struct Sampler {
    counts: HashMap<u64, u64>,
    last: u64,
}

impl Sampler {
    /// T1a: iteration order leaks straight into the returned value.
    pub fn first_key(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    fn now_ns() -> u64 {
        // latte-lint: allow(D1, reason = "fixture isolates T1: D1 is justified here but the taint must still reach callers")
        std::time::Instant::now().elapsed().as_nanos() as u64
    }

    /// T1b: calls a clock-tainted function from simulation code.
    pub fn stamp(&mut self) {
        self.last = Self::now_ns();
    }
}
