//! F1 fixture: writes that are fine — justified allow markers on a real
//! temp+rename implementation, read-only file APIs, and test code.

use std::fs;

fn write_atomically(dir: &std::path::Path, name: &str, body: &str) -> std::io::Result<()> {
    let path = dir.join(name);
    let tmp = dir.join(format!(".{name}.tmp"));
    // latte-lint: allow(F1, reason = "writes the temp name; the next line renames it over the final path")
    fs::write(&tmp, body)?;
    fs::rename(&tmp, &path)
}

fn read_back(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    // Reads are not writes; fs::read and friends never fire.
    fs::read(path)
}

#[cfg(test)]
mod tests {
    use std::fs;

    #[test]
    fn tests_may_write_scratch_files_directly() {
        let p = std::env::temp_dir().join("f1-fixture-scratch");
        fs::write(&p, b"scratch").unwrap();
        let _ = fs::remove_file(&p);
    }
}
