//! D1 passing fixture: simulated time only; `Instant` appears solely in
//! comments and string literals, which the lexer must skip.

/// Advances simulated time. Never reads Instant::now() — see D1.
pub fn tick(cycle: u64) -> u64 {
    let label = "Instant::now() inside a string is fine";
    let _ = label;
    cycle + 1
}

#[cfg(test)]
mod tests {
    // Wall-clock in test code is allowed by D1's scope.
    use std::time::Instant;

    #[test]
    fn timer_smoke() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
