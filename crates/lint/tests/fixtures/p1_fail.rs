//! P1 failing fixture: panicking constructs in library code.

pub fn lookup(table: &[u32], idx: usize) -> u32 {
    let v = table.get(idx).copied().unwrap();
    if v == 0 {
        panic!("zero entry");
    }
    v
}

pub fn later() {
    todo!("fill in")
}
