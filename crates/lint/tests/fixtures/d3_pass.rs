//! D3 passing fixture: hash containers annotated as order-independent.
//! Uses the file-scope marker, the idiom for a type that names the
//! container in several places (use, field, impl).

// latte-lint: allow-file(D3, reason = "keyed get/insert/remove only; never iterated")

use std::collections::BTreeMap;
use std::collections::HashMap;

pub struct Tracker {
    /// Ordered container needs no marker at all.
    pub by_set: BTreeMap<u64, u32>,
    hits: HashMap<u64, u32>,
}

impl Tracker {
    pub fn record(&mut self, addr: u64) {
        *self.hits.entry(addr).or_insert(0) += 1;
        let _ = &self.by_set;
    }
}
