//! D4 failing fixture: raw stdout/stderr from sim library code.

pub fn report(misses: u64) {
    println!("misses = {misses}");
}
