//! D1 failing fixture: wall-clock read in simulation library code.

use std::time::Instant;

pub fn timestamped_tick() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
