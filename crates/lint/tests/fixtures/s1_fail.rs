//! S1 failing fixture: per-SM state that is not Send-partitionable.
//! Every planted field is one distinct way to fail the audit.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// No `Send` supertrait — trait objects over this cannot move to a
/// worker thread.
pub trait Hooks {
    fn on_tick(&mut self, cycle: u64);
}

pub struct Shared {
    pub total: u64,
}

pub struct Sm {
    pub id: usize,
    /// S1: non-Send shared mutability (annotation cannot bless this).
    pub neighbor: Rc<RefCell<Shared>>,
    /// S1: raw pointers are not Send-auditable.
    pub scratch: *mut u8,
    /// S1: a shared handle with no shared-boundary marker.
    pub l2: Arc<Shared>,
    /// S1: trait object without a Send bound.
    pub hooks: Box<dyn Hooks>,
}

/// S1: unsynchronized global state in a simulation crate.
pub static mut GLOBAL_CYCLES: u64 = 0;
