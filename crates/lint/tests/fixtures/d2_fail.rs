//! D2 failing fixture: ambient randomness.

pub fn jitter() -> u64 {
    let r = rand::thread_rng().gen_range(0..100);
    r
}
