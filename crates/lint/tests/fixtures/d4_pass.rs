//! D4 passing fixture: output goes through a caller-supplied sink, and
//! `println!` appears only in comments, strings, and test code.

pub fn report(misses: u64, sink: &mut dyn FnMut(&str)) {
    // Never println! here; the driver owns stdout.
    let line = format!("misses = {misses}");
    sink(&line);
    let doc = "println! in a string literal is fine";
    let _ = doc;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("test scaffolding may print");
    }
}
