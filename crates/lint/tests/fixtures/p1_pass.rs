//! P1 passing fixture: fallible code paths, no panics outside tests.

pub fn lookup(table: &[u32], idx: usize) -> Option<u32> {
    // `unwrap_or` is not `unwrap`; exact-identifier matching must not
    // confuse them.
    let fallback = table.first().copied().unwrap_or(0);
    table.get(idx).copied().or(Some(fallback))
}

pub fn checked(table: &[u32]) -> u32 {
    table.iter().copied().max().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(lookup(&[7], 0).unwrap(), 7);
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.expect("ok"), 3);
    }
}
