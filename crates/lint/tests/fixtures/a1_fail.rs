//! A1 failing fixture: three markers that no longer do anything — an
//! allow whose rule stopped firing, a shared-boundary on a plain field,
//! and an allow for a construct that was refactored away.

// latte-lint: allow(D3, reason = "stale: the hash container was replaced by a BTreeMap long ago")
use std::collections::BTreeMap;

pub struct Sm {
    pub table: BTreeMap<u64, u64>,
    // latte-lint: shared-boundary(reason = "stale: this field stopped being shared when the Arc was removed")
    pub cycles: u64,
}

// latte-lint: allow(P1, reason = "stale: the unwrap below became unwrap_or in a refactor")
pub fn get(sm: &Sm, k: u64) -> u64 {
    sm.table.get(&k).copied().unwrap_or(0)
}
