//! Behavioural tests of the fault-injection harness: determinism,
//! recovery of detected bit flips as misses, invisibility of disabled
//! injection, and termination reporting.

use latte_compress::{Compression, CompressionAlgo};
use latte_gpusim::testing::StridedKernel;
use latte_gpusim::{
    FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, TerminationReason,
    UncompressedPolicy,
};

fn base_config() -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        ..GpuConfig::small()
    }
}

/// A policy that compresses everything with one algorithm at a fixed size.
struct FixedPolicy {
    algo: CompressionAlgo,
    size: usize,
    decode_errors: u64,
}

impl FixedPolicy {
    fn bdi() -> FixedPolicy {
        FixedPolicy {
            algo: CompressionAlgo::Bdi,
            size: 32,
            decode_errors: 0,
        }
    }
}

impl L1CompressionPolicy for FixedPolicy {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn compress_fill(
        &mut self,
        _set: usize,
        _line: &latte_compress::CacheLine,
    ) -> (CompressionAlgo, Compression) {
        (self.algo, Compression::new(self.size))
    }

    fn on_decode_error(&mut self, _algo: CompressionAlgo) {
        self.decode_errors += 1;
    }
}

fn run_compressed(config: GpuConfig, kernel: &dyn Kernel) -> KernelStats {
    let mut gpu = Gpu::new(&config, |_| {
        Box::new(FixedPolicy::bdi()) as Box<dyn L1CompressionPolicy>
    });
    gpu.run_kernel(kernel)
}

#[test]
fn fault_runs_are_bit_identical_across_same_seed_runs() {
    let kernel = StridedKernel::new(8, 400, 256);
    let config = GpuConfig {
        faults: Some(FaultConfig {
            seed: 42,
            bitflip_rate: 0.05,
            tag_corruption_rate: 0.01,
            latency_spike_rate: 0.01,
            latency_spike_cycles: 150,
            mshr_exhaust_rate: 0.01,
            fill_bitflip_rate: 0.02,
            wakeup_drop_rate: 0.0,
            writeback_fault_rate: 0.0,
            drop_writebacks: false,
            disable_recovery: false,
        }),
        ..base_config()
    };
    let a = run_compressed(config.clone(), &kernel);
    let b = run_compressed(config, &kernel);
    assert_eq!(a, b);
    assert!(a.faults.total() > 0, "faults must actually fire: {:?}", a.faults);
}

#[test]
fn different_seeds_inject_different_sequences() {
    let kernel = StridedKernel::new(8, 400, 256);
    let config = |seed| GpuConfig {
        faults: Some(FaultConfig::bitflips(seed, 0.05)),
        ..base_config()
    };
    let a = run_compressed(config(1), &kernel);
    let b = run_compressed(config(2), &kernel);
    assert_ne!(a, b);
}

#[test]
fn detected_bitflips_recover_as_misses() {
    let kernel = StridedKernel::new(8, 400, 64); // fits the L1: hits dominate
    let clean = run_compressed(base_config(), &kernel);
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig::bitflips(7, 0.1)),
            ..base_config()
        },
        &kernel,
    );
    assert!(faulty.faults.bitflips_injected > 0);
    assert!(faulty.faults.bitflips_detected > 0);
    assert_eq!(
        faulty.faults.bitflips_injected,
        faulty.faults.bitflips_detected + faulty.faults.bitflips_masked
    );
    // Every detected flip became exactly one L1 decode failure + re-fetch.
    assert_eq!(faulty.l1.decode_failures, faulty.faults.bitflips_detected);
    assert!(faulty.l1.misses > clean.l1.misses);
    // The workload still completes all its work.
    assert_eq!(faulty.termination, TerminationReason::Completed);
    assert!(!faulty.timed_out);
    assert_eq!(faulty.instructions, clean.instructions);
    assert_eq!(faulty.loads, clean.loads);
    // Accounting stays coherent under injection.
    assert_eq!(faulty.l1.accesses(), faulty.loads);
}

#[test]
fn decode_errors_reach_the_policy() {
    let kernel = StridedKernel::new(8, 400, 64);
    let mut gpu = Gpu::new(
        &GpuConfig {
            faults: Some(FaultConfig::bitflips(7, 0.1)),
            ..base_config()
        },
        |_| Box::new(FixedPolicy::bdi()) as Box<dyn L1CompressionPolicy>,
    );
    let stats = gpu.run_kernel(&kernel);
    assert!(stats.faults.bitflips_detected > 0);
}

#[test]
fn zero_rate_injection_is_invisible() {
    let kernel = StridedKernel::new(8, 300, 128);
    let without = run_compressed(base_config(), &kernel);
    let with_zero = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig {
                seed: 123,
                ..FaultConfig::default()
            }),
            ..base_config()
        },
        &kernel,
    );
    assert_eq!(without, with_zero);
    assert_eq!(with_zero.faults.total(), 0);
}

#[test]
fn tag_corruption_forces_refetches() {
    let kernel = StridedKernel::new(8, 400, 64);
    let clean = run_compressed(base_config(), &kernel);
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig {
                seed: 5,
                tag_corruption_rate: 0.2,
                ..FaultConfig::default()
            }),
            ..base_config()
        },
        &kernel,
    );
    assert!(faulty.faults.tag_corruptions > 0);
    // Dropped fills mean fewer lines retained and more misses.
    assert!(faulty.l1.fills < clean.l1.fills + faulty.faults.tag_corruptions);
    assert!(faulty.l1.misses > clean.l1.misses);
    assert_eq!(faulty.termination, TerminationReason::Completed);
    assert_eq!(faulty.instructions, clean.instructions);
}

#[test]
fn mshr_exhaustion_and_latency_spikes_slow_but_complete() {
    let kernel = StridedKernel::new(8, 300, 1024); // miss-heavy
    let clean = run_compressed(base_config(), &kernel);
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig {
                seed: 9,
                latency_spike_rate: 0.1,
                latency_spike_cycles: 400,
                mshr_exhaust_rate: 0.05,
                ..FaultConfig::default()
            }),
            ..base_config()
        },
        &kernel,
    );
    assert!(faulty.faults.latency_spikes > 0);
    assert!(faulty.faults.mshr_exhaustions > 0);
    assert!(faulty.faults.spike_cycles_added >= 400 * faulty.faults.latency_spikes);
    assert!(faulty.cycles > clean.cycles);
    assert_eq!(faulty.termination, TerminationReason::Completed);
    assert_eq!(faulty.instructions, clean.instructions);
}

#[test]
fn fill_bitflips_delay_fills_but_preserve_work() {
    let kernel = StridedKernel::new(8, 300, 1024); // miss-heavy: many fills
    let clean = run_compressed(base_config(), &kernel);
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig::fill_bitflips(11, 0.2)),
            ..base_config()
        },
        &kernel,
    );
    assert!(faulty.faults.fill_bitflips > 0, "return-path flips must fire");
    // Every detected return-path flip costs exactly one retry round trip.
    assert_eq!(
        faulty.faults.fill_retry_cycles,
        faulty.faults.fill_bitflips * base_config().l2_latency
    );
    // Retries delay completion but never lose work.
    assert!(faulty.cycles > clean.cycles);
    assert_eq!(faulty.termination, TerminationReason::Completed);
    assert_eq!(faulty.instructions, clean.instructions);
    assert_eq!(faulty.loads, clean.loads);
}

#[test]
fn fill_bitflips_at_rate_one_still_terminate() {
    // Every first delivery is rejected by parity; the retry is verified
    // and must not be re-rolled, or the kernel would never finish.
    let kernel = StridedKernel::new(4, 100, 256);
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig::fill_bitflips(3, 1.0)),
            ..base_config()
        },
        &kernel,
    );
    assert_eq!(faulty.termination, TerminationReason::Completed);
    assert!(faulty.faults.fill_bitflips > 0);
}

#[test]
fn fill_bitflip_runs_are_deterministic() {
    let kernel = StridedKernel::new(8, 300, 512);
    let config = GpuConfig {
        faults: Some(FaultConfig::fill_bitflips(21, 0.1)),
        ..base_config()
    };
    let a = run_compressed(config.clone(), &kernel);
    let b = run_compressed(config, &kernel);
    assert_eq!(a, b);
    assert!(a.faults.fill_bitflips > 0);
}

#[test]
fn refetch_after_decode_failure_is_not_trusted() {
    // Enable both the L1 hit-path flips (whose recovery refetches lines)
    // and the return-path flips (which corrupt refetches too): both sites
    // must fire in the same run and the workload must still complete.
    let kernel = StridedKernel::new(8, 400, 64); // hit-heavy: many refetches
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig {
                seed: 13,
                bitflip_rate: 0.1,
                fill_bitflip_rate: 0.1,
                ..FaultConfig::default()
            }),
            ..base_config()
        },
        &kernel,
    );
    assert!(faulty.faults.bitflips_detected > 0);
    assert!(faulty.faults.fill_bitflips > 0);
    assert_eq!(faulty.termination, TerminationReason::Completed);
}

#[test]
fn cycle_limit_is_reported_as_termination_reason() {
    let kernel = StridedKernel::new(8, 400, 1024);
    let mut gpu = Gpu::new(
        &GpuConfig {
            max_cycles_per_kernel: 200,
            ..base_config()
        },
        |_| Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>,
    );
    let stats = gpu.run_kernel(&kernel);
    assert!(stats.timed_out);
    assert_eq!(stats.termination, TerminationReason::CycleLimit);
}

#[test]
fn dropped_wakeups_deadlock_and_are_reported_as_such() {
    // At rate 1.0 every refill's wakeup notification is lost: the data
    // lands in the cache, but the warps blocked on it are never re-marked
    // ready. That is architecturally unrecoverable, so the run must end
    // with the watchdog's Deadlock verdict — not CycleLimit (the machine
    // goes fully idle long before the limit) and not FaultAbort (the L1
    // itself is structurally intact).
    let kernel = StridedKernel::new(8, 300, 1024); // miss-heavy: every warp blocks
    let faulty = run_compressed(
        GpuConfig {
            faults: Some(FaultConfig::wakeup_drops(17, 1.0)),
            ..base_config()
        },
        &kernel,
    );
    assert!(faulty.faults.wakeup_drops > 0, "drops must fire: {:?}", faulty.faults);
    assert_eq!(faulty.termination, TerminationReason::Deadlock);
    assert!(faulty.timed_out);
    assert!(!faulty.termination.is_clean());
}

#[test]
fn wakeup_drop_runs_are_deterministic() {
    let kernel = StridedKernel::new(8, 300, 512);
    let config = GpuConfig {
        faults: Some(FaultConfig::wakeup_drops(23, 0.02)),
        ..base_config()
    };
    let a = run_compressed(config.clone(), &kernel);
    let b = run_compressed(config, &kernel);
    assert_eq!(a, b);
}

#[test]
fn completed_kernels_report_clean_termination() {
    let kernel = StridedKernel::new(4, 50, 32);
    let stats = run_compressed(base_config(), &kernel);
    assert_eq!(stats.termination, TerminationReason::Completed);
    assert!(stats.termination.is_clean());
    assert_eq!(stats.faults.total(), 0);
}
