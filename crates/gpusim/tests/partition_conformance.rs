//! The epoch-barrier arbiter only ever touches state the symbol-graph
//! lint already classifies as `shared` — nothing the lint believes is
//! per-SM is reachable from the barrier. This pins the honesty of the
//! S1 partition report: [`latte_gpusim::ARBITER_SHARED_FIELDS`]
//! enumerates every (owner, field) the arbiter drains at the barrier,
//! and each one must appear in `results/lint_partition.json` with
//! `class: "shared"`. Regenerate the report with `cargo run -p
//! latte-lint` if this fails after a refactor.

use std::path::Path;

/// Extracts the `class` value of the partition entry for `(owner,
/// field)`. The report is written by our own lint with a fixed key
/// order (`owner`, `field`, ..., `class`, ...) and no nested objects
/// inside an entry, so a plain substring scan is reliable and keeps
/// this crate free of a JSON dependency.
fn class_of(report: &str, owner: &str, field: &str) -> Option<String> {
    let needle = format!("\"owner\":\"{owner}\",\"field\":\"{field}\"");
    let start = report.find(&needle)?;
    let entry = &report[start..start + report[start..].find('}')?];
    let class = entry.split("\"class\":\"").nth(1)?;
    Some(class[..class.find('"')?].to_owned())
}

#[test]
fn every_arbiter_touched_field_is_classified_shared_by_the_lint() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/lint_partition.json");
    let report = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate it with `cargo run -p latte-lint`",
            path.display()
        )
    });
    assert!(
        report.contains("\"clean\":true"),
        "the partition report records lint violations; fix them first"
    );
    assert!(
        !latte_gpusim::ARBITER_SHARED_FIELDS.is_empty(),
        "the arbiter's shared-field manifest must not be empty"
    );
    for &(owner, field) in latte_gpusim::ARBITER_SHARED_FIELDS {
        let class = class_of(&report, owner, field).unwrap_or_else(|| {
            panic!("{owner}.{field} is missing from the partition report")
        });
        assert_eq!(
            class, "shared",
            "{owner}.{field} is drained by the epoch-barrier arbiter but the \
             lint classifies it as `{class}` — the partition report and \
             ARBITER_SHARED_FIELDS have drifted apart"
        );
    }
}
