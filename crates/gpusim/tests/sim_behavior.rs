//! Behavioural tests of the GPU simulator: latency hiding, compression
//! effects on the hit path, MSHR merging, determinism, and the Fig 1
//! hit-latency sensitivity mechanism.

use latte_compress::{Compression, CompressionAlgo};
use latte_gpusim::testing::{HotsetKernel, StridedKernel};
use latte_gpusim::{
    Gpu, GpuConfig, Kernel, L1CompressionPolicy, SchedulerKind, UncompressedPolicy,
};

fn base_config() -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        ..GpuConfig::small()
    }
}

fn run_baseline(config: GpuConfig, kernel: &dyn Kernel) -> latte_gpusim::KernelStats {
    let mut gpu = Gpu::new(&config, |_| Box::new(UncompressedPolicy));
    gpu.run_kernel(kernel)
}

/// A policy that compresses everything with one algorithm at a fixed size.
struct FixedPolicy {
    algo: CompressionAlgo,
    size: usize,
}

impl L1CompressionPolicy for FixedPolicy {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn compress_fill(
        &mut self,
        _set: usize,
        _line: &latte_compress::CacheLine,
    ) -> (CompressionAlgo, Compression) {
        (self.algo, Compression::new(self.size))
    }
}

#[test]
fn kernel_completes_and_counts_instructions() {
    let kernel = StridedKernel::new(8, 100, 64);
    let stats = run_baseline(base_config(), &kernel);
    assert!(!stats.timed_out);
    // 8 warps x (100 loads + 99 interleaved computes + 1 exit) x 2 SMs.
    assert_eq!(stats.instructions, 2 * 8 * 200);
    assert_eq!(stats.loads, 2 * 8 * 100);
    assert_eq!(stats.l1.accesses(), stats.loads);
}

#[test]
fn simulation_is_deterministic() {
    let kernel = StridedKernel::new(16, 300, 512);
    let a = run_baseline(base_config(), &kernel);
    let b = run_baseline(base_config(), &kernel);
    assert_eq!(a, b);
}

#[test]
fn more_warps_hide_more_latency() {
    // With a larger working set than the L1, misses dominate. More warps
    // hide more of the miss latency, so total IPC must rise.
    let few = run_baseline(base_config(), &StridedKernel::new(2, 400, 4096));
    let many = run_baseline(base_config(), &StridedKernel::new(32, 400, 4096));
    assert!(
        many.ipc() > few.ipc() * 2.0,
        "IPC should scale with warp parallelism: few={:.3}, many={:.3}",
        few.ipc(),
        many.ipc()
    );
}

#[test]
fn hit_latency_sweep_degrades_low_parallelism_workloads() {
    // The Fig 1 mechanism: with few warps, added hit latency is exposed.
    let kernel = StridedKernel::new(2, 400, 32); // hits in cache, 2 warps
    let fast = run_baseline(base_config(), &kernel);
    let slow = run_baseline(
        GpuConfig {
            extra_hit_latency: 14,
            ..base_config()
        },
        &kernel,
    );
    assert!(
        slow.cycles > fast.cycles * 11 / 10,
        "2-warp workload must feel +14-cycle hits: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn hit_latency_tolerated_with_many_warps() {
    // Same sweep with 32 warps: the slowdown must be far smaller.
    let kernel = StridedKernel::new(32, 400, 32);
    let fast = run_baseline(base_config(), &kernel);
    let slow = run_baseline(
        GpuConfig {
            extra_hit_latency: 14,
            ..base_config()
        },
        &kernel,
    );
    let ratio = slow.cycles as f64 / fast.cycles as f64;
    assert!(
        ratio < 1.6,
        "32 warps should largely hide +14-cycle hits, got ratio {ratio:.2}"
    );
}

#[test]
fn compression_expands_effective_capacity_and_cuts_misses() {
    // Working set of 256 lines/SM vs 128-line L1: baseline thrashes, a
    // 4:1-compressed cache holds everything.
    let kernel = StridedKernel::new(8, 600, 256);
    let baseline = run_baseline(base_config(), &kernel);
    let mut gpu = Gpu::new(&base_config(), |_| {
        Box::new(FixedPolicy {
            algo: CompressionAlgo::Bdi,
            size: 32,
        }) as Box<dyn L1CompressionPolicy>
    });
    let compressed = gpu.run_kernel(&kernel);
    assert!(
        compressed.l1.misses < baseline.l1.misses / 2,
        "4:1 compression must slash misses: {} vs {}",
        compressed.l1.misses,
        baseline.l1.misses
    );
    assert!(compressed.decompressions.get(CompressionAlgo::Bdi) > 0);
}

#[test]
fn high_latency_compression_hurts_when_parallelism_is_low() {
    // Everything already fits in cache: compression brings no capacity
    // benefit, only a 14-cycle SC decompression penalty per hit. With only
    // 2 warps the penalty is exposed.
    let kernel = StridedKernel::new(2, 600, 32);
    let baseline = run_baseline(base_config(), &kernel);
    let mut gpu = Gpu::new(&base_config(), |_| {
        Box::new(FixedPolicy {
            algo: CompressionAlgo::Sc,
            size: 32,
        }) as Box<dyn L1CompressionPolicy>
    });
    let sc = gpu.run_kernel(&kernel);
    assert!(
        sc.cycles > baseline.cycles * 12 / 10,
        "SC latency must hurt: {} vs {}",
        sc.cycles,
        baseline.cycles
    );
}

#[test]
fn zero_decompression_latency_flag_removes_penalty() {
    let kernel = StridedKernel::new(2, 600, 32);
    let baseline = run_baseline(base_config(), &kernel);
    let mut gpu = Gpu::new(
        &GpuConfig {
            zero_decompression_latency: true,
            ..base_config()
        },
        |_| {
            Box::new(FixedPolicy {
                algo: CompressionAlgo::Sc,
                size: 32,
            }) as Box<dyn L1CompressionPolicy>
        },
    );
    let sc_free = gpu.run_kernel(&kernel);
    // Without the latency penalty, SC-compressing a fitting working set
    // is performance-neutral.
    assert_eq!(sc_free.cycles, baseline.cycles);
}

#[test]
fn ignore_capacity_flag_keeps_miss_rate_at_baseline() {
    let kernel = StridedKernel::new(8, 600, 256);
    let baseline = run_baseline(base_config(), &kernel);
    let mut gpu = Gpu::new(
        &GpuConfig {
            ignore_capacity_benefit: true,
            ..base_config()
        },
        |_| {
            Box::new(FixedPolicy {
                algo: CompressionAlgo::Bdi,
                size: 32,
            }) as Box<dyn L1CompressionPolicy>
        },
    );
    let fig4 = gpu.run_kernel(&kernel);
    // Same miss counts as baseline: the capacity benefit is suppressed.
    assert_eq!(fig4.l1.misses, baseline.l1.misses);
    assert!(fig4.compressions.total() > 0);
}

#[test]
fn ignore_capacity_flag_still_charges_latency() {
    // Working set fits the cache: hits dominate, and with the capacity
    // benefit suppressed the only effect left is the SC hit penalty.
    let kernel = StridedKernel::new(2, 600, 32);
    let baseline = run_baseline(base_config(), &kernel);
    let mut gpu = Gpu::new(
        &GpuConfig {
            ignore_capacity_benefit: true,
            ..base_config()
        },
        |_| {
            Box::new(FixedPolicy {
                algo: CompressionAlgo::Sc,
                size: 32,
            }) as Box<dyn L1CompressionPolicy>
        },
    );
    let fig4 = gpu.run_kernel(&kernel);
    assert!(fig4.decompressions.total() > 0);
    assert!(
        fig4.cycles > baseline.cycles * 12 / 10,
        "latency penalty must remain: {} vs {}",
        fig4.cycles,
        baseline.cycles
    );
}

#[test]
fn mshr_merges_concurrent_misses_to_one_line() {
    // All warps load the same lines at once: one memory request per line.
    let kernel = HotsetKernel::new(16, 50, 4);
    let stats = run_baseline(base_config(), &kernel);
    // 4 hot lines per SM, 2 SMs: exactly 8 refills and 8 memory-system
    // requests. (Lookups that merge into an in-flight MSHR entry still
    // count as L1 miss *lookups*, as in GPGPU-Sim, so `misses > fills`.)
    assert_eq!(stats.l1.fills, 8, "merged misses must not refetch");
    assert_eq!(stats.l2.accesses(), 8);
    assert!(stats.l1.misses >= stats.l1.fills);
}

#[test]
fn gto_and_lrr_both_complete() {
    let kernel = StridedKernel::new(12, 200, 512);
    let gto = run_baseline(
        GpuConfig {
            scheduler: SchedulerKind::Gto,
            ..base_config()
        },
        &kernel,
    );
    let lrr = run_baseline(
        GpuConfig {
            scheduler: SchedulerKind::Lrr,
            ..base_config()
        },
        &kernel,
    );
    assert_eq!(gto.instructions, lrr.instructions);
    assert!(!gto.timed_out && !lrr.timed_out);
}

#[test]
fn eps_complete_and_traces_record() {
    let kernel = StridedKernel::new(8, 600, 64);
    let mut gpu = Gpu::new(
        &GpuConfig {
            record_traces: true,
            ..base_config()
        },
        |_| Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>,
    );
    let stats = gpu.run_kernel(&kernel);
    // 8 warps x 600 loads = 4800 accesses per SM = 18 EPs of 256.
    assert!(stats.eps_completed >= 2 * 18);
    assert!(!stats.traces.is_empty());
    for t in &stats.traces {
        assert!(t.latency_tolerance >= 0.0);
        assert!((0.0..=4.0).contains(&t.effective_capacity));
        assert!((0.0..=1.0).contains(&t.l1_hit_rate));
    }
}

#[test]
fn barriers_synchronise_blocks() {
    use latte_gpusim::{Op, OpStream, VecStream};

    // Two warps in one block: warp 0 computes a long time then barriers;
    // warp 1 barriers immediately then loads. The load must happen after
    // warp 0's compute completes.
    struct BarrierKernel;
    impl Kernel for BarrierKernel {
        fn name(&self) -> &str {
            "barrier-test"
        }
        fn warps_on_sm(&self, sm: usize) -> usize {
            if sm == 0 {
                2
            } else {
                0
            }
        }
        fn warp_program(&self, _sm: usize, warp: usize) -> Box<dyn OpStream> {
            let ops = if warp == 0 {
                vec![Op::Compute { cycles: 500 }, Op::Barrier, Op::Exit]
            } else {
                vec![Op::Barrier, Op::Load { addr: 0 }, Op::Exit]
            };
            Box::new(VecStream::new(ops))
        }
        fn line_data(&self, _addr: latte_cache::LineAddr) -> latte_compress::CacheLine {
            latte_compress::CacheLine::zeroed()
        }
    }

    let config = GpuConfig {
        warps_per_block: 2,
        ..base_config()
    };
    let stats = run_baseline(config, &BarrierKernel);
    assert!(!stats.timed_out, "barrier must release");
    // The kernel runtime is dominated by warp 0's 500-cycle compute plus
    // the post-barrier miss round trip.
    assert!(stats.cycles > 500);
}
