//! Property tests for the GPU simulator: arbitrary (well-formed) kernels
//! complete, conserve instructions, and produce internally consistent
//! statistics under every scheduler and policy configuration.

use latte_cache::LineAddr;
use latte_compress::{CacheLine, Compression, CompressionAlgo};
use latte_gpusim::{
    Gpu, GpuConfig, Kernel, L1CompressionPolicy, Op, OpStream, SchedulerKind, UncompressedPolicy,
    VecStream,
};
use proptest::prelude::*;

/// A kernel built from explicit per-warp op vectors (barrier-free; barrier
/// correctness has dedicated tests).
#[derive(Debug, Clone)]
struct OpsKernel {
    warps: Vec<Vec<Op>>,
}

impl Kernel for OpsKernel {
    fn name(&self) -> &str {
        "proptest-kernel"
    }

    fn warps_on_sm(&self, sm: usize) -> usize {
        if sm == 0 {
            self.warps.len()
        } else {
            0
        }
    }

    fn warp_program(&self, _sm: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(VecStream::new(self.warps[warp].clone()))
    }

    fn line_data(&self, addr: LineAddr) -> CacheLine {
        let words: Vec<u32> = (0..32)
            .map(|i| (addr.line_number() as u32).wrapping_mul(0x9e37).wrapping_add(i))
            .collect();
        CacheLine::from_u32_words(&words)
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..20).prop_map(|cycles| Op::Compute { cycles }),
        4 => (0u64..64).prop_map(|line| Op::Load { addr: line * 128 }),
        2 => (0u64..64).prop_map(|line| Op::LoadAsync { addr: line * 128 }),
        1 => (0u64..64, 0u64..4, any::<u8>()).prop_map(|(line, sector, fill)| Op::Store {
            addr: line * 128 + sector * 32,
            data: [fill; 32],
        }),
    ]
}

fn kernel_strategy() -> impl Strategy<Value = OpsKernel> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 0..60), 1..12)
        .prop_map(|warps| OpsKernel { warps })
}

fn config(kind: SchedulerKind) -> GpuConfig {
    GpuConfig {
        num_sms: 1,
        scheduler: kind,
        max_cycles_per_kernel: 2_000_000,
        ..GpuConfig::small()
    }
}

/// A policy compressing everything to a fixed fraction, for stressing the
/// compressed paths under random traffic.
struct FixedSc;
impl L1CompressionPolicy for FixedSc {
    fn name(&self) -> &'static str {
        "FixedSc"
    }
    fn compress_fill(&mut self, _set: usize, _line: &CacheLine) -> (CompressionAlgo, Compression) {
        (CompressionAlgo::Sc, Compression::new(40))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_kernels_complete_and_conserve_instructions(kernel in kernel_strategy()) {
        let expected: u64 = kernel.warps.iter().map(|w| w.len() as u64 + 1).sum(); // +1 Exit
        let mut gpu = Gpu::new(&config(SchedulerKind::Gto), |_| Box::new(UncompressedPolicy));
        let stats = gpu.run_kernel(&kernel);
        prop_assert!(!stats.timed_out);
        prop_assert_eq!(stats.instructions, expected);
        let loads = kernel
            .warps
            .iter()
            .flatten()
            .filter(|o| matches!(o, Op::Load { .. } | Op::LoadAsync { .. }))
            .count() as u64;
        prop_assert_eq!(stats.loads, loads);
        prop_assert_eq!(stats.l1.accesses(), loads);
    }

    #[test]
    fn schedulers_agree_on_work_done(kernel in kernel_strategy()) {
        let run = |kind| {
            let mut gpu = Gpu::new(&config(kind), |_| {
                Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>
            });
            gpu.run_kernel(&kernel)
        };
        let gto = run(SchedulerKind::Gto);
        let lrr = run(SchedulerKind::Lrr);
        prop_assert_eq!(gto.instructions, lrr.instructions);
        prop_assert_eq!(gto.loads, lrr.loads);
        prop_assert!(!gto.timed_out && !lrr.timed_out);
    }

    #[test]
    fn compressed_runs_complete_with_consistent_stats(kernel in kernel_strategy()) {
        let mut gpu = Gpu::new(&config(SchedulerKind::Gto), |_| {
            Box::new(FixedSc) as Box<dyn L1CompressionPolicy>
        });
        let stats = gpu.run_kernel(&kernel);
        prop_assert!(!stats.timed_out);
        // Every hit on a compressed line decompresses; every decompression
        // implies a hit.
        prop_assert!(stats.decompressions.total() <= stats.l1.hits);
        prop_assert_eq!(
            stats.decompressions.get(CompressionAlgo::Sc),
            stats.decompressions.total()
        );
        // Compressions happen once per fill.
        prop_assert_eq!(stats.compressions.get(CompressionAlgo::Sc), stats.l1.fills);
    }

    #[test]
    fn runs_are_reproducible(kernel in kernel_strategy()) {
        let run = || {
            let mut gpu = Gpu::new(&config(SchedulerKind::Gto), |_| {
                Box::new(FixedSc) as Box<dyn L1CompressionPolicy>
            });
            gpu.run_kernel(&kernel)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn extra_hit_latency_never_speeds_up_hit_bound_kernels(
        lines in 1u64..8,
        loads in 20usize..80,
    ) {
        // All warps loop over a tiny line set: pure hit workload. Adding
        // hit latency must not make it faster.
        let warps: Vec<Vec<Op>> = (0..4)
            .map(|w| {
                (0..loads)
                    .map(|i| Op::Load {
                        addr: (((i as u64) + w) % lines) * 128,
                    })
                    .collect()
            })
            .collect();
        let kernel = OpsKernel { warps };
        let run = |extra| {
            let mut gpu = Gpu::new(
                &GpuConfig {
                    extra_hit_latency: extra,
                    ..config(SchedulerKind::Gto)
                },
                |_| Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>,
            );
            gpu.run_kernel(&kernel).cycles
        };
        prop_assert!(run(12) >= run(0));
    }
}

/// Barriers with equal arrival counts across a block always release.
#[test]
fn uniform_barriers_release() {
    let warps: Vec<Vec<Op>> = (0..6)
        .map(|w| {
            vec![
                Op::Compute { cycles: 5 + w },
                Op::Barrier,
                Op::Load { addr: 128 * w as u64 },
                Op::Barrier,
                Op::Compute { cycles: 3 },
            ]
        })
        .collect();
    let kernel = OpsKernel { warps };
    let mut gpu = Gpu::new(
        &GpuConfig {
            warps_per_block: 3,
            ..config(SchedulerKind::Gto)
        },
        |_| Box::new(UncompressedPolicy),
    );
    let stats = gpu.run_kernel(&kernel);
    assert!(!stats.timed_out);
    assert!(stats.barrier_wait_cycles > 0, "staggered arrivals must wait");
}
