//! Serial vs `sim_threads > 1` byte-identity: the epoch-barrier parallel
//! loop must reproduce the serial loop's results *exactly* — every
//! counter, cycle count, trace entry, fault tally, termination reason and
//! shadow-hook call — across kernels, policies, fault families and
//! termination paths. These tests are the core guarantee that lets
//! `sim_threads` stay outside the config fingerprint.

use std::sync::{Arc, Mutex};

use latte_compress::{Compression, CompressionAlgo};
use latte_gpusim::testing::{HotsetKernel, StridedKernel};
use latte_gpusim::{
    FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, Op, OpStream,
    ShadowCheck, ShadowCheckpoint, ShadowConfig, TerminationReason, UncompressedPolicy,
    VecStream,
};

/// Five SMs: at 2 threads the shards split 3+2, at 4 threads 2+2+1 —
/// deliberately uneven so the arbiter's sm→shard routing is exercised.
fn config() -> GpuConfig {
    GpuConfig {
        num_sms: 5,
        record_traces: true,
        ..GpuConfig::small()
    }
}

/// A policy compressing everything with one algorithm at a fixed size
/// (enough to exercise decompression queues and EP machinery).
struct FixedPolicy;

impl L1CompressionPolicy for FixedPolicy {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn compress_fill(
        &mut self,
        _set: usize,
        _line: &latte_compress::CacheLine,
    ) -> (CompressionAlgo, Compression) {
        (CompressionAlgo::Bdi, Compression::new(32))
    }
}

/// A kernel mixing loads, stores, compute and barriers so the store
/// (write-through) path and the write-allocate background fetches cross
/// the epoch barrier too.
#[derive(Clone)]
struct MixedKernel;

impl Kernel for MixedKernel {
    fn name(&self) -> &str {
        "mixed-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        6
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        let line = |i: u64| ((sm as u64) << 20 | i) * 128;
        let mut ops = Vec::new();
        for i in 0..40u64 {
            let a = line((i * 7 + warp as u64) % 96);
            if i % 3 == 0 {
                ops.push(Op::Store { addr: a });
            } else {
                ops.push(Op::Load { addr: a });
            }
            if i % 5 == 0 {
                ops.push(Op::Compute { cycles: 3 });
            }
            if i % 16 == 0 {
                ops.push(Op::Barrier);
            }
        }
        ops.push(Op::Exit);
        Box::new(VecStream::new(ops))
    }

    fn line_data(&self, addr: latte_cache::LineAddr) -> latte_compress::CacheLine {
        let words: Vec<u32> = (0..32)
            .map(|i| (addr.line_number() as u32).wrapping_mul(31).wrapping_add(i))
            .collect();
        latte_compress::CacheLine::from_u32_words(&words)
    }
}

fn run_with_threads(
    config: &GpuConfig,
    threads: usize,
    fixed_policy: bool,
    kernels: &[&dyn Kernel],
) -> (Vec<KernelStats>, f64) {
    let config = GpuConfig {
        sim_threads: threads,
        ..config.clone()
    };
    let mut gpu = Gpu::new(&config, |_| {
        if fixed_policy {
            Box::new(FixedPolicy) as Box<dyn L1CompressionPolicy>
        } else {
            Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>
        }
    });
    let stats = gpu.run_kernels(kernels.iter().copied());
    let capacity = gpu.l1_effective_capacity_ratio();
    if threads > 1 {
        let epochs = gpu.take_epoch_stats();
        assert!(epochs.epochs > 0, "parallel run must record epochs");
        assert!(epochs.advanced_cycles > 0);
    }
    (stats, capacity)
}

fn assert_identical(config: &GpuConfig, fixed_policy: bool, kernels: &[&dyn Kernel]) {
    let (serial, serial_cap) = run_with_threads(config, 1, fixed_policy, kernels);
    for threads in [2, 4] {
        let (parallel, parallel_cap) = run_with_threads(config, threads, fixed_policy, kernels);
        assert_eq!(
            serial, parallel,
            "sim_threads={threads} must be byte-identical to serial"
        );
        assert!(
            (serial_cap - parallel_cap).abs() < f64::EPSILON,
            "effective capacity must match at sim_threads={threads}"
        );
    }
}

#[test]
fn strided_kernel_is_identical_across_thread_counts() {
    let strided = StridedKernel::new(12, 300, 512);
    assert_identical(&config(), false, &[&strided]);
    assert_identical(&config(), true, &[&strided]);
}

#[test]
fn hotset_kernel_is_identical_across_thread_counts() {
    let hotset = HotsetKernel::new(16, 200, 4);
    assert_identical(&config(), false, &[&hotset]);
    assert_identical(&config(), true, &[&hotset]);
}

#[test]
fn store_and_barrier_traffic_is_identical() {
    assert_identical(&config(), false, &[&MixedKernel]);
    assert_identical(&config(), true, &[&MixedKernel]);
    // Write-allocate adds background fetch events on store misses.
    let wa = GpuConfig {
        write_allocate: true,
        ..config()
    };
    assert_identical(&wa, false, &[&MixedKernel]);
}

#[test]
fn multi_kernel_runs_preserve_policy_state_identically() {
    let strided = StridedKernel::new(8, 200, 256);
    let hotset = HotsetKernel::new(8, 150, 8);
    assert_identical(&config(), true, &[&strided, &hotset, &MixedKernel]);
}

#[test]
fn fault_injection_families_are_identical() {
    let strided = StridedKernel::new(10, 250, 384);
    let kernels: [&dyn Kernel; 2] = [&strided, &MixedKernel];
    let families = [
        FaultConfig::bitflips(7, 2e-3),
        FaultConfig::fill_bitflips(11, 2e-3),
        FaultConfig {
            latency_spike_rate: 5e-3,
            latency_spike_cycles: 64,
            ..FaultConfig::bitflips(13, 0.0)
        },
        FaultConfig {
            mshr_exhaust_rate: 5e-3,
            tag_corruption_rate: 2e-3,
            ..FaultConfig::bitflips(17, 1e-3)
        },
        FaultConfig {
            disable_recovery: true,
            ..FaultConfig::bitflips(19, 2e-3)
        },
    ];
    for faults in families {
        let cfg = GpuConfig {
            faults: Some(faults),
            ..config()
        };
        assert_identical(&cfg, true, &kernels);
    }
}

#[test]
fn cycle_limit_termination_is_identical() {
    // A limit mid-run: the parallel endgame must stop at the exact cycle
    // the serial loop would, with the same timed_out/termination fields.
    let strided = StridedKernel::new(12, 300, 512);
    let cfg = GpuConfig {
        max_cycles_per_kernel: 700,
        ..config()
    };
    let (serial, _) = run_with_threads(&cfg, 1, false, &[&strided]);
    assert!(serial[0].timed_out, "limit must actually bite");
    assert_eq!(serial[0].termination, TerminationReason::CycleLimit);
    assert_identical(&cfg, false, &[&strided]);
}

#[test]
fn deadlock_termination_is_identical() {
    // Wakeup drops at rate 1.0 strand every missing warp: a guaranteed
    // workload deadlock, detected at the same cycle in both loops.
    let strided = StridedKernel::new(6, 50, 256);
    let cfg = GpuConfig {
        faults: Some(FaultConfig::wakeup_drops(23, 1.0)),
        ..config()
    };
    let (serial, _) = run_with_threads(&cfg, 1, false, &[&strided]);
    assert!(serial[0].timed_out, "deadlock must actually happen");
    assert_eq!(serial[0].termination, TerminationReason::Deadlock);
    assert_identical(&cfg, false, &[&strided]);
}

#[test]
fn oversized_thread_count_clamps_and_stays_identical() {
    let strided = StridedKernel::new(8, 150, 256);
    let (serial, _) = run_with_threads(&config(), 1, false, &[&strided]);
    let (wide, _) = run_with_threads(&config(), 64, false, &[&strided]);
    assert_eq!(serial, wide, "sim_threads > num_sms must clamp, not diverge");
}

/// Records every shadow call as a rendered line, through a shared handle
/// so the transcript survives the `Gpu` owning the hook.
struct TranscriptShadow(Arc<Mutex<Vec<String>>>);

impl ShadowCheck for TranscriptShadow {
    fn on_fill(
        &mut self,
        sm: usize,
        addr: latte_cache::LineAddr,
        data: &latte_compress::CacheLine,
        cycle: u64,
    ) {
        let byte = data.as_bytes()[0];
        if let Ok(mut log) = self.0.lock() {
            log.push(format!("fill sm={sm} {addr} b0={byte} @{cycle}"));
        }
    }

    fn on_load(
        &mut self,
        sm: usize,
        addr: latte_cache::LineAddr,
        observed: Option<&latte_compress::CacheLine>,
        cycle: u64,
    ) {
        let byte = observed.map(|l| l.as_bytes()[0]);
        if let Ok(mut log) = self.0.lock() {
            log.push(format!("load sm={sm} {addr} b0={byte:?} @{cycle}"));
        }
    }

    fn on_checkpoint(
        &mut self,
        sm: usize,
        cycle: u64,
        kind: ShadowCheckpoint,
        structural_errors: &[String],
    ) {
        if let Ok(mut log) = self.0.lock() {
            log.push(format!(
                "checkpoint sm={sm} {kind} errs={} @{cycle}",
                structural_errors.len()
            ));
        }
    }
}

fn shadow_transcript(threads: usize, faults: Option<FaultConfig>) -> (Vec<String>, KernelStats) {
    let cfg = GpuConfig {
        sim_threads: threads,
        faults,
        ..config()
    };
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut gpu = Gpu::new(&cfg, |_| Box::new(FixedPolicy) as Box<dyn L1CompressionPolicy>);
    gpu.set_shadow_check(
        Box::new(TranscriptShadow(Arc::clone(&log))),
        ShadowConfig::default(),
    );
    let strided = StridedKernel::new(10, 260, 320);
    let kernels: [&dyn Kernel; 2] = [&strided, &MixedKernel];
    let mut total = KernelStats::default();
    for stats in gpu.run_kernels(kernels) {
        total.accumulate(&stats);
    }
    let transcript = log.lock().map(|l| l.clone()).unwrap_or_default();
    (transcript, total)
}

#[test]
fn shadow_call_stream_is_identical_across_thread_counts() {
    let (serial_log, serial_stats) = shadow_transcript(1, None);
    assert!(!serial_log.is_empty(), "shadow hook must actually fire");
    for threads in [2, 4] {
        let (par_log, par_stats) = shadow_transcript(threads, None);
        assert_eq!(serial_stats, par_stats);
        assert_eq!(
            serial_log, par_log,
            "shadow replay at sim_threads={threads} must reproduce the serial call order"
        );
    }
}

#[test]
fn shadow_call_stream_is_identical_under_fault_injection() {
    let faults = Some(FaultConfig {
        fill_bitflip_rate: 2e-3,
        ..FaultConfig::bitflips(29, 2e-3)
    });
    let (serial_log, serial_stats) = shadow_transcript(1, faults);
    let (par_log, par_stats) = shadow_transcript(4, faults);
    assert_eq!(serial_stats, par_stats);
    assert_eq!(serial_log, par_log);
}

#[test]
fn epoch_stats_account_for_the_whole_run() {
    let cfg = GpuConfig {
        sim_threads: 2,
        ..config()
    };
    let strided = StridedKernel::new(8, 200, 256);
    let mut gpu = Gpu::new(&cfg, |_| {
        Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>
    });
    let stats = gpu.run_kernel(&strided);
    let epochs = gpu.take_epoch_stats();
    assert!(epochs.epochs > 0);
    assert_eq!(
        epochs.advanced_cycles, stats.cycles,
        "epoch advances must cover exactly the simulated cycles"
    );
    assert!(epochs.max_epoch_cycles > 0);
    assert!(epochs.mean_epoch_cycles() > 0.0);
    assert_eq!(epochs.shards, 2);
    // take_epoch_stats drains.
    assert_eq!(gpu.take_epoch_stats(), latte_gpusim::EpochStats::default());
}
