//! Serial vs `sim_threads > 1` byte-identity: the epoch-barrier parallel
//! loop must reproduce the serial loop's results *exactly* — every
//! counter, cycle count, trace entry, fault tally, termination reason and
//! shadow-hook call — across kernels, policies, fault families and
//! termination paths. These tests are the core guarantee that lets
//! `sim_threads` stay outside the config fingerprint.

use std::sync::{Arc, Mutex};

use latte_compress::{Compression, CompressionAlgo};
use latte_gpusim::testing::{HotsetKernel, StridedKernel};
use latte_gpusim::{
    FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, Op, OpStream,
    ShadowCheck, ShadowCheckpoint, ShadowConfig, TerminationReason, UncompressedPolicy,
    VecStream,
};

/// Five SMs: at 2 threads the shards split 3+2, at 4 threads 2+2+1 —
/// deliberately uneven so the arbiter's sm→shard routing is exercised.
fn config() -> GpuConfig {
    GpuConfig {
        num_sms: 5,
        record_traces: true,
        ..GpuConfig::small()
    }
}

/// A policy compressing everything with one algorithm at a fixed size
/// (enough to exercise decompression queues and EP machinery).
struct FixedPolicy;

impl L1CompressionPolicy for FixedPolicy {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn compress_fill(
        &mut self,
        _set: usize,
        _line: &latte_compress::CacheLine,
    ) -> (CompressionAlgo, Compression) {
        (CompressionAlgo::Bdi, Compression::new(32))
    }
}

/// A kernel mixing loads, stores, compute and barriers so the store
/// (write-through) path and the write-allocate background fetches cross
/// the epoch barrier too.
#[derive(Clone)]
struct MixedKernel;

impl Kernel for MixedKernel {
    fn name(&self) -> &str {
        "mixed-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        6
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        let line = |i: u64| ((sm as u64) << 20 | i) * 128;
        let mut ops = Vec::new();
        for i in 0..40u64 {
            let a = line((i * 7 + warp as u64) % 96);
            if i % 3 == 0 {
                // Sector and payload vary with (warp, i) so write-back
                // runs exercise sector merging and dirty re-compression.
                let sector = (i + warp as u64) % 4;
                let mut data = [0u8; 32];
                for (j, b) in data.iter_mut().enumerate() {
                    *b = (i as u8)
                        .wrapping_mul(13)
                        .wrapping_add(warp as u8)
                        .wrapping_add(j as u8);
                }
                ops.push(Op::Store {
                    addr: a + sector * 32,
                    data,
                });
            } else {
                ops.push(Op::Load { addr: a });
            }
            if i % 5 == 0 {
                ops.push(Op::Compute { cycles: 3 });
            }
            if i % 16 == 0 {
                ops.push(Op::Barrier);
            }
        }
        ops.push(Op::Exit);
        Box::new(VecStream::new(ops))
    }

    fn line_data(&self, addr: latte_cache::LineAddr) -> latte_compress::CacheLine {
        let words: Vec<u32> = (0..32)
            .map(|i| (addr.line_number() as u32).wrapping_mul(31).wrapping_add(i))
            .collect();
        latte_compress::CacheLine::from_u32_words(&words)
    }
}

/// A store-dominated kernel whose working set far exceeds the L1, so
/// dirty lines are evicted and refetched *within* the kernel — the
/// in-flight traffic the outbound write-back fault site rolls on (the
/// kernel-end flush deliberately rolls no faults, so [`MixedKernel`],
/// which fits the L1, never exercises that site).
#[derive(Clone)]
struct WritePressureKernel;

impl Kernel for WritePressureKernel {
    fn name(&self) -> &str {
        "write-pressure-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        8
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        let line = |i: u64| ((sm as u64) << 20 | i) * 128;
        let mut ops = Vec::new();
        for i in 0..120u64 {
            let a = line((i * 13 + warp as u64 * 7) % 1024);
            if i % 2 == 0 {
                let sector = (i + warp as u64) % 4;
                let mut data = [0u8; 32];
                for (j, b) in data.iter_mut().enumerate() {
                    *b = (i as u8)
                        .wrapping_mul(29)
                        .wrapping_add(warp as u8)
                        .wrapping_add(j as u8);
                }
                ops.push(Op::Store {
                    addr: a + sector * 32,
                    data,
                });
            } else {
                ops.push(Op::Load { addr: a });
            }
        }
        ops.push(Op::Exit);
        Box::new(VecStream::new(ops))
    }

    fn line_data(&self, addr: latte_cache::LineAddr) -> latte_compress::CacheLine {
        let words: Vec<u32> = (0..32)
            .map(|i| (addr.line_number() as u32).wrapping_mul(31).wrapping_add(i))
            .collect();
        latte_compress::CacheLine::from_u32_words(&words)
    }
}

/// A kernel whose very last operations are stores to lines that are
/// not resident: each one misses, write-allocates a background fill,
/// and the warp exits without waiting (stores are fire-and-forget).
/// The serial loop keeps running until the fill's completion event
/// drains from the global heap; the parallel loop's shard-done
/// condition must count the buffered fill request as pending work or
/// it declares the kernel over early — cycles, write-backs and the
/// shadow transcript all diverge.
#[derive(Clone)]
struct TailStoreKernel;

impl Kernel for TailStoreKernel {
    fn name(&self) -> &str {
        "tail-store-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        4
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        let line = |i: u64| ((sm as u64) << 20 | i) * 128;
        let mut ops = Vec::new();
        // A short load phase warms unrelated lines...
        for i in 0..12u64 {
            ops.push(Op::Load {
                addr: line((i + warp as u64 * 3) % 24),
            });
        }
        // ...then the warp's final ops are stores to fresh lines.
        for i in 0..4u64 {
            let mut data = [0u8; 32];
            for (j, b) in data.iter_mut().enumerate() {
                *b = (i as u8)
                    .wrapping_mul(37)
                    .wrapping_add(warp as u8)
                    .wrapping_add(j as u8);
            }
            ops.push(Op::Store {
                addr: line(512 + i * 16 + warp as u64 * 4),
                data,
            });
        }
        ops.push(Op::Exit);
        Box::new(VecStream::new(ops))
    }

    fn line_data(&self, addr: latte_cache::LineAddr) -> latte_compress::CacheLine {
        let words: Vec<u32> = (0..32)
            .map(|i| (addr.line_number() as u32).wrapping_mul(31).wrapping_add(i))
            .collect();
        latte_compress::CacheLine::from_u32_words(&words)
    }
}

fn run_with_threads(
    config: &GpuConfig,
    threads: usize,
    fixed_policy: bool,
    kernels: &[&dyn Kernel],
) -> (Vec<KernelStats>, f64) {
    let config = GpuConfig {
        sim_threads: threads,
        ..config.clone()
    };
    let mut gpu = Gpu::new(&config, |_| {
        if fixed_policy {
            Box::new(FixedPolicy) as Box<dyn L1CompressionPolicy>
        } else {
            Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>
        }
    });
    let stats = gpu.run_kernels(kernels.iter().copied());
    let capacity = gpu.l1_effective_capacity_ratio();
    if threads > 1 {
        let epochs = gpu.take_epoch_stats();
        assert!(epochs.epochs > 0, "parallel run must record epochs");
        assert!(epochs.advanced_cycles > 0);
    }
    (stats, capacity)
}

fn assert_identical(config: &GpuConfig, fixed_policy: bool, kernels: &[&dyn Kernel]) {
    let (serial, serial_cap) = run_with_threads(config, 1, fixed_policy, kernels);
    for threads in [2, 4] {
        let (parallel, parallel_cap) = run_with_threads(config, threads, fixed_policy, kernels);
        assert_eq!(
            serial, parallel,
            "sim_threads={threads} must be byte-identical to serial"
        );
        assert!(
            (serial_cap - parallel_cap).abs() < f64::EPSILON,
            "effective capacity must match at sim_threads={threads}"
        );
    }
}

#[test]
fn strided_kernel_is_identical_across_thread_counts() {
    let strided = StridedKernel::new(12, 300, 512);
    assert_identical(&config(), false, &[&strided]);
    assert_identical(&config(), true, &[&strided]);
}

#[test]
fn hotset_kernel_is_identical_across_thread_counts() {
    let hotset = HotsetKernel::new(16, 200, 4);
    assert_identical(&config(), false, &[&hotset]);
    assert_identical(&config(), true, &[&hotset]);
}

#[test]
fn store_and_barrier_traffic_is_identical() {
    assert_identical(&config(), false, &[&MixedKernel]);
    assert_identical(&config(), true, &[&MixedKernel]);
    // Write-allocate adds background fetch events on store misses.
    let wa = GpuConfig {
        write_allocate: true,
        ..config()
    };
    assert_identical(&wa, false, &[&MixedKernel]);
}

#[test]
fn multi_kernel_runs_preserve_policy_state_identically() {
    let strided = StridedKernel::new(8, 200, 256);
    let hotset = HotsetKernel::new(8, 150, 8);
    assert_identical(&config(), true, &[&strided, &hotset, &MixedKernel]);
}

#[test]
fn fault_injection_families_are_identical() {
    let strided = StridedKernel::new(10, 250, 384);
    let kernels: [&dyn Kernel; 2] = [&strided, &MixedKernel];
    let families = [
        FaultConfig::bitflips(7, 2e-3),
        FaultConfig::fill_bitflips(11, 2e-3),
        FaultConfig {
            latency_spike_rate: 5e-3,
            latency_spike_cycles: 64,
            ..FaultConfig::bitflips(13, 0.0)
        },
        FaultConfig {
            mshr_exhaust_rate: 5e-3,
            tag_corruption_rate: 2e-3,
            ..FaultConfig::bitflips(17, 1e-3)
        },
        FaultConfig {
            disable_recovery: true,
            ..FaultConfig::bitflips(19, 2e-3)
        },
    ];
    for faults in families {
        let cfg = GpuConfig {
            faults: Some(faults),
            ..config()
        };
        assert_identical(&cfg, true, &kernels);
    }
}

#[test]
fn cycle_limit_termination_is_identical() {
    // A limit mid-run: the parallel endgame must stop at the exact cycle
    // the serial loop would, with the same timed_out/termination fields.
    let strided = StridedKernel::new(12, 300, 512);
    let cfg = GpuConfig {
        max_cycles_per_kernel: 700,
        ..config()
    };
    let (serial, _) = run_with_threads(&cfg, 1, false, &[&strided]);
    assert!(serial[0].timed_out, "limit must actually bite");
    assert_eq!(serial[0].termination, TerminationReason::CycleLimit);
    assert_identical(&cfg, false, &[&strided]);
}

#[test]
fn deadlock_termination_is_identical() {
    // Wakeup drops at rate 1.0 strand every missing warp: a guaranteed
    // workload deadlock, detected at the same cycle in both loops.
    let strided = StridedKernel::new(6, 50, 256);
    let cfg = GpuConfig {
        faults: Some(FaultConfig::wakeup_drops(23, 1.0)),
        ..config()
    };
    let (serial, _) = run_with_threads(&cfg, 1, false, &[&strided]);
    assert!(serial[0].timed_out, "deadlock must actually happen");
    assert_eq!(serial[0].termination, TerminationReason::Deadlock);
    assert_identical(&cfg, false, &[&strided]);
}

#[test]
fn oversized_thread_count_clamps_and_stays_identical() {
    let strided = StridedKernel::new(8, 150, 256);
    let (serial, _) = run_with_threads(&config(), 1, false, &[&strided]);
    let (wide, _) = run_with_threads(&config(), 64, false, &[&strided]);
    assert_eq!(serial, wide, "sim_threads > num_sms must clamp, not diverge");
}

/// Records every shadow call as a rendered line, through a shared handle
/// so the transcript survives the `Gpu` owning the hook.
struct TranscriptShadow(Arc<Mutex<Vec<String>>>);

impl ShadowCheck for TranscriptShadow {
    fn on_fill(
        &mut self,
        sm: usize,
        addr: latte_cache::LineAddr,
        data: &latte_compress::CacheLine,
        cycle: u64,
    ) {
        let byte = data.as_bytes()[0];
        if let Ok(mut log) = self.0.lock() {
            log.push(format!("fill sm={sm} {addr} b0={byte} @{cycle}"));
        }
    }

    fn on_load(
        &mut self,
        sm: usize,
        addr: latte_cache::LineAddr,
        observed: Option<&latte_compress::CacheLine>,
        cycle: u64,
    ) {
        let byte = observed.map(|l| l.as_bytes()[0]);
        if let Ok(mut log) = self.0.lock() {
            log.push(format!("load sm={sm} {addr} b0={byte:?} @{cycle}"));
        }
    }

    fn on_store(
        &mut self,
        sm: usize,
        addr: latte_cache::LineAddr,
        data: &latte_compress::CacheLine,
        cycle: u64,
    ) {
        let byte = data.as_bytes()[0];
        if let Ok(mut log) = self.0.lock() {
            log.push(format!("store sm={sm} {addr} b0={byte} @{cycle}"));
        }
    }

    fn on_checkpoint(
        &mut self,
        sm: usize,
        cycle: u64,
        kind: ShadowCheckpoint,
        structural_errors: &[String],
    ) {
        if let Ok(mut log) = self.0.lock() {
            log.push(format!(
                "checkpoint sm={sm} {kind} errs={} @{cycle}",
                structural_errors.len()
            ));
        }
    }
}

fn shadow_transcript(
    threads: usize,
    faults: Option<FaultConfig>,
    write_back: bool,
) -> (Vec<String>, KernelStats) {
    let cfg = GpuConfig {
        sim_threads: threads,
        faults,
        write_back,
        ..config()
    };
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut gpu = Gpu::new(&cfg, |_| Box::new(FixedPolicy) as Box<dyn L1CompressionPolicy>);
    gpu.set_shadow_check(
        Box::new(TranscriptShadow(Arc::clone(&log))),
        ShadowConfig::default(),
    );
    let strided = StridedKernel::new(10, 260, 320);
    let kernels: [&dyn Kernel; 2] = [&strided, &MixedKernel];
    let mut total = KernelStats::default();
    for stats in gpu.run_kernels(kernels) {
        total.accumulate(&stats);
    }
    let transcript = log.lock().map(|l| l.clone()).unwrap_or_default();
    (transcript, total)
}

#[test]
fn shadow_call_stream_is_identical_across_thread_counts() {
    let (serial_log, serial_stats) = shadow_transcript(1, None, false);
    assert!(!serial_log.is_empty(), "shadow hook must actually fire");
    for threads in [2, 4] {
        let (par_log, par_stats) = shadow_transcript(threads, None, false);
        assert_eq!(serial_stats, par_stats);
        assert_eq!(
            serial_log, par_log,
            "shadow replay at sim_threads={threads} must reproduce the serial call order"
        );
    }
}

#[test]
fn shadow_call_stream_is_identical_under_fault_injection() {
    let faults = Some(FaultConfig {
        fill_bitflip_rate: 2e-3,
        ..FaultConfig::bitflips(29, 2e-3)
    });
    let (serial_log, serial_stats) = shadow_transcript(1, faults, false);
    let (par_log, par_stats) = shadow_transcript(4, faults, false);
    assert_eq!(serial_stats, par_stats);
    assert_eq!(serial_log, par_log);
}

#[test]
fn shadow_call_stream_is_identical_with_write_back() {
    let (serial_log, serial_stats) = shadow_transcript(1, None, true);
    assert!(
        serial_log.iter().any(|l| l.starts_with("store ")),
        "write-back runs must emit store shadow calls"
    );
    for threads in [2, 4] {
        let (par_log, par_stats) = shadow_transcript(threads, None, true);
        assert_eq!(serial_stats, par_stats);
        assert_eq!(
            serial_log, par_log,
            "store shadow replay at sim_threads={threads} must reproduce the serial order"
        );
    }
}

#[test]
fn write_back_traffic_is_identical() {
    // Clean write-back: dirty evictions, write-allocate pending-store
    // merges and the kernel-end flush all cross the epoch barrier.
    let wb = GpuConfig {
        write_back: true,
        ..config()
    };
    assert_identical(&wb, false, &[&MixedKernel]);
    assert_identical(&wb, true, &[&MixedKernel]);
    let (serial, _) = run_with_threads(&wb, 1, true, &[&MixedKernel]);
    assert!(serial[0].writebacks > 0, "dirty lines must actually write back");
}

#[test]
fn tail_store_write_allocate_fills_outlive_all_warps() {
    // Pins the shard-done condition: at warp exit the last stores'
    // write-allocate fills are still in flight with no blocked warp
    // behind them, so only the buffered/enqueued fill traffic keeps
    // the run alive.
    let wb = GpuConfig {
        write_back: true,
        ..config()
    };
    assert_identical(&wb, false, &[&TailStoreKernel]);
    assert_identical(&wb, true, &[&TailStoreKernel]);
    let (serial, _) = run_with_threads(&wb, 1, true, &[&TailStoreKernel]);
    assert!(
        serial[0].writebacks > 0,
        "the tail stores' dirty lines must flush at kernel end"
    );
}

#[test]
fn write_back_fault_injection_is_identical() {
    // --inject-writeback: outbound write-back parity faults (stats-only
    // retries) plus the wider bitflip family for cross-fire coverage.
    let inj = GpuConfig {
        write_back: true,
        faults: Some(FaultConfig {
            writeback_fault_rate: 5e-2,
            ..FaultConfig::bitflips(31, 1e-3)
        }),
        ..config()
    };
    assert_identical(&inj, true, &[&WritePressureKernel]);
    let (serial, _) = run_with_threads(&inj, 1, true, &[&WritePressureKernel]);
    assert!(
        serial[0].faults.writeback_faults > 0,
        "write-back faults must actually fire at this rate"
    );
    assert_eq!(
        serial[0].faults.writeback_retry_cycles,
        serial[0].faults.writeback_faults * inj.l2_latency,
        "each write-back fault costs exactly one retry round trip"
    );
    // The planted drop-dirty-write-backs mutation must also be
    // thread-count invariant (the oracle flags it either way).
    let dropped = GpuConfig {
        write_back: true,
        faults: Some(FaultConfig {
            drop_writebacks: true,
            ..FaultConfig::default()
        }),
        ..config()
    };
    assert_identical(&dropped, true, &[&MixedKernel]);
    let (serial, _) = run_with_threads(&dropped, 1, true, &[&MixedKernel]);
    assert!(serial[0].faults.writebacks_dropped > 0);
    assert_eq!(serial[0].writebacks, 0, "dropped write-backs never count as sent");
}

#[test]
fn write_back_deadlock_termination_is_identical() {
    let strided = StridedKernel::new(6, 50, 256);
    let cfg = GpuConfig {
        write_back: true,
        faults: Some(FaultConfig {
            wakeup_drop_rate: 1.0,
            ..FaultConfig::wakeup_drops(41, 1.0)
        }),
        ..config()
    };
    let (serial, _) = run_with_threads(&cfg, 1, false, &[&strided, &MixedKernel]);
    assert!(serial.iter().any(|s| s.timed_out), "deadlock must actually happen");
    assert_identical(&cfg, false, &[&strided, &MixedKernel]);
}

#[test]
fn epoch_stats_account_for_the_whole_run() {
    let cfg = GpuConfig {
        sim_threads: 2,
        ..config()
    };
    let strided = StridedKernel::new(8, 200, 256);
    let mut gpu = Gpu::new(&cfg, |_| {
        Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>
    });
    let stats = gpu.run_kernel(&strided);
    let epochs = gpu.take_epoch_stats();
    assert!(epochs.epochs > 0);
    assert_eq!(
        epochs.advanced_cycles, stats.cycles,
        "epoch advances must cover exactly the simulated cycles"
    );
    assert!(epochs.max_epoch_cycles > 0);
    assert!(epochs.mean_epoch_cycles() > 0.0);
    assert_eq!(epochs.shards, 2);
    // take_epoch_stats drains.
    assert_eq!(gpu.take_epoch_stats(), latte_gpusim::EpochStats::default());
}
