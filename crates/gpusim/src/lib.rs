//! A cycle-level, trace-driven GPU simulator — the substrate on which the
//! LATTE-CC reproduction runs.
//!
//! The paper implements its design in GPGPU-Sim 3.2.2; this crate rebuilds
//! the parts of that infrastructure the contribution actually depends on:
//!
//! * **SMs and warps** — up to 48 warps per SM execute lazily-generated
//!   instruction streams ([`Op`]); warps block on loads and barriers and
//!   hide each other's latency exactly as in hardware.
//! * **Warp scheduling** — Greedy-Then-Oldest (the paper's scheduler) and
//!   loose round-robin, two schedulers per SM, with the probe counters the
//!   latency-tolerance estimator of Eq. (4) needs.
//! * **Memory hierarchy** — a compressed L1 per SM (4× tags, 32 B
//!   sub-blocks), MSHRs with miss merging, a decompression queue on the
//!   hit path (Eq. 3), a shared L2 and a fixed-latency DRAM behind it
//!   (Table II latencies).
//! * **Policy hook** — [`L1CompressionPolicy`], through which LATTE-CC
//!   and the baseline schemes decide, per fill, how to compress.
//! * **Experimental phases** — per-SM EP accounting (256 L1 accesses per
//!   EP) driving the policy's learning/adaptive machinery.
//!
//! # Example
//!
//! ```
//! use latte_gpusim::testing::StridedKernel;
//! use latte_gpusim::{Gpu, GpuConfig, UncompressedPolicy};
//!
//! let mut gpu = Gpu::new(&GpuConfig::small(), |_| Box::new(UncompressedPolicy));
//! let stats = gpu.run_kernel(&StridedKernel::new(8, 128, 256));
//! println!("IPC = {:.2}", stats.ipc());
//! # assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod faults;
mod fingerprint;
mod gpu;
mod ops;
mod parallel;
mod policy;
mod scheduler;
mod shadow;
mod sm;
mod stats;
pub mod testing;
mod trace;
mod warp;

pub use config::{GpuConfig, SchedulerKind};
pub use faults::{BitflipOutcome, FaultConfig, FaultInjector, FaultStats};
pub use fingerprint::{Fingerprinter, FINGERPRINT_SCHEMA_VERSION};
pub use gpu::Gpu;
pub use ops::{Kernel, Op, OpStream, VecStream};
pub use parallel::{install_epoch_clock, EpochStats, ARBITER_SHARED_FIELDS};
pub use policy::{AccessEvent, EpProbe, L1CompressionPolicy, PolicyReport, UncompressedPolicy};
pub use scheduler::{SchedulerProbe, WarpScheduler};
pub use shadow::{
    roundtrip_stored, ShadowCheck, ShadowCheckpoint, ShadowConfig, ShadowViolation,
    ShadowViolationKind,
};
pub use stats::{AlgoCounts, EpTraceEntry, KernelStats, TerminationReason};
pub use trace::TraceSink;
pub use warp::{Warp, WarpState};
