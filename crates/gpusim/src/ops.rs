//! The simulator's warp-level "instruction set" and the kernel abstraction
//! that workloads implement.
//!
//! The simulator is trace-driven: each warp executes a stream of [`Op`]s
//! produced on demand by an [`OpStream`]. This captures exactly the
//! dynamics LATTE-CC depends on — which warps are ready, which are waiting
//! on memory, and what data the caches hold — without modelling PTX.

use latte_cache::LineAddr;
use latte_compress::CacheLine;

/// One warp-level operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute `cycles` of non-memory work (ALU/SFU); the warp is busy and
    /// cannot issue again until the work retires.
    Compute {
        /// Busy time in cycles (0 is treated as 1).
        cycles: u32,
    },
    /// A warp-level load of the line containing `addr`. The warp blocks
    /// until this load *and every earlier [`Op::LoadAsync`]* complete.
    Load {
        /// Byte address accessed.
        addr: u64,
    },
    /// An independent warp-level load: the access is issued but the warp
    /// keeps executing (intra-warp memory-level parallelism). The next
    /// blocking [`Op::Load`] acts as the join point for all outstanding
    /// async loads.
    LoadAsync {
        /// Byte address accessed.
        addr: u64,
    },
    /// A warp-level store of one 32-byte sector. The warp does not block
    /// on completion. Under the default write-through, no-allocate L1
    /// (the paper's write-avoid configuration, §IV-C3) the payload is
    /// ignored; with `GpuConfig::write_back` the sector selected by
    /// `addr` bits \[5..7\] is merged into the cached line, the line is
    /// re-compressed, and the dirty copy is written back on eviction.
    Store {
        /// Byte address accessed; bits \[5..7\] select the 32-byte sector
        /// within the 128-byte line.
        addr: u64,
        /// The 32 bytes written to the selected sector.
        data: [u8; 32],
    },
    /// Block-wide barrier: the warp waits until every warp of its block
    /// arrives.
    Barrier,
    /// The warp is finished.
    Exit,
}

/// A per-warp instruction stream. Streams are generated lazily so that
/// billion-instruction workloads need no trace storage.
///
/// Streams are part of per-SM simulation state, which must be [`Send`] so
/// the parallel experiment driver can run whole simulations on worker
/// threads (each stream is still only ever driven by one thread).
pub trait OpStream: Send {
    /// Produces the next operation. Must return [`Op::Exit`] forever once
    /// the stream ends.
    fn next_op(&mut self) -> Op;
}

/// A boxed stream is itself a stream.
impl OpStream for Box<dyn OpStream> {
    fn next_op(&mut self) -> Op {
        (**self).next_op()
    }
}

/// An [`OpStream`] over a fixed vector — convenient for tests.
#[derive(Debug, Clone)]
pub struct VecStream {
    ops: Vec<Op>,
    pos: usize,
}

impl VecStream {
    /// Creates a stream that yields `ops` then [`Op::Exit`] forever.
    #[must_use]
    pub fn new(ops: Vec<Op>) -> VecStream {
        VecStream { ops, pos: 0 }
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> Op {
        let op = self.ops.get(self.pos).copied().unwrap_or(Op::Exit);
        self.pos += 1;
        op
    }
}

/// A kernel: the unit of GPU work (§V-B: "a kernel is the block of parallel
/// execution running on the GPU"). Workloads implement this; the simulator
/// launches one kernel at a time and [`crate::Gpu::run_kernel`] returns its
/// statistics.
///
/// Kernels must be **replayable**: `warp_program` takes `&self` so oracle
/// policies (Kernel-OPT) can re-run a kernel under different compression
/// modes. They are also `Send + Sync`: a launch shares one immutable
/// kernel description across SMs, and the planned `--sim-threads` mode
/// reads it from every worker concurrently (lint rule S1 audits this).
pub trait Kernel: Send + Sync {
    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// Number of warps this kernel puts on SM `sm` (≤ the config's
    /// `max_warps_per_sm`).
    fn warps_on_sm(&self, sm: usize) -> usize;

    /// The instruction stream for warp `warp` of SM `sm`.
    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream>;

    /// The memory contents of `addr` — a pure function of the address, so
    /// cache refills are deterministic and repeatable.
    fn line_data(&self, addr: LineAddr) -> CacheLine;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_stream_yields_then_exits() {
        let mut s = VecStream::new(vec![Op::Compute { cycles: 3 }, Op::Load { addr: 128 }]);
        assert_eq!(s.next_op(), Op::Compute { cycles: 3 });
        assert_eq!(s.next_op(), Op::Load { addr: 128 });
        assert_eq!(s.next_op(), Op::Exit);
        assert_eq!(s.next_op(), Op::Exit);
    }

    #[test]
    fn boxed_stream_is_a_stream() {
        let mut s: Box<dyn OpStream> = Box::new(VecStream::new(vec![Op::Barrier]));
        assert_eq!(s.next_op(), Op::Barrier);
        assert_eq!(s.next_op(), Op::Exit);
    }
}
