//! Deterministic structural fingerprints for configuration types.
//!
//! The bench harness memoizes simulations keyed by *what would be
//! simulated*: (policy, benchmark, machine configuration). The
//! configuration part of that key is a 128-bit fingerprint computed
//! here. Unlike `std::hash::Hash`, the result is stable across
//! processes and runs (no per-process `RandomState`), so equal configs
//! always produce equal keys — the property the memo cache's
//! "each unique simulation runs exactly once" contract rests on.
//!
//! The fingerprint folds every field through two independent mixing
//! functions (FNV-1a and a splitmix64-style avalanche over a second
//! accumulator) and concatenates the two 64-bit states. Collisions
//! between *different* configs would silently alias two simulations, so
//! the 128-bit width and the field-tagging discipline below err on the
//! side of paranoia: every write is preceded by nothing, but every
//! `Option` writes a presence tag so `Some(0)` and `None` differ, and
//! floats are folded via their IEEE-754 bit patterns so `-0.0`/`0.0`
//! and NaN payloads are distinguished rather than conflated.

/// Version of the fingerprint *schema*: the set and order of fields the
/// simulation key folds, plus the serialized-result layout persistent
/// stores key on. Bump this whenever a change makes previously computed
/// results incomparable with fresh ones — a new config field entering
/// the fingerprint, a semantic change to an existing field, or a change
/// to the on-disk result encoding. Keys salted with different schema
/// versions never collide, so a persistent result store written by an
/// older build simply misses (and re-records) instead of serving stale
/// results under a new meaning.
pub const FINGERPRINT_SCHEMA_VERSION: u64 = 2;

/// Accumulates a stable 128-bit fingerprint from a stream of typed
/// field writes.
///
/// # Example
///
/// ```
/// use latte_gpusim::Fingerprinter;
///
/// let mut a = Fingerprinter::new();
/// a.write_u64(1);
/// a.write_bool(true);
/// let mut b = Fingerprinter::new();
/// b.write_u64(1);
/// b.write_bool(true);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    fnv: u64,
    mix: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finalizer: a full-avalanche bijection on u64.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Fingerprinter {
    /// A fresh fingerprinter with fixed initial state.
    #[must_use]
    pub fn new() -> Fingerprinter {
        Fingerprinter {
            fnv: FNV_OFFSET,
            mix: 0x5851_f42d_4c95_7f2d,
        }
    }

    /// A fingerprinter pre-seeded with [`FINGERPRINT_SCHEMA_VERSION`]
    /// and a caller-chosen domain string. Keys derived through different
    /// domains (or different schema versions) live in disjoint key
    /// spaces, which is what lets a persistent store mix record
    /// generations in one directory without ever aliasing them.
    #[must_use]
    pub fn salted(domain: &str) -> Fingerprinter {
        let mut fp = Fingerprinter::new();
        fp.write_u64(FINGERPRINT_SCHEMA_VERSION);
        fp.write_str(domain);
        fp
    }

    /// Folds one 64-bit value into both accumulators.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.fnv = (self.fnv ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        self.mix = splitmix(self.mix ^ v);
    }

    /// Folds a `usize` (widened so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Folds a bool as a full word so adjacent bools cannot merge.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Folds a byte string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` written back-to-back cannot collide.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Folds a string ([`Fingerprinter::write_bytes`] of its UTF-8).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Folds an `f64` via its exact bit pattern (`-0.0 != 0.0`, NaN
    /// payloads preserved) — equal-valued configs hash equal, nothing
    /// more is promised for floats.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds an optional `f64`, tagging presence so `None` and
    /// `Some(0.0)` differ.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.write_u64(0),
            Some(x) => {
                self.write_u64(1);
                self.write_f64(x);
            }
        }
    }

    /// The final 128-bit fingerprint.
    #[must_use]
    pub fn finish(&self) -> u128 {
        // One extra avalanche round so trailing writes affect high bits.
        (u128::from(splitmix(self.fnv)) << 64) | u128::from(splitmix(self.mix))
    }
}

impl Default for Fingerprinter {
    fn default() -> Fingerprinter {
        Fingerprinter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salted_domains_are_disjoint() {
        let a = Fingerprinter::salted("store/a").finish();
        let b = Fingerprinter::salted("store/b").finish();
        let plain = Fingerprinter::new().finish();
        assert_ne!(a, b);
        assert_ne!(a, plain);
        // Same domain => same starting state.
        assert_eq!(a, Fingerprinter::salted("store/a").finish());
    }

    #[test]
    fn equal_streams_agree_and_order_matters() {
        let mut a = Fingerprinter::new();
        a.write_u64(7);
        a.write_u64(9);
        let mut b = Fingerprinter::new();
        b.write_u64(7);
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprinter::new();
        c.write_u64(9);
        c.write_u64(7);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn option_tagging_distinguishes_none_from_some_zero() {
        let mut none = Fingerprinter::new();
        none.write_opt_f64(None);
        let mut some = Fingerprinter::new();
        some.write_opt_f64(Some(0.0));
        assert_ne!(none.finish(), some.finish());
    }

    #[test]
    fn float_sign_of_zero_is_significant() {
        let mut pos = Fingerprinter::new();
        pos.write_f64(0.0);
        let mut neg = Fingerprinter::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let mut a = Fingerprinter::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprinter::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprinter::new();
        c.write_str("ab");
        c.write_str("c");
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn single_bit_flips_change_the_fingerprint() {
        let mut base = Fingerprinter::new();
        base.write_u64(0);
        let base = base.finish();
        for bit in 0..64 {
            let mut f = Fingerprinter::new();
            f.write_u64(1u64 << bit);
            assert_ne!(f.finish(), base, "bit {bit}");
        }
    }
}
