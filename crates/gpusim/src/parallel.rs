//! Deterministic intra-simulation parallelism (`GpuConfig::sim_threads`).
//!
//! Shards of `(Sm, policy)` pairs simulate independently on worker
//! threads for bounded *epochs*; at each epoch barrier a single arbiter
//! drains every shard's buffered L2 traffic through the real shared
//! cache in a fixed total order and routes the resulting completions
//! back to the owning shards. The result is **byte-identical** to the
//! serial loop — every counter, trace line, shadow call and termination
//! cycle — which the determinism suite pins.
//!
//! # Why byte-identity holds
//!
//! * **Epoch bound.** An epoch spans `Δ = min(l2_latency, dram_latency)`
//!   simulated cycles. Every shared-memory round trip takes ≥ Δ cycles,
//!   so a request issued inside an epoch cannot complete — and therefore
//!   cannot influence any SM — before the epoch ends. Within an epoch
//!   the shards are fully independent. (`Δ == 0` forces the serial
//!   path; see [`effective_threads`].)
//! * **Total order at the barrier.** Each SM performs at most one L2
//!   access per cycle (the single LD/ST port), and the serial loop
//!   issues SMs in id order within a cycle, so sorting buffered requests
//!   by `(cycle, sm, seq)` replays the serial L2 access order exactly —
//!   preserving the cache's internal LRU clock and hit/miss statistics.
//! * **Self-targeted events.** Every event an SM pushes targets itself
//!   (fill retries, write-allocate fetches), so per-shard event heaps
//!   pop the same per-SM subsequences as the global serial heap, and
//!   arbiter-generated completions land at cycles ≥ the epoch end.
//! * **Idle equivalence.** A scheduler swept with nothing ready behaves
//!   identically to `account_idle_cycles(1)`, and warp availability is
//!   constant across idle gaps, so shards only need to process their own
//!   "interesting" cycles — the same fast-forward the serial loop does.
//! * **Shadow replay.** Shards record oracle calls into a local buffer;
//!   the barrier replays them into the real hook sorted by
//!   `(cycle, phase, sm, seq)` (fills before issues within a cycle),
//!   which is exactly the serial call order.
//!
//! The thread count is *excluded* from the config fingerprint: it cannot
//! change results, so memoized/stored results transfer freely between
//! serial and parallel runs.

use crate::config::GpuConfig;
use crate::ops::Kernel;
use crate::policy::L1CompressionPolicy;
use crate::shadow::{ShadowCheck, ShadowCheckpoint};
use crate::sm::{L2Buffer, L2Port, L2RequestKind, MemCtx, MemEvent, MemImage, Sm};
use crate::stats::{KernelStats, TerminationReason};
use latte_cache::{LineAddr, SimpleCache};
use latte_compress::{CacheLine, Cycles};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::sync::OnceLock;

/// Injected wall clock for epoch busy/stall accounting. The simulation
/// crates are wall-clock-free (lint rule D1); like the compressor stage
/// counters, this module only ever sees a clock the driver installs.
/// Without one, all busy/stall figures are zero and epoch *counts* still
/// accumulate. Write-once; the first installation wins.
// latte-lint: shared-boundary(reason = "write-once injected clock fn pointer; read only for epoch busy/stall telemetry that never feeds back into simulated state")
static EPOCH_CLOCK: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the monotonic nanosecond clock used for epoch/barrier
/// telemetry. Idempotent: the first installation wins.
pub fn install_epoch_clock(clock: fn() -> u64) {
    let _ = EPOCH_CLOCK.set(clock);
}

fn now_ns() -> u64 {
    EPOCH_CLOCK.get().map_or(0, |clock| clock())
}

/// The `(owner, field)` edges of the SM state graph that the epoch
/// barrier machinery touches — the runtime counterpart of lint rule S1's
/// `shared` classification. The partition-conformance test asserts every
/// entry here is classified `shared` in `results/lint_partition.json`,
/// so the static report and the runtime barrier cannot drift apart
/// silently.
pub const ARBITER_SHARED_FIELDS: &[(&str, &str)] = &[
    ("MemCtx", "l2"),
    ("MemCtx", "events"),
    ("MemCtx", "policy"),
    ("MemCtx", "kernel"),
    ("MemCtx", "config"),
    ("MemCtx", "stats"),
    ("MemCtx", "shadow"),
    ("L2Port", "Direct"),
    ("L2Port", "Deferred"),
];

/// Epoch/barrier accounting for `--timings` (host-side telemetry only;
/// deliberately *not* part of [`KernelStats`], which is serialized into
/// the result store and must stay a pure function of the inputs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Barrier rounds run (0 after a serial run).
    pub epochs: u64,
    /// Total simulated cycles covered by those epochs.
    pub advanced_cycles: u64,
    /// Largest single-epoch advance in simulated cycles.
    pub max_epoch_cycles: u64,
    /// Shard/worker count of the widest parallel run recorded.
    pub shards: usize,
    /// Per-shard nanoseconds spent simulating inside epochs.
    pub busy_ns: Vec<u64>,
    /// Per-shard nanoseconds spent stalled at barriers (waiting for the
    /// slowest shard of each epoch).
    pub stall_ns: Vec<u64>,
}

impl EpochStats {
    /// Folds another accounting record into this one (element-wise).
    pub fn merge(&mut self, other: &EpochStats) {
        self.epochs += other.epochs;
        self.advanced_cycles += other.advanced_cycles;
        self.max_epoch_cycles = self.max_epoch_cycles.max(other.max_epoch_cycles);
        self.shards = self.shards.max(other.shards);
        if self.busy_ns.len() < other.busy_ns.len() {
            self.busy_ns.resize(other.busy_ns.len(), 0);
        }
        if self.stall_ns.len() < other.stall_ns.len() {
            self.stall_ns.resize(other.stall_ns.len(), 0);
        }
        for (into, from) in self.busy_ns.iter_mut().zip(&other.busy_ns) {
            *into += from;
        }
        for (into, from) in self.stall_ns.iter_mut().zip(&other.stall_ns) {
            *into += from;
        }
    }

    /// Mean simulated cycles advanced per epoch.
    #[must_use]
    pub fn mean_epoch_cycles(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.advanced_cycles as f64 / self.epochs as f64
        }
    }
}

/// The worker count a config actually gets: `sim_threads`, clamped to
/// the SM count, and forced to 1 when the epoch bound `Δ` would be zero
/// (a zero-latency L2 *and* DRAM leaves no window in which shards are
/// independent).
#[must_use]
pub(crate) fn effective_threads(config: &GpuConfig) -> usize {
    let delta = config.l2_latency.min(config.dram_latency);
    if delta == 0 {
        return 1;
    }
    config.sim_threads.max(1).min(config.num_sms.max(1))
}

/// What the parallel loop hands back to [`crate::Gpu::run_kernel`].
pub(crate) struct Outcome {
    /// Final processed cycle (the serial loop's `cycle` at its break).
    pub cycle: Cycles,
    /// Early-termination reason to run the watchdog audit with, if any.
    pub fallback: Option<TerminationReason>,
}

/// One recorded oracle call, tagged with its deterministic replay key.
enum ShadowCall {
    Fill { addr: LineAddr, data: CacheLine },
    Load { addr: LineAddr, observed: Option<CacheLine> },
    Store { addr: LineAddr, data: CacheLine },
    Checkpoint { kind: ShadowCheckpoint, errors: Vec<String> },
}

struct ShadowRecord {
    cycle: Cycles,
    /// 0 = delivery phase, 1 = issue phase; the serial loop delivers
    /// before issuing within a cycle.
    phase: u8,
    sm: usize,
    /// Emission order within this recorder (ties inside one phase of one
    /// SM's cycle replay in emission order).
    seq: u64,
    call: ShadowCall,
}

/// Shard-local [`ShadowCheck`] implementation: buffers every call with
/// its replay key instead of touching the real (single-threaded) hook.
///
/// The replay phase is a recorder *state* set by `process_cycle`, not a
/// property of the call kind: fills happen only at delivery and
/// loads/checkpoints only at issue, but a store call fires in either —
/// at issue for a store hit, at delivery when a fill merges a pending
/// write-allocate store — and must replay exactly where the serial loop
/// would have made it.
#[derive(Default)]
struct ShadowRecorder {
    records: Vec<ShadowRecord>,
    seq: u64,
    /// 0 = delivery phase, 1 = issue phase (set by `process_cycle`).
    phase: u8,
}

impl ShadowRecorder {
    fn record(&mut self, cycle: Cycles, sm: usize, call: ShadowCall) {
        self.records.push(ShadowRecord {
            cycle,
            phase: self.phase,
            sm,
            seq: self.seq,
            call,
        });
        self.seq += 1;
    }
}

impl ShadowCheck for ShadowRecorder {
    fn on_fill(&mut self, sm: usize, addr: LineAddr, data: &CacheLine, cycle: Cycles) {
        self.record(cycle, sm, ShadowCall::Fill { addr, data: *data });
    }

    fn on_load(
        &mut self,
        sm: usize,
        addr: LineAddr,
        observed: Option<&CacheLine>,
        cycle: Cycles,
    ) {
        self.record(
            cycle,
            sm,
            ShadowCall::Load {
                addr,
                observed: observed.copied(),
            },
        );
    }

    fn on_store(&mut self, sm: usize, addr: LineAddr, data: &CacheLine, cycle: Cycles) {
        self.record(cycle, sm, ShadowCall::Store { addr, data: *data });
    }

    fn on_checkpoint(
        &mut self,
        sm: usize,
        cycle: Cycles,
        kind: ShadowCheckpoint,
        structural_errors: &[String],
    ) {
        self.record(
            cycle,
            sm,
            ShadowCall::Checkpoint {
                kind,
                errors: structural_errors.to_vec(),
            },
        );
    }
}

/// One SM and its private compression policy, moving together between
/// the coordinator and a worker thread.
struct ShardUnit {
    sm: Sm,
    policy: Box<dyn L1CompressionPolicy>,
}

/// A contiguous slice of the machine's SMs plus everything they need to
/// simulate an epoch without touching shared state.
struct Shard<'k> {
    /// First SM id in this shard (ids are contiguous).
    base: usize,
    units: Vec<ShardUnit>,
    /// Shard-private completion heap (every SM event is self-targeted).
    events: BinaryHeap<Reverse<MemEvent>>,
    /// Deferred shared-L2 traffic for the barrier arbiter.
    buffer: L2Buffer,
    /// Present iff the run is shadow-checked.
    recorder: Option<ShadowRecorder>,
    /// Shard-local counters, merged into the launch totals at the end.
    stats: KernelStats,
    /// Last processed cycle (`None` before cycle 0 runs).
    last: Option<Cycles>,
    /// Whether the last processed cycle issued any instruction.
    issued_last: bool,
    /// Cycle at which this shard went locally quiescent, if it has.
    done_at: Option<Cycles>,
    kernel: &'k dyn Kernel,
    config: &'k GpuConfig,
    shadow_every: u64,
}

impl Shard<'_> {
    /// The next cycle this shard would process — the exact analogue of
    /// the serial loop's advance rule, restricted to this shard's SMs.
    /// `None` means stuck: nothing pending, not all finished (revivable
    /// only by an arbiter completion; otherwise a deadlock).
    fn next_candidate(&self) -> Option<Cycles> {
        let Some(last) = self.last else {
            // Cycle 0 is processed unconditionally, as in the serial loop.
            return Some(0);
        };
        if self.issued_last {
            return Some(last + 1);
        }
        let next_event = self.events.peek().map(|&Reverse(e)| e.cycle);
        let next_wake = self.units.iter().filter_map(|u| u.sm.next_wake()).min();
        let target = match (next_event, next_wake) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        Some(target.max(last + 1))
    }

    /// Local quiescence. Buffered load-fill requests count as pending
    /// work: a fire-and-forget store's write-allocate fill leaves no
    /// blocked warp behind, so without this term a shard would declare
    /// itself done while the fill (and its eventual dirty write-back)
    /// is still waiting for the barrier arbiter. The serial loop gets
    /// this for free — `L2Port::Direct` pushes the completion into the
    /// global heap before the `done` check ever runs. Buffered stores
    /// and write-backs do NOT block doneness: they produce no
    /// completion event, the arbiter drains every shard's buffer
    /// regardless of `done_at`, and the serial loop likewise observes
    /// `done` on the very cycle it processes them inline.
    fn is_done(&self) -> bool {
        self.units.iter().all(|u| u.sm.all_finished())
            && self.events.is_empty()
            && !self
                .buffer
                .requests
                .iter()
                .any(|r| matches!(r.kind, L2RequestKind::LoadFill { .. }))
    }

    /// Processes one cycle exactly as the serial loop would for these
    /// SMs: account the idle gap, deliver due local completions, issue
    /// every SM in id order, then note quiescence.
    fn process_cycle(&mut self, cycle: Cycles) {
        if let Some(last) = self.last {
            let skipped = cycle - last - 1;
            if skipped > 0 {
                for unit in &mut self.units {
                    unit.sm.account_idle(skipped);
                }
            }
        }
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.phase = 0;
        }
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.cycle > cycle {
                break;
            }
            self.events.pop();
            let unit = &mut self.units[ev.sm - self.base];
            let mut ctx = MemCtx {
                l2: L2Port::Deferred(&mut self.buffer),
                events: &mut self.events,
                policy: unit.policy.as_mut(),
                kernel: self.kernel,
                config: self.config,
                stats: &mut self.stats,
                shadow: self
                    .recorder
                    .as_mut()
                    .map(|r| r as &mut (dyn ShadowCheck + 'static)),
                shadow_every: self.shadow_every,
            };
            unit.sm
                .handle_fill(ev.addr, ev.cycle.max(cycle), ev.verified, ev.data, &mut ctx);
        }
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.phase = 1;
        }
        let mut issued = 0;
        for unit in &mut self.units {
            let mut ctx = MemCtx {
                l2: L2Port::Deferred(&mut self.buffer),
                events: &mut self.events,
                policy: unit.policy.as_mut(),
                kernel: self.kernel,
                config: self.config,
                stats: &mut self.stats,
                shadow: self
                    .recorder
                    .as_mut()
                    .map(|r| r as &mut (dyn ShadowCheck + 'static)),
                shadow_every: self.shadow_every,
            };
            issued += unit.sm.issue_cycle(cycle, &mut ctx);
        }
        self.stats.instructions += issued;
        self.last = Some(cycle);
        self.issued_last = issued > 0;
        if self.done_at.is_none() && self.is_done() {
            self.done_at = Some(cycle);
        }
    }

    /// Simulates until the epoch end, the cycle limit, quiescence, or a
    /// stuck state — whichever comes first.
    fn run_epoch(&mut self, epoch_end: Cycles) {
        let limit = self.config.max_cycles_per_kernel;
        while self.done_at.is_none() {
            let Some(cycle) = self.next_candidate() else {
                return;
            };
            if cycle >= epoch_end || cycle >= limit {
                return;
            }
            self.process_cycle(cycle);
        }
    }
}

/// One unit of work shipped to a worker: the shard plus its epoch bound;
/// the worker fills in its busy time on the way back.
struct EpochJob<'k> {
    shard: Box<Shard<'k>>,
    epoch_end: Cycles,
    busy_ns: u64,
}

/// How the coordinator loop ended.
enum LoopExit {
    Finished {
        cycle: Cycles,
        fallback: Option<TerminationReason>,
    },
    /// A worker channel died mid-run. Unreachable in practice: the only
    /// cause is a worker panic, which `thread::scope` re-raises before
    /// this value can be observed.
    WorkerLost,
}

/// Folds the shard-locally accumulated counters into the launch totals.
/// Only the counters SM stepping code touches are listed; `cycles`,
/// `l1`/`l2`, `barrier_wait_cycles` and the termination fields are set
/// by the caller's epilogue, exactly as after a serial run.
fn merge_counters(into: &mut KernelStats, from: &KernelStats) {
    into.instructions += from.instructions;
    into.dram_accesses += from.dram_accesses;
    into.loads += from.loads;
    into.stores += from.stores;
    into.compressions += from.compressions;
    into.decompressions += from.decompressions;
    into.mshr_stalls += from.mshr_stalls;
    into.hit_wait_cycles += from.hit_wait_cycles;
    into.miss_wait_cycles += from.miss_wait_cycles;
    into.eps_completed += from.eps_completed;
    into.decompression_queue_wait += from.decompression_queue_wait;
    into.traces.extend(from.traces.iter().copied());
    into.writebacks += from.writebacks;
    into.faults += from.faults;
}

/// Drains every shard's buffered L2 traffic through the real cache in
/// the serial total order — `(cycle, phase, sm, seq)` — updating the
/// launch stats and routing load-fill completions into the owning
/// shard's heap. The `phase` key exists for the write-back path: dirty
/// evictions at fill delivery reach the L2 in the serial loop's delivery
/// sweep (phase 0), before any of that cycle's issued traffic (phase 1).
fn arbitrate(
    shards: &mut [Option<Box<Shard<'_>>>],
    chunk: usize,
    l2: &mut SimpleCache,
    image: &mut MemImage,
    config: &GpuConfig,
    stats: &mut KernelStats,
) {
    let mut requests = Vec::new();
    for shard in shards.iter_mut().flatten() {
        requests.append(&mut shard.buffer.requests);
    }
    requests.sort_unstable_by_key(|r| (r.cycle, r.phase, r.sm, r.seq));
    for req in requests {
        match req.kind {
            L2RequestKind::Store => {
                if !l2.access_and_fill(req.addr) {
                    stats.dram_accesses += 1;
                }
            }
            L2RequestKind::WriteBack { data } => {
                image.insert(req.addr, data);
                if !l2.access_and_fill(req.addr) {
                    stats.dram_accesses += 1;
                }
            }
            L2RequestKind::LoadFill { spike } => {
                let mut latency = if l2.access_and_fill(req.addr) {
                    config.l2_latency
                } else {
                    stats.dram_accesses += 1;
                    config.dram_latency
                };
                latency += spike;
                if let Some(shard) = shards.get_mut(req.sm / chunk).and_then(Option::as_mut) {
                    shard.events.push(Reverse(MemEvent {
                        cycle: req.cycle + latency,
                        sm: req.sm,
                        addr: req.addr,
                        verified: false,
                        data: image.get(&req.addr).copied(),
                    }));
                }
            }
        }
    }
}

/// Replays every shard's recorded oracle calls into the real hook in the
/// serial call order: `(cycle, phase, sm, seq)`.
fn replay_shadow(
    shards: &mut [Option<Box<Shard<'_>>>],
    shadow: &mut Option<&mut (dyn ShadowCheck + 'static)>,
) {
    let Some(hook) = shadow.as_mut() else {
        return;
    };
    let mut records = Vec::new();
    for shard in shards.iter_mut().flatten() {
        if let Some(recorder) = shard.recorder.as_mut() {
            records.append(&mut recorder.records);
        }
    }
    records.sort_unstable_by_key(|r| (r.cycle, r.phase, r.sm, r.seq));
    for record in records {
        match record.call {
            ShadowCall::Fill { addr, data } => {
                hook.on_fill(record.sm, addr, &data, record.cycle);
            }
            ShadowCall::Load { addr, observed } => {
                hook.on_load(record.sm, addr, observed.as_ref(), record.cycle);
            }
            ShadowCall::Store { addr, data } => {
                hook.on_store(record.sm, addr, &data, record.cycle);
            }
            ShadowCall::Checkpoint { kind, errors } => {
                hook.on_checkpoint(record.sm, record.cycle, kind, &errors);
            }
        }
    }
}

/// Runs the kernel's cycle loop across `threads` shards of SMs with a
/// deterministic epoch barrier. On return, `sms`/`policies` are restored
/// in id order and `stats` holds the same counters a serial run would
/// have produced; the caller runs the common epilogue.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cycles<'k>(
    threads: usize,
    sms: &mut Vec<Sm>,
    policies: &mut Vec<Box<dyn L1CompressionPolicy>>,
    l2: &mut SimpleCache,
    image: &mut MemImage,
    mut shadow: Option<&mut (dyn ShadowCheck + 'static)>,
    shadow_every: u64,
    config: &'k GpuConfig,
    kernel: &'k dyn Kernel,
    stats: &mut KernelStats,
    epoch_stats: &mut EpochStats,
) -> Outcome {
    let delta = config.l2_latency.min(config.dram_latency);
    let limit = config.max_cycles_per_kernel;
    let total = sms.len();
    let chunk = total.div_ceil(threads).max(1);
    let shadowed = shadow.is_some();

    // Move the SMs and their policies into contiguous shards.
    let mut drained: Vec<ShardUnit> = sms
        .drain(..)
        .zip(policies.drain(..))
        .map(|(sm, policy)| ShardUnit { sm, policy })
        .collect();
    let mut shards: Vec<Option<Box<Shard<'k>>>> = Vec::with_capacity(total.div_ceil(chunk));
    while !drained.is_empty() {
        let tail = if drained.len() > chunk {
            drained.split_off(chunk)
        } else {
            Vec::new()
        };
        let units = std::mem::replace(&mut drained, tail);
        shards.push(Some(Box::new(Shard {
            base: units.first().map_or(0, |u| u.sm.id),
            units,
            events: BinaryHeap::new(),
            buffer: L2Buffer::default(),
            recorder: shadowed.then(ShadowRecorder::default),
            stats: KernelStats::default(),
            last: None,
            issued_last: false,
            done_at: None,
            kernel,
            config,
            shadow_every,
        })));
    }
    let workers = shards.len();
    let mut busy = vec![0u64; workers];
    let mut stall = vec![0u64; workers];
    let mut epochs = 0u64;
    let mut max_advance = 0u64;
    let mut prev_start: Option<Cycles> = None;

    let exit = std::thread::scope(|scope| {
        let mut to_worker = Vec::with_capacity(workers);
        let mut from_worker = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<EpochJob<'k>>();
            let (res_tx, res_rx) = mpsc::channel::<EpochJob<'k>>();
            scope.spawn(move || {
                while let Ok(mut job) = job_rx.recv() {
                    let start = now_ns();
                    job.shard.run_epoch(job.epoch_end);
                    job.busy_ns = now_ns().saturating_sub(start);
                    if res_tx.send(job).is_err() {
                        break;
                    }
                }
            });
            to_worker.push(job_tx);
            from_worker.push(res_rx);
        }

        loop {
            // Classify every shard at the barrier.
            let mut any_stuck = false;
            let mut running: Vec<(usize, Cycles)> = Vec::new();
            for (i, slot) in shards.iter().enumerate() {
                let Some(shard) = slot.as_ref() else { continue };
                if shard.done_at.is_some() {
                    continue;
                }
                match shard.next_candidate() {
                    Some(c) => running.push((i, c)),
                    None => any_stuck = true,
                }
            }

            if running.is_empty() {
                let live = || shards.iter().flatten();
                if any_stuck {
                    // Workload deadlock: the serial loop would coast to
                    // one cycle past the last issuing cycle and bail.
                    let cycle = live()
                        .map(|s| s.last.unwrap_or(0) + u64::from(s.issued_last))
                        .max()
                        .unwrap_or(0);
                    return LoopExit::Finished {
                        cycle,
                        fallback: Some(TerminationReason::Deadlock),
                    };
                }
                let cycle = live().filter_map(|s| s.done_at).max().unwrap_or(0);
                return LoopExit::Finished { cycle, fallback: None };
            }

            let epoch_start = running.iter().map(|&(_, c)| c).min().unwrap_or(0);
            if epoch_start >= limit {
                // Cycle-limit endgame: the serial loop would process
                // exactly this one cycle, observe the limit, and break.
                // Cheap enough to run inline on the coordinator.
                for &(i, c) in &running {
                    if c == epoch_start {
                        if let Some(shard) = shards[i].as_mut() {
                            shard.process_cycle(epoch_start);
                        }
                    }
                }
                arbitrate(&mut shards, chunk, l2, image, config, stats);
                replay_shadow(&mut shards, &mut shadow);
                epochs += 1;
                let all_done = shards.iter().flatten().all(|s| s.done_at.is_some());
                return LoopExit::Finished {
                    cycle: epoch_start,
                    fallback: (!all_done).then_some(TerminationReason::CycleLimit),
                };
            }

            // Normal epoch: [epoch_start, epoch_start + Δ).
            let epoch_end = epoch_start.saturating_add(delta);
            let mut dispatched: Vec<usize> = Vec::new();
            for &(i, c) in &running {
                if c < epoch_end && c < limit {
                    let Some(shard) = shards[i].take() else { continue };
                    let job = EpochJob {
                        shard,
                        epoch_end,
                        busy_ns: 0,
                    };
                    match to_worker[i].send(job) {
                        Ok(()) => dispatched.push(i),
                        Err(mpsc::SendError(job)) => {
                            shards[i] = Some(job.shard);
                            return LoopExit::WorkerLost;
                        }
                    }
                }
            }
            let wait_start = now_ns();
            let mut job_busy = vec![0u64; dispatched.len()];
            for (slot, &i) in job_busy.iter_mut().zip(&dispatched) {
                match from_worker[i].recv() {
                    Ok(job) => {
                        busy[i] += job.busy_ns;
                        *slot = job.busy_ns;
                        shards[i] = Some(job.shard);
                    }
                    Err(_) => return LoopExit::WorkerLost,
                }
            }
            let span = now_ns().saturating_sub(wait_start);
            for (&i, &b) in dispatched.iter().zip(&job_busy) {
                stall[i] += span.saturating_sub(b);
            }

            arbitrate(&mut shards, chunk, l2, image, config, stats);
            replay_shadow(&mut shards, &mut shadow);

            epochs += 1;
            if let Some(prev) = prev_start {
                max_advance = max_advance.max(epoch_start - prev);
            }
            prev_start = Some(epoch_start);
        }
    });

    // Reassemble the machine in SM id order and fold the shard counters
    // into the launch totals.
    for slot in &mut shards {
        let Some(shard) = slot.take() else { continue };
        let shard = *shard;
        merge_counters(stats, &shard.stats);
        for unit in shard.units {
            sms.push(unit.sm);
            policies.push(unit.policy);
        }
    }

    let outcome = match exit {
        LoopExit::Finished { cycle, fallback } => Outcome { cycle, fallback },
        LoopExit::WorkerLost => Outcome {
            cycle: 0,
            fallback: Some(TerminationReason::FaultAbort),
        },
    };

    epoch_stats.epochs += epochs;
    epoch_stats.advanced_cycles += outcome.cycle;
    if let Some(prev) = prev_start {
        max_advance = max_advance.max(outcome.cycle.saturating_sub(prev));
    }
    epoch_stats.max_epoch_cycles = epoch_stats.max_epoch_cycles.max(max_advance);
    epoch_stats.shards = epoch_stats.shards.max(workers);
    if epoch_stats.busy_ns.len() < workers {
        epoch_stats.busy_ns.resize(workers, 0);
    }
    if epoch_stats.stall_ns.len() < workers {
        epoch_stats.stall_ns.resize(workers, 0);
    }
    for (into, from) in epoch_stats.busy_ns.iter_mut().zip(&busy) {
        *into += from;
    }
    for (into, from) in epoch_stats.stall_ns.iter_mut().zip(&stall) {
        *into += from;
    }

    outcome
}
