//! One streaming multiprocessor: warps, schedulers, L1, decompression
//! queue, MSHRs and the experimental-phase (EP) bookkeeping.

// Order-independence audit (2026-08): `waiters` is accessed only through
// keyed operations (entry/remove/contains_key/is_empty/clear) — never
// iterated — and the Vec behind each key preserves enqueue order, so
// wakeup order is insertion order, not hash order.
// latte-lint: allow-file(D3, reason = "keyed access only, never iterated; per-key Vec keeps wakeups in enqueue order")

use crate::config::GpuConfig;
use crate::faults::{BitflipOutcome, FaultInjector};
use crate::ops::{Kernel, Op};
use crate::policy::{AccessEvent, EpProbe, L1CompressionPolicy};
use crate::scheduler::WarpScheduler;
use crate::shadow::{roundtrip_stored, ShadowCheck, ShadowCheckpoint};
use crate::stats::{EpTraceEntry, KernelStats};
use crate::warp::{Warp, WarpState};
use latte_cache::{
    CompressedCache, DecompressionQueue, LineAddr, LookupOutcome, Mshr, MshrOutcome,
};
use latte_compress::{Compression, Cycles};
use std::collections::HashMap;

/// A memory request completing at `cycle` for `sm`'s line `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MemEvent {
    pub cycle: Cycles,
    pub sm: usize,
    pub addr: LineAddr,
    /// `true` for a parity-retry re-send: the return-path data has
    /// already been checked, so the fill-bitflip site must not roll
    /// again (guarantees forward progress even at injection rate 1.0).
    pub verified: bool,
}

/// One buffered shared-L2 access awaiting the epoch barrier.
///
/// Under `--sim-threads`, SMs never touch the L2 directly; they emit
/// these records into a shard-local [`L2Buffer`] and the barrier arbiter
/// replays them through the real cache in `(cycle, sm, seq)` order —
/// exactly the order the serial loop would have performed them (at most
/// one L2 access per `(cycle, sm)` thanks to the single LD/ST port, and
/// the serial loop issues SMs in id order within a cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L2Request {
    /// Cycle the SM performed the access.
    pub cycle: Cycles,
    /// Issuing SM.
    pub sm: usize,
    /// Emission sequence within the buffer — a tie-break of last resort;
    /// `(cycle, sm)` is already unique per L2 access.
    pub seq: u64,
    /// Line accessed.
    pub addr: LineAddr,
    /// What the access was.
    pub kind: L2RequestKind,
}

/// The two kinds of shared-L2 traffic an SM generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L2RequestKind {
    /// A load miss's fill round trip; the arbiter owes the SM a
    /// completion event. `spike` carries the latency-spike fault rolled
    /// SM-locally at issue time, so the injector's stream position is
    /// identical to the serial run.
    LoadFill {
        /// Extra cycles from an injected latency spike (0 when none).
        spike: Cycles,
    },
    /// A write-through store; no completion is delivered.
    Store,
}

/// Epoch-local buffer of deferred L2 accesses (one per shard). Plain
/// owned data: the shared cache itself is only ever touched by the
/// arbiter draining these records at the barrier.
#[derive(Debug, Default)]
pub(crate) struct L2Buffer {
    /// Buffered requests, in emission order.
    pub requests: Vec<L2Request>,
    seq: u64,
}

impl L2Buffer {
    fn push(&mut self, cycle: Cycles, sm: usize, addr: LineAddr, kind: L2RequestKind) {
        self.requests.push(L2Request {
            cycle,
            sm,
            seq: self.seq,
            addr,
            kind,
        });
        self.seq += 1;
    }
}

/// How an SM reaches the shared L2 while stepping: inline in the serial
/// loop, or deferred to the epoch-barrier arbiter under `--sim-threads`.
/// The serial variant is the only place SM code can reach shared cache
/// state, and it is exercised strictly one SM at a time.
pub(crate) enum L2Port<'a> {
    /// Serial path: access the shared L2 inline, exactly as the
    /// single-threaded loop always has.
    // latte-lint: shared-boundary(reason = "the shared L2, accessed inline by the single-threaded loop only; one SM steps at a time, so the reference is never aliased")
    Direct(&'a mut latte_cache::SimpleCache),
    /// Parallel path: buffer the access into shard-local memory; the
    /// epoch-barrier arbiter drains every shard's buffer through the
    /// real L2 in `(cycle, sm, seq)` order.
    // latte-lint: shared-boundary(reason = "epoch-local request buffer; the barrier arbiter serializes it through the real L2 in fixed (cycle, sm, seq) order, so no two threads ever race on cache state")
    Deferred(&'a mut L2Buffer),
}

/// Shared resources an SM needs while stepping (split off `Gpu` to keep
/// borrows disjoint).
pub(crate) struct MemCtx<'a> {
    /// The SM's window onto the shared L2 (see [`L2Port`]).
    pub l2: L2Port<'a>,
    // latte-lint: shared-boundary(reason = "the DRAM completion heap; every push is self-targeted, so under --sim-threads each shard owns a private heap and the barrier arbiter routes cross-stage completions, ordered by (cycle, sm, addr)")
    pub events: &'a mut std::collections::BinaryHeap<std::cmp::Reverse<MemEvent>>,
    // latte-lint: shared-boundary(reason = "the SM's own per-SM compression policy; it travels with its SM into a shard under --sim-threads and is only consulted while that SM steps")
    pub policy: &'a mut dyn L1CompressionPolicy,
    // latte-lint: shared-boundary(reason = "read-only kernel description (Kernel: Send + Sync); immutable during a launch, safe to share by reference across shard threads")
    pub kernel: &'a dyn Kernel,
    // latte-lint: shared-boundary(reason = "read-only GpuConfig; immutable for the whole run")
    pub config: &'a GpuConfig,
    // latte-lint: shared-boundary(reason = "launch-wide counters; all updates are commutative adds, accumulated shard-locally under --sim-threads and summed at the end of the run")
    pub stats: &'a mut KernelStats,
    /// Differential-verification hook (`None` in normal runs).
    // latte-lint: shared-boundary(reason = "verification-only shadow model; serial oracle runs call it directly, parallel runs record into a shard-local recorder that the barrier replays in deterministic (cycle, phase, sm, seq) order")
    pub shadow: Option<&'a mut (dyn ShadowCheck + 'static)>,
    /// Structural-checkpoint cadence in EPs (meaningless without `shadow`).
    pub shadow_every: u64,
}

impl MemCtx<'_> {
    /// A write-through store reaching the shared L2. Serial: the access
    /// happens now (a miss counts one DRAM access). Parallel: buffered
    /// for the barrier arbiter, which applies the identical logic in the
    /// identical order.
    fn l2_store(&mut self, line: LineAddr, cycle: Cycles, sm: usize) {
        match &mut self.l2 {
            L2Port::Direct(l2) => {
                if !l2.access_and_fill(line) {
                    self.stats.dram_accesses += 1;
                }
            }
            L2Port::Deferred(buf) => buf.push(cycle, sm, line, L2RequestKind::Store),
        }
    }

    /// A primary load miss's fill round trip. Serial: access the L2 now
    /// and schedule the completion event directly. Parallel: buffer the
    /// request; the arbiter performs the access at the barrier and pushes
    /// the completion into the owning shard's heap. `spike` is the
    /// SM-locally rolled latency-spike fault (0 when none) — rolled
    /// before this call in both paths so the fault stream is identical.
    fn l2_load_miss(&mut self, line: LineAddr, cycle: Cycles, sm: usize, spike: Cycles) {
        match &mut self.l2 {
            L2Port::Direct(l2) => {
                let mut latency = if l2.access_and_fill(line) {
                    self.config.l2_latency
                } else {
                    self.stats.dram_accesses += 1;
                    self.config.dram_latency
                };
                latency += spike;
                self.events.push(std::cmp::Reverse(MemEvent {
                    cycle: cycle + latency,
                    sm,
                    addr: line,
                    verified: false,
                }));
            }
            L2Port::Deferred(buf) => {
                buf.push(cycle, sm, line, L2RequestKind::LoadFill { spike });
            }
        }
    }
}

pub(crate) struct Sm {
    pub id: usize,
    pub warps: Vec<Warp>,
    schedulers: Vec<WarpScheduler>,
    pub l1: CompressedCache,
    mshr: Mshr,
    dq: DecompressionQueue,
    /// Warps blocked on each outstanding line.
    waiters: HashMap<LineAddr, Vec<(usize, Cycles)>>,
    /// Warp ids per thread block (barrier scope).
    blocks: Vec<Vec<usize>>,
    /// Deterministic fault source (absent when injection is disabled).
    faults: Option<FaultInjector>,
    // EP bookkeeping.
    ep_access_count: u64,
    ep_hits: u64,
    ep_index: u64,
    ep_start_cycle: Cycles,
    pub barrier_wait: Cycles,
    /// Mode index at the previous EP boundary (outer `None` until the
    /// first boundary is seen), for the shadow hook's mode-switch
    /// checkpoints (tracked only while a hook is installed).
    last_mode: Option<Option<usize>>,
}

impl Sm {
    pub(crate) fn new(id: usize, config: &GpuConfig) -> Sm {
        Sm {
            id,
            warps: Vec::new(),
            schedulers: Vec::new(),
            l1: CompressedCache::new(config.l1_geometry),
            mshr: Mshr::new(config.mshr_entries, config.mshr_merges),
            dq: DecompressionQueue::new(),
            waiters: HashMap::new(),
            blocks: Vec::new(),
            faults: config.faults.map(|fc| FaultInjector::new(fc, id)),
            ep_access_count: 0,
            ep_hits: 0,
            ep_index: 0,
            ep_start_cycle: 0,
            barrier_wait: 0,
            last_mode: None,
        }
    }

    /// Launches a kernel's warps onto this SM.
    pub(crate) fn launch(&mut self, kernel: &dyn Kernel, config: &GpuConfig) {
        let n = kernel.warps_on_sm(self.id).min(config.max_warps_per_sm);
        self.warps = (0..n)
            .map(|w| {
                Warp::new(
                    w,
                    w / config.warps_per_block,
                    kernel.warp_program(self.id, w),
                )
            })
            .collect();
        let num_blocks = n.div_ceil(config.warps_per_block.max(1));
        self.blocks = (0..num_blocks)
            .map(|b| {
                (0..n)
                    .filter(|w| w / config.warps_per_block == b)
                    .collect()
            })
            .collect();
        // Split warps round-robin across schedulers.
        self.schedulers = (0..config.schedulers_per_sm)
            .map(|s| {
                WarpScheduler::new(
                    config.scheduler,
                    (0..n).filter(|w| w % config.schedulers_per_sm == s).collect(),
                )
            })
            .collect();
        if config.flush_at_kernel_boundary {
            self.l1.invalidate_all();
            self.mshr.flush();
            self.dq.flush();
            self.waiters.clear();
        }
        self.l1.reset_stats();
        if let Some(f) = &mut self.faults {
            // Re-seed per kernel so each kernel's fault sequence depends
            // only on (seed, SM), not on what ran before it.
            f.reseed();
        }
        self.ep_access_count = 0;
        self.ep_hits = 0;
        self.ep_index = 0;
        self.ep_start_cycle = 0;
        self.barrier_wait = 0;
        self.last_mode = None;
    }

    pub(crate) fn all_finished(&self) -> bool {
        self.warps.iter().all(Warp::is_finished) && self.waiters.is_empty()
    }

    /// Earliest cycle at which a busy warp becomes ready, if any.
    pub(crate) fn next_wake(&self) -> Option<Cycles> {
        self.warps
            .iter()
            .filter_map(|w| match w.state {
                WarpState::BusyUntil(u) => Some(u),
                WarpState::Ready => Some(0),
                WarpState::WaitingData {
                    until,
                    pending_misses: 0,
                } => Some(until),
                _ => None,
            })
            .min()
    }

    /// Adds `n` skipped cycles to every scheduler's probe window.
    pub(crate) fn account_idle(&mut self, n: u64) {
        for s in &mut self.schedulers {
            s.account_idle_cycles(n, &self.warps);
        }
    }

    /// Runs one issue cycle: each scheduler issues at most one op, and the
    /// SM's single LD/ST port accepts at most one memory op per cycle
    /// (the structural hazard that bounds L1 bandwidth — and hence
    /// decompressor demand — to one access per cycle).
    /// Returns the number of instructions issued.
    pub(crate) fn issue_cycle(&mut self, cycle: Cycles, ctx: &mut MemCtx<'_>) -> u64 {
        let mut issued = 0;
        let mut ldst_free = true;
        let n = self.schedulers.len();
        // Rotate LD/ST port priority between schedulers.
        for i in 0..n {
            let s = (i + cycle as usize) % n;
            let Some(wid) = self.schedulers[s].pick(&self.warps, cycle) else {
                continue;
            };
            let op = self.warps[wid].fetch_op();
            let is_mem = matches!(
                op,
                Op::Load { .. } | Op::LoadAsync { .. } | Op::Store { .. }
            );
            if is_mem && !ldst_free {
                // Port conflict: roll back; the warp retries next cycle.
                self.warps[wid].unfetch(op);
                continue;
            }
            if self.execute(wid, op, cycle, ctx) {
                issued += 1;
                if is_mem {
                    ldst_free = false;
                }
            }
        }
        issued
    }

    /// Returns `false` when the op could not issue (structural stall) and
    /// was rolled back.
    fn execute(&mut self, wid: usize, op: Op, cycle: Cycles, ctx: &mut MemCtx<'_>) -> bool {
        match op {
            Op::Compute { cycles } => {
                self.warps[wid].state = WarpState::BusyUntil(cycle + Cycles::from(cycles.max(1)));
                true
            }
            Op::Load { addr } => self.execute_load(wid, addr, cycle, true, ctx),
            Op::LoadAsync { addr } => self.execute_load(wid, addr, cycle, false, ctx),
            Op::Store { addr } => {
                // Write-through; the warp does not wait for completion.
                // Default is the paper's write-avoid L1 (§IV-C3: no
                // allocation pressure from writes); with `write_allocate`
                // a store miss also fetches the line into the L1.
                ctx.stats.stores += 1;
                let line = LineAddr::from_byte_addr(addr);
                ctx.l2_store(line, cycle, self.id);
                if ctx.config.write_allocate
                    && !self.l1.contains(line)
                    && self.mshr.would_accept(line)
                    && self.mshr.allocate(line) == MshrOutcome::Primary
                {
                    // Fetch in the background; no warp waits on it.
                    ctx.events.push(std::cmp::Reverse(MemEvent {
                        cycle: cycle + ctx.config.l2_latency,
                        sm: self.id,
                        addr: line,
                        verified: false,
                    }));
                }
                self.warps[wid].state = WarpState::BusyUntil(cycle + 1);
                true
            }
            Op::Barrier => {
                self.warps[wid].state = WarpState::AtBarrier(cycle);
                self.check_barrier(self.warps[wid].block, cycle);
                true
            }
            Op::Exit => {
                self.warps[wid].state = WarpState::Finished;
                // A warp exiting may release a barrier its block-mates wait on.
                self.check_barrier(self.warps[wid].block, cycle);
                true
            }
        }
    }

    fn execute_load(
        &mut self,
        wid: usize,
        addr: u64,
        cycle: Cycles,
        blocking: bool,
        ctx: &mut MemCtx<'_>,
    ) -> bool {
        let line = LineAddr::from_byte_addr(addr);

        // If this would be a miss the MSHR cannot take — really full, or
        // transiently exhausted by an injected fault — stall before any
        // statistics are recorded and retry shortly.
        let mshr_blocked = !self.l1.contains(line) && {
            let injected = self
                .faults
                .as_mut()
                .is_some_and(FaultInjector::roll_mshr_exhaust);
            if injected {
                ctx.stats.faults.mshr_exhaustions += 1;
            }
            injected || !self.mshr.would_accept(line)
        };
        if mshr_blocked {
            ctx.stats.mshr_stalls += 1;
            let op = if blocking {
                Op::Load { addr }
            } else {
                Op::LoadAsync { addr }
            };
            self.warps[wid].unfetch(op);
            // Back off before replaying so the stalled warp does not hog
            // its scheduler's issue slot every cycle (hardware parks the
            // replay in the instruction buffer).
            self.warps[wid].state = WarpState::BusyUntil(cycle + 8);
            return false;
        }

        ctx.stats.loads += 1;
        let mut outcome = self.l1.lookup(line, cycle);
        // Fault injection: a compressed hit may read a payload with one
        // flipped bit. A detected flip becomes a decode failure — the hit
        // is re-classified as a miss and the line re-fetched — while a
        // masked flip proceeds as a normal hit. Injection is skipped when
        // the MSHR could not absorb the resulting miss. With recovery
        // disabled (a deliberate verification mutation) a detected flip is
        // consumed anyway and the corrupted bytes flow to the shadow hook.
        let mut corrupted: Option<latte_compress::CacheLine> = None;
        if let LookupOutcome::Hit {
            algo,
            compressed: true,
        } = outcome
        {
            if let Some(inj) = self.faults.as_mut() {
                if inj.roll_bitflip() && self.mshr.would_accept(line) {
                    ctx.stats.faults.bitflips_injected += 1;
                    let data = ctx.kernel.line_data(line);
                    match inj.corrupt_compressed_read_observed(algo, &data) {
                        (BitflipOutcome::Detected, observed) => {
                            ctx.stats.faults.bitflips_detected += 1;
                            if inj.config().disable_recovery {
                                corrupted = Some(observed);
                            } else {
                                self.l1.on_decode_failure(line);
                                ctx.policy.on_decode_error(algo);
                                outcome = LookupOutcome::Miss;
                            }
                        }
                        (BitflipOutcome::Masked, _) => {
                            ctx.stats.faults.bitflips_masked += 1;
                        }
                    }
                }
            }
        }
        // Snapshot the hit's payload *now*: an EP boundary inside
        // note_ep_access below may invalidate this very line (SC codebook
        // rebuild), but the data was read before that — the shadow must
        // compare what the warp actually received.
        let observed = match outcome {
            LookupOutcome::Hit { .. } if ctx.shadow.is_some() => {
                corrupted.or_else(|| self.l1.payload(line).copied())
            }
            _ => None,
        };
        let set = self.l1.set_of(line);
        let (hit, algo) = match outcome {
            LookupOutcome::Hit { algo, .. } => (true, algo),
            LookupOutcome::Miss => (false, latte_compress::CompressionAlgo::None),
        };
        ctx.policy.on_access(&AccessEvent {
            set,
            hit,
            algo,
            cycle,
        });
        self.note_ep_access(hit, cycle, ctx);

        match outcome {
            LookupOutcome::Hit { algo, compressed } => {
                if let Some(shadow) = ctx.shadow.as_deref_mut() {
                    shadow.on_load(self.id, line, observed.as_ref(), cycle);
                }
                let mut latency = ctx.config.l1_hit_latency + ctx.config.extra_hit_latency;
                if compressed {
                    ctx.stats.decompressions.bump(algo);
                    if !ctx.config.zero_decompression_latency {
                        let pipeline = ctx.policy.decompression_latency(algo);
                        let effective = self.dq.enqueue(cycle, pipeline);
                        ctx.stats.decompression_queue_wait += effective - pipeline;
                        latency += effective;
                    }
                }
                ctx.stats.hit_wait_cycles += latency;
                let ready_at = cycle + latency;
                let warp = &mut self.warps[wid];
                warp.data_ready_at = warp.data_ready_at.max(ready_at);
                if blocking {
                    warp.state = WarpState::WaitingData {
                        until: warp.data_ready_at,
                        pending_misses: warp.outstanding_misses,
                    };
                    warp.data_ready_at = 0;
                    warp.outstanding_misses = 0;
                } else {
                    // One cycle of issue occupancy; the data arrives in
                    // the background.
                    warp.state = WarpState::BusyUntil(cycle + 1);
                }
            }
            LookupOutcome::Miss => {
                match self.mshr.allocate(line) {
                    MshrOutcome::Primary => {
                        // Roll the latency-spike fault *before* touching
                        // the port: the injector is SM-local state, so its
                        // stream position must not depend on which path
                        // (direct vs deferred) the access takes.
                        let spike = match self
                            .faults
                            .as_mut()
                            .and_then(FaultInjector::roll_latency_spike)
                        {
                            Some(spike) => {
                                ctx.stats.faults.latency_spikes += 1;
                                ctx.stats.faults.spike_cycles_added += spike;
                                spike
                            }
                            None => 0,
                        };
                        ctx.l2_load_miss(line, cycle, self.id, spike);
                    }
                    MshrOutcome::Merged => {}
                    MshrOutcome::Full => unreachable!("would_accept checked above"),
                }
                self.waiters.entry(line).or_default().push((wid, cycle));
                let warp = &mut self.warps[wid];
                if blocking {
                    warp.state = WarpState::WaitingData {
                        until: warp.data_ready_at,
                        pending_misses: warp.outstanding_misses + 1,
                    };
                    warp.data_ready_at = 0;
                    warp.outstanding_misses = 0;
                } else {
                    warp.outstanding_misses += 1;
                    warp.state = WarpState::BusyUntil(cycle + 1);
                }
            }
        }
        true
    }

    /// Handles a refill arriving from the memory system. `verified` is
    /// `true` when this delivery is a parity-retry re-send whose data has
    /// already been checked on the return path.
    pub(crate) fn handle_fill(
        &mut self,
        addr: LineAddr,
        cycle: Cycles,
        verified: bool,
        ctx: &mut MemCtx<'_>,
    ) {
        // Fault injection on the L2/DRAM return path: the refill arrives
        // with a flipped bit. Per-sector parity always detects a
        // single-bit flip, so the data is never consumed; the memory
        // partition re-sends the line after another L2 round trip. The
        // MSHR entry and the waiting warps stay parked until the re-send
        // lands. Recovery refetches (after an L1 decode failure) travel
        // this same path, so refetched lines are not implicitly trusted.
        if !verified {
            let flipped = self
                .faults
                .as_mut()
                .is_some_and(FaultInjector::roll_fill_bitflip);
            if flipped {
                let retry_latency = ctx.config.l2_latency;
                ctx.stats.faults.fill_bitflips += 1;
                ctx.stats.faults.fill_retry_cycles += retry_latency;
                ctx.events.push(std::cmp::Reverse(MemEvent {
                    cycle: cycle + retry_latency,
                    sm: self.id,
                    addr,
                    verified: true,
                }));
                return;
            }
        }
        // Fault injection: a corrupted tag write loses the fill. The
        // refill data still reaches the waiting warps below, but the line
        // is not retained, so the next access misses and re-fetches.
        let drop_fill = self
            .faults
            .as_mut()
            .is_some_and(FaultInjector::roll_tag_corruption);
        if drop_fill {
            ctx.stats.faults.tag_corruptions += 1;
        } else {
            let data = ctx.kernel.line_data(addr);
            let set = self.l1.set_of(addr);
            let (algo, mut compression) = ctx.policy.compress_fill(set, &data);
            if algo != latte_compress::CompressionAlgo::None {
                // The compressor ran regardless of whether it succeeded.
                ctx.stats.compressions.bump(algo);
            }
            if ctx.config.ignore_capacity_benefit && compression.is_compressed() {
                // Fig 4 study: charge the hit-latency penalty but store at full
                // size (127 B quantises to the full four sub-blocks).
                compression = Compression::new(latte_compress::CacheLine::SIZE_BYTES - 1);
            }
            self.l1.fill(addr, algo, compression, cycle);
            if self.l1.payload_shadow_enabled() {
                // Record what the array actually holds: the encode/decode
                // round trip under the stored algorithm (fill() downgrades
                // incompressible lines to an uncompressed store).
                let stored_algo = if compression.is_compressed() {
                    algo
                } else {
                    latte_compress::CompressionAlgo::None
                };
                self.l1.record_payload(addr, roundtrip_stored(stored_algo, &data));
            }
            if let Some(shadow) = ctx.shadow.as_deref_mut() {
                shadow.on_fill(self.id, addr, &data, cycle);
            }
        }
        self.mshr.release(addr);
        // Fault injection: the wakeup notification is lost (scoreboard
        // corruption). The data landed above, but the warps blocked on
        // this line are discarded without being re-marked ready, so they
        // wait forever — the deadlock watchdog's job to report. Rolled
        // only when warps are actually waiting, so a zero-waiter fill
        // cannot perturb the fault stream.
        if self.waiters.contains_key(&addr) {
            let dropped = self
                .faults
                .as_mut()
                .is_some_and(FaultInjector::roll_wakeup_drop);
            if dropped {
                ctx.stats.faults.wakeup_drops += 1;
                self.waiters.remove(&addr);
                return;
            }
        }
        if let Some(waiters) = self.waiters.remove(&addr) {
            for (wid, issued_at) in waiters {
                ctx.stats.miss_wait_cycles += cycle.saturating_sub(issued_at);
                let warp = &mut self.warps[wid];
                match warp.state {
                    WarpState::WaitingData {
                        until,
                        pending_misses,
                    } => {
                        let pending = pending_misses.saturating_sub(1);
                        warp.state = if pending == 0 {
                            WarpState::BusyUntil(until.max(cycle))
                        } else {
                            WarpState::WaitingData {
                                until,
                                pending_misses: pending,
                            }
                        };
                    }
                    // The warp is still running past an async miss (or
                    // already exited/hit a barrier): just retire the
                    // outstanding count.
                    _ => {
                        warp.outstanding_misses = warp.outstanding_misses.saturating_sub(1);
                    }
                }
            }
        }
    }

    fn check_barrier(&mut self, block: usize, cycle: Cycles) {
        let Some(members) = self.blocks.get(block) else {
            return;
        };
        let all_arrived = members.iter().all(|&w| {
            matches!(
                self.warps[w].state,
                WarpState::AtBarrier(_) | WarpState::Finished
            )
        });
        if all_arrived {
            for &w in members {
                if let WarpState::AtBarrier(since) = self.warps[w].state {
                    self.barrier_wait += cycle - since;
                    self.warps[w].state = WarpState::BusyUntil(cycle + 1);
                }
            }
        }
    }

    fn note_ep_access(&mut self, hit: bool, cycle: Cycles, ctx: &mut MemCtx<'_>) {
        self.ep_access_count += 1;
        self.ep_hits += u64::from(hit);
        if self.ep_access_count >= ctx.config.ep_accesses {
            self.finish_ep(cycle, ctx);
        }
    }

    fn finish_ep(&mut self, cycle: Cycles, ctx: &mut MemCtx<'_>) {
        let mut samples = 0;
        let mut ready_sum = 0;
        let mut runs = 0;
        let mut run_length_sum = 0;
        for s in &mut self.schedulers {
            let p = s.take_probe();
            samples += p.samples;
            ready_sum += p.ready_sum;
            runs += p.runs;
            run_length_sum += p.run_length_sum;
        }
        let probe = EpProbe {
            ep_index: self.ep_index,
            avg_warps_available: if samples == 0 {
                0.0
            } else {
                // Average over per-scheduler samples; scale by scheduler
                // count to express "warps available in the SM".
                ready_sum as f64 / samples as f64 * self.schedulers.len() as f64
            },
            avg_exec_cycles_per_schedule: if runs == 0 {
                0.0
            } else {
                run_length_sum as f64 / runs as f64
            },
            l1_accesses: self.ep_access_count,
            cycles: cycle.saturating_sub(self.ep_start_cycle),
            end_cycle: cycle,
        };
        ctx.policy.on_ep(&probe);
        if let Some(algo) = ctx.policy.pending_invalidation() {
            self.l1.invalidate_algo(algo);
        }
        ctx.stats.eps_completed += 1;
        if ctx.config.record_traces && self.id == 0 {
            ctx.stats.traces.push(EpTraceEntry {
                ep_index: self.ep_index,
                end_cycle: cycle,
                latency_tolerance: probe.latency_tolerance(),
                effective_capacity: self.l1.effective_capacity_bytes() as f64
                    / self.l1.geometry().size_bytes as f64,
                l1_hit_rate: self.ep_hits as f64 / self.ep_access_count as f64,
                selected_mode: ctx.policy.current_mode_index(),
            });
        }
        if ctx.shadow.is_some() {
            let mode = ctx.policy.current_mode_index();
            let switched = self.last_mode.is_some_and(|prev| prev != mode);
            let kind = if switched {
                ShadowCheckpoint::ModeSwitch
            } else {
                ShadowCheckpoint::EpBoundary
            };
            let due = switched || self.ep_index.is_multiple_of(ctx.shadow_every.max(1));
            if due {
                let errors = self.structural_errors(&*ctx.policy);
                if let Some(shadow) = ctx.shadow.as_deref_mut() {
                    shadow.on_checkpoint(self.id, cycle, kind, &errors);
                }
            }
            self.last_mode = Some(mode);
        }
        self.ep_access_count = 0;
        self.ep_hits = 0;
        self.ep_index += 1;
        self.ep_start_cycle = cycle;
    }

    /// Collects every structural-invariant failure visible from this SM:
    /// the compressed L1's tag/capacity/shadow checks, the MSHR bounds,
    /// and the compression policy's internal-state checks.
    pub(crate) fn structural_errors(&self, policy: &dyn L1CompressionPolicy) -> Vec<String> {
        let mut errors = Vec::new();
        if let Err(e) = self.l1.validate() {
            errors.push(format!("l1: {e}"));
        }
        if let Err(e) = self.mshr.validate() {
            errors.push(format!("mshr: {e}"));
        }
        if let Err(e) = policy.validate() {
            errors.push(format!("policy: {e}"));
        }
        errors
    }
}
