//! One streaming multiprocessor: warps, schedulers, L1, decompression
//! queue, MSHRs and the experimental-phase (EP) bookkeeping.

// Order-independence audit (2026-08): `waiters` and `pending_stores` are
// accessed only through keyed operations (entry/remove/contains_key/
// is_empty/clear) — never iterated — and the Vec behind each `waiters`
// key preserves enqueue order, so wakeup order is insertion order, not
// hash order. The shared memory image behind `L2Port::Direct` is likewise
// keyed-only (get/insert).
// latte-lint: allow-file(D3, reason = "keyed access only, never iterated; per-key Vec keeps wakeups in enqueue order")

use crate::config::GpuConfig;
use crate::faults::{BitflipOutcome, FaultInjector};
use crate::ops::{Kernel, Op};
use crate::policy::{AccessEvent, EpProbe, L1CompressionPolicy};
use crate::scheduler::WarpScheduler;
use crate::shadow::{roundtrip_stored, ShadowCheck, ShadowCheckpoint};
use crate::stats::{EpTraceEntry, KernelStats};
use crate::warp::{Warp, WarpState};
use latte_cache::{
    CompressedCache, DecompressionQueue, LineAddr, LookupOutcome, Mshr, MshrOutcome,
};
use latte_compress::{CacheLine, Compression, Cycles};
use std::collections::HashMap;

/// The backing-store image: architectural memory contents *behind* the
/// L2, as modified by dirty write-backs. Lines absent from the map still
/// hold their pristine [`Kernel::line_data`] bytes, so the map stays
/// empty (and the write-through configurations stay allocation-free)
/// unless the write-back data path runs. Accessed only at L2-access
/// points — inline in the serial loop, at the barrier arbiter under
/// `--sim-threads` — so both paths read and write it in the identical
/// `(cycle, phase, sm, seq)` order.
pub(crate) type MemImage = HashMap<LineAddr, CacheLine>;

/// A memory request completing at `cycle` for `sm`'s line `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MemEvent {
    pub cycle: Cycles,
    pub sm: usize,
    pub addr: LineAddr,
    /// `true` for a parity-retry re-send: the return-path data has
    /// already been checked, so the fill-bitflip site must not roll
    /// again (guarantees forward progress even at injection rate 1.0).
    pub verified: bool,
    /// Refill payload resolved from the backing-store image at L2-access
    /// time (`None` = the line is pristine and the fill delivers
    /// [`Kernel::line_data`]). Always `None` outside write-back mode.
    /// Kept as the last field so the derived heap order stays
    /// `(cycle, sm, addr, verified)`-major; the payload can never decide
    /// a tie because each SM has at most one outstanding fill per line.
    pub data: Option<CacheLine>,
}

/// One buffered shared-L2 access awaiting the epoch barrier.
///
/// Under `--sim-threads`, SMs never touch the L2 directly; they emit
/// these records into a shard-local [`L2Buffer`] and the barrier arbiter
/// replays them through the real cache in `(cycle, phase, sm, seq)`
/// order — exactly the order the serial loop would have performed them.
/// Issue-phase traffic (loads, stores) is unique per `(cycle, sm)`
/// thanks to the single LD/ST port, and the serial loop issues SMs in id
/// order within a cycle; delivery-phase traffic (dirty write-backs from
/// fill-time evictions) drains from per-shard event heaps whose pop
/// order matches the serial heap's `(cycle, sm, addr)` order, with `seq`
/// preserving each SM's emission order inside one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L2Request {
    /// Cycle the SM performed the access.
    pub cycle: Cycles,
    /// 0 = memory-delivery phase (write-backs from fill-time evictions),
    /// 1 = issue phase (loads, stores, issue-time write-backs); the
    /// serial loop delivers completions before issuing within a cycle.
    pub phase: u8,
    /// Issuing SM.
    pub sm: usize,
    /// Emission sequence within the buffer, ordering one SM's multiple
    /// accesses inside a single `(cycle, phase)`.
    pub seq: u64,
    /// Line accessed.
    pub addr: LineAddr,
    /// What the access was.
    pub kind: L2RequestKind,
}

/// The kinds of shared-L2 traffic an SM generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L2RequestKind {
    /// A load miss's fill round trip; the arbiter owes the SM a
    /// completion event. `spike` carries the latency-spike fault rolled
    /// SM-locally at issue time, so the injector's stream position is
    /// identical to the serial run.
    LoadFill {
        /// Extra cycles from an injected latency spike (0 when none).
        spike: Cycles,
    },
    /// A write-through store; no completion is delivered.
    Store,
    /// A dirty line's write-back: `data` lands in the backing-store
    /// image so later fills of the line observe the written bytes. No
    /// completion is delivered (stores are fire-and-forget).
    WriteBack {
        /// The evicted line's architectural bytes.
        data: CacheLine,
    },
}

/// Epoch-local buffer of deferred L2 accesses (one per shard). Plain
/// owned data: the shared cache itself is only ever touched by the
/// arbiter draining these records at the barrier.
#[derive(Debug, Default)]
pub(crate) struct L2Buffer {
    /// Buffered requests, in emission order.
    pub requests: Vec<L2Request>,
    seq: u64,
}

impl L2Buffer {
    fn push(&mut self, cycle: Cycles, phase: u8, sm: usize, addr: LineAddr, kind: L2RequestKind) {
        self.requests.push(L2Request {
            cycle,
            phase,
            sm,
            seq: self.seq,
            addr,
            kind,
        });
        self.seq += 1;
    }
}

/// How an SM reaches the shared L2 while stepping: inline in the serial
/// loop, or deferred to the epoch-barrier arbiter under `--sim-threads`.
/// The serial variant is the only place SM code can reach shared cache
/// state, and it is exercised strictly one SM at a time.
pub(crate) enum L2Port<'a> {
    /// Serial path: access the shared L2 (and the backing-store image
    /// behind it) inline, exactly as the single-threaded loop always has.
    // latte-lint: shared-boundary(reason = "the shared L2 and backing-store image, accessed inline by the single-threaded loop only; one SM steps at a time, so the references are never aliased")
    Direct {
        /// The shared L2.
        l2: &'a mut latte_cache::SimpleCache,
        /// The backing-store image dirty write-backs land in.
        image: &'a mut MemImage,
    },
    /// Parallel path: buffer the access into shard-local memory; the
    /// epoch-barrier arbiter drains every shard's buffer through the
    /// real L2 in `(cycle, sm, seq)` order.
    // latte-lint: shared-boundary(reason = "epoch-local request buffer; the barrier arbiter serializes it through the real L2 in fixed (cycle, sm, seq) order, so no two threads ever race on cache state")
    Deferred(&'a mut L2Buffer),
}

/// Shared resources an SM needs while stepping (split off `Gpu` to keep
/// borrows disjoint).
pub(crate) struct MemCtx<'a> {
    /// The SM's window onto the shared L2 (see [`L2Port`]).
    pub l2: L2Port<'a>,
    // latte-lint: shared-boundary(reason = "the DRAM completion heap; every push is self-targeted, so under --sim-threads each shard owns a private heap and the barrier arbiter routes cross-stage completions, ordered by (cycle, sm, addr)")
    pub events: &'a mut std::collections::BinaryHeap<std::cmp::Reverse<MemEvent>>,
    // latte-lint: shared-boundary(reason = "the SM's own per-SM compression policy; it travels with its SM into a shard under --sim-threads and is only consulted while that SM steps")
    pub policy: &'a mut dyn L1CompressionPolicy,
    // latte-lint: shared-boundary(reason = "read-only kernel description (Kernel: Send + Sync); immutable during a launch, safe to share by reference across shard threads")
    pub kernel: &'a dyn Kernel,
    // latte-lint: shared-boundary(reason = "read-only GpuConfig; immutable for the whole run")
    pub config: &'a GpuConfig,
    // latte-lint: shared-boundary(reason = "launch-wide counters; all updates are commutative adds, accumulated shard-locally under --sim-threads and summed at the end of the run")
    pub stats: &'a mut KernelStats,
    /// Differential-verification hook (`None` in normal runs).
    // latte-lint: shared-boundary(reason = "verification-only shadow model; serial oracle runs call it directly, parallel runs record into a shard-local recorder that the barrier replays in deterministic (cycle, phase, sm, seq) order")
    pub shadow: Option<&'a mut (dyn ShadowCheck + 'static)>,
    /// Structural-checkpoint cadence in EPs (meaningless without `shadow`).
    pub shadow_every: u64,
}

impl MemCtx<'_> {
    /// A write-through store reaching the shared L2. Serial: the access
    /// happens now (a miss counts one DRAM access). Parallel: buffered
    /// for the barrier arbiter, which applies the identical logic in the
    /// identical order.
    fn l2_store(&mut self, line: LineAddr, cycle: Cycles, sm: usize) {
        match &mut self.l2 {
            L2Port::Direct { l2, .. } => {
                if !l2.access_and_fill(line) {
                    self.stats.dram_accesses += 1;
                }
            }
            L2Port::Deferred(buf) => buf.push(cycle, 1, sm, line, L2RequestKind::Store),
        }
    }

    /// A primary load miss's fill round trip. Serial: access the L2 now
    /// and schedule the completion event directly. Parallel: buffer the
    /// request; the arbiter performs the access at the barrier and pushes
    /// the completion into the owning shard's heap. `spike` is the
    /// SM-locally rolled latency-spike fault (0 when none) — rolled
    /// before this call in both paths so the fault stream is identical.
    /// The refill payload is resolved from the backing-store image at
    /// the L2-access point in both paths, so a fill issued after a
    /// write-back of the same line (in `(cycle, phase, sm, seq)` order)
    /// always observes the written bytes.
    fn l2_load_miss(&mut self, line: LineAddr, cycle: Cycles, sm: usize, spike: Cycles) {
        match &mut self.l2 {
            L2Port::Direct { l2, image } => {
                let mut latency = if l2.access_and_fill(line) {
                    self.config.l2_latency
                } else {
                    self.stats.dram_accesses += 1;
                    self.config.dram_latency
                };
                latency += spike;
                self.events.push(std::cmp::Reverse(MemEvent {
                    cycle: cycle + latency,
                    sm,
                    addr: line,
                    verified: false,
                    data: image.get(&line).copied(),
                }));
            }
            L2Port::Deferred(buf) => {
                buf.push(cycle, 1, sm, line, L2RequestKind::LoadFill { spike });
            }
        }
    }

    /// A dirty line's write-back reaching the shared L2 and the
    /// backing-store image. `phase` is 0 for write-backs emitted while
    /// delivering fills and 1 for issue-time ones, mirroring the serial
    /// loop's deliver-then-issue order within a cycle. Under the planted
    /// `drop_writebacks` mutation the write-back is silently discarded —
    /// the lost-store failure mode the shadow oracle must catch.
    fn l2_writeback(&mut self, line: LineAddr, data: CacheLine, cycle: Cycles, sm: usize, phase: u8) {
        if self.config.faults.is_some_and(|f| f.drop_writebacks) {
            self.stats.faults.writebacks_dropped += 1;
            return;
        }
        self.stats.writebacks += 1;
        match &mut self.l2 {
            L2Port::Direct { l2, image } => {
                image.insert(line, data);
                if !l2.access_and_fill(line) {
                    self.stats.dram_accesses += 1;
                }
            }
            L2Port::Deferred(buf) => {
                buf.push(cycle, phase, sm, line, L2RequestKind::WriteBack { data });
            }
        }
    }
}

pub(crate) struct Sm {
    pub id: usize,
    pub warps: Vec<Warp>,
    schedulers: Vec<WarpScheduler>,
    pub l1: CompressedCache,
    mshr: Mshr,
    dq: DecompressionQueue,
    /// Warps blocked on each outstanding line.
    waiters: HashMap<LineAddr, Vec<(usize, Cycles)>>,
    /// Write-back mode: sectors stored while the line's allocating fill
    /// is in flight, merged into the line when the fill arrives (last
    /// write to a sector wins). Keyed access only, never iterated.
    pending_stores: HashMap<LineAddr, [Option<[u8; 32]>; 4]>,
    /// Warp ids per thread block (barrier scope).
    blocks: Vec<Vec<usize>>,
    /// Deterministic fault source (absent when injection is disabled).
    faults: Option<FaultInjector>,
    // EP bookkeeping.
    ep_access_count: u64,
    ep_hits: u64,
    ep_index: u64,
    ep_start_cycle: Cycles,
    pub barrier_wait: Cycles,
    /// Mode index at the previous EP boundary (outer `None` until the
    /// first boundary is seen), for the shadow hook's mode-switch
    /// checkpoints (tracked only while a hook is installed).
    last_mode: Option<Option<usize>>,
}

impl Sm {
    pub(crate) fn new(id: usize, config: &GpuConfig) -> Sm {
        let mut l1 = CompressedCache::new(config.l1_geometry);
        if config.write_back {
            // The write-back data path needs every resident line's
            // architectural bytes (store merges, dirty evictions).
            l1.enable_data_tracking();
        }
        Sm {
            id,
            warps: Vec::new(),
            schedulers: Vec::new(),
            l1,
            mshr: Mshr::new(config.mshr_entries, config.mshr_merges),
            dq: DecompressionQueue::new(),
            waiters: HashMap::new(),
            pending_stores: HashMap::new(),
            blocks: Vec::new(),
            faults: config.faults.map(|fc| FaultInjector::new(fc, id)),
            ep_access_count: 0,
            ep_hits: 0,
            ep_index: 0,
            ep_start_cycle: 0,
            barrier_wait: 0,
            last_mode: None,
        }
    }

    /// Launches a kernel's warps onto this SM.
    pub(crate) fn launch(&mut self, kernel: &dyn Kernel, config: &GpuConfig) {
        let n = kernel.warps_on_sm(self.id).min(config.max_warps_per_sm);
        self.warps = (0..n)
            .map(|w| {
                Warp::new(
                    w,
                    w / config.warps_per_block,
                    kernel.warp_program(self.id, w),
                )
            })
            .collect();
        let num_blocks = n.div_ceil(config.warps_per_block.max(1));
        self.blocks = (0..num_blocks)
            .map(|b| {
                (0..n)
                    .filter(|w| w / config.warps_per_block == b)
                    .collect()
            })
            .collect();
        // Split warps round-robin across schedulers.
        self.schedulers = (0..config.schedulers_per_sm)
            .map(|s| {
                WarpScheduler::new(
                    config.scheduler,
                    (0..n).filter(|w| w % config.schedulers_per_sm == s).collect(),
                )
            })
            .collect();
        if config.flush_at_kernel_boundary {
            self.l1.invalidate_all();
            self.mshr.flush();
            self.dq.flush();
            self.waiters.clear();
            self.pending_stores.clear();
        }
        self.l1.reset_stats();
        if let Some(f) = &mut self.faults {
            // Re-seed per kernel so each kernel's fault sequence depends
            // only on (seed, SM), not on what ran before it.
            f.reseed();
        }
        self.ep_access_count = 0;
        self.ep_hits = 0;
        self.ep_index = 0;
        self.ep_start_cycle = 0;
        self.barrier_wait = 0;
        self.last_mode = None;
    }

    pub(crate) fn all_finished(&self) -> bool {
        self.warps.iter().all(Warp::is_finished) && self.waiters.is_empty()
    }

    /// Earliest cycle at which a busy warp becomes ready, if any.
    pub(crate) fn next_wake(&self) -> Option<Cycles> {
        self.warps
            .iter()
            .filter_map(|w| match w.state {
                WarpState::BusyUntil(u) => Some(u),
                WarpState::Ready => Some(0),
                WarpState::WaitingData {
                    until,
                    pending_misses: 0,
                } => Some(until),
                _ => None,
            })
            .min()
    }

    /// Adds `n` skipped cycles to every scheduler's probe window.
    pub(crate) fn account_idle(&mut self, n: u64) {
        for s in &mut self.schedulers {
            s.account_idle_cycles(n, &self.warps);
        }
    }

    /// Runs one issue cycle: each scheduler issues at most one op, and the
    /// SM's single LD/ST port accepts at most one memory op per cycle
    /// (the structural hazard that bounds L1 bandwidth — and hence
    /// decompressor demand — to one access per cycle).
    /// Returns the number of instructions issued.
    pub(crate) fn issue_cycle(&mut self, cycle: Cycles, ctx: &mut MemCtx<'_>) -> u64 {
        let mut issued = 0;
        let mut ldst_free = true;
        let n = self.schedulers.len();
        // Rotate LD/ST port priority between schedulers.
        for i in 0..n {
            let s = (i + cycle as usize) % n;
            let Some(wid) = self.schedulers[s].pick(&self.warps, cycle) else {
                continue;
            };
            let op = self.warps[wid].fetch_op();
            let is_mem = matches!(
                op,
                Op::Load { .. } | Op::LoadAsync { .. } | Op::Store { .. }
            );
            if is_mem && !ldst_free {
                // Port conflict: roll back; the warp retries next cycle.
                self.warps[wid].unfetch(op);
                continue;
            }
            if self.execute(wid, op, cycle, ctx) {
                issued += 1;
                if is_mem {
                    ldst_free = false;
                }
            }
        }
        issued
    }

    /// Returns `false` when the op could not issue (structural stall) and
    /// was rolled back.
    fn execute(&mut self, wid: usize, op: Op, cycle: Cycles, ctx: &mut MemCtx<'_>) -> bool {
        match op {
            Op::Compute { cycles } => {
                self.warps[wid].state = WarpState::BusyUntil(cycle + Cycles::from(cycles.max(1)));
                true
            }
            Op::Load { addr } => self.execute_load(wid, addr, cycle, true, ctx),
            Op::LoadAsync { addr } => self.execute_load(wid, addr, cycle, false, ctx),
            Op::Store { addr, data } => {
                if ctx.config.write_back {
                    return self.execute_store_writeback(wid, addr, data, cycle, ctx);
                }
                // Write-through; the warp does not wait for completion,
                // and the payload is architecturally ignored (memory is
                // modelled as pristine `Kernel::line_data`). Default is
                // the paper's write-avoid L1 (§IV-C3: no allocation
                // pressure from writes); with `write_allocate` a store
                // miss also fetches the line into the L1.
                ctx.stats.stores += 1;
                let line = LineAddr::from_byte_addr(addr);
                ctx.l2_store(line, cycle, self.id);
                if ctx.config.write_allocate
                    && !self.l1.contains(line)
                    && self.mshr.would_accept(line)
                    && self.mshr.allocate(line) == MshrOutcome::Primary
                {
                    // Fetch in the background; no warp waits on it.
                    ctx.events.push(std::cmp::Reverse(MemEvent {
                        cycle: cycle + ctx.config.l2_latency,
                        sm: self.id,
                        addr: line,
                        verified: false,
                        data: None,
                    }));
                }
                self.warps[wid].state = WarpState::BusyUntil(cycle + 1);
                true
            }
            Op::Barrier => {
                self.warps[wid].state = WarpState::AtBarrier(cycle);
                self.check_barrier(self.warps[wid].block, cycle);
                true
            }
            Op::Exit => {
                self.warps[wid].state = WarpState::Finished;
                // A warp exiting may release a barrier its block-mates wait on.
                self.check_barrier(self.warps[wid].block, cycle);
                true
            }
        }
    }

    fn execute_load(
        &mut self,
        wid: usize,
        addr: u64,
        cycle: Cycles,
        blocking: bool,
        ctx: &mut MemCtx<'_>,
    ) -> bool {
        let line = LineAddr::from_byte_addr(addr);

        // If this would be a miss the MSHR cannot take — really full, or
        // transiently exhausted by an injected fault — stall before any
        // statistics are recorded and retry shortly.
        let mshr_blocked = !self.l1.contains(line) && {
            let injected = self
                .faults
                .as_mut()
                .is_some_and(FaultInjector::roll_mshr_exhaust);
            if injected {
                ctx.stats.faults.mshr_exhaustions += 1;
            }
            injected || !self.mshr.would_accept(line)
        };
        if mshr_blocked {
            ctx.stats.mshr_stalls += 1;
            let op = if blocking {
                Op::Load { addr }
            } else {
                Op::LoadAsync { addr }
            };
            self.warps[wid].unfetch(op);
            // Back off before replaying so the stalled warp does not hog
            // its scheduler's issue slot every cycle (hardware parks the
            // replay in the instruction buffer).
            self.warps[wid].state = WarpState::BusyUntil(cycle + 8);
            return false;
        }

        ctx.stats.loads += 1;
        let mut outcome = self.l1.lookup(line, cycle);
        // Fault injection: a compressed hit may read a payload with one
        // flipped bit. A detected flip becomes a decode failure — the hit
        // is re-classified as a miss and the line re-fetched — while a
        // masked flip proceeds as a normal hit. Injection is skipped when
        // the MSHR could not absorb the resulting miss. With recovery
        // disabled (a deliberate verification mutation) a detected flip is
        // consumed anyway and the corrupted bytes flow to the shadow hook.
        let mut corrupted: Option<latte_compress::CacheLine> = None;
        if let LookupOutcome::Hit {
            algo,
            compressed: true,
        } = outcome
        {
            if let Some(inj) = self.faults.as_mut() {
                if inj.roll_bitflip() && self.mshr.would_accept(line) {
                    ctx.stats.faults.bitflips_injected += 1;
                    // Ground truth is the line's architectural bytes: the
                    // tracked (possibly store-merged) data in write-back
                    // mode, pristine kernel data otherwise. Note the
                    // recovery path re-fetches from memory, so a detected
                    // flip on a *dirty* line loses its unwritten stores —
                    // a modelled (and documented) hazard of parity-only
                    // dirty data, not a simulator bug.
                    let data = self
                        .l1
                        .line_data(line)
                        .copied()
                        .unwrap_or_else(|| ctx.kernel.line_data(line));
                    match inj.corrupt_compressed_read_observed(algo, &data) {
                        (BitflipOutcome::Detected, observed) => {
                            ctx.stats.faults.bitflips_detected += 1;
                            if inj.config().disable_recovery {
                                corrupted = Some(observed);
                            } else {
                                self.l1.on_decode_failure(line);
                                ctx.policy.on_decode_error(algo);
                                outcome = LookupOutcome::Miss;
                            }
                        }
                        (BitflipOutcome::Masked, _) => {
                            ctx.stats.faults.bitflips_masked += 1;
                        }
                    }
                }
            }
        }
        // Snapshot the hit's payload *now*: an EP boundary inside
        // note_ep_access below may invalidate this very line (SC codebook
        // rebuild), but the data was read before that — the shadow must
        // compare what the warp actually received.
        let observed = match outcome {
            LookupOutcome::Hit { .. } if ctx.shadow.is_some() => {
                corrupted.or_else(|| self.l1.payload(line).copied())
            }
            _ => None,
        };
        let set = self.l1.set_of(line);
        let (hit, algo) = match outcome {
            LookupOutcome::Hit { algo, .. } => (true, algo),
            LookupOutcome::Miss => (false, latte_compress::CompressionAlgo::None),
        };
        ctx.policy.on_access(&AccessEvent {
            set,
            hit,
            algo,
            cycle,
        });
        self.note_ep_access(hit, cycle, ctx);

        match outcome {
            LookupOutcome::Hit { algo, compressed } => {
                if let Some(shadow) = ctx.shadow.as_deref_mut() {
                    shadow.on_load(self.id, line, observed.as_ref(), cycle);
                }
                let mut latency = ctx.config.l1_hit_latency + ctx.config.extra_hit_latency;
                if compressed {
                    ctx.stats.decompressions.bump(algo);
                    if !ctx.config.zero_decompression_latency {
                        let pipeline = ctx.policy.decompression_latency(algo);
                        let effective = self.dq.enqueue(cycle, pipeline);
                        ctx.stats.decompression_queue_wait += effective - pipeline;
                        latency += effective;
                    }
                }
                ctx.stats.hit_wait_cycles += latency;
                let ready_at = cycle + latency;
                let warp = &mut self.warps[wid];
                warp.data_ready_at = warp.data_ready_at.max(ready_at);
                if blocking {
                    warp.state = WarpState::WaitingData {
                        until: warp.data_ready_at,
                        pending_misses: warp.outstanding_misses,
                    };
                    warp.data_ready_at = 0;
                    warp.outstanding_misses = 0;
                } else {
                    // One cycle of issue occupancy; the data arrives in
                    // the background.
                    warp.state = WarpState::BusyUntil(cycle + 1);
                }
            }
            LookupOutcome::Miss => {
                match self.mshr.allocate(line) {
                    MshrOutcome::Primary => {
                        // Roll the latency-spike fault *before* touching
                        // the port: the injector is SM-local state, so its
                        // stream position must not depend on which path
                        // (direct vs deferred) the access takes.
                        let spike = match self
                            .faults
                            .as_mut()
                            .and_then(FaultInjector::roll_latency_spike)
                        {
                            Some(spike) => {
                                ctx.stats.faults.latency_spikes += 1;
                                ctx.stats.faults.spike_cycles_added += spike;
                                spike
                            }
                            None => 0,
                        };
                        ctx.l2_load_miss(line, cycle, self.id, spike);
                    }
                    MshrOutcome::Merged => {}
                    MshrOutcome::Full => unreachable!("would_accept checked above"),
                }
                self.waiters.entry(line).or_default().push((wid, cycle));
                let warp = &mut self.warps[wid];
                if blocking {
                    warp.state = WarpState::WaitingData {
                        until: warp.data_ready_at,
                        pending_misses: warp.outstanding_misses + 1,
                    };
                    warp.data_ready_at = 0;
                    warp.outstanding_misses = 0;
                } else {
                    warp.outstanding_misses += 1;
                    warp.state = WarpState::BusyUntil(cycle + 1);
                }
            }
        }
        true
    }

    /// A store under the write-back/write-allocate data path
    /// (`GpuConfig::write_back`). A hit merges the addressed 32-byte
    /// sector into the line's architectural bytes, re-compresses the
    /// line in place (a grown line may evict its set-mates — never
    /// itself — and dirty victims are written back), and marks it dirty.
    /// A miss allocates through the MSHR like a load, parks the sector
    /// in the pending-store buffer, and commits when the allocating fill
    /// arrives. Stores stay fire-and-forget: the warp never blocks on
    /// completion, but a miss the MSHR cannot absorb replays like a
    /// load would.
    fn execute_store_writeback(
        &mut self,
        wid: usize,
        addr: u64,
        sector: [u8; 32],
        cycle: Cycles,
        ctx: &mut MemCtx<'_>,
    ) -> bool {
        let line = LineAddr::from_byte_addr(addr);
        if !self.l1.contains(line) && !self.mshr.would_accept(line) {
            ctx.stats.mshr_stalls += 1;
            self.warps[wid].unfetch(Op::Store { addr, data: sector });
            self.warps[wid].state = WarpState::BusyUntil(cycle + 8);
            return false;
        }
        ctx.stats.stores += 1;
        let sector_index = ((addr >> 5) & 3) as usize;
        if self.l1.contains(line) {
            let base = self
                .l1
                .line_data(line)
                .copied()
                .unwrap_or_else(|| ctx.kernel.line_data(line));
            let merged = merge_sector(&base, sector_index, &sector);
            self.commit_store(line, merged, cycle, 1, ctx);
        } else {
            if self.mshr.allocate(line) == MshrOutcome::Primary {
                // Write-allocate fetch. No latency-spike roll: stores are
                // fire-and-forget, so a spike could never be observed.
                ctx.l2_load_miss(line, cycle, self.id, 0);
            }
            self.pending_stores.entry(line).or_insert([None; 4])[sector_index] = Some(sector);
        }
        self.warps[wid].state = WarpState::BusyUntil(cycle + 1);
        true
    }

    /// Commits a store's fully merged line into the L1: re-compress
    /// under the policy's choice, rewrite the line in place (marking it
    /// dirty), write back any dirty victims the size change displaced,
    /// and report the committed bytes to the shadow hook. `phase`
    /// follows the [`MemCtx::l2_writeback`] convention.
    fn commit_store(
        &mut self,
        line: LineAddr,
        merged: CacheLine,
        cycle: Cycles,
        phase: u8,
        ctx: &mut MemCtx<'_>,
    ) {
        let set = self.l1.set_of(line);
        let (algo, mut compression) = ctx.policy.compress_fill(set, &merged);
        if algo != latte_compress::CompressionAlgo::None {
            ctx.stats.compressions.bump(algo);
        }
        if ctx.config.ignore_capacity_benefit && compression.is_compressed() {
            compression = Compression::new(CacheLine::SIZE_BYTES - 1);
        }
        if let Some(evicted) = self.l1.write(line, algo, compression, &merged, cycle) {
            if self.l1.payload_shadow_enabled() {
                let stored_algo = if compression.is_compressed() {
                    algo
                } else {
                    latte_compress::CompressionAlgo::None
                };
                self.l1.record_payload(line, roundtrip_stored(stored_algo, &merged));
            }
            for victim in evicted {
                self.writeback_victim(&victim, cycle, phase, ctx);
            }
            if let Some(shadow) = ctx.shadow.as_deref_mut() {
                shadow.on_store(self.id, line, &merged, cycle);
            }
        }
    }

    /// Sends one evicted line's dirty bytes back to the L2/DRAM (no-op
    /// for clean victims). The outbound-link fault is rolled SM-locally
    /// before the port access so the injector's stream position is
    /// identical in the serial and deferred paths; a parity-detected
    /// corruption is re-sent by the memory partition, costing link
    /// occupancy (counted) but no warp-visible latency.
    fn writeback_victim(
        &mut self,
        victim: &latte_cache::EvictedLine,
        cycle: Cycles,
        phase: u8,
        ctx: &mut MemCtx<'_>,
    ) {
        if !victim.dirty {
            return;
        }
        let Some(data) = victim.data else { return };
        if self
            .faults
            .as_mut()
            .is_some_and(FaultInjector::roll_writeback_fault)
        {
            ctx.stats.faults.writeback_faults += 1;
            ctx.stats.faults.writeback_retry_cycles += ctx.config.l2_latency;
        }
        ctx.l2_writeback(victim.addr, data, cycle, self.id, phase);
    }

    /// Handles a refill arriving from the memory system. `verified` is
    /// `true` when this delivery is a parity-retry re-send whose data has
    /// already been checked on the return path.
    pub(crate) fn handle_fill(
        &mut self,
        addr: LineAddr,
        cycle: Cycles,
        verified: bool,
        payload: Option<CacheLine>,
        ctx: &mut MemCtx<'_>,
    ) {
        // Fault injection on the L2/DRAM return path: the refill arrives
        // with a flipped bit. Per-sector parity always detects a
        // single-bit flip, so the data is never consumed; the memory
        // partition re-sends the line after another L2 round trip. The
        // MSHR entry and the waiting warps stay parked until the re-send
        // lands. Recovery refetches (after an L1 decode failure) travel
        // this same path, so refetched lines are not implicitly trusted.
        if !verified {
            let flipped = self
                .faults
                .as_mut()
                .is_some_and(FaultInjector::roll_fill_bitflip);
            if flipped {
                let retry_latency = ctx.config.l2_latency;
                ctx.stats.faults.fill_bitflips += 1;
                ctx.stats.faults.fill_retry_cycles += retry_latency;
                ctx.events.push(std::cmp::Reverse(MemEvent {
                    cycle: cycle + retry_latency,
                    sm: self.id,
                    addr,
                    verified: true,
                    data: payload,
                }));
                return;
            }
        }
        // Fault injection: a corrupted tag write loses the fill. The
        // refill data still reaches the waiting warps below, but the line
        // is not retained, so the next access misses and re-fetches.
        let drop_fill = self
            .faults
            .as_mut()
            .is_some_and(FaultInjector::roll_tag_corruption);
        // The ground-truth refill payload: the backing-store image's
        // bytes when a write-back landed on this line, pristine kernel
        // data otherwise.
        let data = payload.unwrap_or_else(|| ctx.kernel.line_data(addr));
        if drop_fill {
            ctx.stats.faults.tag_corruptions += 1;
            // Write-back mode: the allocation was lost, but a store that
            // was waiting on this fill must still commit architecturally
            // — send the merged line straight through to memory so the
            // written bytes are not silently lost.
            if ctx.config.write_back {
                if let Some(sectors) = self.pending_stores.remove(&addr) {
                    let merged = merge_sectors(&data, &sectors);
                    ctx.l2_writeback(addr, merged, cycle, self.id, 0);
                    if let Some(shadow) = ctx.shadow.as_deref_mut() {
                        shadow.on_store(self.id, addr, &merged, cycle);
                    }
                }
            }
        } else {
            let set = self.l1.set_of(addr);
            let (algo, mut compression) = ctx.policy.compress_fill(set, &data);
            if algo != latte_compress::CompressionAlgo::None {
                // The compressor ran regardless of whether it succeeded.
                ctx.stats.compressions.bump(algo);
            }
            if ctx.config.ignore_capacity_benefit && compression.is_compressed() {
                // Fig 4 study: charge the hit-latency penalty but store at full
                // size (127 B quantises to the full four sub-blocks).
                compression = Compression::new(latte_compress::CacheLine::SIZE_BYTES - 1);
            }
            for victim in self.l1.fill(addr, algo, compression, cycle) {
                self.writeback_victim(&victim, cycle, 0, ctx);
            }
            self.l1.record_line_data(addr, data);
            if self.l1.payload_shadow_enabled() {
                // Record what the array actually holds: the encode/decode
                // round trip under the stored algorithm (fill() downgrades
                // incompressible lines to an uncompressed store).
                let stored_algo = if compression.is_compressed() {
                    algo
                } else {
                    latte_compress::CompressionAlgo::None
                };
                self.l1.record_payload(addr, roundtrip_stored(stored_algo, &data));
            }
            if let Some(shadow) = ctx.shadow.as_deref_mut() {
                shadow.on_fill(self.id, addr, &data, cycle);
            }
            // Write-allocate commit: sectors stored while this fill was
            // in flight merge into the just-filled line, which becomes
            // dirty. Ordered after `on_fill` so the shadow model sees
            // the delivered bytes before the store overlays them.
            if ctx.config.write_back {
                if let Some(sectors) = self.pending_stores.remove(&addr) {
                    let merged = merge_sectors(&data, &sectors);
                    self.commit_store(addr, merged, cycle, 0, ctx);
                }
            }
        }
        self.mshr.release(addr);
        // Fault injection: the wakeup notification is lost (scoreboard
        // corruption). The data landed above, but the warps blocked on
        // this line are discarded without being re-marked ready, so they
        // wait forever — the deadlock watchdog's job to report. Rolled
        // only when warps are actually waiting, so a zero-waiter fill
        // cannot perturb the fault stream.
        if self.waiters.contains_key(&addr) {
            let dropped = self
                .faults
                .as_mut()
                .is_some_and(FaultInjector::roll_wakeup_drop);
            if dropped {
                ctx.stats.faults.wakeup_drops += 1;
                self.waiters.remove(&addr);
                return;
            }
        }
        if let Some(waiters) = self.waiters.remove(&addr) {
            for (wid, issued_at) in waiters {
                ctx.stats.miss_wait_cycles += cycle.saturating_sub(issued_at);
                let warp = &mut self.warps[wid];
                match warp.state {
                    WarpState::WaitingData {
                        until,
                        pending_misses,
                    } => {
                        let pending = pending_misses.saturating_sub(1);
                        warp.state = if pending == 0 {
                            WarpState::BusyUntil(until.max(cycle))
                        } else {
                            WarpState::WaitingData {
                                until,
                                pending_misses: pending,
                            }
                        };
                    }
                    // The warp is still running past an async miss (or
                    // already exited/hit a barrier): just retire the
                    // outstanding count.
                    _ => {
                        warp.outstanding_misses = warp.outstanding_misses.saturating_sub(1);
                    }
                }
            }
        }
    }

    fn check_barrier(&mut self, block: usize, cycle: Cycles) {
        let Some(members) = self.blocks.get(block) else {
            return;
        };
        let all_arrived = members.iter().all(|&w| {
            matches!(
                self.warps[w].state,
                WarpState::AtBarrier(_) | WarpState::Finished
            )
        });
        if all_arrived {
            for &w in members {
                if let WarpState::AtBarrier(since) = self.warps[w].state {
                    self.barrier_wait += cycle - since;
                    self.warps[w].state = WarpState::BusyUntil(cycle + 1);
                }
            }
        }
    }

    fn note_ep_access(&mut self, hit: bool, cycle: Cycles, ctx: &mut MemCtx<'_>) {
        self.ep_access_count += 1;
        self.ep_hits += u64::from(hit);
        if self.ep_access_count >= ctx.config.ep_accesses {
            self.finish_ep(cycle, ctx);
        }
    }

    fn finish_ep(&mut self, cycle: Cycles, ctx: &mut MemCtx<'_>) {
        let mut samples = 0;
        let mut ready_sum = 0;
        let mut runs = 0;
        let mut run_length_sum = 0;
        for s in &mut self.schedulers {
            let p = s.take_probe();
            samples += p.samples;
            ready_sum += p.ready_sum;
            runs += p.runs;
            run_length_sum += p.run_length_sum;
        }
        let probe = EpProbe {
            ep_index: self.ep_index,
            avg_warps_available: if samples == 0 {
                0.0
            } else {
                // Average over per-scheduler samples; scale by scheduler
                // count to express "warps available in the SM".
                ready_sum as f64 / samples as f64 * self.schedulers.len() as f64
            },
            avg_exec_cycles_per_schedule: if runs == 0 {
                0.0
            } else {
                run_length_sum as f64 / runs as f64
            },
            l1_accesses: self.ep_access_count,
            cycles: cycle.saturating_sub(self.ep_start_cycle),
            end_cycle: cycle,
        };
        ctx.policy.on_ep(&probe);
        if let Some(algo) = ctx.policy.pending_invalidation() {
            // A retrain invalidation may drop dirty lines (e.g. the SC
            // codebook rebuild); their bytes must still reach memory.
            // EP boundaries are observed at issue time, hence phase 1.
            for victim in self.l1.invalidate_algo(algo) {
                self.writeback_victim(&victim, cycle, 1, ctx);
            }
        }
        ctx.stats.eps_completed += 1;
        if ctx.config.record_traces && self.id == 0 {
            ctx.stats.traces.push(EpTraceEntry {
                ep_index: self.ep_index,
                end_cycle: cycle,
                latency_tolerance: probe.latency_tolerance(),
                effective_capacity: self.l1.effective_capacity_bytes() as f64
                    / self.l1.geometry().size_bytes as f64,
                l1_hit_rate: self.ep_hits as f64 / self.ep_access_count as f64,
                selected_mode: ctx.policy.current_mode_index(),
            });
        }
        if ctx.shadow.is_some() {
            let mode = ctx.policy.current_mode_index();
            let switched = self.last_mode.is_some_and(|prev| prev != mode);
            let kind = if switched {
                ShadowCheckpoint::ModeSwitch
            } else {
                ShadowCheckpoint::EpBoundary
            };
            let due = switched || self.ep_index.is_multiple_of(ctx.shadow_every.max(1));
            if due {
                let errors = self.structural_errors(&*ctx.policy);
                if let Some(shadow) = ctx.shadow.as_deref_mut() {
                    shadow.on_checkpoint(self.id, cycle, kind, &errors);
                }
            }
            self.last_mode = Some(mode);
        }
        self.ep_access_count = 0;
        self.ep_hits = 0;
        self.ep_index += 1;
        self.ep_start_cycle = cycle;
    }

    /// Drains every dirty line into `(addr, data)` pairs for the
    /// kernel-end flush (deterministic set/slot order; lines stay
    /// resident but clean). The GPU epilogue routes them to the L2 and
    /// the backing-store image.
    pub(crate) fn drain_dirty(&mut self) -> Vec<(LineAddr, CacheLine)> {
        self.l1.drain_dirty()
    }

    /// Collects every structural-invariant failure visible from this SM:
    /// the compressed L1's tag/capacity/shadow checks, the MSHR bounds,
    /// and the compression policy's internal-state checks.
    pub(crate) fn structural_errors(&self, policy: &dyn L1CompressionPolicy) -> Vec<String> {
        let mut errors = Vec::new();
        if let Err(e) = self.l1.validate() {
            errors.push(format!("l1: {e}"));
        }
        if let Err(e) = self.mshr.validate() {
            errors.push(format!("mshr: {e}"));
        }
        if let Err(e) = policy.validate() {
            errors.push(format!("policy: {e}"));
        }
        errors
    }
}

/// Replaces one 32-byte sector of `base` with `bytes`.
fn merge_sector(base: &CacheLine, sector: usize, bytes: &[u8; 32]) -> CacheLine {
    let mut out = *base.as_bytes();
    out[sector * 32..(sector + 1) * 32].copy_from_slice(bytes);
    CacheLine::from_bytes(out)
}

/// Overlays every pending sector write onto `base` (absent sectors keep
/// the delivered bytes).
fn merge_sectors(base: &CacheLine, sectors: &[Option<[u8; 32]>; 4]) -> CacheLine {
    let mut out = *base.as_bytes();
    for (i, s) in sectors.iter().enumerate() {
        if let Some(bytes) = s {
            out[i * 32..(i + 1) * 32].copy_from_slice(bytes);
        }
    }
    CacheLine::from_bytes(out)
}
