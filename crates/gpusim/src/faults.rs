//! Deterministic fault injection for resilience experiments.
//!
//! The injector models four failure sites of a compressed cache
//! hierarchy:
//!
//! * **bit flips** in the stored compressed payload, discovered when a
//!   compressed hit decompresses the line;
//! * **tag/metadata corruption** on a fill (the tag write is lost and the
//!   line is not retained);
//! * **latency spikes** on memory refills (e.g. a flaky channel retry);
//! * **transient MSHR exhaustion** (a miss finds the MSHR file full even
//!   though entries are architecturally free).
//!
//! Bit flips are injected *for real*: the line's data is genuinely
//! encoded with the algorithm it is stored under, one seeded bit of the
//! encoded form is toggled, and the decoder runs on the corrupted input.
//! A flip is **detected** when the decoder errors or produces different
//! data, and **masked** when the round trip still yields the original
//! line (e.g. a flip in dead padding). Detected flips feed the cache's
//! decode-failure recovery path; masked flips are invisible by
//! construction and only counted.
//!
//! Every SM owns one [`FaultInjector`] seeded from the global
//! [`FaultConfig::seed`] and the SM id, and injectors re-seed at kernel
//! launch, so two runs with the same seed inject bit-identical fault
//! sequences.

use latte_compress::{Bdi, Bpc, CacheLine, CompressionAlgo, CpackZ, Fpc};

/// Configuration of the fault injector. All rates are per-opportunity
/// probabilities in `[0, 1]`; a rate of zero disables that fault site
/// without consuming random numbers, so a zero-rate injector behaves
/// exactly like no injector at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// RNG seed. Runs with equal seeds and configs are bit-identical.
    pub seed: u64,
    /// Probability that a compressed hit reads a payload with one
    /// flipped bit.
    pub bitflip_rate: f64,
    /// Probability that a fill's tag write is corrupted (the refill data
    /// still reaches the waiting warps, but the line is not cached).
    pub tag_corruption_rate: f64,
    /// Probability that a memory refill suffers an added latency spike.
    pub latency_spike_rate: f64,
    /// Cycles one latency spike adds to the refill.
    pub latency_spike_cycles: u64,
    /// Probability that a missing load finds the MSHR file transiently
    /// exhausted and must replay.
    pub mshr_exhaust_rate: f64,
    /// Probability that a refill returning over the L2/DRAM path carries
    /// a flipped bit. The return path is parity-protected per sector, so
    /// a single-bit flip is always *detected*; the memory partition then
    /// re-sends the line, costing one extra L2 round trip. This is what
    /// keeps refetched lines from being implicitly trusted: the recovery
    /// refetch after an L1 decode failure goes through this same path
    /// and can itself be corrupted (and retried) again.
    pub fill_bitflip_rate: f64,
    /// Probability that a refill's wakeup notification is lost:
    /// scoreboard-corruption model where the data lands in the cache but
    /// the warps blocked on it are never re-marked ready. A dropped
    /// wakeup is architecturally unrecoverable — the affected warps wait
    /// forever — so this site exists to exercise the simulator's
    /// deadlock watchdog ([`crate::TerminationReason::Deadlock`]).
    pub wakeup_drop_rate: f64,
    /// Probability that a dirty write-back leaving the L1 is corrupted on
    /// the outbound L2/DRAM link. Like [`FaultConfig::fill_bitflip_rate`]
    /// the link is parity-protected per sector, so the corruption is
    /// always *detected* and the write-back is re-sent, costing one extra
    /// L2 round trip of occupancy (charged to the write-back path's
    /// stats, not to any warp — stores are fire-and-forget).
    pub writeback_fault_rate: f64,
    /// Silently drops every dirty write-back instead of sending it to the
    /// L2/DRAM image. This is a deliberate correctness mutation, the
    /// write-back analogue of [`FaultConfig::disable_recovery`]: the
    /// verification harness plants it (`latte-bench verify`,
    /// `--no-writeback`) to prove the shadow oracle catches lost stores
    /// when a victim's dirty bytes never reach memory.
    pub drop_writebacks: bool,
    /// Disables the decode-failure recovery path: a *detected* payload
    /// bit flip is still counted, but instead of invalidating the line
    /// and re-fetching, the SM consumes the corrupted decoded data as if
    /// the hit were clean. This is a deliberate correctness mutation used
    /// by the verification harness to prove the shadow oracle catches
    /// silent data corruption (`latte-bench verify`, `--no-fault-recovery`);
    /// it models a cache whose parity/ECC reporting is broken.
    pub disable_recovery: bool,
}

impl FaultConfig {
    /// A configuration injecting only payload bit flips, at `rate`.
    #[must_use]
    pub fn bitflips(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            bitflip_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A configuration injecting only L2/DRAM return-path bit flips, at
    /// `rate`.
    #[must_use]
    pub fn fill_bitflips(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            fill_bitflip_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A configuration injecting only outbound write-back link faults, at
    /// `rate`.
    #[must_use]
    pub fn writeback_faults(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            writeback_fault_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A configuration dropping refill wakeup notifications, at `rate`.
    #[must_use]
    pub fn wakeup_drops(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            wakeup_drop_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// Folds every field into `fp` (part of
    /// [`crate::GpuConfig::fingerprint`]; see there for the contract).
    pub fn write_fingerprint(&self, fp: &mut crate::Fingerprinter) {
        fp.write_u64(self.seed);
        fp.write_f64(self.bitflip_rate);
        fp.write_f64(self.tag_corruption_rate);
        fp.write_f64(self.latency_spike_rate);
        fp.write_u64(self.latency_spike_cycles);
        fp.write_f64(self.mshr_exhaust_rate);
        fp.write_f64(self.fill_bitflip_rate);
        fp.write_f64(self.wakeup_drop_rate);
        fp.write_f64(self.writeback_fault_rate);
        fp.write_bool(self.drop_writebacks);
        fp.write_bool(self.disable_recovery);
    }
}

impl Default for FaultConfig {
    /// All fault sites disabled; spikes, when enabled, add 100 cycles.
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            bitflip_rate: 0.0,
            tag_corruption_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_cycles: 100,
            mshr_exhaust_rate: 0.0,
            fill_bitflip_rate: 0.0,
            wakeup_drop_rate: 0.0,
            writeback_fault_rate: 0.0,
            drop_writebacks: false,
            disable_recovery: false,
        }
    }
}

/// Counters for injected faults, accumulated into
/// [`crate::KernelStats::faults`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bit flips injected into compressed payloads.
    pub bitflips_injected: u64,
    /// Injected flips the decoder caught (error or altered data); each
    /// one became a cache decode failure and a re-fetch.
    pub bitflips_detected: u64,
    /// Injected flips that left the decoded line unchanged.
    pub bitflips_masked: u64,
    /// Fills dropped because the tag write was corrupted.
    pub tag_corruptions: u64,
    /// Refills delayed by a latency spike.
    pub latency_spikes: u64,
    /// Total cycles added by latency spikes.
    pub spike_cycles_added: u64,
    /// Misses that found the MSHR file transiently exhausted.
    pub mshr_exhaustions: u64,
    /// Bit flips injected on the L2/DRAM return path. Each one is
    /// detected by link parity and costs the fill a retry round trip.
    pub fill_bitflips: u64,
    /// Total extra cycles spent re-sending parity-rejected refills.
    pub fill_retry_cycles: u64,
    /// Refill wakeup notifications dropped (warps left waiting forever).
    pub wakeup_drops: u64,
    /// Dirty write-backs corrupted on the outbound link. Each one is
    /// detected by parity and re-sent.
    pub writeback_faults: u64,
    /// Total extra cycles of link occupancy spent re-sending
    /// parity-rejected write-backs.
    pub writeback_retry_cycles: u64,
    /// Dirty write-backs silently discarded by the planted
    /// [`FaultConfig::drop_writebacks`] mutation.
    pub writebacks_dropped: u64,
}

impl FaultStats {
    /// Total faults injected across all sites.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bitflips_injected
            + self.tag_corruptions
            + self.latency_spikes
            + self.mshr_exhaustions
            + self.fill_bitflips
            + self.wakeup_drops
            + self.writeback_faults
            + self.writebacks_dropped
    }
}

impl std::ops::AddAssign for FaultStats {
    fn add_assign(&mut self, rhs: FaultStats) {
        self.bitflips_injected += rhs.bitflips_injected;
        self.bitflips_detected += rhs.bitflips_detected;
        self.bitflips_masked += rhs.bitflips_masked;
        self.tag_corruptions += rhs.tag_corruptions;
        self.latency_spikes += rhs.latency_spikes;
        self.spike_cycles_added += rhs.spike_cycles_added;
        self.mshr_exhaustions += rhs.mshr_exhaustions;
        self.fill_bitflips += rhs.fill_bitflips;
        self.fill_retry_cycles += rhs.fill_retry_cycles;
        self.wakeup_drops += rhs.wakeup_drops;
        self.writeback_faults += rhs.writeback_faults;
        self.writeback_retry_cycles += rhs.writeback_retry_cycles;
        self.writebacks_dropped += rhs.writebacks_dropped;
    }
}

/// Outcome of one injected payload bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitflipOutcome {
    /// The decoder errored or returned different data: the corruption is
    /// observable and the cache must recover.
    Detected,
    /// The round trip still produced the original line: the flip is
    /// architecturally invisible.
    Masked,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SM's deterministic fault source.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    sm: u64,
    state: u64,
}

impl FaultInjector {
    /// Creates an injector for SM `sm`, decorrelated from its siblings.
    #[must_use]
    pub fn new(config: FaultConfig, sm: usize) -> FaultInjector {
        let mut inj = FaultInjector {
            config,
            sm: sm as u64,
            state: 0,
        };
        inj.reseed();
        inj
    }

    /// Resets the RNG to its launch state (called at kernel start so each
    /// kernel sees a reproducible fault sequence).
    pub fn reseed(&mut self) {
        // Mix the SM id in multiplicatively so seed 0 / SM 0 does not
        // collapse to the same stream as seed 0 / SM 1.
        self.state = self.config.seed ^ 0xD6E8_FEB8_6659_FD93u64.wrapping_mul(self.sm + 1);
    }

    /// The configuration this injector runs.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Bernoulli trial at probability `rate`. Zero rates consume no
    /// random numbers, so disabled fault sites cannot perturb the
    /// sequence of an enabled one.
    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Should this compressed hit read a flipped payload?
    pub fn roll_bitflip(&mut self) -> bool {
        let rate = self.config.bitflip_rate;
        self.roll(rate)
    }

    /// Should this fill lose its tag write?
    pub fn roll_tag_corruption(&mut self) -> bool {
        let rate = self.config.tag_corruption_rate;
        self.roll(rate)
    }

    /// Should this miss find the MSHR file transiently exhausted?
    pub fn roll_mshr_exhaust(&mut self) -> bool {
        let rate = self.config.mshr_exhaust_rate;
        self.roll(rate)
    }

    /// Should this refill arrive with a flipped bit on the L2/DRAM
    /// return path (detected by parity, forcing a re-send)?
    pub fn roll_fill_bitflip(&mut self) -> bool {
        let rate = self.config.fill_bitflip_rate;
        self.roll(rate)
    }

    /// Should this refill's wakeup notification be lost?
    pub fn roll_wakeup_drop(&mut self) -> bool {
        let rate = self.config.wakeup_drop_rate;
        self.roll(rate)
    }

    /// Should this dirty write-back be corrupted on the outbound link
    /// (detected by parity, forcing a re-send)?
    pub fn roll_writeback_fault(&mut self) -> bool {
        let rate = self.config.writeback_fault_rate;
        self.roll(rate)
    }

    /// Cycles of latency spike to add to this refill, if any.
    pub fn roll_latency_spike(&mut self) -> Option<u64> {
        let rate = self.config.latency_spike_rate;
        if self.roll(rate) {
            Some(self.config.latency_spike_cycles)
        } else {
            None
        }
    }

    /// Injects one bit flip into the compressed form of `line` under
    /// `algo` and reports whether decoding catches it.
    ///
    /// SC is modelled as always detected: its codebook lives inside the
    /// policy, and a flipped Huffman stream that survives the length
    /// checks still fails the line's tag-side consistency in the modelled
    /// design.
    pub fn corrupt_compressed_read(
        &mut self,
        algo: CompressionAlgo,
        line: &CacheLine,
    ) -> BitflipOutcome {
        self.corrupt_compressed_read_observed(algo, line).0
    }

    /// Like [`FaultInjector::corrupt_compressed_read`], but also returns
    /// the line the pipeline *observes* if nothing recovers the access:
    /// the decoder's output on the corrupted input (or a deterministic
    /// single-bit garble of the raw line when the decoder errors out, or
    /// for SC, whose corruption is detected at the tag side before any
    /// bytes are produced). Masked flips observe the original line by
    /// definition.
    ///
    /// Consumes exactly one random draw, in the same position as
    /// [`FaultInjector::corrupt_compressed_read`] always has, so the
    /// injected fault sequence is unchanged by which entry point is used.
    pub fn corrupt_compressed_read_observed(
        &mut self,
        algo: CompressionAlgo,
        line: &CacheLine,
    ) -> (BitflipOutcome, CacheLine) {
        let flip = self.next_u64();
        let garbled = garble_line(line, flip);
        let (detected, observed) = match algo {
            // Raw lines carry no compressed payload to corrupt.
            CompressionAlgo::None => (false, *line),
            CompressionAlgo::Bdi => {
                let bdi = Bdi::new();
                let mut c = bdi.encode(line);
                if c.flip_bit(flip) {
                    match bdi.decode(&c) {
                        Ok(out) => (out != *line, out),
                        Err(_) => (true, garbled),
                    }
                } else {
                    (false, *line)
                }
            }
            CompressionAlgo::Fpc => {
                let fpc = Fpc::new();
                let mut w = fpc.encode(line);
                w.toggle_bit(flip as usize % w.bit_len());
                match fpc.decode(&w) {
                    Ok(out) => (out != *line, out),
                    Err(_) => (true, garbled),
                }
            }
            CompressionAlgo::CpackZ => {
                let cp = CpackZ::new();
                let mut w = cp.encode(line);
                w.toggle_bit(flip as usize % w.bit_len());
                match cp.decode(&w) {
                    Ok(out) => (out != *line, out),
                    Err(_) => (true, garbled),
                }
            }
            CompressionAlgo::Bpc => {
                let bpc = Bpc::new();
                let mut w = bpc.encode(line);
                w.toggle_bit(flip as usize % w.bit_len());
                match bpc.decode(&w) {
                    Ok(out) => (out != *line, out),
                    Err(_) => (true, garbled),
                }
            }
            CompressionAlgo::Sc => (true, garbled),
        };
        if detected {
            (BitflipOutcome::Detected, observed)
        } else {
            (BitflipOutcome::Masked, *line)
        }
    }
}

/// Toggles one seeded bit of `line` — the stand-in corrupted output for
/// decoders that error instead of producing bytes. Always differs from
/// the input, so an unrecovered detected flip is guaranteed observable.
fn garble_line(line: &CacheLine, flip: u64) -> CacheLine {
    let mut bytes = *line.as_bytes();
    let bit = (flip % (bytes.len() as u64 * 8)) as usize;
    bytes[bit / 8] ^= 1 << (bit % 8);
    CacheLine::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = FaultInjector::new(FaultConfig::bitflips(7, 0.25), 3);
        let mut b = FaultInjector::new(FaultConfig::bitflips(7, 0.25), 3);
        let seq_a: Vec<bool> = (0..64).map(|_| a.roll_bitflip()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.roll_bitflip()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x));
        assert!(seq_a.iter().any(|&x| !x));
    }

    #[test]
    fn sms_are_decorrelated() {
        let mut a = FaultInjector::new(FaultConfig::bitflips(7, 0.5), 0);
        let mut b = FaultInjector::new(FaultConfig::bitflips(7, 0.5), 1);
        let seq_a: Vec<bool> = (0..64).map(|_| a.roll_bitflip()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.roll_bitflip()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn reseed_replays_the_stream() {
        let mut inj = FaultInjector::new(FaultConfig::bitflips(99, 0.5), 2);
        let first: Vec<bool> = (0..32).map(|_| inj.roll_bitflip()).collect();
        inj.reseed();
        let second: Vec<bool> = (0..32).map(|_| inj.roll_bitflip()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn zero_rate_consumes_no_randomness() {
        let mut inj = FaultInjector::new(FaultConfig::default(), 0);
        let before = inj.state;
        assert!(!inj.roll_bitflip());
        assert!(!inj.roll_tag_corruption());
        assert!(!inj.roll_mshr_exhaust());
        assert!(!inj.roll_wakeup_drop());
        assert!(!inj.roll_writeback_fault());
        assert!(inj.roll_latency_spike().is_none());
        assert_eq!(inj.state, before);
    }

    #[test]
    fn bitflips_hit_every_decoder_without_panicking() {
        let mut inj = FaultInjector::new(FaultConfig::bitflips(1, 1.0), 0);
        let words: Vec<u32> = (0..32).map(|i| 0x4000_0000 + i * 3).collect();
        let line = CacheLine::from_u32_words(&words);
        let mut detected = 0;
        for algo in CompressionAlgo::ALL {
            for _ in 0..16 {
                if inj.corrupt_compressed_read(algo, &line) == BitflipOutcome::Detected {
                    detected += 1;
                }
            }
        }
        // SC alone contributes 16 detections; real decoders add more.
        assert!(detected > 16, "flips must be detectable, got {detected}");
    }

    #[test]
    fn zero_line_bdi_flip_is_masked() {
        // The all-zero line encodes to BDI's Zeros form, which carries no
        // payload bits: a flip has nowhere to land.
        let mut inj = FaultInjector::new(FaultConfig::bitflips(5, 1.0), 0);
        let out = inj.corrupt_compressed_read(CompressionAlgo::Bdi, &CacheLine::zeroed());
        assert_eq!(out, BitflipOutcome::Masked);
    }

    #[test]
    fn observed_data_differs_exactly_when_detected() {
        let words: Vec<u32> = (0..32).map(|i| 0x4000_0000 + i * 3).collect();
        let line = CacheLine::from_u32_words(&words);
        let mut inj = FaultInjector::new(FaultConfig::bitflips(11, 1.0), 0);
        for algo in CompressionAlgo::ALL {
            for _ in 0..16 {
                let (outcome, observed) = inj.corrupt_compressed_read_observed(algo, &line);
                match outcome {
                    BitflipOutcome::Detected => assert_ne!(
                        observed, line,
                        "{algo:?}: a detected flip must corrupt the observed data"
                    ),
                    BitflipOutcome::Masked => assert_eq!(
                        observed, line,
                        "{algo:?}: a masked flip must leave the line intact"
                    ),
                }
            }
        }
    }

    #[test]
    fn observed_entry_point_preserves_the_draw_sequence() {
        // Both entry points must consume exactly one draw so the injected
        // fault sequence is independent of which one the SM calls.
        let line = CacheLine::from_u32_words(&(0..32).collect::<Vec<u32>>());
        let mut a = FaultInjector::new(FaultConfig::bitflips(42, 1.0), 1);
        let mut b = FaultInjector::new(FaultConfig::bitflips(42, 1.0), 1);
        for algo in CompressionAlgo::ALL {
            let oa = a.corrupt_compressed_read(algo, &line);
            let (ob, _) = b.corrupt_compressed_read_observed(algo, &line);
            assert_eq!(oa, ob);
            assert_eq!(a.state, b.state);
        }
    }

    #[test]
    fn disable_recovery_changes_the_fingerprint() {
        let mut a = crate::Fingerprinter::new();
        FaultConfig::default().write_fingerprint(&mut a);
        let mut b = crate::Fingerprinter::new();
        FaultConfig {
            disable_recovery: true,
            ..FaultConfig::default()
        }
        .write_fingerprint(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fault_stats_accumulate() {
        let mut a = FaultStats {
            bitflips_injected: 2,
            bitflips_detected: 1,
            bitflips_masked: 1,
            tag_corruptions: 3,
            latency_spikes: 1,
            spike_cycles_added: 100,
            mshr_exhaustions: 4,
            fill_bitflips: 5,
            fill_retry_cycles: 120,
            wakeup_drops: 6,
            writeback_faults: 7,
            writeback_retry_cycles: 240,
            writebacks_dropped: 8,
        };
        a += a;
        assert_eq!(a.bitflips_injected, 4);
        assert_eq!(a.spike_cycles_added, 200);
        assert_eq!(a.fill_bitflips, 10);
        assert_eq!(a.fill_retry_cycles, 240);
        assert_eq!(a.wakeup_drops, 12);
        assert_eq!(a.writeback_faults, 14);
        assert_eq!(a.writeback_retry_cycles, 480);
        assert_eq!(a.writebacks_dropped, 16);
        assert_eq!(a.total(), 4 + 6 + 2 + 8 + 10 + 12 + 14 + 16);
    }
}
