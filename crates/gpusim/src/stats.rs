//! Simulation statistics: per-kernel and aggregated.

use crate::faults::FaultStats;
use latte_cache::CacheStats;
use latte_compress::{CompressionAlgo, Cycles};

/// Why a kernel's simulation loop stopped. Ordered by severity, so
/// accumulating kernels keeps the worst outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TerminationReason {
    /// Every warp retired and the memory system drained.
    #[default]
    Completed,
    /// The kernel hit [`crate::GpuConfig::max_cycles_per_kernel`] with
    /// structurally sound simulator state: the workload is slow or
    /// livelocked, not the simulator.
    CycleLimit,
    /// No warp can ever make progress again (e.g. a barrier that can
    /// never release) while the simulator state is structurally sound:
    /// a workload deadlock.
    Deadlock,
    /// The watchdog's structural audit found corrupted simulator state;
    /// the run's statistics are suspect beyond this kernel.
    FaultAbort,
}

impl TerminationReason {
    /// `true` when the kernel ran to completion.
    #[must_use]
    pub fn is_clean(self) -> bool {
        self == TerminationReason::Completed
    }
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TerminationReason::Completed => "completed",
            TerminationReason::CycleLimit => "cycle-limit",
            TerminationReason::Deadlock => "deadlock",
            TerminationReason::FaultAbort => "fault-abort",
        })
    }
}

/// Per-algorithm event counts (compressions or decompressions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgoCounts {
    counts: [u64; 6],
}

impl AlgoCounts {
    fn index(algo: CompressionAlgo) -> usize {
        match algo {
            CompressionAlgo::None => 0,
            CompressionAlgo::Bdi => 1,
            CompressionAlgo::Fpc => 2,
            CompressionAlgo::CpackZ => 3,
            CompressionAlgo::Bpc => 4,
            CompressionAlgo::Sc => 5,
        }
    }

    /// Increments the counter for `algo`.
    pub fn bump(&mut self, algo: CompressionAlgo) {
        self.counts[Self::index(algo)] += 1;
    }

    /// Adds `n` to the counter for `algo` (used when reconstructing
    /// counts from a serialized record).
    pub fn add(&mut self, algo: CompressionAlgo, n: u64) {
        self.counts[Self::index(algo)] += n;
    }

    /// The count for `algo`.
    #[must_use]
    pub fn get(&self, algo: CompressionAlgo) -> u64 {
        self.counts[Self::index(algo)]
    }

    /// Total across all real algorithms (excludes `None`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts[1..].iter().sum()
    }

    /// Iterates `(algo, count)` over the real algorithms.
    pub fn iter(&self) -> impl Iterator<Item = (CompressionAlgo, u64)> + '_ {
        CompressionAlgo::ALL.iter().map(|&a| (a, self.get(a)))
    }
}

impl std::ops::AddAssign for AlgoCounts {
    fn add_assign(&mut self, rhs: AlgoCounts) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts) {
            *a += b;
        }
    }
}

/// One experimental phase's trace record (for the Fig 5 / Fig 16
/// time-series plots; recorded on SM 0 when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpTraceEntry {
    /// EP index within the simulation.
    pub ep_index: u64,
    /// Cycle at which the EP ended.
    pub end_cycle: Cycles,
    /// Latency tolerance estimate (Eq. 4) over the EP.
    pub latency_tolerance: f64,
    /// Effective L1 capacity at the EP boundary, relative to the baseline
    /// capacity (1.0 = uncompressed full cache).
    pub effective_capacity: f64,
    /// L1 hit rate within the EP window (cumulative approximation).
    pub l1_hit_rate: f64,
    /// Mode index selected by an adaptive policy for the next EP
    /// (None for static policies).
    pub selected_mode: Option<usize>,
}

/// Statistics from running one kernel (or a whole benchmark when summed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Cycles the kernel took.
    pub cycles: Cycles,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Aggregated L1 statistics across SMs.
    pub l1: CacheStats,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// DRAM accesses (L2 misses).
    pub dram_accesses: u64,
    /// Warp-level loads issued.
    pub loads: u64,
    /// Warp-level stores issued.
    pub stores: u64,
    /// Dirty lines written back to the L2/DRAM (write-back mode only;
    /// includes the kernel-end dirty flush).
    pub writebacks: u64,
    /// Compression operations per algorithm.
    pub compressions: AlgoCounts,
    /// Decompression operations per algorithm.
    pub decompressions: AlgoCounts,
    /// Cycles a load stalled because the MSHR file was full.
    pub mshr_stalls: u64,
    /// Total cycles warps spent blocked on L1 hits (incl. decompression).
    pub hit_wait_cycles: u64,
    /// Total cycles warps spent blocked waiting for refills.
    pub miss_wait_cycles: u64,
    /// Total cycles warps spent parked at barriers.
    pub barrier_wait_cycles: u64,
    /// Number of completed experimental phases (all SMs).
    pub eps_completed: u64,
    /// Sum over decompressions of the queueing component of the effective
    /// hit latency (Eq. 3), for contention statistics.
    pub decompression_queue_wait: u64,
    /// Per-EP traces from SM 0 (empty unless tracing is enabled).
    pub traces: Vec<EpTraceEntry>,
    /// True if the kernel stopped before completing (any
    /// [`TerminationReason`] other than `Completed`).
    pub timed_out: bool,
    /// Why the simulation loop stopped (worst across kernels when
    /// accumulated).
    pub termination: TerminationReason,
    /// Injected-fault counters (all zero when injection is disabled).
    pub faults: FaultStats,
}

impl KernelStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Accumulates another kernel's stats (traces are appended).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.l1 = self.l1 + other.l1;
        self.l2 = self.l2 + other.l2;
        self.dram_accesses += other.dram_accesses;
        self.loads += other.loads;
        self.stores += other.stores;
        self.writebacks += other.writebacks;
        self.compressions += other.compressions;
        self.decompressions += other.decompressions;
        self.mshr_stalls += other.mshr_stalls;
        self.hit_wait_cycles += other.hit_wait_cycles;
        self.miss_wait_cycles += other.miss_wait_cycles;
        self.barrier_wait_cycles += other.barrier_wait_cycles;
        self.eps_completed += other.eps_completed;
        self.decompression_queue_wait += other.decompression_queue_wait;
        self.traces.extend(other.traces.iter().copied());
        self.timed_out |= other.timed_out;
        self.termination = self.termination.max(other.termination);
        self.faults += other.faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_counts() {
        let mut c = AlgoCounts::default();
        c.bump(CompressionAlgo::Bdi);
        c.bump(CompressionAlgo::Bdi);
        c.bump(CompressionAlgo::Sc);
        c.bump(CompressionAlgo::None);
        assert_eq!(c.get(CompressionAlgo::Bdi), 2);
        assert_eq!(c.get(CompressionAlgo::Sc), 1);
        assert_eq!(c.total(), 3, "None excluded from total");
    }

    #[test]
    fn ipc() {
        let s = KernelStats {
            cycles: 100,
            instructions: 250,
            ..KernelStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(KernelStats::default().ipc(), 0.0);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = KernelStats {
            cycles: 10,
            instructions: 20,
            dram_accesses: 3,
            ..KernelStats::default()
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.instructions, 40);
        assert_eq!(a.dram_accesses, 6);
    }

    #[test]
    fn accumulate_keeps_worst_termination() {
        let mut a = KernelStats {
            termination: TerminationReason::Deadlock,
            timed_out: true,
            ..KernelStats::default()
        };
        a.accumulate(&KernelStats::default());
        assert_eq!(a.termination, TerminationReason::Deadlock);
        let mut b = KernelStats::default();
        b.accumulate(&a);
        assert_eq!(b.termination, TerminationReason::Deadlock);
        assert!(b.timed_out);
    }

    #[test]
    fn termination_severity_order() {
        use TerminationReason::*;
        assert!(Completed < CycleLimit);
        assert!(CycleLimit < Deadlock);
        assert!(Deadlock < FaultAbort);
        assert!(Completed.is_clean());
        assert!(!Deadlock.is_clean());
        assert_eq!(FaultAbort.to_string(), "fault-abort");
    }
}
