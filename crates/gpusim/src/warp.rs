//! Warp state tracking.

use crate::ops::OpStream;
use latte_compress::Cycles;

/// Execution state of one warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Can issue this cycle.
    Ready,
    /// Busy (compute latency or a cache-hit round trip) until the given
    /// cycle.
    BusyUntil(Cycles),
    /// Blocked at a load join point: ready once `pending_misses` refills
    /// have arrived *and* the clock reaches `until` (hit data in flight).
    WaitingData {
        /// Cycle at which all in-flight hit data is available.
        until: Cycles,
        /// Refills still outstanding.
        pending_misses: u32,
    },
    /// Parked at a block-wide barrier since the given cycle.
    AtBarrier(Cycles),
    /// Program finished.
    Finished,
}

/// One warp: its instruction stream plus scheduling state.
pub struct Warp {
    /// Warp index within the SM.
    pub id: usize,
    /// Thread-block index (barrier scope).
    pub block: usize,
    stream: Box<dyn OpStream>,
    /// An op handed back by [`Warp::unfetch`] (e.g. on an MSHR stall),
    /// replayed by the next fetch.
    pushback: Option<crate::ops::Op>,
    /// Async-load misses issued but not yet returned (while running).
    pub outstanding_misses: u32,
    /// Latest completion time of in-flight async-load hits.
    pub data_ready_at: Cycles,
    /// Current state.
    pub state: WarpState,
    /// Instructions issued so far.
    pub instructions: u64,
}

impl Warp {
    /// Creates a ready warp over `stream`.
    #[must_use]
    pub fn new(id: usize, block: usize, stream: Box<dyn OpStream>) -> Warp {
        Warp {
            id,
            block,
            stream,
            pushback: None,
            outstanding_misses: 0,
            data_ready_at: 0,
            state: WarpState::Ready,
            instructions: 0,
        }
    }

    /// `true` when the warp can issue at `cycle`. A `BusyUntil` warp whose
    /// deadline passed counts as ready (the transition is lazy).
    #[must_use]
    pub fn is_ready(&self, cycle: Cycles) -> bool {
        match self.state {
            WarpState::Ready => true,
            WarpState::BusyUntil(until) => until <= cycle,
            WarpState::WaitingData {
                until,
                pending_misses,
            } => pending_misses == 0 && until <= cycle,
            _ => false,
        }
    }

    /// `true` while the warp has execution work (issuable now or busy with
    /// compute) rather than being stalled on memory, a barrier, or done.
    /// This is the "available warp" of the Eq. (4) latency-tolerance
    /// estimate: such warps can absorb another warp's decompression stall.
    #[must_use]
    pub fn is_available(&self) -> bool {
        matches!(self.state, WarpState::Ready | WarpState::BusyUntil(_))
    }

    /// `true` once the warp executed its final op.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.state == WarpState::Finished
    }

    /// Pulls the next op from the stream, counting it as issued.
    pub fn fetch_op(&mut self) -> crate::ops::Op {
        self.instructions += 1;
        match self.pushback.take() {
            Some(op) => op,
            None => self.stream.next_op(),
        }
    }

    /// Hands an op back after a structural stall (MSHR full): the issue is
    /// rolled back and the op is replayed on the next fetch.
    pub fn unfetch(&mut self, op: crate::ops::Op) {
        debug_assert!(self.pushback.is_none(), "double unfetch");
        self.instructions -= 1;
        self.pushback = Some(op);
    }
}

impl std::fmt::Debug for Warp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("id", &self.id)
            .field("block", &self.block)
            .field("state", &self.state)
            .field("instructions", &self.instructions)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Op, VecStream};

    #[test]
    fn readiness_transitions() {
        let mut w = Warp::new(0, 0, Box::new(VecStream::new(vec![])));
        assert!(w.is_ready(0));
        w.state = WarpState::BusyUntil(10);
        assert!(!w.is_ready(9));
        assert!(w.is_ready(10));
        w.state = WarpState::WaitingData { until: 0, pending_misses: 1 };
        assert!(!w.is_ready(100));
        w.state = WarpState::WaitingData { until: 50, pending_misses: 0 };
        assert!(!w.is_ready(49));
        assert!(w.is_ready(50));
        w.state = WarpState::Finished;
        assert!(!w.is_ready(100));
        assert!(w.is_finished());
    }

    #[test]
    fn fetch_counts_instructions() {
        let mut w = Warp::new(0, 0, Box::new(VecStream::new(vec![Op::Barrier])));
        assert_eq!(w.fetch_op(), Op::Barrier);
        assert_eq!(w.fetch_op(), Op::Exit);
        assert_eq!(w.instructions, 2);
    }
}
