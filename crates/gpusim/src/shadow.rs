//! The shadow-verification hook: a seam through which a timing-free
//! reference model (the differential oracle in `crates/oracle`) observes
//! every architecturally visible data movement of the cycle-level
//! simulator and is asked to confirm, at configurable checkpoints, that
//! the machine's structural invariants still hold.
//!
//! The simulator stays in charge of *what* is checked structurally (it
//! owns the caches, MSHRs and policies); the hook implementor decides
//! what to do with the evidence. `gpusim` deliberately knows nothing
//! about the oracle crate — the dependency points the other way — so the
//! hook is a trait object installed via [`crate::Gpu::set_shadow_check`].
//!
//! Everything here is clock-free and panic-free: a violation is data,
//! not a crash, so a shadow-checked run finishes and reports rather than
//! aborting mid-simulation.

use latte_cache::LineAddr;
use latte_compress::{Bdi, Bpc, CacheLine, CompressionAlgo, CpackZ, Cycles, Fpc};
use std::fmt;

/// Where in the simulation a structural checkpoint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowCheckpoint {
    /// An experimental-phase boundary (periodic cadence, see
    /// [`ShadowConfig::structural_every_eps`]).
    EpBoundary,
    /// An EP boundary at which the policy's selected compression mode
    /// changed — the moment compressed-cache invariants are most at risk
    /// (lines stored under the old mode coexist with new fills).
    ModeSwitch,
    /// The end of a kernel, after the event queue drained.
    KernelEnd,
}

impl fmt::Display for ShadowCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShadowCheckpoint::EpBoundary => write!(f, "ep-boundary"),
            ShadowCheckpoint::ModeSwitch => write!(f, "mode-switch"),
            ShadowCheckpoint::KernelEnd => write!(f, "kernel-end"),
        }
    }
}

/// What kind of divergence a shadow check found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowViolationKind {
    /// A load observed data different from the last value stored at that
    /// address (or hit a line the reference model never saw filled).
    DataIntegrity,
    /// A structural invariant of the cache/MSHR/policy state failed at a
    /// checkpoint.
    Structural,
}

impl fmt::Display for ShadowViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShadowViolationKind::DataIntegrity => write!(f, "data-integrity"),
            ShadowViolationKind::Structural => write!(f, "structural"),
        }
    }
}

/// One divergence between the cycle-level machine and the reference
/// model, with enough context to reproduce it (SM, cycle, line address).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowViolation {
    /// SM on which the divergence was observed.
    pub sm: usize,
    /// Simulation cycle of the observation.
    pub cycle: Cycles,
    /// Line address involved, when the violation concerns one line.
    pub addr: Option<LineAddr>,
    /// Divergence class.
    pub kind: ShadowViolationKind,
    /// Human-readable specifics (first differing byte, failed invariant).
    pub detail: String,
}

impl fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] sm {} cycle {}", self.kind, self.sm, self.cycle)?;
        if let Some(addr) = self.addr {
            write!(f, " {addr}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Cadence knobs for the shadow hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowConfig {
    /// Run the structural invariant sweep every N experimental phases
    /// (mode switches and kernel ends always check, whatever this says).
    /// The default of 1 checks every EP; raise it to trade coverage for
    /// speed on long runs.
    pub structural_every_eps: u64,
}

impl Default for ShadowConfig {
    fn default() -> ShadowConfig {
        ShadowConfig {
            structural_every_eps: 1,
        }
    }
}

/// A reference model shadowing the cycle-level simulator.
///
/// `Send` for the same reason policies are: whole simulations run on
/// worker threads of the parallel driver. Calls arrive strictly in
/// simulation order from a single thread.
pub trait ShadowCheck: Send {
    /// A line was filled into an L1: `data` is the ground-truth refill
    /// payload as delivered by the memory hierarchy (pre-compression).
    fn on_fill(&mut self, sm: usize, addr: LineAddr, data: &CacheLine, cycle: Cycles);

    /// A load hit the L1 and the pipeline observed `observed`. `None`
    /// means the cache had no payload recorded for a resident line —
    /// itself a violation. Misses are not reported here: their data comes
    /// from the fill path, which [`ShadowCheck::on_fill`] sees.
    fn on_load(&mut self, sm: usize, addr: LineAddr, observed: Option<&CacheLine>, cycle: Cycles);

    /// A store committed architecturally on `sm`: `data` is the full
    /// 128-byte line *after* the store's sector was merged in (for a
    /// store hit, at the cycle the L1 line was rewritten; for a
    /// write-allocate miss, at the cycle the allocating fill arrived and
    /// the pending sector merged). Only emitted when the write-back data
    /// path is on; the default write-through configuration never calls
    /// this, which the default no-op implementation reflects.
    fn on_store(&mut self, sm: usize, addr: LineAddr, data: &CacheLine, cycle: Cycles) {
        let _ = (sm, addr, data, cycle);
    }

    /// A structural checkpoint fired on `sm`. `structural_errors` holds
    /// the failures the simulator's own validators found (empty when the
    /// machine is consistent).
    fn on_checkpoint(
        &mut self,
        sm: usize,
        cycle: Cycles,
        kind: ShadowCheckpoint,
        structural_errors: &[String],
    );
}

/// The payload a line holds after being stored under `algo` and read
/// back: the genuine `decode(encode(data))` round trip of the stored
/// representation. For a correct compressor this is `data` itself — and
/// that is exactly what the shadow oracle verifies end to end. SC's
/// codebook lives in the policy and is modelled lossless; raw storage is
/// trivially lossless. A decoder that errors on its own encoder's output
/// yields a deterministically garbled line so the bug surfaces as a
/// data-integrity violation instead of vanishing.
#[must_use]
pub fn roundtrip_stored(algo: CompressionAlgo, data: &CacheLine) -> CacheLine {
    fn garble(data: &CacheLine) -> CacheLine {
        let mut bytes = *data.as_bytes();
        bytes[0] ^= 0x01;
        CacheLine::from_bytes(bytes)
    }
    match algo {
        CompressionAlgo::None | CompressionAlgo::Sc => *data,
        CompressionAlgo::Bdi => {
            let bdi = Bdi::new();
            bdi.decode(&bdi.encode(data)).unwrap_or_else(|_| garble(data))
        }
        CompressionAlgo::Fpc => {
            let fpc = Fpc::new();
            fpc.decode(&fpc.encode(data)).unwrap_or_else(|_| garble(data))
        }
        CompressionAlgo::CpackZ => {
            let cp = CpackZ::new();
            cp.decode(&cp.encode(data)).unwrap_or_else(|_| garble(data))
        }
        CompressionAlgo::Bpc => {
            let bpc = Bpc::new();
            bpc.decode(&bpc.encode(data)).unwrap_or_else(|_| garble(data))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_lossless_for_every_algo() {
        let lines = [
            CacheLine::zeroed(),
            CacheLine::from_u32_words(&(0..32).collect::<Vec<u32>>()),
            CacheLine::from_u32_words(&[0x4000_0007; 32]),
        ];
        for algo in CompressionAlgo::ALL {
            for line in &lines {
                assert_eq!(
                    roundtrip_stored(algo, line),
                    *line,
                    "{algo:?} round trip must be lossless"
                );
            }
        }
    }

    #[test]
    fn violations_render_with_address_and_cycle() {
        let v = ShadowViolation {
            sm: 1,
            cycle: 4242,
            addr: Some(LineAddr::new(0x80)),
            kind: ShadowViolationKind::DataIntegrity,
            detail: "byte 3 differs".to_owned(),
        };
        let s = v.to_string();
        assert!(s.contains("sm 1"), "{s}");
        assert!(s.contains("4242"), "{s}");
        assert!(s.contains("0x80"), "{s}");
        assert!(s.contains("data-integrity"), "{s}");
    }

    #[test]
    fn checkpoint_kinds_render_distinctly() {
        let all = [
            ShadowCheckpoint::EpBoundary,
            ShadowCheckpoint::ModeSwitch,
            ShadowCheckpoint::KernelEnd,
        ];
        let mut rendered: Vec<String> = all.iter().map(ShadowCheckpoint::to_string).collect();
        rendered.sort_unstable();
        rendered.dedup();
        assert_eq!(rendered.len(), all.len());
    }
}
