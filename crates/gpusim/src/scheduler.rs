//! Warp schedulers: Greedy-Then-Oldest (GTO) and loose round-robin (LRR).
//!
//! Each SM has two schedulers (Table II); the warp pool is split evenly
//! between them. The scheduler also measures the two quantities LATTE-CC's
//! latency-tolerance estimator needs (Eq. 4): the mean number of ready
//! warps per cycle and the mean greedy run length per schedule.

use crate::config::SchedulerKind;
use crate::warp::Warp;
use latte_compress::Cycles;

/// One warp scheduler: owns a fixed slice of the SM's warps (by index) and
/// picks at most one to issue per cycle.
#[derive(Debug, Clone)]
pub struct WarpScheduler {
    kind: SchedulerKind,
    /// Indices (into the SM's warp vector) this scheduler arbitrates.
    warp_ids: Vec<usize>,
    /// The warp currently favoured by GTO greed (or the LRR rotor).
    current: Option<usize>,
    /// Length of the current greedy run, in issues.
    run_length: u64,
    /// Probe accumulators (reset each EP).
    ready_samples: u64,
    ready_sum: u64,
    runs_completed: u64,
    run_length_sum: u64,
}

/// Probe counters extracted at an EP boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerProbe {
    /// Number of cycles sampled.
    pub samples: u64,
    /// Sum of ready-warp counts over those cycles.
    pub ready_sum: u64,
    /// Number of completed greedy runs.
    pub runs: u64,
    /// Sum of greedy run lengths.
    pub run_length_sum: u64,
}

impl WarpScheduler {
    /// Creates a scheduler arbitrating `warp_ids`.
    #[must_use]
    pub fn new(kind: SchedulerKind, warp_ids: Vec<usize>) -> WarpScheduler {
        WarpScheduler {
            kind,
            warp_ids,
            current: None,
            run_length: 0,
            ready_samples: 0,
            ready_sum: 0,
            runs_completed: 0,
            run_length_sum: 0,
        }
    }

    /// The warp indices this scheduler owns.
    #[must_use]
    pub fn warp_ids(&self) -> &[usize] {
        &self.warp_ids
    }

    /// Picks the warp to issue at `cycle`, or `None` if no owned warp is
    /// ready. Also samples the ready count for the tolerance probe.
    pub fn pick(&mut self, warps: &[Warp], cycle: Cycles) -> Option<usize> {
        // The tolerance probe counts *available* warps — those holding
        // execution work (ready or computing) rather than stalled on
        // memory — since those are the warps whose work can hide a
        // decompression stall.
        let available = self
            .warp_ids
            .iter()
            .filter(|&&w| warps[w].is_available())
            .count() as u64;
        self.ready_samples += 1;
        self.ready_sum += available;
        let ready = self
            .warp_ids
            .iter()
            .filter(|&&w| warps[w].is_ready(cycle))
            .count() as u64;
        if ready == 0 {
            // An unready current warp ends its greedy run.
            self.end_run();
            return None;
        }
        match self.kind {
            SchedulerKind::Gto => {
                if let Some(cur) = self.current {
                    if warps[cur].is_ready(cycle) {
                        self.run_length += 1;
                        return Some(cur);
                    }
                    self.end_run();
                }
                // Oldest = lowest warp id (warps are launched in id order).
                // `ready > 0` was checked on entry, so `min()` is Some;
                // `?` keeps the path panic-free regardless.
                let oldest = self
                    .warp_ids
                    .iter()
                    .copied()
                    .filter(|&w| warps[w].is_ready(cycle))
                    .min()?;
                self.current = Some(oldest);
                self.run_length = 1;
                Some(oldest)
            }
            SchedulerKind::Lrr => {
                // Rotate: next ready warp after the last issued one.
                let start = self
                    .current
                    .and_then(|c| self.warp_ids.iter().position(|&w| w == c))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let n = self.warp_ids.len();
                let next = (0..n)
                    .map(|i| self.warp_ids[(start + i) % n])
                    .find(|&w| warps[w].is_ready(cycle))?;
                self.current = Some(next);
                self.runs_completed += 1;
                self.run_length_sum += 1;
                Some(next)
            }
        }
    }

    /// Accounts `n` skipped (no-issue) cycles into the probe. Warps may
    /// still hold compute work during skipped cycles, so availability is
    /// sampled rather than assumed zero.
    pub fn account_idle_cycles(&mut self, n: u64, warps: &[Warp]) {
        let available = self
            .warp_ids
            .iter()
            .filter(|&&w| warps[w].is_available())
            .count() as u64;
        self.ready_samples += n;
        self.ready_sum += available * n;
        self.end_run();
    }

    /// Reads and resets the probe accumulators.
    pub fn take_probe(&mut self) -> SchedulerProbe {
        // Count the in-flight greedy run so long runs are not invisible.
        let probe = SchedulerProbe {
            samples: self.ready_samples,
            ready_sum: self.ready_sum,
            runs: self.runs_completed + u64::from(self.run_length > 0),
            run_length_sum: self.run_length_sum + self.run_length,
        };
        self.ready_samples = 0;
        self.ready_sum = 0;
        self.runs_completed = 0;
        self.run_length_sum = 0;
        // The greedy run itself continues (the current warp stays
        // favoured), but the issues seen so far were attributed to this
        // probe window; start counting afresh for the next one.
        self.run_length = 0;
        probe
    }

    fn end_run(&mut self) {
        if self.run_length > 0 {
            self.runs_completed += 1;
            self.run_length_sum += self.run_length;
            self.run_length = 0;
        }
        if self.kind == SchedulerKind::Gto {
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Op, VecStream};
    use crate::warp::{Warp, WarpState};

    fn warps(n: usize) -> Vec<Warp> {
        (0..n)
            .map(|i| Warp::new(i, 0, Box::new(VecStream::new(vec![Op::Exit])) as Box<_>))
            .collect()
    }

    #[test]
    fn gto_sticks_with_current_warp() {
        let ws = warps(4);
        let mut s = WarpScheduler::new(SchedulerKind::Gto, vec![0, 1, 2, 3]);
        assert_eq!(s.pick(&ws, 0), Some(0));
        assert_eq!(s.pick(&ws, 1), Some(0));
        assert_eq!(s.pick(&ws, 2), Some(0));
    }

    #[test]
    fn gto_switches_to_oldest_on_stall() {
        let mut ws = warps(4);
        let mut s = WarpScheduler::new(SchedulerKind::Gto, vec![0, 1, 2, 3]);
        assert_eq!(s.pick(&ws, 0), Some(0));
        ws[0].state = WarpState::BusyUntil(100);
        ws[1].state = WarpState::BusyUntil(100);
        assert_eq!(s.pick(&ws, 1), Some(2), "oldest ready warp");
        // Warp 0 becoming ready again does not preempt the greedy run.
        ws[0].state = WarpState::Ready;
        assert_eq!(s.pick(&ws, 2), Some(2));
    }

    #[test]
    fn lrr_rotates() {
        let ws = warps(3);
        let mut s = WarpScheduler::new(SchedulerKind::Lrr, vec![0, 1, 2]);
        assert_eq!(s.pick(&ws, 0), Some(0));
        assert_eq!(s.pick(&ws, 1), Some(1));
        assert_eq!(s.pick(&ws, 2), Some(2));
        assert_eq!(s.pick(&ws, 3), Some(0));
    }

    #[test]
    fn probe_measures_runs_and_ready_counts() {
        let mut ws = warps(2);
        let mut s = WarpScheduler::new(SchedulerKind::Gto, vec![0, 1]);
        s.pick(&ws, 0);
        s.pick(&ws, 1);
        ws[0].state = WarpState::WaitingData { until: 0, pending_misses: 1 };
        s.pick(&ws, 2); // switches to warp 1, ending a run of 2
        let probe = s.take_probe();
        assert_eq!(probe.samples, 3);
        assert_eq!(probe.ready_sum, 2 + 2 + 1);
        assert_eq!(probe.runs, 2); // completed run of 2 + in-flight run of 1
        assert_eq!(probe.run_length_sum, 3);
    }

    #[test]
    fn no_ready_warps_returns_none() {
        let mut ws = warps(1);
        ws[0].state = WarpState::Finished;
        let mut s = WarpScheduler::new(SchedulerKind::Gto, vec![0]);
        assert_eq!(s.pick(&ws, 0), None);
        let probe = s.take_probe();
        assert_eq!(probe.ready_sum, 0);
        assert_eq!(probe.samples, 1);
    }

    #[test]
    fn probe_resets_after_take() {
        let ws = warps(2);
        let mut s = WarpScheduler::new(SchedulerKind::Gto, vec![0, 1]);
        s.pick(&ws, 0);
        let _ = s.take_probe();
        let probe = s.take_probe();
        assert_eq!(probe, SchedulerProbe::default());
    }
}
