//! Small deterministic kernels for tests, documentation examples and
//! micro-benchmarks. Real workloads live in the `latte-workloads` crate.

use crate::ops::{Kernel, Op, OpStream};
use latte_cache::LineAddr;
use latte_compress::CacheLine;

/// A kernel whose warps stream through a shared working set with a fixed
/// stride, interleaving a little compute between loads. Line data is
/// BDI-friendly (a large base plus small per-word offsets).
#[derive(Debug, Clone)]
pub struct StridedKernel {
    warps_per_sm: usize,
    loads_per_warp: usize,
    working_set_lines: u64,
}

impl StridedKernel {
    /// Creates a strided kernel: `warps_per_sm` warps each issuing
    /// `loads_per_warp` loads over a working set of `working_set_lines`
    /// cache lines (per SM).
    #[must_use]
    pub fn new(warps_per_sm: usize, loads_per_warp: usize, working_set_lines: u64) -> StridedKernel {
        StridedKernel {
            warps_per_sm,
            loads_per_warp,
            working_set_lines,
        }
    }
}

struct StridedStream {
    base: u64,
    stride: u64,
    span: u64,
    remaining: usize,
    i: u64,
    emit_compute: bool,
}

impl OpStream for StridedStream {
    fn next_op(&mut self) -> Op {
        if self.remaining == 0 {
            return Op::Exit;
        }
        if self.emit_compute {
            self.emit_compute = false;
            return Op::Compute { cycles: 2 };
        }
        self.emit_compute = true;
        self.remaining -= 1;
        let line = self.base + (self.i * self.stride) % self.span;
        self.i += 1;
        Op::Load {
            addr: line * CacheLine::SIZE_BYTES as u64,
        }
    }
}

impl Kernel for StridedKernel {
    fn name(&self) -> &str {
        "strided-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        self.warps_per_sm
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        // Each SM works on a disjoint address range; warps interleave.
        let base = (sm as u64) << 32;
        Box::new(StridedStream {
            base: base / CacheLine::SIZE_BYTES as u64 + warp as u64,
            stride: self.warps_per_sm as u64,
            span: self.working_set_lines,
            remaining: self.loads_per_warp,
            i: 0,
            emit_compute: false,
        })
    }

    fn line_data(&self, addr: LineAddr) -> CacheLine {
        // Low-variance integers: compressible by BDI (and everything else).
        let base = 0x1000_0000u32.wrapping_add((addr.line_number() as u32) << 8);
        let words: Vec<u32> = (0..32).map(|i| base + i).collect();
        CacheLine::from_u32_words(&words)
    }
}

/// A kernel that makes every warp hammer the same few lines (maximal
/// temporal locality, maximal MSHR merging).
#[derive(Debug, Clone)]
pub struct HotsetKernel {
    warps_per_sm: usize,
    loads_per_warp: usize,
    hot_lines: u64,
}

impl HotsetKernel {
    /// Creates a kernel of `warps_per_sm` warps looping `loads_per_warp`
    /// loads over `hot_lines` shared lines.
    #[must_use]
    pub fn new(warps_per_sm: usize, loads_per_warp: usize, hot_lines: u64) -> HotsetKernel {
        HotsetKernel {
            warps_per_sm,
            loads_per_warp,
            hot_lines,
        }
    }
}

impl Kernel for HotsetKernel {
    fn name(&self) -> &str {
        "hotset-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        self.warps_per_sm
    }

    fn warp_program(&self, sm: usize, _warp: usize) -> Box<dyn OpStream> {
        let base = (sm as u64) << 32;
        Box::new(StridedStream {
            base: base / CacheLine::SIZE_BYTES as u64,
            stride: 1,
            span: self.hot_lines,
            remaining: self.loads_per_warp,
            i: 0,
            emit_compute: false,
        })
    }

    fn line_data(&self, addr: LineAddr) -> CacheLine {
        // A four-value alphabet: SC-friendly, BDI-hostile.
        let seeds = [
            f32::to_bits(1.5e10),
            f32::to_bits(-3.25),
            f32::to_bits(2.0e-5),
            f32::to_bits(7.875),
        ];
        let words: Vec<u32> = (0..32)
            .map(|i| seeds[((addr.line_number() as usize) + i as usize) % 4])
            .collect();
        CacheLine::from_u32_words(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_stream_interleaves_compute() {
        let k = StridedKernel::new(2, 3, 100);
        let mut s = k.warp_program(0, 0);
        assert!(matches!(s.next_op(), Op::Load { .. }));
        assert!(matches!(s.next_op(), Op::Compute { .. }));
        assert!(matches!(s.next_op(), Op::Load { .. }));
        assert!(matches!(s.next_op(), Op::Compute { .. }));
        assert!(matches!(s.next_op(), Op::Load { .. }));
        assert_eq!(s.next_op(), Op::Exit);
    }

    #[test]
    fn line_data_is_deterministic() {
        let k = StridedKernel::new(1, 1, 1);
        let a = LineAddr::new(42);
        assert_eq!(k.line_data(a), k.line_data(a));
    }

    #[test]
    fn sms_use_disjoint_ranges() {
        let k = StridedKernel::new(1, 4, 16);
        let mut s0 = k.warp_program(0, 0);
        let mut s1 = k.warp_program(1, 0);
        let (Op::Load { addr: a0 }, Op::Load { addr: a1 }) = (s0.next_op(), s1.next_op()) else {
            panic!("expected loads");
        };
        assert_ne!(
            LineAddr::from_byte_addr(a0),
            LineAddr::from_byte_addr(a1)
        );
    }
}
