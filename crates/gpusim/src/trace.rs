//! Caller-supplied diagnostic sinks.
//!
//! Simulation crates must never write to stdout/stderr directly (lint
//! rule D4): under the parallel experiment driver, raw prints interleave
//! across worker threads and bypass the per-experiment output capture
//! that makes reports bit-identical across `--jobs` values. Any
//! diagnostic a simulation component wants to surface goes through a
//! [`TraceSink`] the driver installs — the driver decides whether that
//! means the capture buffer, stderr, or silence.

use std::fmt;
use std::sync::Arc;

/// A shareable "write one diagnostic line" callback.
///
/// Cloning is cheap (an [`Arc`] bump). Equality is sink *identity*
/// (pointer equality), which is what configuration types need: two
/// configs are interchangeable when they forward diagnostics to the
/// same place.
#[derive(Clone)]
// latte-lint: shared-boundary(reason = "diagnostic fan-in deliberately shared across SMs; the sink callback is Send + Sync and line-buffered by the driver's capture layer")
pub struct TraceSink(Arc<dyn Fn(&str) + Send + Sync>);

impl TraceSink {
    /// Wraps a callback invoked once per diagnostic line (no trailing
    /// newline; the sink appends its own framing).
    pub fn new(f: impl Fn(&str) + Send + Sync + 'static) -> TraceSink {
        TraceSink(Arc::new(f))
    }

    /// Emits one diagnostic line.
    pub fn emit(&self, line: &str) {
        (self.0)(line);
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceSink(..)")
    }
}

impl PartialEq for TraceSink {
    fn eq(&self, other: &TraceSink) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn emits_through_the_callback() {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let captured = Arc::clone(&lines);
        let sink = TraceSink::new(move |l| captured.lock().unwrap().push(l.to_owned()));
        sink.emit("hello");
        sink.emit("world");
        assert_eq!(*lines.lock().unwrap(), ["hello", "world"]);
    }

    #[test]
    fn equality_is_identity() {
        let a = TraceSink::new(|_| {});
        let b = a.clone();
        let c = TraceSink::new(|_| {});
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
