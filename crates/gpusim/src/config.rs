//! Simulated GPU configuration (Table II of the paper).

use crate::faults::FaultConfig;
use crate::fingerprint::Fingerprinter;
use latte_cache::CacheGeometry;

/// Which warp scheduler the SMs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Greedy-Then-Oldest (Rogers et al., MICRO'12) — the paper's default.
    #[default]
    Gto,
    /// Loose round-robin: rotate over ready warps each cycle.
    Lrr,
}

/// Full configuration of the simulated GPU.
///
/// [`GpuConfig::paper`] reproduces Table II; experiments that need a
/// lighter machine (for wall-clock reasons) scale `num_sms` down, which
/// preserves per-SM behaviour because SMs interact only through the shared
/// L2 (whose capacity is scaled along).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum warps resident per SM.
    pub max_warps_per_sm: usize,
    /// Warps per thread block (barriers synchronise within a block).
    pub warps_per_block: usize,
    /// Warp schedulers per SM; warps are split round-robin between them.
    pub schedulers_per_sm: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// L1 data cache geometry (per SM).
    pub l1_geometry: CacheGeometry,
    /// Unified L2 geometry (shared).
    pub l2_geometry: CacheGeometry,
    /// Base L1 hit latency in cycles (before any decompression penalty).
    pub l1_hit_latency: u64,
    /// Extra L1 hit latency added to *every* hit (the Fig 1 sweep knob).
    pub extra_hit_latency: u64,
    /// Minimum L2 access latency in cycles (Table II: 120).
    pub l2_latency: u64,
    /// Minimum DRAM access latency in cycles (Table II: 230).
    pub dram_latency: u64,
    /// L1 MSHR entries per SM.
    pub mshr_entries: usize,
    /// Maximum merged misses per MSHR entry.
    pub mshr_merges: u32,
    /// Experimental-phase length in L1 accesses (§IV-C3: 256).
    pub ep_accesses: u64,
    /// Hard cycle limit per kernel (safety net against livelock).
    pub max_cycles_per_kernel: u64,
    /// Charge zero cycles for decompression (the Fig 3 upper-bound study).
    pub zero_decompression_latency: bool,
    /// Store compressed lines at full size — latency penalty without the
    /// capacity benefit (the Fig 4 study).
    pub ignore_capacity_benefit: bool,
    /// Record per-EP traces (latency tolerance, effective capacity) on
    /// SM 0 for the Fig 5 / Fig 16 time-series plots.
    pub record_traces: bool,
    /// Flush caches and in-flight state at kernel boundaries.
    pub flush_at_kernel_boundary: bool,
    /// Allocate lines in the L1 on store misses (write-allocate) instead
    /// of the paper's write-avoid policy (§IV-C3). The paper reports the
    /// choice has negligible performance impact; `latte-bench sens-write`
    /// reproduces that claim.
    pub write_allocate: bool,
    /// Run the L1 as a write-back/write-allocate cache with dirty
    /// compressed lines: stores merge their sector into the cached line,
    /// the line is re-compressed in place (a grown line may evict its
    /// neighbours), and dirty victims carry their bytes to the L2/DRAM
    /// as explicit write-back traffic. `false` (the default) keeps the
    /// paper's write-through, write-avoid store path byte-for-byte.
    /// Implies write-allocate behaviour for stores regardless of
    /// `write_allocate`.
    pub write_back: bool,
    /// Deterministic fault injection (`None` disables it entirely; the
    /// happy path then takes no injection branches and produces
    /// bit-identical statistics to a build without the feature).
    pub faults: Option<FaultConfig>,
    /// Worker threads for intra-simulation SM parallelism (the epoch
    /// barrier, see `crates/gpusim/src/parallel.rs`). `1` (the default)
    /// takes the unchanged serial loop; any other value produces
    /// byte-identical results, so this knob is deliberately **excluded**
    /// from [`GpuConfig::fingerprint`] — memoized and stored results
    /// transfer freely between serial and parallel runs.
    pub sim_threads: usize,
}

impl GpuConfig {
    /// Table II: 15 SMs, 48 warps/SM, 2 schedulers, GTO, 16 KB L1 / 768 KB
    /// L2, 120/230-cycle L2/DRAM latencies.
    #[must_use]
    pub fn paper() -> GpuConfig {
        GpuConfig {
            num_sms: 15,
            max_warps_per_sm: 48,
            warps_per_block: 6, // 8 blocks per SM (Table II) at max occupancy
            schedulers_per_sm: 2,
            scheduler: SchedulerKind::Gto,
            l1_geometry: CacheGeometry::paper_l1(),
            l2_geometry: CacheGeometry::paper_l2(),
            l1_hit_latency: 4,
            extra_hit_latency: 0,
            l2_latency: 120,
            dram_latency: 230,
            mshr_entries: 64,
            mshr_merges: 16,
            ep_accesses: 256,
            max_cycles_per_kernel: 50_000_000,
            zero_decompression_latency: false,
            ignore_capacity_benefit: false,
            record_traces: false,
            flush_at_kernel_boundary: true,
            write_allocate: false,
            write_back: false,
            faults: None,
            sim_threads: 1,
        }
    }

    /// A scaled-down machine for fast experimentation: 4 SMs with a
    /// proportionally scaled L2. Per-SM behaviour (the object of study) is
    /// unchanged; only the amount of replicated hardware shrinks.
    #[must_use]
    pub fn small() -> GpuConfig {
        GpuConfig {
            num_sms: 4,
            l2_geometry: CacheGeometry {
                size_bytes: 768 * 1024 * 4 / 15 / 1024 * 1024, // ≈ 200 KB, whole KB
                ways: 8,
                tag_factor: 1,
            },
            ..GpuConfig::paper()
        }
    }

    /// The §V-E sensitivity configuration: 48 KB L1 per SM.
    #[must_use]
    pub fn with_large_l1(mut self) -> GpuConfig {
        self.l1_geometry = CacheGeometry::large_l1();
        self
    }

    /// Warps each scheduler of an SM owns (the warp pool is split evenly).
    #[must_use]
    pub fn warps_per_scheduler(&self) -> usize {
        self.max_warps_per_sm.div_ceil(self.schedulers_per_sm)
    }

    /// A stable 128-bit structural fingerprint covering **every** field
    /// (including the optional fault configuration), used by the bench
    /// harness to key its simulation memo cache. Equal configs always
    /// fingerprint equal; any field change changes the fingerprint.
    ///
    /// New fields MUST be folded in here — the
    /// `fingerprint_covers_every_field` test cross-checks a
    /// representative mutation of each field.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        let mut fp = Fingerprinter::new();
        fp.write_usize(self.num_sms);
        fp.write_usize(self.max_warps_per_sm);
        fp.write_usize(self.warps_per_block);
        fp.write_usize(self.schedulers_per_sm);
        fp.write_u64(match self.scheduler {
            SchedulerKind::Gto => 0,
            SchedulerKind::Lrr => 1,
        });
        for geo in [&self.l1_geometry, &self.l2_geometry] {
            fp.write_usize(geo.size_bytes);
            fp.write_usize(geo.ways);
            fp.write_usize(geo.tag_factor);
        }
        fp.write_u64(self.l1_hit_latency);
        fp.write_u64(self.extra_hit_latency);
        fp.write_u64(self.l2_latency);
        fp.write_u64(self.dram_latency);
        fp.write_usize(self.mshr_entries);
        fp.write_u32(self.mshr_merges);
        fp.write_u64(self.ep_accesses);
        fp.write_u64(self.max_cycles_per_kernel);
        fp.write_bool(self.zero_decompression_latency);
        fp.write_bool(self.ignore_capacity_benefit);
        fp.write_bool(self.record_traces);
        fp.write_bool(self.flush_at_kernel_boundary);
        fp.write_bool(self.write_allocate);
        fp.write_bool(self.write_back);
        match &self.faults {
            None => fp.write_u64(0),
            Some(f) => {
                fp.write_u64(1);
                f.write_fingerprint(&mut fp);
            }
        }
        // `sim_threads` is deliberately NOT folded in: the epoch-barrier
        // parallel loop is byte-identical to the serial one, so the thread
        // count cannot change results and must not fragment the memo/store
        // key space (a warm serial store must satisfy a parallel run).
        fp.finish()
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_ii() {
        let c = GpuConfig::paper();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.schedulers_per_sm, 2);
        assert_eq!(c.l1_geometry.size_bytes, 16 * 1024);
        assert_eq!(c.l2_geometry.size_bytes, 768 * 1024);
        assert_eq!(c.l2_latency, 120);
        assert_eq!(c.dram_latency, 230);
        assert_eq!(c.scheduler, SchedulerKind::Gto);
    }

    #[test]
    fn small_config_scales_l2() {
        let c = GpuConfig::small();
        assert_eq!(c.num_sms, 4);
        assert!(c.l2_geometry.size_bytes < 768 * 1024);
        // L2 geometry must still divide into whole sets.
        let _ = c.l2_geometry.num_sets();
    }

    #[test]
    fn warps_split_across_schedulers() {
        let c = GpuConfig::paper();
        assert_eq!(c.warps_per_scheduler(), 24);
    }

    #[test]
    fn large_l1_sensitivity() {
        let c = GpuConfig::paper().with_large_l1();
        assert_eq!(c.l1_geometry.size_bytes, 48 * 1024);
    }

    #[test]
    fn fingerprint_is_stable_and_covers_every_field() {
        let base = GpuConfig::paper();
        assert_eq!(base.fingerprint(), GpuConfig::paper().fingerprint());

        // One representative mutation per field; each must change the
        // fingerprint, and all mutants must be pairwise distinct.
        let mutants: Vec<GpuConfig> = vec![
            GpuConfig { num_sms: 16, ..base.clone() },
            GpuConfig { max_warps_per_sm: 47, ..base.clone() },
            GpuConfig { warps_per_block: 5, ..base.clone() },
            GpuConfig { schedulers_per_sm: 1, ..base.clone() },
            GpuConfig { scheduler: SchedulerKind::Lrr, ..base.clone() },
            base.clone().with_large_l1(),
            GpuConfig { l2_geometry: GpuConfig::small().l2_geometry, ..base.clone() },
            GpuConfig { l1_hit_latency: 5, ..base.clone() },
            GpuConfig { extra_hit_latency: 3, ..base.clone() },
            GpuConfig { l2_latency: 121, ..base.clone() },
            GpuConfig { dram_latency: 231, ..base.clone() },
            GpuConfig { mshr_entries: 63, ..base.clone() },
            GpuConfig { mshr_merges: 15, ..base.clone() },
            GpuConfig { ep_accesses: 255, ..base.clone() },
            GpuConfig { max_cycles_per_kernel: 1, ..base.clone() },
            GpuConfig { zero_decompression_latency: true, ..base.clone() },
            GpuConfig { ignore_capacity_benefit: true, ..base.clone() },
            GpuConfig { record_traces: true, ..base.clone() },
            GpuConfig { flush_at_kernel_boundary: false, ..base.clone() },
            GpuConfig { write_allocate: true, ..base.clone() },
            GpuConfig { write_back: true, ..base.clone() },
            GpuConfig { faults: Some(FaultConfig::default()), ..base.clone() },
            GpuConfig { faults: Some(FaultConfig::bitflips(42, 1e-4)), ..base.clone() },
            GpuConfig { faults: Some(FaultConfig::bitflips(43, 1e-4)), ..base.clone() },
            GpuConfig {
                faults: Some(FaultConfig { disable_recovery: true, ..FaultConfig::default() }),
                ..base.clone()
            },
            GpuConfig { faults: Some(FaultConfig::writeback_faults(42, 1e-4)), ..base.clone() },
            GpuConfig {
                faults: Some(FaultConfig { drop_writebacks: true, ..FaultConfig::default() }),
                ..base.clone()
            },
        ];
        let mut fps: Vec<u128> = mutants.iter().map(GpuConfig::fingerprint).collect();
        fps.push(base.fingerprint());
        let n = fps.len();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), n, "a field mutation failed to change the fingerprint");
    }

    #[test]
    fn sim_threads_is_excluded_from_the_fingerprint() {
        // The epoch-barrier loop is byte-identical to the serial one, so
        // the thread count must NOT fragment the memo/store key space:
        // a warm serial result has to satisfy a parallel run and vice
        // versa. This pin is load-bearing — folding `sim_threads` into
        // `fingerprint()` would silently invalidate every stored result.
        let base = GpuConfig::paper();
        for n in [0, 2, 4, 64] {
            let parallel = GpuConfig { sim_threads: n, ..base.clone() };
            assert_eq!(
                parallel.fingerprint(),
                base.fingerprint(),
                "sim_threads={n} must not change the fingerprint"
            );
        }
    }
}
