//! The hook through which a compression management policy (LATTE-CC or a
//! baseline) plugs into the simulator.
//!
//! The simulator owns the caches and the pipeline; the policy owns the
//! compressors and the decision logic. On every L1 fill the simulator asks
//! the policy how to compress the incoming line; on every L1 access and at
//! every experimental-phase (EP) boundary it feeds the policy the
//! measurements LATTE-CC's controller needs (per-set hit/miss events and
//! the latency-tolerance probe of Eq. 4).

use latte_compress::{CacheLine, Compression, CompressionAlgo, Cycles};

/// One L1 access, as seen by the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessEvent {
    /// Cache set accessed.
    pub set: usize,
    /// `true` on a hit.
    pub hit: bool,
    /// Algorithm of the resident line (hits only; `None` otherwise).
    pub algo: CompressionAlgo,
    /// Cycle of the access.
    pub cycle: Cycles,
}

/// Scheduler measurements over one experimental phase, from which the
/// latency tolerance of Eq. (4) is derived.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpProbe {
    /// Index of the EP that just ended (monotonic within a kernel).
    pub ep_index: u64,
    /// Mean number of ready warps per scheduler cycle.
    pub avg_warps_available: f64,
    /// Mean number of consecutive issues a warp enjoyed before the
    /// scheduler switched away (GTO greed run length).
    pub avg_exec_cycles_per_schedule: f64,
    /// L1 accesses in the EP (== the configured EP length, except for the
    /// final truncated EP of a kernel).
    pub l1_accesses: u64,
    /// Cycles the EP spanned.
    pub cycles: Cycles,
    /// Cycle at which the EP ended.
    pub end_cycle: Cycles,
}

impl EpProbe {
    /// The latency tolerance estimate of Eq. (4):
    /// `average_warps_available / average_execution_cycles_per_schedule`.
    #[must_use]
    pub fn latency_tolerance(&self) -> f64 {
        if self.avg_exec_cycles_per_schedule <= 0.0 {
            0.0
        } else {
            self.avg_warps_available / self.avg_exec_cycles_per_schedule
        }
    }
}

/// Summary of a policy's recent decisions, for experiment reporting
/// (e.g. the Fig 15 agreement analysis). Counters reset at kernel start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyReport {
    /// EPs spent in [no-compression, low-latency, high-capacity] mode
    /// since the last kernel start (all zero for non-adaptive policies).
    pub eps_in_mode: [u64; 3],
}

impl PolicyReport {
    /// Total EPs recorded.
    #[must_use]
    pub fn total_eps(&self) -> u64 {
        self.eps_in_mode.iter().sum()
    }
}

/// A per-SM compression management policy.
///
/// The default method bodies make a minimal policy trivial to write: only
/// [`L1CompressionPolicy::compress_fill`] is required.
///
/// Policies must be [`Send`]: the parallel experiment driver runs whole
/// simulations on worker threads, so every piece of per-SM state — the
/// policy included — has to be movable across threads. Policies are still
/// driven single-threaded (one `Gpu` never crosses a thread mid-run), so
/// `Sync` is *not* required and interior state needs no locking.
pub trait L1CompressionPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides how to store a line being filled into `set`. Returns the
    /// algorithm tag to record and the achieved compression. Returning
    /// `(CompressionAlgo::None, Compression::UNCOMPRESSED)` stores raw.
    ///
    /// This is the fill hot path: the simulator only needs the *size*, so
    /// implementations should use [`latte_compress::Compressor::probe`]
    /// (probe/compress parity is pinned by the compress crate's parity
    /// suite). Payload bytes are materialised elsewhere — the shadow
    /// roundtrip and fault injection run the full encoders on their own.
    fn compress_fill(&mut self, set: usize, line: &CacheLine) -> (CompressionAlgo, Compression);

    /// Decompression latency charged for a hit on a line stored with
    /// `algo`. Defaults to the Table I latencies.
    fn decompression_latency(&self, algo: CompressionAlgo) -> Cycles {
        algo.decompression_latency()
    }

    /// Called on every L1 data access.
    fn on_access(&mut self, _ev: &AccessEvent) {}

    /// Called when a compressed line stored with `algo` fails to
    /// decompress (detected corruption). The access has already been
    /// re-classified as a miss and the line invalidated; adaptive
    /// policies may use this to demote themselves to uncompressed
    /// operation when the error rate is suspicious.
    fn on_decode_error(&mut self, _algo: CompressionAlgo) {}

    /// Called at every EP boundary with the latency-tolerance probe.
    fn on_ep(&mut self, _probe: &EpProbe) {}

    /// Called when a kernel starts.
    fn on_kernel_start(&mut self) {}

    /// Called when a kernel ends.
    fn on_kernel_end(&mut self) {}

    /// Polled after EP boundaries: a policy may request invalidation of
    /// all lines stored with a given algorithm (SC does this when its
    /// codebook is rebuilt at a period boundary, §IV-C2).
    fn pending_invalidation(&mut self) -> Option<CompressionAlgo> {
        None
    }

    /// Decision summary since the last kernel start (adaptive policies
    /// override this for the Fig 15 analysis).
    fn report(&self) -> PolicyReport {
        PolicyReport::default()
    }

    /// The mode index ([no-compression, low-latency, high-capacity])
    /// currently selected, if the policy is adaptive. Used by the
    /// decision-trace instrumentation.
    fn current_mode_index(&self) -> Option<usize> {
        None
    }

    /// Verifies the policy's internal invariants (e.g. SC dictionary and
    /// period-clock consistency) without panicking. Called by the
    /// shadow-verification checkpoints; stateless policies are trivially
    /// consistent.
    ///
    /// # Errors
    ///
    /// Returns `Err` describing the first violated invariant.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

/// The baseline policy: never compress.
#[derive(Debug, Clone, Copy, Default)]
pub struct UncompressedPolicy;

impl L1CompressionPolicy for UncompressedPolicy {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn compress_fill(&mut self, _set: usize, _line: &CacheLine) -> (CompressionAlgo, Compression) {
        (CompressionAlgo::None, Compression::UNCOMPRESSED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_latency_tolerance() {
        let probe = EpProbe {
            avg_warps_available: 12.0,
            avg_exec_cycles_per_schedule: 3.0,
            ..EpProbe::default()
        };
        assert!((probe.latency_tolerance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn probe_tolerance_handles_zero_denominator() {
        let probe = EpProbe::default();
        assert_eq!(probe.latency_tolerance(), 0.0);
    }

    #[test]
    fn uncompressed_policy_stores_raw() {
        let mut p = UncompressedPolicy;
        let (algo, c) = p.compress_fill(0, &CacheLine::zeroed());
        assert_eq!(algo, CompressionAlgo::None);
        assert!(!c.is_compressed());
        assert_eq!(p.decompression_latency(CompressionAlgo::Sc), 14);
    }
}
