//! The top-level GPU: SMs, shared L2, memory event queue and the
//! cycle-stepping loop.

use crate::config::GpuConfig;
use crate::ops::Kernel;
use crate::parallel::{self, EpochStats};
use crate::policy::L1CompressionPolicy;
use crate::shadow::{ShadowCheck, ShadowCheckpoint, ShadowConfig};
use crate::sm::{L2Port, MemCtx, MemEvent, MemImage, Sm};
use crate::stats::{KernelStats, TerminationReason};
use crate::trace::TraceSink;
use latte_cache::SimpleCache;
use latte_compress::Cycles;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The simulated GPU.
///
/// Construct it with one policy instance per SM (LATTE-CC runs a private
/// controller per SM; static policies are stateless so replication is
/// harmless), then run kernels against it. Policies persist across kernels
/// so training state carries over; caches flush at kernel boundaries when
/// the config says so.
///
/// # Example
///
/// ```
/// use latte_gpusim::{Gpu, GpuConfig, UncompressedPolicy};
/// use latte_gpusim::testing::StridedKernel;
///
/// let config = GpuConfig::small();
/// let mut gpu = Gpu::new(&config, |_| Box::new(UncompressedPolicy));
/// let kernel = StridedKernel::new(4, 64, 1024);
/// let stats = gpu.run_kernel(&kernel);
/// assert!(stats.instructions > 0);
/// assert!(stats.cycles > 0);
/// ```
pub struct Gpu {
    config: GpuConfig,
    sms: Vec<Sm>,
    l2: SimpleCache,
    /// Backing-store image behind the L2: architectural memory as
    /// modified by dirty write-backs (empty — lines pristine — outside
    /// write-back mode). Keyed access only, never iterated.
    image: MemImage,
    policies: Vec<Box<dyn L1CompressionPolicy>>,
    events: BinaryHeap<Reverse<MemEvent>>,
    diag: Option<TraceSink>,
    shadow: Option<Box<dyn ShadowCheck>>,
    shadow_cfg: ShadowConfig,
    epoch_stats: EpochStats,
}

impl Gpu {
    /// Creates a GPU, building one policy per SM via `make_policy(sm_id)`.
    ///
    /// The config is taken by reference and cloned exactly once, so
    /// `make_policy` can freely borrow the caller's copy (policies are
    /// typically tuned to the same config the GPU runs).
    pub fn new(
        config: &GpuConfig,
        mut make_policy: impl FnMut(usize) -> Box<dyn L1CompressionPolicy>,
    ) -> Gpu {
        let sms = (0..config.num_sms).map(|i| Sm::new(i, config)).collect();
        let policies = (0..config.num_sms).map(&mut make_policy).collect();
        let l2 = SimpleCache::new(config.l2_geometry);
        Gpu {
            config: config.clone(),
            sms,
            l2,
            image: MemImage::new(),
            policies,
            events: BinaryHeap::new(),
            diag: None,
            shadow: None,
            shadow_cfg: ShadowConfig::default(),
            epoch_stats: EpochStats::default(),
        }
    }

    /// Installs a differential-verification hook (see [`ShadowCheck`]).
    ///
    /// Every SM's L1 switches on its payload shadow, so subsequent loads
    /// report the bytes the cache actually holds. Install the hook before
    /// running kernels: enabling the shadow invalidates all L1 contents so
    /// no resident line can predate its payload record.
    pub fn set_shadow_check(&mut self, check: Box<dyn ShadowCheck>, cfg: ShadowConfig) {
        for sm in &mut self.sms {
            sm.l1.enable_payload_shadow();
        }
        self.shadow = Some(check);
        self.shadow_cfg = cfg;
    }

    /// Installs the sink that receives watchdog and early-termination
    /// diagnostics. Without one, diagnostics are dropped — the driver
    /// decides where (and whether) they surface; the simulator never
    /// writes to stdout/stderr itself.
    pub fn set_diag_sink(&mut self, sink: TraceSink) {
        self.diag = Some(sink);
    }

    fn emit_diag(&self, line: &str) {
        if let Some(sink) = &self.diag {
            sink.emit(line);
        }
    }

    /// The configuration this GPU runs.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `kernel` to completion (or the cycle limit) and returns its
    /// statistics.
    pub fn run_kernel(&mut self, kernel: &dyn Kernel) -> KernelStats {
        let mut stats = KernelStats::default();
        self.events.clear();
        if self.config.flush_at_kernel_boundary {
            self.l2.invalidate_all();
            // Each kernel's memory is defined by its own `line_data`
            // function, so the write-back image resets with the caches.
            // Without boundary flushes, caches stay warm, dirty lines
            // stay resident, and the image must persist with them.
            self.image.clear();
        }
        self.l2.reset_stats();
        for (sm, policy) in self.sms.iter_mut().zip(&mut self.policies) {
            sm.launch(kernel, &self.config);
            policy.on_kernel_start();
        }

        let threads = parallel::effective_threads(&self.config);
        let cycle = if threads > 1 {
            self.run_cycles_parallel(kernel, threads, &mut stats)
        } else {
            self.run_cycles_serial(kernel, &mut stats)
        };

        // Kernel-end dirty flush: when caches flush at the boundary,
        // dirty lines drain to the L2 and the backing-store image first
        // (SM id order, deterministic in both loops — this runs after
        // the parallel workers have reassembled the machine). Without
        // boundary flushes, dirty lines legitimately stay resident. The
        // planted `drop_writebacks` mutation discards the flush too.
        if self.config.write_back && self.config.flush_at_kernel_boundary {
            let dropped = self.config.faults.is_some_and(|f| f.drop_writebacks);
            for sm in &mut self.sms {
                for (addr, data) in sm.drain_dirty() {
                    if dropped {
                        stats.faults.writebacks_dropped += 1;
                        continue;
                    }
                    stats.writebacks += 1;
                    self.image.insert(addr, data);
                    if !self.l2.access_and_fill(addr) {
                        stats.dram_accesses += 1;
                    }
                }
            }
        }

        // Kernel-end checkpoint: every SM's structural invariants must
        // hold at quiescence regardless of the in-kernel cadence.
        if let Some(shadow) = &mut self.shadow {
            for (sm, policy) in self.sms.iter().zip(&self.policies) {
                let errors = sm.structural_errors(policy.as_ref());
                shadow.on_checkpoint(sm.id, cycle, ShadowCheckpoint::KernelEnd, &errors);
            }
        }

        stats.cycles = cycle.max(1);
        // Instruction counts accumulate in warps as well; cross-check.
        debug_assert_eq!(
            stats.instructions,
            self.sms
                .iter()
                .flat_map(|s| s.warps.iter())
                .map(|w| w.instructions)
                .sum::<u64>()
        );
        stats.barrier_wait_cycles = self.sms.iter().map(|s| s.barrier_wait).sum();
        stats.l1 = self.sms.iter().map(|s| *s.l1.stats()).sum();
        stats.l2 = *self.l2.stats();
        stats
    }

    /// The original single-threaded cycle loop: deliver due completions,
    /// issue every SM in id order, fast-forward idle gaps. Returns the
    /// final processed cycle; early terminations are recorded in `stats`.
    fn run_cycles_serial(&mut self, kernel: &dyn Kernel, stats: &mut KernelStats) -> Cycles {
        let mut cycle: Cycles = 0;
        loop {
            // Deliver memory completions due by now.
            while let Some(&Reverse(ev)) = self.events.peek() {
                if ev.cycle > cycle {
                    break;
                }
                self.events.pop();
                let sm = &mut self.sms[ev.sm];
                let mut ctx = MemCtx {
                    l2: L2Port::Direct {
                        l2: &mut self.l2,
                        image: &mut self.image,
                    },
                    events: &mut self.events,
                    policy: self.policies[ev.sm].as_mut(),
                    kernel,
                    config: &self.config,
                    stats,
                    shadow: self.shadow.as_deref_mut(),
                    shadow_every: self.shadow_cfg.structural_every_eps,
                };
                sm.handle_fill(ev.addr, ev.cycle.max(cycle), ev.verified, ev.data, &mut ctx);
            }

            // Issue.
            let mut issued = 0;
            for (sm, policy) in self.sms.iter_mut().zip(&mut self.policies) {
                let mut ctx = MemCtx {
                    l2: L2Port::Direct {
                        l2: &mut self.l2,
                        image: &mut self.image,
                    },
                    events: &mut self.events,
                    policy: policy.as_mut(),
                    kernel,
                    config: &self.config,
                    stats,
                    shadow: self.shadow.as_deref_mut(),
                    shadow_every: self.shadow_cfg.structural_every_eps,
                };
                issued += sm.issue_cycle(cycle, &mut ctx);
            }
            stats.instructions += issued;

            let done = self.sms.iter().all(Sm::all_finished) && self.events.is_empty();
            if done {
                break;
            }
            if cycle >= self.config.max_cycles_per_kernel {
                stats.timed_out = true;
                stats.termination = self.audit_termination(TerminationReason::CycleLimit);
                break;
            }

            if issued > 0 {
                cycle += 1;
                continue;
            }
            // Nothing issued: fast-forward to the next interesting cycle.
            let next_event = self.events.peek().map(|&Reverse(e)| e.cycle);
            let next_wake = self
                .sms
                .iter()
                .filter_map(Sm::next_wake)
                .map(|w| w.max(cycle + 1))
                .min();
            let target = match (next_event, next_wake) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    // No pending work but not all finished. The watchdog
                    // audit decides whether this is a workload deadlock
                    // (e.g. a barrier that can never release) or the
                    // simulator's own state went bad. Bail out either way.
                    stats.timed_out = true;
                    stats.termination = self.audit_termination(TerminationReason::Deadlock);
                    break;
                }
            };
            let target = target.max(cycle + 1);
            let skipped = target - cycle - 1;
            if skipped > 0 {
                for sm in &mut self.sms {
                    sm.account_idle(skipped);
                }
            }
            cycle = target;
        }
        cycle
    }

    /// The epoch-barrier parallel loop (see [`crate::parallel`]): shards
    /// of SMs simulate on worker threads for bounded epochs, and the
    /// barrier arbiter replays their buffered L2 traffic in the serial
    /// order. Byte-identical to [`Gpu::run_cycles_serial`] by design;
    /// the determinism suite pins it.
    fn run_cycles_parallel(
        &mut self,
        kernel: &dyn Kernel,
        threads: usize,
        stats: &mut KernelStats,
    ) -> Cycles {
        let outcome = parallel::run_cycles(
            threads,
            &mut self.sms,
            &mut self.policies,
            &mut self.l2,
            &mut self.image,
            self.shadow.as_deref_mut(),
            self.shadow_cfg.structural_every_eps,
            &self.config,
            kernel,
            stats,
            &mut self.epoch_stats,
        );
        if let Some(fallback) = outcome.fallback {
            stats.timed_out = true;
            stats.termination = self.audit_termination(fallback);
        }
        outcome.cycle
    }

    /// Drains the accumulated epoch/barrier accounting (populated only by
    /// parallel runs; empty after serial ones). The bench driver's
    /// `--timings` report surfaces it.
    pub fn take_epoch_stats(&mut self) -> EpochStats {
        std::mem::take(&mut self.epoch_stats)
    }

    /// Watchdog audit: distinguishes a stalled workload from corrupted
    /// simulator state. Returns `fallback` when every L1 passes its
    /// structural validation and `FaultAbort` otherwise (the violation is
    /// reported through the diagnostic sink; statistics past this point
    /// are suspect).
    fn audit_termination(&self, fallback: TerminationReason) -> TerminationReason {
        for sm in &self.sms {
            if let Err(violation) = sm.l1.validate() {
                self.emit_diag(&format!(
                    "latte-gpusim: watchdog found corrupted L1 state on SM {}: {violation}",
                    sm.id
                ));
                return TerminationReason::FaultAbort;
            }
        }
        fallback
    }

    /// Runs a sequence of kernels, returning per-kernel statistics.
    /// Kernels that stop early (cycle limit, deadlock, fault abort) are
    /// reported through the diagnostic sink instead of failing silently.
    pub fn run_kernels<'k>(
        &mut self,
        kernels: impl IntoIterator<Item = &'k dyn Kernel>,
    ) -> Vec<KernelStats> {
        kernels
            .into_iter()
            .enumerate()
            .map(|(i, k)| {
                let stats = self.run_kernel(k);
                if !stats.termination.is_clean() {
                    self.emit_diag(&format!(
                        "latte-gpusim: kernel {i} ({}) stopped early: {} after {} cycles",
                        k.name(),
                        stats.termination,
                        stats.cycles
                    ));
                }
                stats
            })
            .collect()
    }

    /// Decision reports from every SM's policy (see
    /// [`crate::policy::PolicyReport`]).
    #[must_use]
    pub fn policy_reports(&self) -> Vec<crate::policy::PolicyReport> {
        self.policies.iter().map(|p| p.report()).collect()
    }

    /// Sum of the effective capacities of all L1s, relative to the
    /// baseline total (instrumentation for Fig 16).
    #[must_use]
    pub fn l1_effective_capacity_ratio(&self) -> f64 {
        let total: usize = self.sms.iter().map(|s| s.l1.effective_capacity_bytes()).sum();
        let baseline: usize = self.sms.iter().map(|s| s.l1.geometry().size_bytes).sum();
        if baseline == 0 {
            0.0
        } else {
            total as f64 / baseline as f64
        }
    }
}

// The parallel experiment driver moves whole simulations onto worker
// threads, so the GPU — SMs, caches, fault injectors, policies — must be
// `Send`. Enforced at compile time; losing this (e.g. by storing an `Rc`
// in per-SM state) is a build error, not a runtime surprise.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Gpu>();
    assert_send::<crate::sm::Sm>();
    assert_send::<crate::faults::FaultInjector>();
    // Kernel descriptions are shared by reference across SMs during a
    // launch, so trait objects over them must be Send + Sync (backed by
    // the `Kernel: Send + Sync` supertraits; lint rule S1 audits the
    // fields that rely on this).
    assert_send::<Box<dyn crate::ops::Kernel>>();
    assert_sync::<Box<dyn crate::ops::Kernel>>();
};

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("num_sms", &self.sms.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}
