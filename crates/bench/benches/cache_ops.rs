//! Criterion micro-benchmarks: compressed cache operations.

use criterion::{criterion_group, criterion_main, Criterion};
use latte_cache::{CacheGeometry, CompressedCache, DecompressionQueue, LineAddr, Mshr};
use latte_compress::{Compression, CompressionAlgo};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("compressed_cache_lookup_hit", |b| {
        let mut cache = CompressedCache::new(CacheGeometry::paper_l1());
        for i in 0..128u64 {
            cache.fill(LineAddr::new(i), CompressionAlgo::Bdi, Compression::new(32), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.lookup(LineAddr::new(i % 128), i))
        });
    });

    c.bench_function("compressed_cache_fill_evict", |b| {
        let mut cache = CompressedCache::new(CacheGeometry::paper_l1());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.fill(
                LineAddr::new(i),
                CompressionAlgo::Sc,
                Compression::new(48),
                i,
            ))
        });
    });

    c.bench_function("decompression_queue_enqueue", |b| {
        let mut q = DecompressionQueue::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 2;
            black_box(q.enqueue(cycle, 14))
        });
    });

    c.bench_function("mshr_allocate_release", |b| {
        let mut mshr = Mshr::new(64, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let addr = LineAddr::new(i % 48);
            let out = mshr.allocate(addr);
            mshr.release(addr);
            black_box(out)
        });
    });
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
