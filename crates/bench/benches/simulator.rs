//! Criterion macro-benchmarks: whole-simulation throughput per policy —
//! how long a simulated kernel takes to run on the substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latte_bench::PolicyKind;
use latte_gpusim::{Gpu, GpuConfig, Kernel};
use latte_workloads::benchmark;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_kernel");
    group.sample_size(10);
    let config = GpuConfig {
        num_sms: 1,
        ..GpuConfig::small()
    };
    let bench = benchmark("NW").expect("NW is small and quick");
    for policy in [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ] {
        group.bench_with_input(
            BenchmarkId::new("nw", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut gpu = Gpu::new(&config, |_| policy.build(&config));
                    let mut cycles = 0;
                    for kernel in bench.build_kernels() {
                        cycles += gpu.run_kernel(black_box(&kernel as &dyn Kernel)).cycles;
                    }
                    black_box(cycles)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
