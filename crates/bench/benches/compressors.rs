//! Criterion micro-benchmarks: compressor throughput on characteristic
//! cache-line contents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latte_cache::LineAddr;
use latte_compress::{Bdi, Bpc, CacheLine, Compressor, CpackZ, Fpc, Sc, VftBuilder};
use latte_workloads::ValueProfile;
use std::hint::black_box;

fn lines_for(profile: ValueProfile) -> Vec<CacheLine> {
    (0..128).map(|i| profile.line(LineAddr::new(i), 7)).collect()
}

fn bench_compressors(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_line");
    let cases = [
        ("small_ints", ValueProfile::SmallInts { max: 1024 }),
        ("pointers", ValueProfile::Pointers),
        ("hot_floats", ValueProfile::HotFloats { alphabet: 64 }),
        ("random_floats", ValueProfile::RandomFloats),
    ];
    for (name, profile) in cases {
        let lines = lines_for(profile);
        let mut vft = VftBuilder::new();
        for l in &lines {
            vft.observe_line(l);
        }
        let sc = Sc::new(vft.build());
        let algos: Vec<(&str, Box<dyn Compressor>)> = vec![
            ("bdi", Box::new(Bdi::new())),
            ("fpc", Box::new(Fpc::new())),
            ("cpack", Box::new(CpackZ::new())),
            ("bpc", Box::new(Bpc::new())),
            ("sc", Box::new(sc)),
        ];
        for (algo_name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(algo_name, name), &lines, |b, lines| {
                let mut i = 0;
                b.iter(|| {
                    let line = &lines[i % lines.len()];
                    i += 1;
                    black_box(algo.compress(black_box(line)))
                });
            });
        }
    }
    group.finish();
}

fn bench_sc_training(c: &mut Criterion) {
    let lines = lines_for(ValueProfile::HotFloats { alphabet: 256 });
    c.bench_function("sc_vft_train_and_build", |b| {
        b.iter(|| {
            let mut vft = VftBuilder::new();
            for l in &lines {
                vft.observe_line(black_box(l));
            }
            black_box(vft.build())
        });
    });
}

criterion_group!(benches, bench_compressors, bench_sc_training);
criterion_main!(benches);
