//! Criterion micro-benchmarks: compressor throughput on characteristic
//! cache-line contents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latte_cache::LineAddr;
use latte_compress::{Bdi, BitSink, Bpc, CacheLine, Compressor, CpackZ, Fpc, Sc, VftBuilder};
use latte_workloads::ValueProfile;
use std::hint::black_box;

fn lines_for(profile: ValueProfile) -> Vec<CacheLine> {
    (0..128).map(|i| profile.line(LineAddr::new(i), 7)).collect()
}

fn bench_compressors(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_line");
    let cases = [
        ("small_ints", ValueProfile::SmallInts { max: 1024 }),
        ("pointers", ValueProfile::Pointers),
        ("hot_floats", ValueProfile::HotFloats { alphabet: 64 }),
        ("random_floats", ValueProfile::RandomFloats),
    ];
    for (name, profile) in cases {
        let lines = lines_for(profile);
        let mut vft = VftBuilder::new();
        for l in &lines {
            vft.observe_line(l);
        }
        let sc = Sc::new(vft.build());
        let algos: Vec<(&str, Box<dyn Compressor>)> = vec![
            ("bdi", Box::new(Bdi::new())),
            ("fpc", Box::new(Fpc::new())),
            ("cpack", Box::new(CpackZ::new())),
            ("bpc", Box::new(Bpc::new())),
            ("sc", Box::new(sc)),
        ];
        for (algo_name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(algo_name, name), &lines, |b, lines| {
                let mut i = 0;
                b.iter(|| {
                    let line = &lines[i % lines.len()];
                    i += 1;
                    black_box(algo.compress(black_box(line)))
                });
            });
        }
    }
    group.finish();
}

/// The simulator's per-access hot path: every L1 fill sizes the line
/// under one compressor via the size-only `probe()` stage. Benchmarked
/// as a whole mixed stream per iteration — the shape the cache model
/// actually produces — so this number tracks the staged/no-alloc work
/// directly. The `*_full_encode` entries run the payload-materialising
/// `BitWriter` path over the same stream: the probe/encode gap is the
/// point of the staging split. The `*_probe_batch` entries size the
/// stream through one batched call (per-burst setup amortised).
fn bench_hot_path_stream(c: &mut Criterion) {
    let mut stream: Vec<CacheLine> = Vec::new();
    for profile in [
        ValueProfile::Zeros,
        ValueProfile::SmallInts { max: 1024 },
        ValueProfile::Pointers,
        ValueProfile::HotFloats { alphabet: 64 },
        ValueProfile::RandomFloats,
    ] {
        stream.extend(lines_for(profile));
    }
    let mut vft = VftBuilder::new();
    for l in &stream {
        vft.observe_line(l);
    }
    let sc = Sc::new(vft.build());
    let algos: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("bdi", Box::new(Bdi::new())),
        ("fpc", Box::new(Fpc::new())),
        ("cpack", Box::new(CpackZ::new())),
        ("bpc", Box::new(Bpc::new())),
        ("sc", Box::new(sc)),
    ];
    let mut group = c.benchmark_group("hot_path_stream_640_lines");
    for (name, algo) in &algos {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for line in &stream {
                    total += black_box(algo.probe(black_box(line))).size_bytes();
                }
                black_box(total)
            });
        });
    }
    for (name, algo) in &algos {
        group.bench_function(format!("{name}_probe_batch"), |b| {
            let mut sizes = Vec::with_capacity(stream.len());
            b.iter(|| {
                sizes.clear();
                algo.probe_batch(black_box(&stream), &mut sizes);
                let total: usize = sizes.iter().map(|c| c.size_bytes()).sum();
                black_box(total)
            });
        });
    }
    let cpack = CpackZ::new();
    group.bench_function("cpack_full_encode", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for line in &stream {
                total += black_box(cpack.encode(black_box(line))).byte_len();
            }
            black_box(total)
        });
    });
    let bpc = Bpc::new();
    group.bench_function("bpc_full_encode", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for line in &stream {
                total += black_box(bpc.encode(black_box(line))).byte_len();
            }
            black_box(total)
        });
    });
    group.finish();
}

/// Size-only probe vs full bit-exact encode for the variable-length
/// coders: the gap is what routing `compress()` through `BitCounter`
/// instead of a real `BitWriter` buys on the hot path.
fn bench_size_probe_vs_encode(c: &mut Criterion) {
    let lines = lines_for(ValueProfile::SmallInts { max: 1024 });
    let fpc = Fpc::new();
    let bpc = Bpc::new();
    let mut group = c.benchmark_group("size_probe_vs_encode");
    group.bench_function("fpc_count_only", |b| {
        b.iter(|| {
            let mut bits = 0usize;
            for line in &lines {
                let mut counter = latte_compress::BitCounter::new();
                fpc.encode_into(black_box(line), &mut counter);
                bits += counter.bit_len();
            }
            black_box(bits)
        });
    });
    group.bench_function("fpc_full_encode", |b| {
        b.iter(|| {
            let mut bits = 0usize;
            for line in &lines {
                bits += fpc.encode(black_box(line)).bit_len();
            }
            black_box(bits)
        });
    });
    group.bench_function("bpc_count_only", |b| {
        b.iter(|| {
            let mut bits = 0usize;
            for line in &lines {
                let mut counter = latte_compress::BitCounter::new();
                bpc.encode_into(black_box(line), &mut counter);
                bits += counter.bit_len();
            }
            black_box(bits)
        });
    });
    group.bench_function("bpc_fast_probe", |b| {
        // The transposed bit-plane probe: no BitCounter walk at all.
        b.iter(|| {
            let mut bytes = 0usize;
            for line in &lines {
                bytes += bpc.probe(black_box(line)).size_bytes();
            }
            black_box(bytes)
        });
    });
    let cpack = CpackZ::new();
    group.bench_function("cpack_count_only", |b| {
        b.iter(|| {
            let mut bits = 0usize;
            for line in &lines {
                let mut counter = latte_compress::BitCounter::new();
                cpack.encode_into(black_box(line), &mut counter);
                bits += counter.bit_len();
            }
            black_box(bits)
        });
    });
    group.bench_function("cpack_full_encode", |b| {
        b.iter(|| {
            let mut bits = 0usize;
            for line in &lines {
                bits += cpack.encode(black_box(line)).bit_len();
            }
            black_box(bits)
        });
    });
    group.bench_function("bpc_full_encode", |b| {
        b.iter(|| {
            let mut bits = 0usize;
            for line in &lines {
                bits += bpc.encode(black_box(line)).bit_len();
            }
            black_box(bits)
        });
    });
    group.finish();
}

fn bench_sc_training(c: &mut Criterion) {
    let lines = lines_for(ValueProfile::HotFloats { alphabet: 256 });
    c.bench_function("sc_vft_train_and_build", |b| {
        b.iter(|| {
            let mut vft = VftBuilder::new();
            for l in &lines {
                vft.observe_line(black_box(l));
            }
            black_box(vft.build())
        });
    });
}

criterion_group!(
    benches,
    bench_compressors,
    bench_hot_path_stream,
    bench_size_probe_vs_encode,
    bench_sc_training
);
criterion_main!(benches);
