//! A small hand-rolled work-stealing thread pool for the experiment
//! driver, with **two-level scheduling**: the driver submits experiments
//! as *main tasks*, and a running experiment may fan its simulations out
//! as *subtasks* onto the same workers via [`run_subtasks`], so one big
//! experiment saturates every core instead of serializing behind the
//! driver-level parallelism.
//!
//! The container this project builds in has no route to a crates
//! registry, so instead of `rayon` this is a couple hundred lines of
//! `std`:
//!
//! * **Main tasks** — each worker owns a deque seeded round-robin with
//!   its share, pops from the front of its own deque, and steals from
//!   the back of a sibling's when it runs dry.
//! * **Subtasks** — a process-wide injector queue. Workers prefer
//!   injector work over main tasks (a queued simulation is always on
//!   some experiment's critical path), and the submitting thread *helps*:
//!   while waiting for its batch it executes injector work itself, so
//!   [`run_subtasks`] also functions (serially) outside any pool — unit
//!   tests and examples need no special case.
//! * Since tasks now spawn subtasks, an idle worker may not exit just
//!   because every deque is empty — more work can appear while any main
//!   task is still running. Idle workers park on a condvar with a short
//!   timeout and exit only when the batch's main-task count hits zero.
//!
//! Determinism note: the pool imposes no ordering on task *execution*,
//! so anything a task touches must be task-private. Both levels deliver
//! results to their submitter in **submission order** (main tasks via a
//! channel consumed on the calling thread; subtasks via index-addressed
//! slots), and each subtask's captured output is replayed into the
//! submitting thread's capture in submission order, so a parallel run is
//! byte-identical to a serial one.

use crate::report;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A unit of pool work, tagged with its index in the submission order.
type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A worker's deque of (submission index, task) pairs.
type TaskQueue<'a, T> = VecDeque<(usize, Task<'a, T>)>;

/// An enqueued subtask, already wrapped so it stores its own result.
type Subtask = Box<dyn FnOnce() + Send + 'static>;

/// Locks `m`, recovering from a poisoned lock: pool tasks are run under
/// `catch_unwind`, so if a panic does escape while a lock is held the
/// protected data only ever holds plain jobs/slots and remains
/// structurally valid.
fn lock<'a, T: ?Sized>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-wide subtask injector. Subtasks carry everything they
/// need (`'static + Send`), so one queue serves every concurrently
/// running batch; results find their way back through the per-batch
/// latch each wrapped subtask holds an `Arc` to.
static INJECTOR: Mutex<VecDeque<Subtask>> = Mutex::new(VecDeque::new());

/// Signalled (with the [`INJECTOR`] lock held) when subtasks are pushed;
/// idle workers park here with a short timeout.
static INJECTOR_SIGNAL: Condvar = Condvar::new();

/// Pops and runs one injector subtask. Returns `false` if the injector
/// was empty.
fn run_one_subtask() -> bool {
    let job = lock(&INJECTOR).pop_front();
    match job {
        Some(job) => {
            job();
            true
        }
        None => false,
    }
}

/// Runs `tasks` on `jobs` worker threads, calling `on_complete(index,
/// &result)` on the **calling thread** as each task finishes (in
/// completion order). Returns the results in submission order; an entry
/// is `None` only if the worker executing it died (a panic escaping the
/// task closure).
///
/// `jobs` is clamped to `1..=tasks.len()`.
pub fn run_tasks<'env, T, F>(
    jobs: usize,
    tasks: Vec<Task<'env, T>>,
    mut on_complete: F,
) -> Vec<Option<T>>
where
    T: Send + 'env,
    F: FnMut(usize, &T),
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);

    // Seed the per-worker deques round-robin so long-running experiments
    // registered next to each other start on different workers.
    let mut deques: Vec<TaskQueue<'env, T>> = (0..jobs).map(|_| VecDeque::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        deques[i % jobs].push_back((i, task));
    }
    let deques: Vec<Mutex<TaskQueue<'env, T>>> = deques.into_iter().map(Mutex::new).collect();

    // Main tasks not yet *completed* (not merely not-yet-started): while
    // any is running it may still enqueue subtasks, so idle workers park
    // instead of exiting until this reaches zero.
    let remaining = AtomicUsize::new(n);

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, T)>();

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let deques = &deques;
            let remaining = &remaining;
            scope.spawn(move || loop {
                // Subtasks first: an injected simulation always sits on
                // some running experiment's critical path, while a main
                // task only *starts* a new experiment.
                if run_one_subtask() {
                    continue;
                }
                // Own work next (front: submission order within the
                // worker), then steal from the back of the most loaded
                // sibling.
                let mut job = lock(&deques[w]).pop_front();
                if job.is_none() {
                    let mut best: Option<(usize, usize)> = None; // (len, victim)
                    for off in 1..deques.len() {
                        let v = (w + off) % deques.len();
                        let len = lock(&deques[v]).len();
                        if len > 0 && best.is_none_or(|(l, _)| len > l) {
                            best = Some((len, v));
                        }
                    }
                    if let Some((_, victim)) = best {
                        job = lock(&deques[victim]).pop_back();
                    }
                }
                if let Some((i, f)) = job {
                    let result = f();
                    remaining.fetch_sub(1, Ordering::SeqCst);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                    continue;
                }
                // No visible work. Exit once every main task completed
                // (nothing can enqueue more subtasks for this batch);
                // otherwise park briefly for injector work to appear.
                if remaining.load(Ordering::SeqCst) == 0 {
                    break;
                }
                let guard = lock(&INJECTOR);
                if guard.is_empty() {
                    // Timeout bounds the race between our emptiness
                    // checks and a concurrent push + notify.
                    let _ = INJECTOR_SIGNAL.wait_timeout(guard, Duration::from_millis(1));
                }
            });
        }
        drop(tx);
        // Single consumer: every completion is reported from this thread,
        // so callers get serialized output for free. If all workers died
        // the channel closes early and the remaining slots stay `None`.
        while let Ok((i, v)) = rx.recv() {
            on_complete(i, &v);
            results[i] = Some(v);
        }
    });
    results
}

/// Result slot of one subtask: its value (or escaped panic payload) and
/// everything it printed through the output capture.
type SubtaskResult<T> = (Result<T, Box<dyn Any + Send>>, String);

/// The synchronization point of one [`run_subtasks`] batch.
struct Latch<T> {
    state: Mutex<LatchState<T>>,
    done: Condvar,
}

struct LatchState<T> {
    slots: Vec<Option<SubtaskResult<T>>>,
    remaining: usize,
}

/// Runs `tasks` as pool subtasks and returns their results in submission
/// order, blocking until all complete. Safe to call from anywhere:
///
/// * On a pool worker (the normal case — an experiment fanning out its
///   simulations), the tasks are pushed onto the process-wide injector
///   where **every** worker can pick them up, and the calling worker
///   helps execute injector work while it waits.
/// * Outside any pool, the calling thread just executes everything
///   itself via the same help loop — a plain serial fallback.
///
/// Each task's captured output (`out!`/`outln!`, replayed sim
/// diagnostics) is re-emitted into the *calling* thread's capture in
/// submission order, regardless of which worker ran it — parallel
/// fan-out stays byte-identical to a serial run.
///
/// Subtasks must not call [`run_subtasks`] themselves (single-level
/// nesting keeps worker stacks and the deadlock argument simple; the
/// simulation service never needs more).
///
/// # Panics
///
/// If a task panics, the panic is re-raised on the calling thread once
/// the whole batch has finished (first panicking task in submission
/// order wins), so an experiment's `catch_unwind` sees the original
/// payload and sibling tasks are never torn down mid-simulation.
pub fn run_subtasks<T>(tasks: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T>
where
    T: Send + 'static,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let latch = std::sync::Arc::new(Latch {
        state: Mutex::new(LatchState {
            slots: (0..n).map(|_| None).collect(),
            remaining: n,
        }),
        done: Condvar::new(),
    });
    {
        let mut injector = lock(&INJECTOR);
        for (i, task) in tasks.into_iter().enumerate() {
            let latch = std::sync::Arc::clone(&latch);
            injector.push_back(Box::new(move || {
                // Isolate the subtask's output no matter which thread
                // runs it: a stolen subtask must not leak into a foreign
                // experiment's buffer, and a helped one must not write
                // into its own experiment's buffer *out of order*.
                let saved = report::swap_capture(Some(String::new()));
                let result = catch_unwind(AssertUnwindSafe(task));
                let text = report::swap_capture(saved).unwrap_or_default();
                let mut state = lock(&latch.state);
                state.slots[i] = Some((result, text));
                state.remaining -= 1;
                if state.remaining == 0 {
                    latch.done.notify_all();
                }
            }));
        }
        INJECTOR_SIGNAL.notify_all();
    }
    // Help: execute injector work (ours or anyone's) while waiting. Our
    // own remaining subtasks are always either still in the injector —
    // where this loop will find them — or being executed by a worker
    // that will count them down, so the wait below always terminates.
    loop {
        if run_one_subtask() {
            continue;
        }
        let state = lock(&latch.state);
        if state.remaining == 0 {
            break;
        }
        // Short timeout: re-check the injector for foreign work so a
        // waiting submitter stays a useful worker.
        let _ = latch.done.wait_timeout(state, Duration::from_millis(1));
    }
    let slots = std::mem::take(&mut lock(&latch.state).slots);
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        // Every slot is filled once `remaining` hits zero.
        let Some((result, text)) = slot else {
            unreachable!("latch reported done with an unfilled slot");
        };
        report::emit(format_args!("{text}"));
        match result {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_once_across_worker_counts() {
        for jobs in [1, 2, 4, 16] {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task<'_, usize>> = (0..23usize)
                .map(|i| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    }) as Task<'_, usize>
                })
                .collect();
            let mut seen = Vec::new();
            let results = run_tasks(jobs, tasks, |i, _| seen.push(i));
            assert_eq!(counter.load(Ordering::SeqCst), 23);
            assert_eq!(results.len(), 23);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, Some(i * 2), "jobs={jobs}");
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..23).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_task_list_is_fine() {
        let results = run_tasks(4, Vec::<Task<'_, ()>>::new(), |_, _| {});
        assert!(results.is_empty());
    }

    #[test]
    fn uneven_task_durations_are_stolen() {
        // One deque gets all the slow tasks; with stealing, 4 workers
        // must still finish well under the serial time.
        let tasks: Vec<Task<'_, ()>> = (0..8)
            .map(|i| {
                Box::new(move || {
                    let ms = if i % 4 == 0 { 40 } else { 5 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }) as Task<'_, ()>
            })
            .collect();
        let start = std::time::Instant::now();
        let results = run_tasks(4, tasks, |_, _| {});
        assert!(results.iter().all(Option::is_some));
        // Serial would be 2*40 + 6*5 = 110 ms of sleep; allow generous
        // scheduling slack while still proving overlap happened.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(110),
            "no overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn subtasks_work_outside_any_pool() {
        let results = run_subtasks(
            (0..10usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect(),
        );
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run_subtasks(Vec::<Box<dyn FnOnce() + Send>>::new()), vec![]);
    }

    #[test]
    fn subtask_output_replays_in_submission_order() {
        crate::report::begin_capture();
        crate::report::outln!("before");
        let results = run_subtasks(
            (0..6usize)
                .map(|i| {
                    Box::new(move || {
                        crate::report::outln!("subtask {i}");
                        i
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect(),
        );
        crate::report::outln!("after");
        let captured = crate::report::end_capture();
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        let expected: String = std::iter::once("before".to_owned())
            .chain((0..6).map(|i| format!("subtask {i}")))
            .chain(std::iter::once("after".to_owned()))
            .map(|l| l + "\n")
            .collect();
        assert_eq!(captured, expected);
    }

    #[test]
    fn main_tasks_can_fan_out_subtasks() {
        // Experiments (main tasks) each fan out subtasks; subtask work
        // from one experiment can be executed by any worker.
        let executed = AtomicUsize::new(0);
        let tasks: Vec<Task<'_, usize>> = (0..4usize)
            .map(|t| {
                let executed = &executed;
                Box::new(move || {
                    let subs = run_subtasks(
                        (0..8usize)
                            .map(|i| {
                                Box::new(move || t * 100 + i)
                                    as Box<dyn FnOnce() -> usize + Send>
                            })
                            .collect(),
                    );
                    executed.fetch_add(subs.len(), Ordering::SeqCst);
                    subs.iter().sum()
                }) as Task<'_, usize>
            })
            .collect();
        let results = run_tasks(3, tasks, |_, _| {});
        assert_eq!(executed.load(Ordering::SeqCst), 32);
        for (t, r) in results.iter().enumerate() {
            assert_eq!(*r, Some(t * 800 + 28));
        }
    }

    #[test]
    fn subtask_panic_propagates_to_the_submitter() {
        let caught = catch_unwind(|| {
            run_subtasks(
                (0..4usize)
                    .map(|i| {
                        Box::new(move || {
                            assert!(i != 2, "intentional subtask failure");
                            i
                        }) as Box<dyn FnOnce() -> usize + Send>
                    })
                    .collect(),
            )
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("intentional subtask failure"), "{msg}");
    }
}
