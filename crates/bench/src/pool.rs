//! A small hand-rolled work-stealing thread pool for the experiment
//! driver.
//!
//! The container this project builds in has no route to a crates
//! registry, so instead of `rayon` this is ~100 lines of `std`: each
//! worker owns a deque seeded round-robin with its share of the tasks,
//! pops from the front of its own deque, and steals from the back of a
//! sibling's when it runs dry. Tasks never spawn subtasks, so a worker
//! that finds every deque empty can simply exit — no condvars needed.
//!
//! Determinism note: the pool imposes no ordering on task *execution*,
//! so anything a task touches must be task-private (the experiment
//! driver gives each task its own output buffer and its own atomically
//! renamed result files). Completion results are delivered to a single
//! consumer — the caller's `on_complete` callback, invoked on the
//! calling thread only — which is what serializes all reporting.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// A unit of pool work, tagged with its index in the submission order.
type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A worker's deque of (submission index, task) pairs.
type TaskQueue<'a, T> = VecDeque<(usize, Task<'a, T>)>;

/// Locks `m`, recovering from a poisoned lock: pool tasks are run under
/// `catch_unwind` by the driver, but if a panic does escape a task the
/// queues only hold plain jobs and remain structurally valid.
fn lock_queue<'a, 'b, T>(m: &'a Mutex<TaskQueue<'b, T>>) -> std::sync::MutexGuard<'a, TaskQueue<'b, T>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `tasks` on `jobs` worker threads, calling `on_complete(index,
/// &result)` on the **calling thread** as each task finishes (in
/// completion order). Returns the results in submission order; an entry
/// is `None` only if the worker executing it died (a panic escaping the
/// task closure).
///
/// `jobs` is clamped to `1..=tasks.len()`.
pub fn run_tasks<'env, T, F>(
    jobs: usize,
    tasks: Vec<Task<'env, T>>,
    mut on_complete: F,
) -> Vec<Option<T>>
where
    T: Send + 'env,
    F: FnMut(usize, &T),
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);

    // Seed the per-worker deques round-robin so long-running experiments
    // registered next to each other start on different workers.
    let mut deques: Vec<TaskQueue<'env, T>> = (0..jobs).map(|_| VecDeque::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        deques[i % jobs].push_back((i, task));
    }
    let deques: Vec<Mutex<TaskQueue<'env, T>>> = deques.into_iter().map(Mutex::new).collect();

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, T)>();

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let deques = &deques;
            scope.spawn(move || loop {
                // Own work first (front: submission order within the
                // worker), then steal from the back of the most loaded
                // sibling.
                let mut job = lock_queue(&deques[w]).pop_front();
                if job.is_none() {
                    let mut best: Option<(usize, usize)> = None; // (len, victim)
                    for off in 1..deques.len() {
                        let v = (w + off) % deques.len();
                        let len = lock_queue(&deques[v]).len();
                        if len > 0 && best.is_none_or(|(l, _)| len > l) {
                            best = Some((len, v));
                        }
                    }
                    if let Some((_, victim)) = best {
                        job = lock_queue(&deques[victim]).pop_back();
                    }
                }
                let Some((i, f)) = job else { break };
                if tx.send((i, f())).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Single consumer: every completion is reported from this thread,
        // so callers get serialized output for free. If all workers died
        // the channel closes early and the remaining slots stay `None`.
        while let Ok((i, v)) = rx.recv() {
            on_complete(i, &v);
            results[i] = Some(v);
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_once_across_worker_counts() {
        for jobs in [1, 2, 4, 16] {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task<'_, usize>> = (0..23usize)
                .map(|i| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    }) as Task<'_, usize>
                })
                .collect();
            let mut seen = Vec::new();
            let results = run_tasks(jobs, tasks, |i, _| seen.push(i));
            assert_eq!(counter.load(Ordering::SeqCst), 23);
            assert_eq!(results.len(), 23);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, Some(i * 2), "jobs={jobs}");
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..23).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_task_list_is_fine() {
        let results = run_tasks(4, Vec::<Task<'_, ()>>::new(), |_, _| {});
        assert!(results.is_empty());
    }

    #[test]
    fn uneven_task_durations_are_stolen() {
        // One deque gets all the slow tasks; with stealing, 4 workers
        // must still finish well under the serial time.
        let tasks: Vec<Task<'_, ()>> = (0..8)
            .map(|i| {
                Box::new(move || {
                    let ms = if i % 4 == 0 { 40 } else { 5 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }) as Task<'_, ()>
            })
            .collect();
        let start = std::time::Instant::now();
        let results = run_tasks(4, tasks, |_, _| {});
        assert!(results.iter().all(Option::is_some));
        // Serial would be 2*40 + 6*5 = 110 ms of sleep; allow generous
        // scheduling slack while still proving overlap happened.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(110),
            "no overlap: {:?}",
            start.elapsed()
        );
    }
}
