//! **Figure 6** — Motivation: the spread of (a) performance and (b)
//! energy when BDI or SC is applied statically, versus an adaptive scheme
//! (LATTE-CC). Paper shape: statics swing from +48% to −52% (and 0.76x to
//! 1.36x energy); the adaptive scheme recovers the upside everywhere,
//! most visibly on KM, SS and VM.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::PolicyKind;
use crate::sim;
use latte_workloads::suite;

/// Runs the Fig 6 motivation study.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 6: static vs adaptive — (a) speedup, (b) normalised energy\n");
    outln!(
        "{:6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "bench", "spd-BDI", "spd-SC", "spd-AD", "en-BDI", "en-SC", "en-AD"
    );
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "speedup_bdi".to_owned(),
        "speedup_sc".to_owned(),
        "speedup_adaptive".to_owned(),
        "energy_bdi".to_owned(),
        "energy_sc".to_owned(),
        "energy_adaptive".to_owned(),
    ]];
    let mut spread: (f64, f64) = (f64::MAX, f64::MIN);
    let benches = suite();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        let (base, bdi, sc, ad) = (&runs[0], &runs[1], &runs[2], &runs[3]);
        let s = [
            bdi.speedup_over(base),
            sc.speedup_over(base),
            ad.speedup_over(base),
        ];
        let e = [
            bdi.energy_ratio_over(base),
            sc.energy_ratio_over(base),
            ad.energy_ratio_over(base),
        ];
        for v in &s[..2] {
            spread.0 = spread.0.min(*v);
            spread.1 = spread.1.max(*v);
        }
        outln!(
            "{:6} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3}",
            bench.abbr, s[0], s[1], s[2], e[0], e[1], e[2]
        );
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.4}", s[0]),
            format!("{:.4}", s[1]),
            format!("{:.4}", s[2]),
            format!("{:.4}", e[0]),
            format!("{:.4}", e[1]),
            format!("{:.4}", e[2]),
        ]);
    }
    outln!(
        "\nstatic-policy speedup spread: {:.3} .. {:.3} (paper: 0.48 .. 1.48)",
        spread.0, spread.1
    );
    write_csv("fig06_static_vs_adaptive", &csv)
}
