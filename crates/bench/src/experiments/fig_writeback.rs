//! **Write-back data path comparison** — LATTE-CC vs Assist-Warp vs the
//! uncompressed baseline on the write-heavy suite.
//!
//! The paper's evaluation (and the default harness configuration) is
//! write-through: stores are fire-and-forget and the compressed L1 never
//! holds dirty data. This experiment runs the write-back/write-allocate
//! data path instead: stores merge into resident compressed lines,
//! re-compression on write grows and shrinks their footprints, and dirty
//! victims carry their bytes to L2/DRAM. The workloads are the
//! write-heavy suite (`latte_workloads::write_heavy_suite`) — stores are
//! ≥40% of traffic and working sets exceed the L1, so dirty lines make
//! intra-kernel eviction/refetch round trips.
//!
//! Assist-Warp (after CABA, Vijaykumar et al.) is the software
//! alternative to LATTE-CC's hardware mode switching: BDI compression
//! executed by assist warps, gated EP-by-EP on the same latency
//! tolerance signal.

use crate::experiments::{row, write_csv};
use crate::report::outln;
use crate::runner::{experiment_config, run_benchmark_with_config, PolicyKind};
use latte_gpusim::GpuConfig;
use std::io;

/// Policies compared: the uncompressed baseline, the full adaptive
/// hardware controller, and the software assist-warp alternative.
const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Baseline,
    PolicyKind::LatteCc,
    PolicyKind::AssistWarp,
];

/// Runs the write-back comparison.
///
/// # Errors
///
/// Fails if a run produces no write-back traffic (the experiment would
/// be comparing nothing) or the CSV cannot be written.
pub fn run() -> io::Result<()> {
    let config = GpuConfig {
        write_back: true,
        ..experiment_config()
    };
    let suite = latte_workloads::write_heavy_suite();

    outln!("Write-back data path: write-heavy suite, dirty compressed lines\n");
    outln!(
        "{:>5} {:>13} {:>10} {:>8} {:>11} {:>10} {:>8}",
        "bench", "policy", "cycles", "speedup", "writebacks", "missrate", "energy"
    );
    let mut rows = vec![vec![
        "benchmark".to_owned(),
        "policy".to_owned(),
        "cycles".to_owned(),
        "speedup".to_owned(),
        "writebacks".to_owned(),
        "l1_miss_rate".to_owned(),
        "energy_ratio".to_owned(),
    ]];

    for bench in &suite {
        let baseline = run_benchmark_with_config(PolicyKind::Baseline, bench, &config);
        for policy in POLICIES {
            let result = run_benchmark_with_config(policy, bench, &config);
            if result.stats.stores == 0 {
                return Err(io::Error::other(format!(
                    "{}/{}: a write-heavy benchmark issued no stores",
                    bench.abbr,
                    policy.name()
                )));
            }
            if result.stats.writebacks == 0 {
                return Err(io::Error::other(format!(
                    "{}/{}: write-back is on but no dirty line ever wrote back",
                    bench.abbr,
                    policy.name()
                )));
            }
            let speedup = result.speedup_over(&baseline);
            let miss_rate = result.stats.l1.misses as f64
                / result.stats.l1.accesses().max(1) as f64;
            let energy = result.energy_ratio_over(&baseline);
            outln!(
                "{}",
                row(
                    &[
                        bench.abbr.to_owned(),
                        policy.name().to_owned(),
                        result.stats.cycles.to_string(),
                        format!("{speedup:.3}"),
                        result.stats.writebacks.to_string(),
                        format!("{miss_rate:.3}"),
                        format!("{energy:.3}"),
                    ],
                    10
                )
            );
            rows.push(vec![
                bench.abbr.to_owned(),
                policy.name().to_owned(),
                result.stats.cycles.to_string(),
                format!("{speedup:.4}"),
                result.stats.writebacks.to_string(),
                format!("{miss_rate:.4}"),
                format!("{energy:.4}"),
            ]);
        }
    }
    write_csv("fig_writeback", &rows)
}
