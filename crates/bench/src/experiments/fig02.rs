//! **Figure 2** — Compression ratio of all five algorithms over each
//! benchmark's L1 insertion stream.
//!
//! Per §II-A: graph workloads (BFS, BC, FW, DJK) compress under both
//! spatial and temporal schemes; float workloads (KM, SS, MM, PRK) only
//! under temporal (SC); PF/MIS/CLR favour BPC; SC and BDI/BPC achieve the
//! highest ratios overall while FPC and C-PACK trail.

use crate::report::outln;
use crate::experiments::write_csv;
use latte_cache::LineAddr;
use latte_compress::{
    Bdi, Bpc, CacheLine, Compressor, CpackZ, Fpc, Sc, VftBuilder,
};
use latte_gpusim::{Kernel, Op};
use latte_workloads::{suite, BenchmarkSpec};

/// Collects (up to `cap`) distinct lines from the benchmark's actual load
/// stream — a faithful proxy for the L1 insertion stream.
fn insertion_stream(bench: &BenchmarkSpec, cap: usize) -> Vec<CacheLine> {
    let mut lines = Vec::with_capacity(cap);
    let kernels = bench.build_kernels();
    'outer: for kernel in &kernels {
        for warp in 0..kernel.warps_on_sm(0).min(8) {
            let mut stream = kernel.warp_program(0, warp);
            for _ in 0..4096 {
                match stream.next_op() {
                    Op::Load { addr } => {
                        lines.push(kernel.line_data(LineAddr::from_byte_addr(addr)));
                        if lines.len() >= cap {
                            break 'outer;
                        }
                    }
                    Op::Exit => break,
                    _ => {}
                }
            }
        }
    }
    lines
}

/// Measures each algorithm's ratio over one benchmark's stream.
pub fn ratios_for(bench: &BenchmarkSpec) -> [f64; 5] {
    let lines = insertion_stream(bench, 2000);
    let mut vft = VftBuilder::new();
    for l in lines.iter().take(lines.len() / 4) {
        vft.observe_line(l);
    }
    let sc = Sc::new(vft.build());
    let algos: [&dyn Compressor; 5] = [
        &Bdi::new(),
        &Fpc::new(),
        &CpackZ::new(),
        &Bpc::new(),
        &sc,
    ];
    let mut out = [0.0; 5];
    let mut sizes = Vec::with_capacity(lines.len());
    for (i, algo) in algos.iter().enumerate() {
        // Batched size probe over the whole insertion stream.
        sizes.clear();
        algo.probe_batch(&lines, &mut sizes);
        let stored: usize = sizes.iter().map(|c| c.size_bytes()).sum();
        out[i] = (lines.len() * CacheLine::SIZE_BYTES) as f64 / stored.max(1) as f64;
    }
    out
}

/// Runs the Fig 2 characterisation.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 2: compression ratio per algorithm (L1 insertion stream)\n");
    outln!(
        "{:6} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "BDI", "FPC", "CPACK", "BPC", "SC"
    );
    let mut rows = vec![vec![
        "benchmark".to_owned(),
        "BDI".to_owned(),
        "FPC".to_owned(),
        "CPACK-Z".to_owned(),
        "BPC".to_owned(),
        "SC".to_owned(),
    ]];
    let mut sums = [0.0; 5];
    let benches = suite();
    for bench in &benches {
        let r = ratios_for(bench);
        outln!(
            "{:6} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            bench.abbr, r[0], r[1], r[2], r[3], r[4]
        );
        for (s, v) in sums.iter_mut().zip(r) {
            *s += v.ln();
        }
        let mut row = vec![bench.abbr.to_owned()];
        row.extend(r.iter().map(|v| format!("{v:.3}")));
        rows.push(row);
    }
    let n = benches.len() as f64;
    let gm: Vec<f64> = sums.iter().map(|s| (s / n).exp()).collect();
    outln!(
        "{:6} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   (geomean)",
        "MEAN", gm[0], gm[1], gm[2], gm[3], gm[4]
    );
    let mut mean_row = vec!["GEOMEAN".to_owned()];
    mean_row.extend(gm.iter().map(|v| format!("{v:.3}")));
    rows.push(mean_row);
    write_csv("fig02_compression_ratios", &rows)
}
