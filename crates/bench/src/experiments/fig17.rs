//! **Figure 17** — The value of latency-tolerance awareness: LATTE-CC vs
//! Adaptive-Hit-Count (maximises hits, latency-blind) and Adaptive-CMP
//! (latency-aware, tolerance-blind). Paper shape: all three reduce misses
//! similarly (~24%), but only LATTE-CC converts the reduction into the
//! full speedup (19.2% vs 15% / 13%).

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, PolicyKind};
use crate::sim;
use latte_workloads::c_sens;

/// Runs the Fig 17 comparison.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 17: adaptive policy comparison (C-Sens)\n");
    outln!(
        "{:6} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "bench", "LATTE", "AHC", "ACMP", "mrLATTE", "mrAHC", "mrACMP"
    );
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "latte_speedup".to_owned(),
        "adaptive_hit_count_speedup".to_owned(),
        "adaptive_cmp_speedup".to_owned(),
        "latte_miss_reduction_pct".to_owned(),
        "ahc_miss_reduction_pct".to_owned(),
        "acmp_miss_reduction_pct".to_owned(),
    ]];
    let mut spd = [Vec::new(), Vec::new(), Vec::new()];
    let mut mrs = [Vec::new(), Vec::new(), Vec::new()];
    let benches = c_sens();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::LatteCc,
        PolicyKind::AdaptiveHitCount,
        PolicyKind::AdaptiveCmp,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        let base = &runs[0];
        let s: Vec<f64> = runs[1..].iter().map(|r| r.speedup_over(base)).collect();
        let m: Vec<f64> = runs[1..]
            .iter()
            .map(|r| r.miss_reduction_over(base) * 100.0)
            .collect();
        outln!(
            "{:6} {:>9.3} {:>9.3} {:>9.3} | {:>7.1}% {:>7.1}% {:>7.1}%",
            bench.abbr, s[0], s[1], s[2], m[0], m[1], m[2]
        );
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.4}", s[0]),
            format!("{:.4}", s[1]),
            format!("{:.4}", s[2]),
            format!("{:.2}", m[0]),
            format!("{:.2}", m[1]),
            format!("{:.2}", m[2]),
        ]);
        for i in 0..3 {
            spd[i].push(s[i]);
            mrs[i].push(m[i]);
        }
    }
    let amean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    outln!(
        "{:6} {:>9.3} {:>9.3} {:>9.3} | {:>7.1}% {:>7.1}% {:>7.1}%   (means)",
        "MEAN",
        geomean(&spd[0]),
        geomean(&spd[1]),
        geomean(&spd[2]),
        amean(&mrs[0]),
        amean(&mrs[1]),
        amean(&mrs[2])
    );
    csv.push(vec![
        "MEAN".to_owned(),
        format!("{:.4}", geomean(&spd[0])),
        format!("{:.4}", geomean(&spd[1])),
        format!("{:.4}", geomean(&spd[2])),
        format!("{:.2}", amean(&mrs[0])),
        format!("{:.2}", amean(&mrs[1])),
        format!("{:.2}", amean(&mrs[2])),
    ]);
    write_csv("fig17_adaptive_comparison", &csv)
}
