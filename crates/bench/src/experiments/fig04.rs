//! **Figure 4** — Performance degradation from decompression latency
//! alone: compressed hit latencies are charged but the capacity benefit is
//! suppressed. Per the paper, FW (−47%) and BC (−22%) suffer most under
//! SC's 14-cycle latency while PRK tolerates it fully.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{experiment_config, PolicyKind};
use crate::sim;
use latte_gpusim::GpuConfig;
use latte_workloads::suite;

/// Runs the Fig 4 latency-only study.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 4: slowdown from decompression latency only (no capacity benefit)\n");
    let config = GpuConfig {
        ignore_capacity_benefit: true,
        ..experiment_config()
    };
    outln!("{:6} {:>10} {:>10}", "bench", "BDI-lat", "SC-lat");
    let mut rows = vec![vec![
        "benchmark".to_owned(),
        "static_bdi_latency_only".to_owned(),
        "static_sc_latency_only".to_owned(),
    ]];
    let benches = suite();
    let policies = [PolicyKind::Baseline, PolicyKind::StaticBdi, PolicyKind::StaticSc];
    for (bench, runs) in benches.iter().zip(sim::run_matrix(&policies, &benches, &config)) {
        let (base, bdi, sc) = (&runs[0], &runs[1], &runs[2]);
        let (s_bdi, s_sc) = (bdi.speedup_over(base), sc.speedup_over(base));
        outln!("{:6} {:>10.3} {:>10.3}", bench.abbr, s_bdi, s_sc);
        rows.push(vec![
            bench.abbr.to_owned(),
            format!("{s_bdi:.4}"),
            format!("{s_sc:.4}"),
        ]);
    }
    write_csv("fig04_latency_only_degradation", &rows)
}
