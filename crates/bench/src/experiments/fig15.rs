//! **Figure 15** — How often LATTE-CC's fine-grained decisions agree with
//! the Kernel-OPT oracle, and the performance gap between the two.
//! Disagreement is not necessarily loss: for phase-changing workloads
//! (KM, SS, MM) LATTE-CC beats the oracle *because* it deviates within
//! kernels.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::pool;
use crate::runner::{experiment_config, PolicyKind};
use crate::sim;
use latte_core::run_kernel_opt;
use latte_gpusim::{Gpu, Kernel};
use latte_workloads::c_sens;

/// One benchmark's agreement numbers (computed in a pool subtask).
struct Row {
    abbr: &'static str,
    agreement: f64,
    spd_latte: f64,
    spd_opt: f64,
    delta: f64,
}

/// Runs the Fig 15 agreement analysis.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 15: LATTE-CC vs Kernel-OPT decision agreement (C-Sens)\n");
    outln!(
        "{:6} {:>8} {:>11} {:>11} {:>9}",
        "bench", "agree%", "spd-LATTE", "spd-K-OPT", "perfΔ%"
    );
    let config = experiment_config();
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "agreement_pct".to_owned(),
        "latte_speedup".to_owned(),
        "kernel_opt_speedup".to_owned(),
        "perf_delta_pct".to_owned(),
    ]];
    // One subtask per benchmark: each runs the Kernel-OPT oracle and the
    // per-kernel LATTE-CC histogram loop (neither is a plain policy
    // simulation), while the Baseline reference comes from the memo
    // cache shared with every other figure.
    let rows = pool::run_subtasks(
        c_sens()
            .iter()
            .map(|bench| {
                let bench = bench.clone();
                let config = config.clone();
                Box::new(move || {
                    let kernels = bench.build_kernels();
                    let refs: Vec<&dyn Kernel> =
                        kernels.iter().map(|k| k as &dyn Kernel).collect();
                    let opt = run_kernel_opt(&config, &refs);

                    // Baseline cycles for speedups (memoized).
                    let base_cycles =
                        sim::run_cached(PolicyKind::Baseline, &bench, &config).cycles();

                    // LATTE-CC kernel by kernel, collecting per-kernel
                    // mode histograms.
                    let mut latte_gpu = Gpu::new(&config, |_| PolicyKind::LatteCc.build(&config));
                    let mut latte_cycles = 0u64;
                    let mut agree_eps = 0u64;
                    let mut total_eps = 0u64;
                    for (kernel, opt_kernel) in kernels.iter().zip(&opt.kernels) {
                        latte_cycles += latte_gpu.run_kernel(kernel as &dyn Kernel).cycles;
                        let oracle_mode = opt_kernel.best.index();
                        for report in latte_gpu.policy_reports() {
                            agree_eps += report.eps_in_mode[oracle_mode];
                            total_eps += report.total_eps();
                        }
                    }
                    let agreement = if total_eps == 0 {
                        0.0
                    } else {
                        agree_eps as f64 / total_eps as f64 * 100.0
                    };
                    let spd_latte = base_cycles as f64 / latte_cycles.max(1) as f64;
                    let spd_opt = base_cycles as f64 / opt.total_cycles().max(1) as f64;
                    Row {
                        abbr: bench.abbr,
                        agreement,
                        spd_latte,
                        spd_opt,
                        delta: (spd_opt - spd_latte) * 100.0,
                    }
                }) as Box<dyn FnOnce() -> Row + Send>
            })
            .collect(),
    );
    for row in rows {
        outln!(
            "{:6} {:>7.1}% {:>11.3} {:>11.3} {:>9.1}",
            row.abbr, row.agreement, row.spd_latte, row.spd_opt, row.delta
        );
        csv.push(vec![
            row.abbr.to_owned(),
            format!("{:.2}", row.agreement),
            format!("{:.4}", row.spd_latte),
            format!("{:.4}", row.spd_opt),
            format!("{:.2}", row.delta),
        ]);
    }
    outln!("\n(negative perfΔ: LATTE-CC beats the oracle via intra-kernel adaptation)");
    write_csv("fig15_kernel_opt_agreement", &csv)
}
