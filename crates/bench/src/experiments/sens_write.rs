//! **§IV-C3 write-policy sensitivity** — the paper: "the write policy
//! employed for GPU L1 caches has negligible impact on performance", which
//! justifies modelling the L1 as write-avoid. This experiment re-runs the
//! store-heavy benchmarks with write-allocate L1s and measures the delta.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{experiment_config, PolicyKind};
use crate::sim;
use latte_gpusim::GpuConfig;
use latte_workloads::suite;

/// Runs the write-policy sensitivity check.
pub fn run() -> std::io::Result<()> {
    outln!("Write-policy sensitivity (write-avoid vs write-allocate L1)\n");
    let avoid = experiment_config();
    let allocate = GpuConfig {
        write_allocate: true,
        ..avoid.clone()
    };
    outln!("{:6} {:>8} | {:>12} {:>12} {:>8}", "bench", "stores%", "avoid-cyc", "alloc-cyc", "delta");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "store_fraction_pct".to_owned(),
        "write_avoid_cycles".to_owned(),
        "write_allocate_cycles".to_owned(),
        "delta_pct".to_owned(),
    ]];
    let mut worst: f64 = 0.0;
    let benches = suite();
    // Two waves: whether a benchmark stores at all is only known after
    // its write-avoid run, so batch all of those first, then batch the
    // write-allocate runs for just the store-heavy subset.
    let policies = [PolicyKind::LatteCc];
    let avoid_runs = sim::run_matrix(&policies, &benches, &avoid);
    let storing: Vec<latte_workloads::BenchmarkSpec> = benches
        .iter()
        .zip(&avoid_runs)
        .filter(|(_, runs)| runs[0].stats.stores > 0)
        .map(|(bench, _)| bench.clone())
        .collect();
    let allocate_runs = sim::run_matrix(&policies, &storing, &allocate);
    let mut allocate_by_abbr = std::collections::HashMap::new();
    for (bench, runs) in storing.iter().zip(allocate_runs) {
        allocate_by_abbr.insert(bench.abbr, runs);
    }
    for (bench, runs) in benches.iter().zip(&avoid_runs) {
        let a = &runs[0];
        let stores = a.stats.stores;
        if stores == 0 {
            continue; // write policy is vacuous without stores
        }
        let Some(b_runs) = allocate_by_abbr.get(bench.abbr) else {
            continue;
        };
        let b = &b_runs[0];
        let store_pct =
            stores as f64 / (stores + a.stats.loads) as f64 * 100.0;
        let delta = (b.stats.cycles as f64 - a.stats.cycles as f64) / a.stats.cycles as f64 * 100.0;
        worst = if delta.abs() > worst.abs() { delta } else { worst };
        outln!(
            "{:6} {:>7.1}% | {:>12} {:>12} {:>+7.2}%",
            bench.abbr, store_pct, a.stats.cycles, b.stats.cycles, delta
        );
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{store_pct:.2}"),
            a.stats.cycles.to_string(),
            b.stats.cycles.to_string(),
            format!("{delta:.3}"),
        ]);
    }
    outln!("\nlargest delta: {worst:+.2}% (paper: \"negligible impact\")");
    write_csv("sens_write_policy", &csv)
}
