//! **Figure 13** — Normalised GPU energy per policy. Paper shape: on
//! C-Sens workloads LATTE-CC saves ~10%, Static-BDI ~5%, Static-SC ~0%;
//! on C-InSens, Static-SC *increases* energy (up to +53% on HW).

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, run_benchmark, PolicyKind};
use latte_workloads::{suite, Category};

/// Runs the Fig 13 experiment.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 13: GPU energy normalised to baseline (lower is better)\n");
    outln!("{:6} {:>9} {:>9} {:>9}", "bench", "BDI", "SC", "LATTE");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "static_bdi".to_owned(),
        "static_sc".to_owned(),
        "latte_cc".to_owned(),
    ]];
    let mut by_cat = [[Vec::new(), Vec::new(), Vec::new()], [Vec::new(), Vec::new(), Vec::new()]];
    for bench in suite() {
        let base = run_benchmark(PolicyKind::Baseline, &bench);
        let e: Vec<f64> = [PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc]
            .iter()
            .map(|&p| run_benchmark(p, &bench).energy_ratio_over(&base))
            .collect();
        outln!("{:6} {:>9.3} {:>9.3} {:>9.3}", bench.abbr, e[0], e[1], e[2]);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.4}", e[0]),
            format!("{:.4}", e[1]),
            format!("{:.4}", e[2]),
        ]);
        let cat = usize::from(bench.category == Category::CSens);
        for (s, v) in by_cat[cat].iter_mut().zip(&e) {
            s.push(*v);
        }
    }
    for (cat, name) in [(1usize, "C-Sens"), (0, "C-InSens")] {
        outln!(
            "{:6} {:>9.3} {:>9.3} {:>9.3}   ({name} geomean)",
            "MEAN",
            geomean(&by_cat[cat][0]),
            geomean(&by_cat[cat][1]),
            geomean(&by_cat[cat][2])
        );
        csv.push(vec![
            format!("{name}_GEOMEAN"),
            format!("{:.4}", geomean(&by_cat[cat][0])),
            format!("{:.4}", geomean(&by_cat[cat][1])),
            format!("{:.4}", geomean(&by_cat[cat][2])),
        ]);
    }
    write_csv("fig13_energy", &csv)
}
