//! **Figure 13** — Normalised GPU energy per policy. Paper shape: on
//! C-Sens workloads LATTE-CC saves ~10%, Static-BDI ~5%, Static-SC ~0%;
//! on C-InSens, Static-SC *increases* energy (up to +53% on HW).

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, PolicyKind};
use crate::sim;
use latte_workloads::{suite, Category};

/// Runs the Fig 13 experiment.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 13: GPU energy normalised to baseline (lower is better)\n");
    outln!("{:6} {:>9} {:>9} {:>9}", "bench", "BDI", "SC", "LATTE");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "static_bdi".to_owned(),
        "static_sc".to_owned(),
        "latte_cc".to_owned(),
    ]];
    let mut by_cat = [[Vec::new(), Vec::new(), Vec::new()], [Vec::new(), Vec::new(), Vec::new()]];
    let benches = suite();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        let base = &runs[0];
        let e: Vec<f64> = runs[1..]
            .iter()
            .map(|r| r.energy_ratio_over(base))
            .collect();
        outln!("{:6} {:>9.3} {:>9.3} {:>9.3}", bench.abbr, e[0], e[1], e[2]);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.4}", e[0]),
            format!("{:.4}", e[1]),
            format!("{:.4}", e[2]),
        ]);
        let cat = usize::from(bench.category == Category::CSens);
        for (s, v) in by_cat[cat].iter_mut().zip(&e) {
            s.push(*v);
        }
    }
    for (cat, name) in [(1usize, "C-Sens"), (0, "C-InSens")] {
        outln!(
            "{:6} {:>9.3} {:>9.3} {:>9.3}   ({name} geomean)",
            "MEAN",
            geomean(&by_cat[cat][0]),
            geomean(&by_cat[cat][1]),
            geomean(&by_cat[cat][2])
        );
        csv.push(vec![
            format!("{name}_GEOMEAN"),
            format!("{:.4}", geomean(&by_cat[cat][0])),
            format!("{:.4}", geomean(&by_cat[cat][1])),
            format!("{:.4}", geomean(&by_cat[cat][2])),
        ]);
    }
    write_csv("fig13_energy", &csv)
}
